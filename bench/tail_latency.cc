// Tail-latency bench: what hedged replica reads buy under a brownout.
//
// Builds an in-process fleet (--shards x 2 replicas) twice over the
// same corpus, browns out replica 0 of every shard (+--brownout_us per
// streamed result — the replica stays alive and correct, just slow),
// and runs the same query set through both routers:
//
//   unhedged:  hedge off, breakers off — every pull eats the brownout.
//   hedged:    the tail-tolerant defaults — a stalled pull is raced
//              against the healthy sibling (count-skip replay) and the
//              breaker learns to stop preferring the slow replica.
//
// Reports exact client-side p50/p99/p99.9 per mode plus the router's
// hedge/breaker counters, and verifies the headline contract: hedged
// answers are bit-identical (rid and distance) to unhedged answers.
// Writes BENCH_tail_latency.json with --json_out.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/query_service.h"
#include "shard/fleet.h"
#include "shard/router.h"
#include "util/random.h"

namespace bw::bench {
namespace {

/// Exact percentile over one mode's per-query latencies (sorted copy;
/// the sample counts here are far too small for a histogram sketch).
uint64_t PercentileUs(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t index = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size())));
  return samples[index];
}

struct ModeResult {
  std::vector<uint64_t> latencies_us;                    // per query.
  std::vector<std::vector<gist::Neighbor>> answers;      // per query.
  shard::RouterStats stats;
};

ModeResult RunMode(shard::ShardFleet* fleet,
                   const std::vector<geom::Vec>& queries, size_t k) {
  ModeResult result;
  for (const geom::Vec& query : queries) {
    service::StreamOptions stream;
    stream.max_results = static_cast<uint32_t>(k);
    const auto start = std::chrono::steady_clock::now();
    auto response = fleet->router()->Knn(query, stream);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    BW_CHECK_MSG(response.ok(), response.status().ToString());
    BW_CHECK_MSG(!response->degraded(), "browned-out fleet degraded a query");
    result.latencies_us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    result.answers.push_back(std::move(response->neighbors));
  }
  result.stats = fleet->router()->stats();
  return result;
}

}  // namespace
}  // namespace bw::bench

int main(int argc, char** argv) {
  using namespace bw;
  using namespace bw::bench;

  Flags flags;
  int64_t* blobs = flags.AddInt64("blobs", 4000, "corpus size");
  int64_t* dim = flags.AddInt64("dim", 5, "reduced dimensionality");
  int64_t* seed = flags.AddInt64("seed", 7, "dataset + query seed");
  int64_t* shards = flags.AddInt64("shards", 2, "shards (x2 replicas each)");
  int64_t* queries = flags.AddInt64("queries", 20, "queries per mode");
  int64_t* k = flags.AddInt64("k", 3, "neighbors per query");
  int64_t* brownout_us = flags.AddInt64(
      "brownout_us", 200000,
      "per-result delay injected into replica 0 of every shard");
  std::string* dir = flags.AddString(
      "dir", "/tmp/bw_tail_latency", "scratch directory for fleet indexes");
  std::string* json_out = flags.AddString(
      "json_out", "", "write machine-readable results here ('' = skip)");
  int exit_code = 0;
  if (!ParseFlagsOrExit(flags, argc, argv, &exit_code)) return exit_code;

  // The same deterministic corpus bwrouter / the fleet tests use.
  blobworld::DatasetParams params;
  params.num_images = static_cast<size_t>(*blobs);
  params.seed = static_cast<uint64_t>(*seed);
  const blobworld::BlobDataset dataset =
      blobworld::GenerateDatasetDirect(params);
  linalg::SvdReducer reducer;
  Status fitted =
      reducer.Fit(dataset.Histograms(), static_cast<size_t>(*dim));
  BW_CHECK_MSG(fitted.ok(), fitted.ToString());
  const std::vector<geom::Vec> corpus =
      reducer.ProjectAll(dataset.Histograms(), static_cast<size_t>(*dim));

  std::vector<geom::Vec> query_set;
  Rng rng(static_cast<uint64_t>(*seed) * 0x51ed2701);
  for (int64_t q = 0; q < *queries; ++q) {
    query_set.push_back(corpus[rng.NextBelow(corpus.size())]);
  }

  // Two fleets over the same corpus: only the router's tail-tolerance
  // options differ. set_delay_us browns out replica 0 of every shard in
  // both, so the unhedged router (which always prefers replica 0) pays
  // the spike on every streamed result.
  const auto build_fleet = [&](const char* name, bool hedge) {
    shard::FleetOptions options;
    options.num_shards = static_cast<size_t>(*shards);
    options.replicas_per_shard = 2;
    options.build.am = "xjb";
    options.build.xjb_x = 0;
    options.router.hedge = hedge;
    options.router.breaker.enabled = hedge;
    options.router.hedge_delay_floor_us = 1'000;
    options.router.hedge_delay_fallback_us = 5'000;
    options.router.jitter_seed = static_cast<uint64_t>(*seed);
    const std::string path = *dir + "/" + name;
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    auto fleet = shard::ShardFleet::Build(corpus, path, options);
    BW_CHECK_MSG(fleet.ok(), fleet.status().ToString());
    for (size_t s = 0; s < options.num_shards; ++s) {
      (*fleet)->backend(s, 0)->set_delay_us(
          static_cast<uint64_t>(*brownout_us));
    }
    return std::move(*fleet);
  };

  std::printf("tail_latency: %lld blobs, %lld shards x 2 replicas, "
              "%lld queries (k=%lld), replica 0 browned +%lldus/result\n",
              (long long)*blobs, (long long)*shards, (long long)*queries,
              (long long)*k, (long long)*brownout_us);

  auto unhedged_fleet = build_fleet("unhedged", false);
  const ModeResult unhedged =
      RunMode(unhedged_fleet.get(), query_set, static_cast<size_t>(*k));
  unhedged_fleet.reset();

  auto hedged_fleet = build_fleet("hedged", true);
  const ModeResult hedged =
      RunMode(hedged_fleet.get(), query_set, static_cast<size_t>(*k));
  hedged_fleet.reset();

  // Headline contract: hedging changes when answers arrive, never what
  // they are. Bit-identical per query, by position.
  for (size_t q = 0; q < query_set.size(); ++q) {
    BW_CHECK_MSG(unhedged.answers[q].size() == hedged.answers[q].size(),
                 "hedged answer count diverged");
    for (size_t i = 0; i < unhedged.answers[q].size(); ++i) {
      BW_CHECK_MSG(
          unhedged.answers[q][i].rid == hedged.answers[q][i].rid &&
              unhedged.answers[q][i].distance == hedged.answers[q][i].distance,
          "hedged answers not bit-identical");
    }
  }

  const auto report = [](const char* name, const ModeResult& mode) {
    std::printf("%-9s p50 %8llu us   p99 %8llu us   p99.9 %8llu us\n", name,
                (unsigned long long)PercentileUs(mode.latencies_us, 0.50),
                (unsigned long long)PercentileUs(mode.latencies_us, 0.99),
                (unsigned long long)PercentileUs(mode.latencies_us, 0.999));
  };
  report("unhedged", unhedged);
  report("hedged", hedged);
  const uint64_t unhedged_p99 = PercentileUs(unhedged.latencies_us, 0.99);
  const uint64_t hedged_p99 = PercentileUs(hedged.latencies_us, 0.99);
  std::printf("hedged p99 / unhedged p99 = %.3f "
              "(hedges %llu attempted / %llu won, breaker opens %llu)\n",
              unhedged_p99 == 0
                  ? 0.0
                  : static_cast<double>(hedged_p99) /
                        static_cast<double>(unhedged_p99),
              (unsigned long long)hedged.stats.hedges_attempted,
              (unsigned long long)hedged.stats.hedges_won,
              (unsigned long long)hedged.stats.breaker_opens);
  std::printf("answers bit-identical across modes: yes\n");

  if (!json_out->empty()) {
    MetricsJson json;
    json.Set("bench", std::string("tail_latency"));
    json.Set("blobs", static_cast<double>(*blobs));
    json.Set("shards", static_cast<double>(*shards));
    json.Set("replicas_per_shard", 2.0);
    json.Set("queries", static_cast<double>(*queries));
    json.Set("k", static_cast<double>(*k));
    json.Set("brownout_us_per_result", static_cast<double>(*brownout_us));
    json.Set("unhedged_p50_us",
             static_cast<double>(PercentileUs(unhedged.latencies_us, 0.50)));
    json.Set("unhedged_p99_us", static_cast<double>(unhedged_p99));
    json.Set("unhedged_p999_us",
             static_cast<double>(PercentileUs(unhedged.latencies_us, 0.999)));
    json.Set("hedged_p50_us",
             static_cast<double>(PercentileUs(hedged.latencies_us, 0.50)));
    json.Set("hedged_p99_us", static_cast<double>(hedged_p99));
    json.Set("hedged_p999_us",
             static_cast<double>(PercentileUs(hedged.latencies_us, 0.999)));
    json.Set("p99_ratio_hedged_over_unhedged",
             unhedged_p99 == 0 ? 0.0
                               : static_cast<double>(hedged_p99) /
                                     static_cast<double>(unhedged_p99));
    json.Set("hedges_attempted",
             static_cast<double>(hedged.stats.hedges_attempted));
    json.Set("hedges_won", static_cast<double>(hedged.stats.hedges_won));
    json.Set("breaker_opens",
             static_cast<double>(hedged.stats.breaker_opens));
    json.Set("breaker_closes",
             static_cast<double>(hedged.stats.breaker_closes));
    json.Set("answers_bit_identical", std::string("true"));
    json.Write(*json_out);
    std::printf("wrote %s\n", json_out->c_str());
  }
  return 0;
}
