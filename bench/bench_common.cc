#include "bench/bench_common.h"

#include <cstdio>

#include "util/logging.h"

namespace bw::bench {

namespace {
// Static storage tying flag pointers to the returned config.
struct BoundFlags {
  int64_t* blobs;
  int64_t* queries;
  int64_t* k;
  int64_t* dim;
  int64_t* page_bytes;
  double* fill;
  int64_t* latent_clusters;
  double* cluster_sigma;
  double* noise;
  double* blend;
  double* zipf;
  int64_t* local_dims;
  int64_t* seed;
  bool* paper_scale;
  int64_t* threads;
  int64_t* queue_depth;
  ExperimentConfig config;
};
BoundFlags* g_bound = nullptr;
}  // namespace

ExperimentConfig* ExperimentConfig::Register(Flags* flags) {
  static BoundFlags bound;
  g_bound = &bound;
  bound.blobs = flags->AddInt64("blobs", 20000, "number of blobs to index");
  bound.queries = flags->AddInt64("queries", 400, "number of NN queries");
  bound.k = flags->AddInt64("k", 200, "neighbors retrieved per query");
  bound.dim = flags->AddInt64("dim", 5, "SVD dimensionality of the index");
  bound.page_bytes = flags->AddInt64("page_bytes", 4096, "page size");
  bound.fill = flags->AddDouble("fill", 0.85, "bulk-load fill fraction");
  bound.latent_clusters =
      flags->AddInt64("latent_clusters", 60, "appearance clusters");
  bound.cluster_sigma = flags->AddDouble(
      "cluster_sigma", 0.5, "within-cluster Lab color spread");
  bound.noise =
      flags->AddDouble("noise", 0.02, "per-bin histogram sampling noise");
  bound.blend =
      flags->AddDouble("blend", 0.2, "fraction of two-color blend blobs");
  bound.zipf =
      flags->AddDouble("zipf", 0.8, "cluster popularity skew exponent");
  bound.local_dims = flags->AddInt64(
      "local_dims", 2, "per-cluster appearance-sheet dimensionality");
  bound.seed = flags->AddInt64("seed", 1234, "master random seed");
  bound.paper_scale = flags->AddBool(
      "paper_scale", false,
      "run at the paper's scale (221231 blobs, 5531 queries, 8KB pages)");
  bound.threads =
      flags->AddInt64("threads", 4, "query-service worker threads");
  bound.queue_depth = flags->AddInt64(
      "queue_depth", 64, "query-service submission queue capacity");
  return &bound.config;
}

void ExperimentConfig::Resolve() {
  BW_CHECK(g_bound != nullptr);
  blobs = *g_bound->blobs;
  queries = *g_bound->queries;
  k = *g_bound->k;
  dim = *g_bound->dim;
  page_bytes = *g_bound->page_bytes;
  fill = *g_bound->fill;
  latent_clusters = *g_bound->latent_clusters;
  cluster_sigma = *g_bound->cluster_sigma;
  noise = *g_bound->noise;
  blend = *g_bound->blend;
  zipf = *g_bound->zipf;
  local_dims = *g_bound->local_dims;
  seed = *g_bound->seed;
  paper_scale = *g_bound->paper_scale;
  threads = *g_bound->threads;
  queue_depth = *g_bound->queue_depth;
  if (paper_scale) {
    blobs = 221231;
    queries = 5531;
    page_bytes = 8192;
  }
  BW_CHECK_GT(blobs, 0);
  BW_CHECK_GT(queries, 0);
  BW_CHECK_GT(dim, 0);
  BW_CHECK_GT(threads, 0);
  BW_CHECK_GT(queue_depth, 0);
}

ExperimentData PrepareExperiment(const ExperimentConfig& config) {
  ExperimentData data;

  blobworld::DatasetParams params;
  params.blobs_per_image = 5.0;
  params.num_images =
      static_cast<size_t>(config.blobs) / 5 + 1;  // ~5 blobs per image.
  params.latent_clusters = static_cast<size_t>(config.latent_clusters);
  params.within_cluster_sigma = config.cluster_sigma;
  params.direct_noise = config.noise;
  params.blend_fraction = config.blend;
  params.zipf_exponent = config.zipf;
  params.local_dims = static_cast<size_t>(config.local_dims);
  params.seed = static_cast<uint64_t>(config.seed);
  data.dataset = blobworld::GenerateDatasetDirect(params);

  BW_CHECK_OK(data.reducer.Fit(data.dataset.Histograms(),
                               static_cast<size_t>(config.dim)));
  data.vectors = data.reducer.ProjectAll(data.dataset.Histograms(),
                                         static_cast<size_t>(config.dim));

  data.query_foci = blobworld::SampleQueryBlobs(
      data.dataset, static_cast<size_t>(config.queries),
      static_cast<uint64_t>(config.seed) ^ 0xF0C1);
  data.workload = amdb::Workload::NnOverFoci(data.vectors, data.query_foci,
                                             static_cast<size_t>(config.k));
  return data;
}

Result<amdb::AnalysisReport> AnalyzeAm(const std::string& am,
                                       const ExperimentData& data,
                                       const ExperimentConfig& config,
                                       bool bulk_load) {
  core::IndexBuildOptions options;
  options.am = am;
  options.page_bytes = static_cast<size_t>(config.page_bytes);
  options.bulk_load = bulk_load;
  options.fill_fraction = config.fill;
  options.seed = static_cast<uint64_t>(config.seed);
  BW_ASSIGN_OR_RETURN(std::unique_ptr<core::BuiltIndex> index,
                      core::BuildIndex(data.vectors, options));

  amdb::AnalysisOptions analysis;
  analysis.target_utilization = config.fill;
  return amdb::AnalyzeWorkload(index->tree(), data.workload, analysis);
}

void MetricsJson::Set(const std::string& key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  entries_.emplace_back(key, buffer);
}

void MetricsJson::Set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + value + "\"");
}

std::string MetricsJson::ToString() const {
  std::string out = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

void MetricsJson::Write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BW_CHECK_MSG(f != nullptr, "cannot open json_out file: " + path);
  const std::string body = ToString();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  BW_CHECK_MSG(written == body.size(), "short write to " + path);
}

std::string ExtractJsonOutFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0 || arg.rfind("--json-out=", 0) == 0) {
      path = arg.substr(arg.find('=') + 1);
      continue;  // drop it from argv.
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

bool ParseFlagsOrExit(Flags& flags, int argc, char** argv, int* exit_code) {
  Status status = flags.Parse(argc, argv);
  if (status.ok()) return true;
  if (status.code() == StatusCode::kNotFound) {
    *exit_code = 0;  // --help.
  } else {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    *exit_code = 2;
  }
  return false;
}

}  // namespace bw::bench
