// Shared experiment harness for the bench binaries: builds the synthetic
// Blobworld data, the SVD-reduced vectors, the paper's query workload,
// and runs the amdb analysis for a named access method.
//
// Scale: paper = 221 231 blobs / 35 000 images / 5 531 queries on 8 KB
// pages. Default bench scale = 20 000 blobs / 400 queries on 4 KB pages,
// which keeps every tree in the same height regime as the paper (R-tree
// height 3, XJB 4, JB 5-6) while finishing in seconds. Pass --paper_scale
// to run the full-size experiment.

#ifndef BLOBWORLD_BENCH_BENCH_COMMON_H_
#define BLOBWORLD_BENCH_BENCH_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "amdb/analysis.h"
#include "blobworld/dataset.h"
#include "blobworld/pipeline.h"
#include "core/index_factory.h"
#include "linalg/reducer.h"
#include "util/flags.h"

namespace bw::bench {

/// Common experiment configuration, parsed from command-line flags.
struct ExperimentConfig {
  int64_t blobs = 20000;
  int64_t queries = 400;
  int64_t k = 200;          // neighbors per query (paper: 200).
  int64_t dim = 5;          // SVD dimensionality (paper: 5).
  int64_t page_bytes = 4096;
  double fill = 0.85;
  int64_t latent_clusters = 60;
  double cluster_sigma = 0.5;   // within-cluster Lab spread.
  double noise = 0.02;          // direct-mode histogram noise.
  double blend = 0.2;           // fraction of two-color blend blobs.
  double zipf = 0.8;            // cluster popularity skew.
  int64_t local_dims = 2;       // appearance-sheet dimensionality.
  int64_t seed = 1234;
  bool paper_scale = false;
  // Load-generator plumbing shared by the concurrent-service benches
  // (and reusable from any bench): service worker threads and bounded
  // submission-queue capacity (`--threads`, `--queue-depth`).
  int64_t threads = 4;
  int64_t queue_depth = 64;

  /// Registers the shared flags on `flags` and returns a config bound to
  /// them (call Resolve() after parsing).
  static ExperimentConfig* Register(Flags* flags);
  /// Applies --paper_scale and sanity-checks values.
  void Resolve();
};

/// The reduced-vector data set + workload of one experiment.
struct ExperimentData {
  blobworld::BlobDataset dataset;
  linalg::SvdReducer reducer;
  std::vector<geom::Vec> vectors;   // SVD-reduced, config.dim dimensions.
  std::vector<uint32_t> query_foci;
  amdb::Workload workload;
};

/// Generates the data set (direct latent sampling), fits the SVD, and
/// samples the query workload. Deterministic in config.seed.
ExperimentData PrepareExperiment(const ExperimentConfig& config);

/// Builds the named AM over `data` and runs the amdb analysis.
Result<amdb::AnalysisReport> AnalyzeAm(const std::string& am,
                                       const ExperimentData& data,
                                       const ExperimentConfig& config,
                                       bool bulk_load = true);

/// Standard flag-parse prologue for bench main()s: returns false if the
/// process should exit (help requested or bad flags; *exit_code is set).
bool ParseFlagsOrExit(Flags& flags, int argc, char** argv, int* exit_code);

/// Flat, insertion-ordered metric collection written as one JSON object.
/// The bench binaries use it to emit machine-readable result files (the
/// committed BENCH_*.json records) next to their human-readable tables.
class MetricsJson {
 public:
  void Set(const std::string& key, double value);
  void Set(const std::string& key, const std::string& value);

  /// Serializes `{ "k": v, ... }` with one key per line.
  std::string ToString() const;
  /// Writes ToString() to `path`; BW_CHECKs on I/O failure.
  void Write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Removes a `--json_out=PATH` (or `--json-out=PATH`) argument from
/// argv, compacting it in place and updating *argc, and returns PATH
/// ("" when absent). Needed by benches whose remaining flags are parsed
/// by google-benchmark, which rejects arguments it does not know.
std::string ExtractJsonOutFlag(int* argc, char** argv);

}  // namespace bw::bench

#endif  // BLOBWORLD_BENCH_BENCH_COMMON_H_
