// Ablation study for the two design choices DESIGN.md calls out:
//
//  1. Bite construction — the paper's published Figure-13 nibbling
//     heuristic vs. the improved maximal-bite construction its footnote
//     7 promises ("the performance of the JB BP presented here is a
//     lower bound on the better algorithm").
//
//  2. Search algorithm — 1999-era depth-first branch-and-bound k-NN
//     (what libgist/amdb executed) vs. modern best-first (Hjaltason-
//     Samet). DFS pays extra node visits while its candidate bound is
//     still loose, which makes it far more sensitive to BP quality; this
//     ablation quantifies how much of the paper's BP win is really a
//     search-algorithm effect.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace {

struct Cell {
  double leaf_per_query = 0.0;
  double total_per_query = 0.0;
};

Cell RunOne(const bw::bench::ExperimentData& data,
            const bw::bench::ExperimentConfig& config, const std::string& am,
            const std::string& bites, bool dfs) {
  bw::core::IndexBuildOptions options;
  options.am = am;
  options.page_bytes = static_cast<size_t>(config.page_bytes);
  options.fill_fraction = config.fill;
  options.seed = static_cast<uint64_t>(config.seed);
  options.bite_algorithm = bites;
  auto index = bw::core::BuildIndex(data.vectors, options);
  BW_CHECK_MSG(index.ok(), index.status().ToString());
  auto& tree = (*index)->tree();

  Cell cell;
  for (const auto& query : data.workload.queries) {
    bw::gist::TraversalStats stats;
    auto result = dfs ? tree.KnnSearchDfs(query.center, query.k, &stats)
                      : tree.KnnSearch(query.center, query.k, &stats);
    BW_CHECK_MSG(result.ok(), result.status().ToString());
    cell.leaf_per_query += double(stats.leaf_accesses);
    cell.total_per_query += double(stats.TotalAccesses());
  }
  cell.leaf_per_query /= double(data.workload.queries.size());
  cell.total_per_query /= double(data.workload.queries.size());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();

  std::printf("=== Ablation: bite construction x search algorithm ===\n\n");
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);

  // --- Ablation 1: bite construction (best-first search). ---
  {
    bw::TablePrinter table({"AM", "fig13-nibble leaf I/O", "maxvol leaf I/O",
                            "improvement"});
    for (const std::string& am : {"jb", "xjb"}) {
      const Cell nibble = RunOne(data, *config, am, "nibble", false);
      const Cell maxvol = RunOne(data, *config, am, "maxvol", false);
      table.AddRow({am, bw::TablePrinter::Num(nibble.leaf_per_query, 2),
                    bw::TablePrinter::Num(maxvol.leaf_per_query, 2),
                    bw::TablePrinter::Percent(
                        1.0 - maxvol.leaf_per_query /
                                  std::max(nibble.leaf_per_query, 1e-9))});
    }
    std::printf("Bite construction (leaf I/Os per query, best-first kNN)\n%s\n",
                table.ToString().c_str());
  }

  // --- Ablation 2: search algorithm (maxvol bites). ---
  {
    bw::TablePrinter table({"AM", "best-first leaf I/O", "DFS leaf I/O",
                            "best-first total I/O", "DFS total I/O"});
    for (const std::string& am : {"rtree", "amap", "jb", "xjb"}) {
      const Cell bf = RunOne(data, *config, am, "maxvol", false);
      const Cell dfs = RunOne(data, *config, am, "maxvol", true);
      table.AddRow({am, bw::TablePrinter::Num(bf.leaf_per_query, 2),
                    bw::TablePrinter::Num(dfs.leaf_per_query, 2),
                    bw::TablePrinter::Num(bf.total_per_query, 2),
                    bw::TablePrinter::Num(dfs.total_per_query, 2)});
    }
    std::printf("Search algorithm (I/Os per query)\n%s\n",
                table.ToString().c_str());
  }

  // --- Ablation 3: workload-aware XJB bite selection (the paper's
  // future-work item: bites should minimize query impingement, not
  // volume). Reference queries = the workload's own foci (a training/
  // serving split would halve them; with deterministic foci this is the
  // favorable upper bound for the technique).
  {
    bw::core::IndexBuildOptions options;
    options.am = "xjb";
    options.page_bytes = static_cast<size_t>(config->page_bytes);
    options.fill_fraction = config->fill;
    options.seed = static_cast<uint64_t>(config->seed);

    auto measure = [&](bool workload_aware) {
      bw::core::IndexBuildOptions local = options;
      if (workload_aware) {
        for (const auto& q : data.workload.queries) {
          local.xjb_reference_queries.push_back(q.center);
        }
      }
      auto index = bw::core::BuildIndex(data.vectors, local);
      BW_CHECK_MSG(index.ok(), index.status().ToString());
      double leaf = 0.0;
      for (const auto& query : data.workload.queries) {
        bw::gist::TraversalStats stats;
        auto result =
            (*index)->tree().KnnSearch(query.center, query.k, &stats);
        BW_CHECK_MSG(result.ok(), result.status().ToString());
        leaf += double(stats.leaf_accesses);
      }
      return leaf / double(data.workload.queries.size());
    };
    const double by_volume = measure(false);
    const double by_workload = measure(true);
    bw::TablePrinter table(
        {"XJB bite selection", "leaf I/Os per query"});
    table.AddRow({"largest volume (paper)",
                  bw::TablePrinter::Num(by_volume, 2)});
    table.AddRow({"workload-aware (future work)",
                  bw::TablePrinter::Num(by_workload, 2)});
    std::printf("XJB bite selection policy\n%s\n", table.ToString().c_str());
  }

  std::printf(
      "reading: best-first accesses exactly the nodes whose BP distance is\n"
      "below the final kNN radius, so it shrinks the gap between sloppy and\n"
      "tight BPs; DFS rewards tight BPs more — the regime the paper ran in.\n");
  return 0;
}
