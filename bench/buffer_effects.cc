// Section 6's memory-buffer argument, made measurable: "XJB is likely to
// be more effective in the Blobworld system because its tree height is
// lower than the JB tree height. Thus, the XJB inner nodes are more
// likely to fit in memory."
//
// This bench runs the workload through an LRU buffer pool of varying
// capacity and reports actual (post-cache) page reads per query for the
// R, aMAP, JB and XJB trees, plus each tree's inner-node count (the
// memory needed to pin all inner nodes).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();

  std::printf("=== Buffer-pool effects on JB vs XJB (Section 6) ===\n\n");
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);

  const std::vector<size_t> pool_sizes = {0, 8, 32, 128, 512};
  std::vector<std::string> header = {"AM", "height", "inner nodes"};
  for (size_t p : pool_sizes) {
    header.push_back(p == 0 ? "no cache" : "pool=" + std::to_string(p));
  }
  bw::TablePrinter table(std::move(header));

  for (const std::string& am : {"rtree", "amap", "jb", "xjb"}) {
    bw::core::IndexBuildOptions options;
    options.am = am;
    options.page_bytes = static_cast<size_t>(config->page_bytes);
    options.fill_fraction = config->fill;
    options.seed = static_cast<uint64_t>(config->seed);
    auto index = bw::core::BuildIndex(data.vectors, options);
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    auto& built = **index;

    const auto shape = built.tree().Shape();
    uint64_t inner_nodes = 0;
    for (size_t level = 1; level < shape.nodes_per_level.size(); ++level) {
      inner_nodes += shape.nodes_per_level[level];
    }

    std::vector<std::string> row = {am, std::to_string(shape.height),
                                    std::to_string(inner_nodes)};
    for (size_t pool : pool_sizes) {
      built.UseBufferPool(pool);
      built.file().ResetStats();
      if (built.buffer_pool() != nullptr) built.buffer_pool()->Clear();
      for (const auto& query : data.workload.queries) {
        auto result = built.Knn(query.center, query.k, nullptr);
        BW_CHECK_MSG(result.ok(), result.status().ToString());
      }
      const double reads_per_query =
          double(built.file().stats().reads) /
          double(data.workload.queries.size());
      row.push_back(bw::TablePrinter::Num(reads_per_query, 2));
    }
    table.AddRow(std::move(row));
  }
  std::printf("Disk page reads per query under an LRU buffer pool\n%s\n",
              table.ToString().c_str());
  std::printf(
      "paper checks: with no cache JB pays its extra inner levels on every\n"
      "query; a modest pool absorbs XJB's inner nodes sooner than JB's\n"
      "(XJB has fewer), closing most of the raw-I/O gap — the basis of the\n"
      "paper's recommendation of XJB for the production system.\n");
  return 0;
}
