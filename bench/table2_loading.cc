// Reproduces Table 2 of the paper: amdb performance losses for a
// bulk-loaded (STR) vs. an insertion-loaded R-tree over the Blobworld
// 200-NN workload.
//
// Expected shape (paper): the insertion-loaded tree loses dramatically
// more everywhere — excess coverage 62 683 vs 6 027 000 (~100x),
// utilization 2 768 vs 67 562, clustering 6 435 vs 120 875. Bulk loading
// with STR all but eliminates utilization and clustering loss, leaving
// sloppy bounding predicates (excess coverage) as the R-tree's only
// problem.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();

  std::printf("=== Table 2: bulk-loaded vs insertion-loaded R-tree ===\n");
  bw::Stopwatch watch;
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);
  std::printf("prepared %zu blobs in %.1fs\n", data.vectors.size(),
              watch.ElapsedSeconds());

  watch.Restart();
  auto bulk = bw::bench::AnalyzeAm("rtree", data, *config, /*bulk_load=*/true);
  BW_CHECK_MSG(bulk.ok(), bulk.status().ToString());
  std::printf("bulk-loaded analysis in %.1fs\n", watch.ElapsedSeconds());

  watch.Restart();
  auto inserted =
      bw::bench::AnalyzeAm("rtree", data, *config, /*bulk_load=*/false);
  BW_CHECK_MSG(inserted.ok(), inserted.status().ToString());
  std::printf("insertion-loaded analysis in %.1fs\n\n",
              watch.ElapsedSeconds());

  using bw::TablePrinter;
  TablePrinter table(
      {"Losses (in number of I/Os)", "Bulk Loaded", "Insertion Loaded"});
  table.AddRow({"Excess Coverage Loss",
                TablePrinter::Count((long long)bulk->leaf_excess_coverage_loss),
                TablePrinter::Count(
                    (long long)inserted->leaf_excess_coverage_loss)});
  table.AddRow(
      {"Utilization Loss",
       TablePrinter::Count((long long)bulk->leaf_utilization_loss),
       TablePrinter::Count((long long)inserted->leaf_utilization_loss)});
  table.AddRow(
      {"Clustering Loss",
       TablePrinter::Count((long long)bulk->leaf_clustering_loss),
       TablePrinter::Count((long long)inserted->leaf_clustering_loss)});
  table.AddRow({"(total leaf I/Os)",
                TablePrinter::Count((long long)bulk->leaf_accesses),
                TablePrinter::Count((long long)inserted->leaf_accesses)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("tree shapes: bulk height=%d nodes=%llu util(leaf)=%.2f | "
              "inserted height=%d nodes=%llu util(leaf)=%.2f\n",
              bulk->shape.height, (unsigned long long)bulk->shape.TotalNodes(),
              bulk->shape.avg_utilization_per_level.empty()
                  ? 0.0
                  : bulk->shape.avg_utilization_per_level[0],
              inserted->shape.height,
              (unsigned long long)inserted->shape.TotalNodes(),
              inserted->shape.avg_utilization_per_level.empty()
                  ? 0.0
                  : inserted->shape.avg_utilization_per_level[0]);
  std::printf(
      "\npaper checks: every insertion-loaded loss should dwarf its\n"
      "bulk-loaded counterpart; bulk utilization/clustering loss ~ 0.\n");
  return 0;
}
