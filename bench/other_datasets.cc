// The paper's future-work item "testing aMAP, JB and XJB on other data
// sets, and workloads both static and dynamic": runs the custom AMs
// against three synthetic 5-D families with very different geometry —
// uniform, Gaussian clusters, and a smooth 1-D curve — under a static
// (bulk-loaded) and a dynamic (interleaved insert + query) workload.

#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/index_factory.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using bw::geom::Vec;

std::vector<Vec> MakeDataset(const std::string& family, size_t n,
                             uint64_t seed) {
  bw::Rng rng(seed);
  std::vector<Vec> points;
  points.reserve(n);
  if (family == "uniform") {
    for (size_t i = 0; i < n; ++i) {
      Vec p(5);
      for (size_t d = 0; d < 5; ++d) p[d] = float(rng.Uniform(0, 100));
      points.push_back(std::move(p));
    }
  } else if (family == "clusters") {
    std::vector<Vec> centers;
    for (int c = 0; c < 40; ++c) {
      Vec p(5);
      for (size_t d = 0; d < 5; ++d) p[d] = float(rng.Uniform(0, 100));
      centers.push_back(std::move(p));
    }
    for (size_t i = 0; i < n; ++i) {
      const Vec& c = centers[rng.NextBelow(centers.size())];
      Vec p(5);
      for (size_t d = 0; d < 5; ++d) {
        p[d] = float(c[d] + rng.Gaussian(0.0, 1.5));
      }
      points.push_back(std::move(p));
    }
  } else {  // curve
    for (size_t i = 0; i < n; ++i) {
      const double t = rng.NextDouble() * 18.85;
      Vec p(5);
      p[0] = float(t * 5.0);
      p[1] = float(30.0 * std::sin(t));
      p[2] = float(30.0 * std::cos(0.7 * t));
      p[3] = float(20.0 * std::sin(1.3 * t + 1.0));
      p[4] = float(20.0 * std::cos(0.4 * t));
      for (size_t d = 0; d < 5; ++d) {
        p[d] += float(rng.Gaussian(0.0, 0.05));
      }
      points.push_back(std::move(p));
    }
  }
  return points;
}

struct Row {
  double static_leaf = 0.0;
  double dynamic_leaf = 0.0;
};

Row Measure(const std::string& am, const std::vector<Vec>& points,
            size_t queries, size_t k, uint64_t seed) {
  Row row;
  bw::Rng rng(seed);

  // Static: bulk-load everything, then query.
  {
    bw::core::IndexBuildOptions options;
    options.am = am;
    options.page_bytes = 4096;
    auto index = bw::core::BuildIndex(points, options);
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    for (size_t q = 0; q < queries; ++q) {
      bw::gist::TraversalStats stats;
      auto result = (*index)->Knn(points[rng.NextBelow(points.size())], k,
                                  &stats);
      BW_CHECK_MSG(result.ok(), result.status().ToString());
      row.static_leaf += double(stats.leaf_accesses);
    }
    row.static_leaf /= double(queries);
  }

  // Dynamic: bulk-load half, then alternate inserts of the second half
  // with queries (the regime the paper explicitly left untested).
  {
    const size_t half = points.size() / 2;
    std::vector<Vec> first(points.begin(), points.begin() + half);
    bw::core::IndexBuildOptions options;
    options.am = am;
    options.page_bytes = 4096;
    auto index = bw::core::BuildIndex(first, options);
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    auto& tree = (*index)->tree();

    size_t measured = 0;
    double leaf = 0.0;
    for (size_t i = half; i < points.size(); ++i) {
      BW_CHECK_OK(tree.Insert(points[i], i));
      if (i % ((points.size() - half) / queries + 1) == 0) {
        bw::gist::TraversalStats stats;
        auto result = tree.KnnSearch(points[rng.NextBelow(i)], k, &stats);
        BW_CHECK_MSG(result.ok(), result.status().ToString());
        leaf += double(stats.leaf_accesses);
        ++measured;
      }
    }
    BW_CHECK_OK(tree.Validate());
    row.dynamic_leaf = leaf / double(std::max<size_t>(measured, 1));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* n = flags.AddInt64("points", 12000, "points per dataset");
  int64_t* queries = flags.AddInt64("queries", 150, "queries per workload");
  int64_t* k = flags.AddInt64("k", 100, "neighbors per query");
  int64_t* seed = flags.AddInt64("seed", 5, "random seed");
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == bw::StatusCode::kNotFound ? 0 : 2;
  }

  std::printf("=== Future work: other data sets, static + dynamic ===\n");
  std::printf("points=%lld queries=%lld k=%lld\n\n", (long long)*n,
              (long long)*queries, (long long)*k);

  for (const std::string family : {"uniform", "clusters", "curve"}) {
    const auto points =
        MakeDataset(family, static_cast<size_t>(*n),
                    static_cast<uint64_t>(*seed));
    bw::TablePrinter table({"AM", "static leaf I/O per query",
                            "dynamic leaf I/O per query"});
    for (const std::string am : {"rtree", "rstar", "amap", "jb", "xjb"}) {
      const Row row = Measure(am, points, static_cast<size_t>(*queries),
                              static_cast<size_t>(*k),
                              static_cast<uint64_t>(*seed) + 1);
      table.AddRow({am, bw::TablePrinter::Num(row.static_leaf, 2),
                    bw::TablePrinter::Num(row.dynamic_leaf, 2)});
    }
    std::printf("dataset: %s\n%s\n", family.c_str(),
                table.ToString().c_str());
  }
  std::printf(
      "reading: the jagged BPs help most where leaves have empty corners\n"
      "(clusters, curve) and least on space-filling uniform data; dynamic\n"
      "loading erodes every AM's bulk-loaded clustering.\n");
  return 0;
}
