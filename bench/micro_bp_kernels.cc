// google-benchmark microbenchmarks for the bounding-predicate kernels,
// supporting Section 5.3's claim that the new BPs' distance/consistency
// functions "are based around simple rectangle geometry and should not
// add significantly to query execution time".
//
// Measures, per BP type: construction from a leaf's points, the
// MinDistance kernel that drives k-NN ordering, the range-query
// consistency check, and — the read-path headline — batched node scans
// (one BpMinDistanceBatch / BpConsistentRangeBatch call over a whole
// node's entries) against the per-entry scalar loop they replace.
// `--json_out=PATH` additionally runs a self-timed scalar-vs-batched
// comparison and writes entries/sec + speedups as a flat JSON object
// (the committed BENCH_read_path.json record).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "am/rtree.h"
#include "am/srtree.h"
#include "am/sstree.h"
#include "bench/bench_common.h"
#include "core/index_factory.h"
#include "core/jagged.h"
#include "core/map_tree.h"
#include "tests/test_helpers.h"
#include "util/cpu.h"
#include "util/stopwatch.h"

namespace {

constexpr size_t kDim = 5;
constexpr size_t kLeafPoints = 100;
// Entries per simulated internal node: the fanout regime of 4 KB pages
// with 40-200 byte BPs.
constexpr size_t kNodeEntries = 64;
constexpr double kRangeRadius = 5.0;

const char* const kAms[] = {"rtree", "sstree", "srtree", "amap", "jb", "xjb"};

// AMs whose covered-query path runs the flattened jagged-bite stack
// (region decomposition search) rather than plain box geometry.
const char* const kJaggedAms[] = {"jb", "xjb"};

std::unique_ptr<bw::gist::Extension> MakeExt(const std::string& name) {
  bw::core::IndexBuildOptions options;
  options.am = name;
  options.amap_samples = 1024;
  options.xjb_x = 10;
  auto ext = bw::core::MakeExtension(kDim, options, 20000);
  BW_CHECK_MSG(ext.ok(), ext.status().ToString());
  return std::move(ext).value();
}

/// One simulated internal node: kNodeEntries BPs, each built from one
/// tight point cluster — the spatial-partitioning shape real sibling
/// entries have after bulk load, where most queries fall *outside* most
/// entry MBRs — plus the staged batch scratch viewing them.
///
/// With `covering`, each BP is instead built from space-spanning
/// uniform points so nearly every query lands *inside* every entry's
/// MBR: that drives the covered-query slow path on every entry, which
/// for the jagged AMs is the flattened bite-stack region search.
struct NodeFixture {
  std::unique_ptr<bw::gist::Extension> ext;
  std::vector<bw::gist::Bytes> bps;
  bw::gist::BatchScratch scratch;
  std::vector<bw::geom::Vec> queries;
  std::vector<double> scalar_out;

  explicit NodeFixture(const std::string& am, bool covering = false)
      : ext(MakeExt(am)) {
    bps.reserve(kNodeEntries);
    scratch.preds.reserve(kNodeEntries);
    for (size_t e = 0; e < kNodeEntries; ++e) {
      const auto points =
          covering ? bw::testing::MakeUniformPoints(kLeafPoints, kDim, 100 + e)
                   : bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 1,
                                                      100 + e);
      bps.push_back(ext->BpFromPoints(points));
    }
    for (const bw::gist::Bytes& bp : bps) {
      scratch.preds.push_back(bw::gist::ByteSpan(bp.data(), bp.size()));
    }
    queries = bw::testing::MakeUniformPoints(256, kDim, 11);
    scalar_out.resize(kNodeEntries);
  }

  void ScalarMinDist(const bw::geom::Vec& q) {
    for (size_t e = 0; e < kNodeEntries; ++e) {
      scalar_out[e] = ext->BpMinDistance(scratch.preds[e], q);
    }
  }

  void ScalarConsistent(const bw::geom::Vec& q) {
    for (size_t e = 0; e < kNodeEntries; ++e) {
      scalar_out[e] = ext->BpConsistentRange(scratch.preds[e], q, kRangeRadius)
                          ? 1.0
                          : 0.0;
    }
  }
};

void BM_BpConstruct(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ext->BpFromPoints(points));
  }
}

void BM_BpMinDistance(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  const auto queries = bw::testing::MakeUniformPoints(256, kDim, 11);
  const bw::gist::Bytes bp = ext->BpFromPoints(points);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ext->BpMinDistance(bp, queries[i++ & 255]));
  }
}

void BM_BpConsistentRange(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  const auto queries = bw::testing::MakeUniformPoints(256, kDim, 13);
  const bw::gist::Bytes bp = ext->BpFromPoints(points);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ext->BpConsistentRange(bp, queries[i++ & 255], kRangeRadius));
  }
}

void BM_NodeScanMinDistScalar(benchmark::State& state, const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ScalarMinDist(node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scalar_out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanMinDistBatch(benchmark::State& state, const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ext->BpMinDistanceBatch(node.scratch, node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scratch.distances.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanConsistentScalar(benchmark::State& state,
                                 const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ScalarConsistent(node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scalar_out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanConsistentBatch(benchmark::State& state,
                                const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ext->BpConsistentRangeBatch(node.scratch, node.queries[i++ & 255],
                                     kRangeRadius);
    benchmark::DoNotOptimize(node.scratch.consistent.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

// The covered-path node scan: every entry MBR contains most queries,
// so a jagged AM runs the bite-stack region search per entry instead
// of the outside-the-box fast path.
void BM_NodeScanMinDistCoveredScalar(benchmark::State& state,
                                     const std::string& am) {
  NodeFixture node(am, /*covering=*/true);
  size_t i = 0;
  for (auto _ : state) {
    node.ScalarMinDist(node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scalar_out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanMinDistCoveredBatch(benchmark::State& state,
                                    const std::string& am) {
  NodeFixture node(am, /*covering=*/true);
  size_t i = 0;
  for (auto _ : state) {
    node.ext->BpMinDistanceBatch(node.scratch, node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scratch.distances.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void RegisterAll() {
  for (const char* am : kAms) {
    benchmark::RegisterBenchmark(
        (std::string("BM_BpConstruct/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpConstruct(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_BpMinDistance/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpMinDistance(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_BpConsistentRange/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpConsistentRange(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanMinDist_scalar/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanMinDistScalar(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanMinDist_batch/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanMinDistBatch(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanConsistent_scalar/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanConsistentScalar(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanConsistent_batch/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanConsistentBatch(s, am); });
  }
  for (const char* am : kJaggedAms) {
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanMinDist_covered_scalar/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanMinDistCoveredScalar(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanMinDist_covered_batch/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanMinDistCoveredBatch(s, am); });
  }
}

/// Self-timed entries/sec of `fn` over whole-node scans (fn must scan
/// kNodeEntries entries per call). Runs ~0.2 s after a warm-up.
template <typename Fn>
double MeasureEntriesPerSec(NodeFixture& node, Fn&& fn) {
  size_t i = 0;
  for (int warm = 0; warm < 1000; ++warm) fn(node.queries[i++ & 255]);
  bw::Stopwatch watch;
  size_t iters = 0;
  do {
    for (int burst = 0; burst < 500; ++burst) fn(node.queries[i++ & 255]);
    iters += 500;
  } while (watch.ElapsedSeconds() < 0.2);
  return static_cast<double>(iters) * kNodeEntries / watch.ElapsedSeconds();
}

void WriteJsonComparison(const std::string& path) {
  bw::bench::MetricsJson json;
  json.Set("bench", std::string("micro_bp_kernels"));
  json.Set("node_entries", static_cast<double>(kNodeEntries));
  json.Set("dim", static_cast<double>(kDim));
  std::printf("\n=== node-scan scalar vs batched (entries/sec, %zu-entry "
              "nodes) ===\n", kNodeEntries);
  for (const char* am : kAms) {
    NodeFixture node(am);
    const double min_scalar = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) { node.ScalarMinDist(q); });
    const double min_batch = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) {
          node.ext->BpMinDistanceBatch(node.scratch, q);
        });
    const double con_scalar = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) { node.ScalarConsistent(q); });
    const double con_batch = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) {
          node.ext->BpConsistentRangeBatch(node.scratch, q, kRangeRadius);
        });
    const std::string key(am);
    json.Set("min_dist_scalar_eps_" + key, min_scalar);
    json.Set("min_dist_batch_eps_" + key, min_batch);
    json.Set("min_dist_batch_speedup_" + key, min_batch / min_scalar);
    json.Set("consistent_scalar_eps_" + key, con_scalar);
    json.Set("consistent_batch_eps_" + key, con_batch);
    json.Set("consistent_batch_speedup_" + key, con_batch / con_scalar);
    std::printf("%-7s min-dist %10.3gM -> %10.3gM (%.2fx)   "
                "consistent %10.3gM -> %10.3gM (%.2fx)\n",
                am, min_scalar / 1e6, min_batch / 1e6, min_batch / min_scalar,
                con_scalar / 1e6, con_batch / 1e6, con_batch / con_scalar);
  }
  // SIMD vs autovec: the same batched node scan with dispatch pinned to
  // the compiler-autovectorized scalar path vs the hand-written
  // AVX2/FMA variants. The delta isolates what the explicit kernels buy
  // over what the optimizer already extracts from the scalar source.
  const bool avx2 = [] {
#if defined(BW_HAVE_AVX2)
    return bw::util::CpuSupportsAvx2Fma();
#else
    return false;
#endif
  }();
  json.Set("kernel_isa_avx2_available", avx2 ? 1.0 : 0.0);
  std::printf("\n=== batched node scan, autovec scalar vs pinned AVX2 "
              "(entries/sec) ===\n");
  for (const char* am : kAms) {
    NodeFixture node(am);
    const auto batch_scan = [&](const bw::geom::Vec& q) {
      node.ext->BpMinDistanceBatch(node.scratch, q);
    };
    double autovec = 0.0;
    {
      bw::util::ScopedKernelIsa pin(bw::util::KernelIsa::kScalar);
      autovec = MeasureEntriesPerSec(node, batch_scan);
    }
    const std::string key(am);
    json.Set("min_dist_batch_eps_autovec_" + key, autovec);
    if (avx2) {
      bw::util::ScopedKernelIsa pin(bw::util::KernelIsa::kAvx2);
      const double simd = MeasureEntriesPerSec(node, batch_scan);
      json.Set("min_dist_batch_eps_avx2_" + key, simd);
      json.Set("simd_over_autovec_" + key, simd / autovec);
      std::printf("%-7s autovec %10.3gM -> avx2 %10.3gM (%.2fx)\n", am,
                  autovec / 1e6, simd / 1e6, simd / autovec);
    } else {
      std::printf("%-7s autovec %10.3gM (avx2 unavailable)\n", am,
                  autovec / 1e6);
    }
  }
  // Covered-path scans for the jagged AMs: space-spanning entries put
  // the query inside every MBR, so each entry runs the flattened
  // bite-stack region search instead of the outside-the-box geometry.
  std::printf("\n=== covered node scan (jagged bite stack, entries/sec) "
              "===\n");
  for (const char* am : kJaggedAms) {
    NodeFixture node(am, /*covering=*/true);
    const double covered_scalar = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) { node.ScalarMinDist(q); });
    const double covered_batch = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) {
          node.ext->BpMinDistanceBatch(node.scratch, q);
        });
    const std::string key(am);
    json.Set("min_dist_covered_scalar_eps_" + key, covered_scalar);
    json.Set("min_dist_covered_batch_eps_" + key, covered_batch);
    json.Set("min_dist_covered_batch_speedup_" + key,
             covered_batch / covered_scalar);
    std::printf("%-7s covered %10.3gM -> %10.3gM (%.2fx)\n", am,
                covered_scalar / 1e6, covered_batch / 1e6,
                covered_batch / covered_scalar);
  }
  json.Write(path);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = bw::bench::ExtractJsonOutFlag(&argc, argv);
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_out.empty()) WriteJsonComparison(json_out);
  return 0;
}
