// google-benchmark microbenchmarks for the bounding-predicate kernels,
// supporting Section 5.3's claim that the new BPs' distance/consistency
// functions "are based around simple rectangle geometry and should not
// add significantly to query execution time".
//
// Measures, per BP type: construction from a leaf's points, the
// MinDistance kernel that drives k-NN ordering, the range-query
// consistency check, and — the read-path headline — batched node scans
// (one BpMinDistanceBatch / BpConsistentRangeBatch call over a whole
// node's entries) against the per-entry scalar loop they replace.
// `--json_out=PATH` additionally runs a self-timed scalar-vs-batched
// comparison and writes entries/sec + speedups as a flat JSON object
// (the committed BENCH_read_path.json record).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "am/rtree.h"
#include "am/srtree.h"
#include "am/sstree.h"
#include "bench/bench_common.h"
#include "core/index_factory.h"
#include "core/jagged.h"
#include "core/map_tree.h"
#include "tests/test_helpers.h"
#include "util/stopwatch.h"

namespace {

constexpr size_t kDim = 5;
constexpr size_t kLeafPoints = 100;
// Entries per simulated internal node: the fanout regime of 4 KB pages
// with 40-200 byte BPs.
constexpr size_t kNodeEntries = 64;
constexpr double kRangeRadius = 5.0;

const char* const kAms[] = {"rtree", "sstree", "srtree", "amap", "jb", "xjb"};

std::unique_ptr<bw::gist::Extension> MakeExt(const std::string& name) {
  bw::core::IndexBuildOptions options;
  options.am = name;
  options.amap_samples = 1024;
  options.xjb_x = 10;
  auto ext = bw::core::MakeExtension(kDim, options, 20000);
  BW_CHECK_MSG(ext.ok(), ext.status().ToString());
  return std::move(ext).value();
}

/// One simulated internal node: kNodeEntries BPs, each built from one
/// tight point cluster — the spatial-partitioning shape real sibling
/// entries have after bulk load, where most queries fall *outside* most
/// entry MBRs (a node of space-spanning BPs would instead measure the
/// covered-query slow path every AM shares) — plus the staged batch
/// scratch viewing them.
struct NodeFixture {
  std::unique_ptr<bw::gist::Extension> ext;
  std::vector<bw::gist::Bytes> bps;
  bw::gist::BatchScratch scratch;
  std::vector<bw::geom::Vec> queries;
  std::vector<double> scalar_out;

  explicit NodeFixture(const std::string& am) : ext(MakeExt(am)) {
    bps.reserve(kNodeEntries);
    scratch.preds.reserve(kNodeEntries);
    for (size_t e = 0; e < kNodeEntries; ++e) {
      const auto points = bw::testing::MakeClusteredPoints(
          kLeafPoints, kDim, 1, 100 + e);
      bps.push_back(ext->BpFromPoints(points));
    }
    for (const bw::gist::Bytes& bp : bps) {
      scratch.preds.push_back(bw::gist::ByteSpan(bp.data(), bp.size()));
    }
    queries = bw::testing::MakeUniformPoints(256, kDim, 11);
    scalar_out.resize(kNodeEntries);
  }

  void ScalarMinDist(const bw::geom::Vec& q) {
    for (size_t e = 0; e < kNodeEntries; ++e) {
      scalar_out[e] = ext->BpMinDistance(scratch.preds[e], q);
    }
  }

  void ScalarConsistent(const bw::geom::Vec& q) {
    for (size_t e = 0; e < kNodeEntries; ++e) {
      scalar_out[e] = ext->BpConsistentRange(scratch.preds[e], q, kRangeRadius)
                          ? 1.0
                          : 0.0;
    }
  }
};

void BM_BpConstruct(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ext->BpFromPoints(points));
  }
}

void BM_BpMinDistance(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  const auto queries = bw::testing::MakeUniformPoints(256, kDim, 11);
  const bw::gist::Bytes bp = ext->BpFromPoints(points);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ext->BpMinDistance(bp, queries[i++ & 255]));
  }
}

void BM_BpConsistentRange(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  const auto queries = bw::testing::MakeUniformPoints(256, kDim, 13);
  const bw::gist::Bytes bp = ext->BpFromPoints(points);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ext->BpConsistentRange(bp, queries[i++ & 255], kRangeRadius));
  }
}

void BM_NodeScanMinDistScalar(benchmark::State& state, const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ScalarMinDist(node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scalar_out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanMinDistBatch(benchmark::State& state, const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ext->BpMinDistanceBatch(node.scratch, node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scratch.distances.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanConsistentScalar(benchmark::State& state,
                                 const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ScalarConsistent(node.queries[i++ & 255]);
    benchmark::DoNotOptimize(node.scalar_out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void BM_NodeScanConsistentBatch(benchmark::State& state,
                                const std::string& am) {
  NodeFixture node(am);
  size_t i = 0;
  for (auto _ : state) {
    node.ext->BpConsistentRangeBatch(node.scratch, node.queries[i++ & 255],
                                     kRangeRadius);
    benchmark::DoNotOptimize(node.scratch.consistent.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kNodeEntries);
}

void RegisterAll() {
  for (const char* am : kAms) {
    benchmark::RegisterBenchmark(
        (std::string("BM_BpConstruct/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpConstruct(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_BpMinDistance/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpMinDistance(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_BpConsistentRange/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpConsistentRange(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanMinDist_scalar/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanMinDistScalar(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanMinDist_batch/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanMinDistBatch(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanConsistent_scalar/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanConsistentScalar(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_NodeScanConsistent_batch/") + am).c_str(),
        [am](benchmark::State& s) { BM_NodeScanConsistentBatch(s, am); });
  }
}

/// Self-timed entries/sec of `fn` over whole-node scans (fn must scan
/// kNodeEntries entries per call). Runs ~0.2 s after a warm-up.
template <typename Fn>
double MeasureEntriesPerSec(NodeFixture& node, Fn&& fn) {
  size_t i = 0;
  for (int warm = 0; warm < 1000; ++warm) fn(node.queries[i++ & 255]);
  bw::Stopwatch watch;
  size_t iters = 0;
  do {
    for (int burst = 0; burst < 500; ++burst) fn(node.queries[i++ & 255]);
    iters += 500;
  } while (watch.ElapsedSeconds() < 0.2);
  return static_cast<double>(iters) * kNodeEntries / watch.ElapsedSeconds();
}

void WriteJsonComparison(const std::string& path) {
  bw::bench::MetricsJson json;
  json.Set("bench", std::string("micro_bp_kernels"));
  json.Set("node_entries", static_cast<double>(kNodeEntries));
  json.Set("dim", static_cast<double>(kDim));
  std::printf("\n=== node-scan scalar vs batched (entries/sec, %zu-entry "
              "nodes) ===\n", kNodeEntries);
  for (const char* am : kAms) {
    NodeFixture node(am);
    const double min_scalar = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) { node.ScalarMinDist(q); });
    const double min_batch = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) {
          node.ext->BpMinDistanceBatch(node.scratch, q);
        });
    const double con_scalar = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) { node.ScalarConsistent(q); });
    const double con_batch = MeasureEntriesPerSec(
        node, [&](const bw::geom::Vec& q) {
          node.ext->BpConsistentRangeBatch(node.scratch, q, kRangeRadius);
        });
    const std::string key(am);
    json.Set("min_dist_scalar_eps_" + key, min_scalar);
    json.Set("min_dist_batch_eps_" + key, min_batch);
    json.Set("min_dist_batch_speedup_" + key, min_batch / min_scalar);
    json.Set("consistent_scalar_eps_" + key, con_scalar);
    json.Set("consistent_batch_eps_" + key, con_batch);
    json.Set("consistent_batch_speedup_" + key, con_batch / con_scalar);
    std::printf("%-7s min-dist %10.3gM -> %10.3gM (%.2fx)   "
                "consistent %10.3gM -> %10.3gM (%.2fx)\n",
                am, min_scalar / 1e6, min_batch / 1e6, min_batch / min_scalar,
                con_scalar / 1e6, con_batch / 1e6, con_batch / con_scalar);
  }
  json.Write(path);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out = bw::bench::ExtractJsonOutFlag(&argc, argv);
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_out.empty()) WriteJsonComparison(json_out);
  return 0;
}
