// google-benchmark microbenchmarks for the bounding-predicate kernels,
// supporting Section 5.3's claim that the new BPs' distance/consistency
// functions "are based around simple rectangle geometry and should not
// add significantly to query execution time".
//
// Measures, per BP type: construction from a leaf's points, the
// MinDistance kernel that drives k-NN ordering, and the range-query
// consistency check.

#include <benchmark/benchmark.h>

#include <memory>

#include "am/rtree.h"
#include "am/srtree.h"
#include "am/sstree.h"
#include "core/index_factory.h"
#include "core/jagged.h"
#include "core/map_tree.h"
#include "tests/test_helpers.h"

namespace {

constexpr size_t kDim = 5;
constexpr size_t kLeafPoints = 100;

std::unique_ptr<bw::gist::Extension> MakeExt(const std::string& name) {
  bw::core::IndexBuildOptions options;
  options.am = name;
  options.amap_samples = 1024;
  options.xjb_x = 10;
  auto ext = bw::core::MakeExtension(kDim, options, 20000);
  BW_CHECK_MSG(ext.ok(), ext.status().ToString());
  return std::move(ext).value();
}

void BM_BpConstruct(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ext->BpFromPoints(points));
  }
}

void BM_BpMinDistance(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  const auto queries = bw::testing::MakeUniformPoints(256, kDim, 11);
  const bw::gist::Bytes bp = ext->BpFromPoints(points);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ext->BpMinDistance(bp, queries[i++ & 255]));
  }
}

void BM_BpConsistentRange(benchmark::State& state, const std::string& am) {
  auto ext = MakeExt(am);
  const auto points = bw::testing::MakeClusteredPoints(kLeafPoints, kDim, 3, 7);
  const auto queries = bw::testing::MakeUniformPoints(256, kDim, 13);
  const bw::gist::Bytes bp = ext->BpFromPoints(points);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ext->BpConsistentRange(bp, queries[i++ & 255], 5.0));
  }
}

void RegisterAll() {
  for (const char* am : {"rtree", "sstree", "srtree", "amap", "jb", "xjb"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_BpConstruct/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpConstruct(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_BpMinDistance/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpMinDistance(s, am); });
    benchmark::RegisterBenchmark(
        (std::string("BM_BpConsistentRange/") + am).c_str(),
        [am](benchmark::State& s) { BM_BpConsistentRange(s, am); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
