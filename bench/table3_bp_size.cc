// Reproduces Table 3 of the paper: the size (in stored numbers) of each
// proposed bounding predicate as a function of data dimensionality —
//   MBR: 2D     MAP: 4D     JB: (2 + 2^D)·D     XJB: 2D + (D+1)·X
// — and cross-checks the formulas against the byte sizes the actual
// codecs emit.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "am/rtree.h"
#include "core/jagged.h"
#include "core/map_tree.h"
#include "tests/test_helpers.h"
#include "util/flags.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* x = flags.AddInt64("x", 10, "XJB bite count");
  int64_t* max_dim = flags.AddInt64("max_dim", 8, "largest dimensionality");
  int exit_code = 0;
  bw::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    if (parsed.code() == bw::StatusCode::kNotFound) return 0;
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  std::printf("=== Table 3: bounding predicate sizes (numbers stored) ===\n");
  std::printf("X = %lld for XJB\n\n", (long long)*x);

  bw::TablePrinter table({"D", "MBR (2D)", "MAP (4D)", "JB ((2+2^D)D)",
                          "XJB (2D+(D+1)X)", "codec bytes MBR/MAP/JB/XJB"});
  for (size_t d = 2; d <= static_cast<size_t>(*max_dim); ++d) {
    const size_t mbr = 2 * d;
    const size_t map = 4 * d;
    const size_t jb = (2 + (size_t{1} << d)) * d;
    // A BP cannot hold more bites than the MBR has corners.
    const size_t x_eff = std::min<size_t>(static_cast<size_t>(*x),
                                          size_t{1} << d);
    const size_t xjb = 2 * d + (d + 1) * x_eff;

    // Cross-check against what the real codecs serialize for a small
    // point cloud of this dimensionality.
    const auto points = bw::testing::MakeClusteredPoints(64, d, 4, d);
    bw::am::RtreeExtension rtree(d);
    bw::core::MapExtension amap(d, 42, 0.4, /*partition_samples=*/32);
    bw::core::JbExtension jbe(d);
    bw::core::XjbExtension xjbe(d, x_eff);
    const size_t mbr_bytes = rtree.BpFromPoints(points).size();
    const size_t map_bytes = amap.BpFromPoints(points).size();
    const size_t jb_bytes = jbe.BpFromPoints(points).size();
    const size_t xjb_bytes = xjbe.BpFromPoints(points).size();

    BW_CHECK_EQ(mbr_bytes, mbr * sizeof(float));
    BW_CHECK_EQ(map_bytes, map * sizeof(float));
    BW_CHECK_EQ(jb_bytes, jb * sizeof(float));
    BW_CHECK_EQ(xjb_bytes, xjb * sizeof(float));

    char codec[64];
    std::snprintf(codec, sizeof(codec), "%zu/%zu/%zu/%zu", mbr_bytes,
                  map_bytes, jb_bytes, xjb_bytes);
    table.AddRow({std::to_string(d), std::to_string(mbr), std::to_string(map),
                  std::to_string(jb), std::to_string(xjb), codec});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper checks: at D=5, MBR=10, MAP=20, JB=170, XJB=%lld;\n"
              "JB grows exponentially with D while XJB stays linear.\n",
              (long long)(10 + 6 * *x));
  return 0;
}
