// Reproduces the Section 3.2 / footnote 4 & 8 analysis: on the paper's
// reference disk (Seagate Barracuda: 9 MB/s, 7.1 ms seek, 4.17 ms
// rotational delay), one random 8 KB I/O costs about as much as ~15
// sequential transfers, so an access method must touch fewer than 1/15
// of the pages to beat a flat-file scan. The paper reports that all of
// its AMs touch fewer than 1 in 50 pages (aMAP ~ 1 in 52).
//
// This bench derives the break-even ratio from the IoModel, then
// measures, per access method, the fraction of total index pages each
// query touches (counting inner nodes too, as footnote 8 does) and the
// modeled time vs. a sequential scan of a flat file of 5-D vectors.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "pages/io_model.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();
  // The touched-page *fraction* is a scale claim: at toy scale every
  // index loses to a scan. Default this bench to a larger collection and
  // the paper's 8 KB pages unless the caller overrode them.
  if (config->blobs == 20000) config->blobs = 100000;
  if (config->page_bytes == 4096) config->page_bytes = 8192;
  if (config->queries == 400) config->queries = 200;

  std::printf("=== Scan vs. AM break-even (Sec 3.2, footnotes 4 & 8) ===\n\n");

  bw::pages::DiskParameters disk;
  disk.page_bytes = static_cast<uint32_t>(config->page_bytes);
  const bw::pages::IoModel model(disk);
  std::printf("disk model: seek %.1fms + rotate %.2fms + transfer %.2fms "
              "per %u B page\n",
              disk.seek_ms, disk.rotational_delay_ms, model.TransferMs(),
              disk.page_bytes);
  std::printf("random:sequential I/O cost ratio = %.1f  =>  break-even page "
              "fraction = 1/%.1f\n\n",
              model.RandomToSequentialRatio(),
              model.RandomToSequentialRatio());

  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);

  // Flat file baseline: vectors packed densely into pages.
  const size_t vector_bytes = static_cast<size_t>(config->dim) * 4 + 8;
  const size_t flat_pages =
      (data.vectors.size() * vector_bytes + config->page_bytes - 1) /
      static_cast<size_t>(config->page_bytes);
  const double scan_ms =
      model.WorkloadMs(/*random=*/1, /*sequential=*/flat_pages - 1);
  std::printf("flat file: %zu pages, sequential scan = %.1f ms per query\n\n",
              flat_pages, scan_ms);

  bw::TablePrinter table({"AM", "index pages", "pages touched/query",
                          "fraction (1 in N)", "AM ms/query", "scan ms/query",
                          "speedup"});
  for (const std::string& am :
       {"rtree", "srtree", "sstree", "amap", "jb", "xjb"}) {
    bw::core::IndexBuildOptions options;
    options.am = am;
    options.page_bytes = static_cast<size_t>(config->page_bytes);
    options.fill_fraction = config->fill;
    options.seed = static_cast<uint64_t>(config->seed);
    auto index = bw::core::BuildIndex(data.vectors, options);
    BW_CHECK_MSG(index.ok(), index.status().ToString());
    auto& tree = (*index)->tree();
    const uint64_t total_pages = tree.Shape().TotalNodes();

    uint64_t touched = 0;
    for (const auto& query : data.workload.queries) {
      bw::gist::TraversalStats stats;
      auto result = tree.KnnSearch(query.center, query.k, &stats);
      BW_CHECK_MSG(result.ok(), result.status().ToString());
      touched += stats.TotalAccesses();
    }
    const double per_query =
        double(touched) / double(data.workload.queries.size());
    const double fraction = per_query / double(total_pages);
    const double am_ms = model.WorkloadMs(
        /*random=*/static_cast<uint64_t>(per_query + 0.5), /*sequential=*/0);
    char one_in[32];
    std::snprintf(one_in, sizeof(one_in), "1 in %.0f", 1.0 / fraction);
    table.AddRow({am, bw::TablePrinter::Count((long long)total_pages),
                  bw::TablePrinter::Num(per_query, 1), one_in,
                  bw::TablePrinter::Num(am_ms, 1),
                  bw::TablePrinter::Num(scan_ms, 1),
                  bw::TablePrinter::Num(scan_ms / am_ms, 1) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper checks: ratio ~15 (fn 4); every AM touches well under\n"
              "1/15 of its pages (fn 8 reports < 1 in 50), so all AMs beat "
              "the scan.\n");
  return 0;
}
