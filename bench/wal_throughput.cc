// Storage-engine microbench: (1) WAL append throughput as a function of
// the group-commit batch size (records per fsync) — the knob that trades
// the durability window against fsync amortization — and (2) recovery
// wall-clock as a function of log length, the cost fuzzy checkpoints
// exist to bound. Both tables print via TablePrinter so runs diff
// cleanly.
//
//   ./wal_throughput [--records=8000] [--payload_bytes=1024]
//                    [--dir=/tmp] [--recovery_batches=1024]
//
// Hyphenated spellings work too (--payload-bytes == --payload_bytes),
// as with every bench binary.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "storage/file_io.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace bw {
namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Appends `records` page-image records of `payload_bytes` each and
/// returns elapsed seconds (including the final sync).
double AppendRun(const std::string& path, size_t sync_every, int64_t records,
                 const std::vector<uint8_t>& payload, uint64_t* syncs) {
  storage::WalOptions options;
  options.sync_every_records = sync_every;
  auto wal = storage::Wal::Create(path, options);
  BW_CHECK(wal.ok());
  Stopwatch timer;
  for (int64_t i = 0; i < records; ++i) {
    auto lsn = (*wal)->Append(storage::WalRecordType::kPageImage,
                              static_cast<pages::PageId>(i % 64),
                              payload.data(), payload.size());
    BW_CHECK(lsn.ok());
  }
  BW_CHECK((*wal)->Sync().ok());
  const double seconds = timer.ElapsedSeconds();
  *syncs = (*wal)->sync_count();
  return seconds;
}

void BenchAppendThroughput(const std::string& dir, int64_t records,
                           int64_t payload_bytes) {
  Rng rng(7);
  std::vector<uint8_t> payload(static_cast<size_t>(payload_bytes));
  for (auto& byte : payload) {
    byte = static_cast<uint8_t>(rng.NextBelow(256));
  }

  std::printf("WAL append throughput: %lld records x %lld B payload\n",
              static_cast<long long>(records),
              static_cast<long long>(payload_bytes));
  TablePrinter table({"sync_every", "fsyncs", "seconds", "records/s",
                      "MB/s"});
  const std::string path = JoinPath(dir, "wal_throughput.wal");
  for (const size_t sync_every : {1u, 4u, 16u, 64u, 256u}) {
    uint64_t syncs = 0;
    const double seconds =
        AppendRun(path, sync_every, records, payload, &syncs);
    const double bytes = static_cast<double>(records) *
                         static_cast<double>(payload.size());
    table.AddRow({TablePrinter::Count(static_cast<long long>(sync_every)),
                  TablePrinter::Count(static_cast<long long>(syncs)),
                  TablePrinter::Num(seconds, 3),
                  TablePrinter::Count(static_cast<long long>(
                      static_cast<double>(records) / seconds)),
                  TablePrinter::Num(bytes / seconds / 1e6, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::remove(path.c_str());
}

void BenchRecoveryTime(const std::string& dir, int64_t max_batches) {
  std::printf(
      "Recovery wall-clock vs log length (1 dirty page per batch, no "
      "checkpoints)\n");
  TablePrinter table({"wal_batches", "wal_MB", "recover_ms", "replayed",
                      "batches/s"});
  for (int64_t batches = std::max<int64_t>(1, max_batches / 64);
       batches <= max_batches; batches *= 4) {
    const std::string base = JoinPath(dir, "wal_recovery.bwpf");
    const std::string wal = JoinPath(dir, "wal_recovery.wal");
    storage::StoreOptions options;
    options.page_size = 4096;
    {
      auto store = storage::DurableStore::Create(base, wal, options);
      BW_CHECK(store.ok());
      // A small working set touched round-robin: every batch logs one
      // full-page image, so the log grows linearly with batches.
      for (int i = 0; i < 8; ++i) (*store)->pages()->Allocate();
      Rng rng(11);
      for (int64_t b = 0; b < batches; ++b) {
        auto page =
            (*store)->pages()->Write(static_cast<pages::PageId>(b % 8));
        BW_CHECK(page.ok());
        uint64_t fill = rng.NextU64();
        (*page)->Clear();
        BW_CHECK((*page)->Insert(&fill, sizeof(fill)).ok());
        BW_CHECK((*store)->CommitBatch(static_cast<uint64_t>(b) + 1).ok());
      }
    }
    std::vector<uint8_t> wal_bytes;
    BW_CHECK(storage::ReadFile(wal, &wal_bytes).ok());

    Stopwatch timer;
    storage::RecoveryManager::Summary summary;
    auto recovered =
        storage::RecoveryManager::Recover(base, wal, options, &summary);
    const double ms = timer.ElapsedMillis();
    BW_CHECK(recovered.ok());
    BW_CHECK_EQ(summary.last_commit_tag, static_cast<uint64_t>(batches));
    table.AddRow(
        {TablePrinter::Count(batches),
         TablePrinter::Num(static_cast<double>(wal_bytes.size()) / 1e6, 2),
         TablePrinter::Num(ms, 2),
         TablePrinter::Count(
             static_cast<long long>(summary.records_applied)),
         TablePrinter::Count(
             static_cast<long long>(static_cast<double>(batches) /
                                    (ms / 1e3)))});
    std::remove(base.c_str());
    std::remove(wal.c_str());
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace bw

int main(int argc, char** argv) {
  bw::Flags flags;
  int64_t* records = flags.AddInt64("records", 8000,
                                    "records per append-throughput run");
  int64_t* payload_bytes =
      flags.AddInt64("payload_bytes", 1024, "payload bytes per WAL record");
  int64_t* recovery_batches = flags.AddInt64(
      "recovery_batches", 1024, "largest committed-batch count to recover");
  std::string* dir =
      flags.AddString("dir", "/tmp", "directory for the bench files");
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  bw::BenchAppendThroughput(*dir, *records, *payload_bytes);
  bw::BenchRecoveryTime(*dir, *recovery_batches);
  return 0;
}
