// Concurrent query-service throughput on the fig07-style workload
// (Blobworld vectors, 200-NN queries): sweeps worker threads under a
// closed-loop load generator and reports aggregate QPS + tail latency,
// verifying every concurrent result set against serial execution. An
// optional open-loop run offers a fixed arrival rate and measures the
// admission-control reject fraction.
//
// The container the benches run in may have a single core, so raw CPU
// parallelism is not what this measures: the buffer pool charges a
// simulated random-read latency per miss (--io_delay_us, a scaled-down
// IoModel::RandomReadMs), and concurrency wins by overlapping those
// I/O waits — exactly how a disk-bound serving tier scales. Set
// --io_delay_us=0 on a many-core machine to measure pure CPU scaling
// instead. Flags accept hyphenated spellings as well (--io-delay-us ==
// --io_delay_us), like every bench binary.
//
// Both pool layouts are swept at every worker count — the process-wide
// sharded pool (the serving default) and the per-worker private pools
// it replaced — at a constant total page budget, so the shared pool's
// QPS is directly comparable against the baseline. `--json_out=PATH`
// records the sweep as a flat JSON object (see BENCH_read_path.json).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include <deque>

#include <filesystem>

#include "bench/bench_common.h"
#include "core/durable_index.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/fleet.h"
#include "shard/router.h"
#include "storage/store.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

struct RunOutcome {
  double seconds = 0;
  double qps = 0;
  bool identical = true;
  bw::service::ServiceSnapshot snap;
};

// Closed loop: `clients` submitter threads, each keeping one query in
// flight (submit, wait, next), until the workload is exhausted.
RunOutcome RunClosedLoop(const bw::gist::Tree& tree,
                         const std::vector<bw::geom::Vec>& queries, size_t k,
                         const bw::service::ServiceOptions& options,
                         size_t clients,
                         const std::vector<std::vector<bw::gist::Rid>>&
                             expected) {
  bw::service::QueryService service(tree, options);
  std::vector<std::vector<bw::gist::Rid>> got(queries.size());
  std::atomic<size_t> next{0};
  std::atomic<bool> all_ok{true};

  bw::Stopwatch watch;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        auto future = service.SubmitKnn(queries[i], k);
        if (!future.ok()) {  // kBlock never rejects; guard anyway.
          all_ok.store(false);
          continue;
        }
        auto response = future->get();
        if (!response.ok()) {
          all_ok.store(false);
          continue;
        }
        got[i].reserve(response->neighbors.size());
        for (const auto& n : response->neighbors) got[i].push_back(n.rid);
      }
    });
  }
  for (auto& t : pool) t.join();

  RunOutcome out;
  out.seconds = watch.ElapsedSeconds();
  out.qps = static_cast<double>(queries.size()) / out.seconds;
  out.snap = service.Snapshot();
  out.identical = all_ok.load() && got == expected;
  return out;
}

// Open loop: one submitter offers queries at `offered_qps`; queries that
// find the queue full are rejected by admission control and counted.
RunOutcome RunOpenLoop(const bw::gist::Tree& tree,
                       const std::vector<bw::geom::Vec>& queries, size_t k,
                       bw::service::ServiceOptions options,
                       double offered_qps) {
  options.overflow = bw::service::OverflowPolicy::kReject;
  bw::service::QueryService service(tree, options);
  std::vector<std::optional<bw::service::QueryService::ResponseFuture>>
      futures(queries.size());

  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(1.0 / offered_qps);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i)));
    auto future = service.SubmitKnn(queries[i], k);
    if (future.ok()) futures[i] = std::move(*future);
  }
  size_t completed = 0;
  for (auto& f : futures) {
    if (f.has_value() && f->get().ok()) ++completed;
  }
  RunOutcome out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.qps = static_cast<double>(completed) / out.seconds;
  out.snap = service.Snapshot();
  return out;
}

struct MixedOutcome {
  double seconds = 0;
  double ops_per_sec = 0;
  size_t ops = 0;
  size_t write_ops = 0;
  size_t admission_rejects = 0;
  bw::service::ServiceSnapshot snap;
};

// Mixed closed loop over a durable index: each client keeps one
// operation in flight, flipping a deterministic per-op coin between a
// k-NN query and an online insert. Writes submitted while the service
// sheds (queue full or read-only) count as admission rejects; admitted
// writes are waited to their ack, so write latency covers queue wait +
// apply + group-commit fsync.
MixedOutcome RunMixedLoop(bw::core::DurableIndex* index,
                          const std::vector<bw::geom::Vec>& vectors,
                          const std::vector<bw::geom::Vec>& queries, size_t k,
                          const bw::service::ServiceOptions& options,
                          size_t clients, double write_fraction,
                          size_t total_ops) {
  bw::service::QueryService service(index, options);
  const uint32_t write_cut =
      static_cast<uint32_t>(write_fraction * 1000.0 + 0.5);
  std::atomic<size_t> next{0};
  std::atomic<size_t> write_ops{0};
  std::atomic<size_t> rejects{0};

  bw::Stopwatch watch;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= total_ops) return;
        const bool is_write =
            (static_cast<uint32_t>(i) * 2654435761u) % 1000 < write_cut;
        if (is_write) {
          write_ops.fetch_add(1);
          auto future = service.SubmitInsert(
              vectors[i % vectors.size()],
              static_cast<bw::gist::Rid>(vectors.size() + i));
          if (!future.ok()) {
            rejects.fetch_add(1);
            continue;
          }
          (void)future->get();  // closed loop: wait for the ack.
        } else {
          auto future = service.SubmitKnn(queries[i % queries.size()], k);
          if (!future.ok()) continue;
          (void)future->get();
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  MixedOutcome out;
  out.seconds = watch.ElapsedSeconds();
  out.ops = total_ops;
  out.ops_per_sec = static_cast<double>(total_ops) / out.seconds;
  out.write_ops = write_ops.load();
  out.admission_rejects = rejects.load();
  out.snap = service.Snapshot();
  service.Shutdown();
  return out;
}

// Sorted-rid comparison for the wire runs: the in-process baseline
// answers via SubmitKnn and the wire via the NN stream — both exact and
// distance-sorted, but equal-distance neighbors may tie-break
// differently, so order-sensitive comparison would false-alarm.
bool SameRids(std::vector<bw::gist::Rid> a, std::vector<bw::gist::Rid> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

struct NetOutcome {
  double seconds = 0;
  double qps = 0;
  bool identical = true;
  double p50_us = 0;  // client-observed end-to-end latency.
  double p99_us = 0;
  double p999_us = 0;
};

// Closed loop over the wire: `clients` threads, each with its own TCP
// connection, each keeping one synchronous request in flight.
NetOutcome RunNetClosedLoop(uint16_t port,
                            const std::vector<bw::geom::Vec>& queries,
                            size_t k, size_t clients,
                            const std::vector<std::vector<bw::gist::Rid>>&
                                expected) {
  std::atomic<size_t> next{0};
  std::atomic<bool> all_ok{true};
  std::vector<double> latencies(queries.size(), 0);

  bw::Stopwatch watch;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      auto client = bw::net::Client::Connect("127.0.0.1", port);
      BW_CHECK_MSG(client.ok(), client.status().ToString());
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        const auto start = std::chrono::steady_clock::now();
        auto reply = (*client)->Knn(queries[i], k);
        if (!reply.ok() || !reply->ok()) {
          all_ok.store(false);
          continue;
        }
        latencies[i] = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        std::vector<bw::gist::Rid> rids;
        rids.reserve(reply->neighbors.size());
        for (const auto& n : reply->neighbors) rids.push_back(n.rid);
        if (!SameRids(std::move(rids), expected[i])) all_ok.store(false);
      }
    });
  }
  for (auto& t : pool) t.join();

  NetOutcome out;
  out.seconds = watch.ElapsedSeconds();
  out.qps = static_cast<double>(queries.size()) / out.seconds;
  out.identical = all_ok.load();
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    out.p50_us = latencies[latencies.size() / 2];
    out.p99_us = latencies[std::min(latencies.size() - 1,
                                    latencies.size() * 99 / 100)];
    out.p999_us = latencies[std::min(latencies.size() - 1,
                                     latencies.size() * 999 / 1000)];
  }
  return out;
}

// One connection, a sliding window of `window` pipelined requests
// (window=1 degenerates to strict request/response ping-pong — the
// pipelining comparison baseline).
NetOutcome RunNetPipelined(uint16_t port,
                           const std::vector<bw::geom::Vec>& queries,
                           size_t k, size_t window,
                           const std::vector<std::vector<bw::gist::Rid>>&
                               expected) {
  auto client = bw::net::Client::Connect("127.0.0.1", port);
  BW_CHECK_MSG(client.ok(), client.status().ToString());
  NetOutcome out;
  std::deque<std::pair<uint64_t, size_t>> inflight;  // (request id, query).
  size_t submitted = 0;
  bw::Stopwatch watch;
  while (submitted < queries.size() || !inflight.empty()) {
    while (submitted < queries.size() && inflight.size() < window) {
      auto id = (*client)->SubmitKnn(queries[submitted], k);
      BW_CHECK_MSG(id.ok(), id.status().ToString());
      inflight.emplace_back(*id, submitted);
      ++submitted;
    }
    const auto [id, qi] = inflight.front();
    inflight.pop_front();
    auto reply = (*client)->AwaitQuery(id);
    BW_CHECK_MSG(reply.ok(), reply.status().ToString());
    if (!reply->ok()) {
      out.identical = false;
      continue;
    }
    std::vector<bw::gist::Rid> rids;
    rids.reserve(reply->neighbors.size());
    for (const auto& n : reply->neighbors) rids.push_back(n.rid);
    if (!SameRids(std::move(rids), expected[qi])) out.identical = false;
  }
  out.seconds = watch.ElapsedSeconds();
  out.qps = static_cast<double>(queries.size()) / out.seconds;
  return out;
}

struct ShardOutcome {
  double seconds = 0;
  double qps = 0;
  bool identical = true;
  double visits_per_query = 0;  // shards actually opened, per query.
  double pruned_per_query = 0;  // shards skipped by the root bound.
};

// Closed loop straight against the router (no sockets): `clients`
// threads each keep one scatter-gather k-NN in flight.
ShardOutcome RunShardedLoop(bw::shard::Router* router,
                            const std::vector<bw::geom::Vec>& queries,
                            size_t k, size_t clients,
                            const std::vector<std::vector<bw::gist::Rid>>&
                                expected) {
  const bw::shard::RouterStats before = router->stats();
  std::atomic<size_t> next{0};
  std::atomic<bool> all_ok{true};

  bw::Stopwatch watch;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        bw::service::StreamOptions stream;
        stream.max_results = k;
        auto response = router->Knn(queries[i], stream);
        if (!response.ok() || response->degraded()) {
          all_ok.store(false);
          continue;
        }
        std::vector<bw::gist::Rid> rids;
        rids.reserve(response->neighbors.size());
        for (const auto& n : response->neighbors) rids.push_back(n.rid);
        if (!SameRids(std::move(rids), expected[i])) all_ok.store(false);
      }
    });
  }
  for (auto& t : pool) t.join();

  ShardOutcome out;
  out.seconds = watch.ElapsedSeconds();
  out.qps = static_cast<double>(queries.size()) / out.seconds;
  out.identical = all_ok.load();
  const bw::shard::RouterStats after = router->stats();
  const double n = static_cast<double>(queries.size());
  out.visits_per_query =
      static_cast<double>(after.shards_visited - before.shards_visited) / n;
  out.pruned_per_query =
      static_cast<double>(after.shards_pruned - before.shards_pruned) / n;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  std::string* am = flags.AddString("am", "rtree", "access method to serve");
  int64_t* io_delay_us = flags.AddInt64(
      "io_delay_us", 200,
      "simulated random-read latency per pool miss (0 = in-memory)");
  int64_t* pool_pages = flags.AddInt64(
      "pool_pages", 32, "per-worker buffer pool capacity in pages");
  int64_t* clients =
      flags.AddInt64("clients", 16, "closed-loop client threads");
  double* open_loop_qps = flags.AddDouble(
      "open_loop_qps", 0.0,
      "offered arrival rate for an extra open-loop run (0 = skip)");
  double* write_fraction = flags.AddDouble(
      "write_fraction", 0.0,
      "mixed-workload run over a durable index: fraction of operations "
      "that are online inserts (0 = skip)");
  bool* net = flags.AddBool(
      "net", false,
      "also serve over a loopback bwserver front end and compare wire "
      "QPS (multi-connection and single-connection pipelined) against "
      "the in-process baseline");
  int64_t* pipeline_window = flags.AddInt64(
      "pipeline_window", 16,
      "in-flight requests on the single-connection pipelined net run");
  int64_t* shards = flags.AddInt64(
      "shards", 0,
      "scatter-gather mode: compare a single-shard fleet against this "
      "many STR shards behind the k-NN router and exit (0 = skip)");
  std::string* json_out = flags.AddString(
      "json_out", "", "write sweep results to this JSON file ('' = skip)");
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();

  std::printf("=== Query-service throughput (fig07-style workload) ===\n");
  bw::Stopwatch watch;
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);
  std::printf("prepared %zu blobs in %.1fs\n", data.vectors.size(),
              watch.ElapsedSeconds());

  bw::core::IndexBuildOptions build;
  build.am = *am;
  build.page_bytes = static_cast<size_t>(config->page_bytes);
  build.fill_fraction = config->fill;
  build.seed = static_cast<uint64_t>(config->seed);
  watch.Restart();
  auto built = bw::core::BuildIndex(data.vectors, build);
  BW_CHECK_MSG(built.ok(), built.status().ToString());
  const bw::gist::Tree& tree = (*built)->tree();
  std::printf("built %s (height %d) in %.1fs\n", am->c_str(), tree.height(),
              watch.ElapsedSeconds());

  // Query points: the workload's focus blobs, as in fig07.
  std::vector<bw::geom::Vec> queries;
  queries.reserve(data.query_foci.size());
  for (uint32_t focus : data.query_foci) {
    queries.push_back(data.vectors[focus]);
  }
  const size_t k = static_cast<size_t>(config->k);

  // Serial reference execution (also the identity baseline).
  std::vector<std::vector<bw::gist::Rid>> expected(queries.size());
  watch.Restart();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = tree.KnnSearch(queries[i], k, nullptr);
    BW_CHECK_MSG(result.ok(), result.status().ToString());
    expected[i].reserve(result->size());
    for (const auto& n : *result) expected[i].push_back(n.rid);
  }
  std::printf("serial reference (no pool, no I/O model): %.0f QPS\n\n",
              static_cast<double>(queries.size()) / watch.ElapsedSeconds());

  if (*shards > 1) {
    // --- Scatter-gather mode: one unsharded fleet vs N STR shards, the
    // same corpus and workload, answers checked against the single-tree
    // reference. Visits/query below N demonstrate the router's
    // early-termination bound pruning whole shards.
    const std::string scratch =
        "/tmp/bw_scatter_" + std::to_string(::getpid());
    bw::bench::MetricsJson sg;
    sg.Set("bench", std::string("scatter_gather"));
    sg.Set("am", *am);
    sg.Set("blobs", static_cast<double>(data.vectors.size()));
    sg.Set("queries", static_cast<double>(queries.size()));
    sg.Set("k", static_cast<double>(k));
    sg.Set("shards", static_cast<double>(*shards));
    sg.Set("clients", static_cast<double>(*clients));
    bw::TablePrinter table({"shards", "QPS", "speedup", "visits/query",
                            "pruned/query", "identical"});
    double qps_single = 0;
    double qps_sharded = 0;
    bool all_identical = true;
    for (const size_t num_shards :
         {static_cast<size_t>(1), static_cast<size_t>(*shards)}) {
      bw::shard::FleetOptions fleet_options;
      fleet_options.num_shards = num_shards;
      fleet_options.build = build;
      fleet_options.service.num_workers =
          static_cast<size_t>(config->threads);
      fleet_options.service.worker_pool_pages =
          static_cast<size_t>(*pool_pages);
      fleet_options.service.io_delay_us =
          static_cast<uint32_t>(*io_delay_us);
      const std::string dir = scratch + "_" + std::to_string(num_shards);
      std::filesystem::create_directories(dir);
      watch.Restart();
      auto fleet =
          bw::shard::ShardFleet::Build(data.vectors, dir, fleet_options);
      BW_CHECK_MSG(fleet.ok(), fleet.status().ToString());
      std::printf("built %zu-shard fleet in %.1fs\n", num_shards,
                  watch.ElapsedSeconds());
      const ShardOutcome run =
          RunShardedLoop((*fleet)->router(), queries, k,
                         static_cast<size_t>(*clients), expected);
      if (num_shards == 1) {
        qps_single = run.qps;
      } else {
        qps_sharded = run.qps;
      }
      all_identical = all_identical && run.identical;
      table.AddRow(
          {bw::TablePrinter::Count(static_cast<long long>(num_shards)),
           bw::TablePrinter::Num(run.qps, 1),
           bw::TablePrinter::Num(
               qps_single > 0 ? run.qps / qps_single : 1.0, 2),
           bw::TablePrinter::Num(run.visits_per_query, 2),
           bw::TablePrinter::Num(run.pruned_per_query, 2),
           run.identical ? "yes" : "NO"});
      const std::string prefix =
          num_shards == 1 ? "single" : "sharded";
      sg.Set("qps_" + prefix, run.qps);
      sg.Set("visits_per_query_" + prefix, run.visits_per_query);
      sg.Set("pruned_per_query_" + prefix, run.pruned_per_query);
      sg.Set("identical_" + prefix, run.identical ? 1.0 : 0.0);
      fleet->reset();  // close shard stores before deleting their files.
      std::filesystem::remove_all(dir);
    }
    if (qps_single > 0) {
      sg.Set("sharded_speedup", qps_sharded / qps_single);
    }
    std::printf("scatter-gather (router, %lld clients, k=%zu):\n%s\n",
                static_cast<long long>(*clients), k,
                table.ToString().c_str());
    if (!json_out->empty()) {
      sg.Write(*json_out);
      std::printf("wrote %s\n", json_out->c_str());
    }
    return all_identical ? 0 : 1;
  }

  bw::service::ServiceOptions options;
  options.queue_capacity = static_cast<size_t>(config->queue_depth);
  options.worker_pool_pages = static_cast<size_t>(*pool_pages);
  options.io_delay_us = static_cast<uint32_t>(*io_delay_us);
  options.overflow = bw::service::OverflowPolicy::kBlock;

  std::vector<size_t> sweep = {1, 2, 4};
  if (std::find(sweep.begin(), sweep.end(),
                static_cast<size_t>(config->threads)) == sweep.end()) {
    sweep.push_back(static_cast<size_t>(config->threads));
    std::sort(sweep.begin(), sweep.end());
  }

  using bw::TablePrinter;
  bw::bench::MetricsJson json;
  json.Set("bench", std::string("service_throughput"));
  json.Set("am", *am);
  json.Set("io_delay_us", static_cast<double>(*io_delay_us));
  json.Set("pool_pages_per_worker", static_cast<double>(*pool_pages));
  double qps_shared_4 = 0, qps_private_4 = 0;
  for (const bool shared : {true, false}) {
    options.shared_pool = shared;
    const char* mode = shared ? "shared" : "private";
    TablePrinter table({"workers", "QPS", "speedup", "p50 us", "p95 us",
                        "p99 us", "mean us", "pool hit-rate", "evictions",
                        "contention", "identical"});
    double qps_at_1 = 0;
    for (size_t workers : sweep) {
      options.num_workers = workers;
      const RunOutcome run =
          RunClosedLoop(tree, queries, k, options,
                        std::max<size_t>(*clients, workers), expected);
      if (workers == 1) qps_at_1 = run.qps;
      if (workers == 4) (shared ? qps_shared_4 : qps_private_4) = run.qps;
      const auto& s = run.snap;
      const double hit_rate =
          s.pool_hits + s.pool_misses > 0
              ? static_cast<double>(s.pool_hits) /
                    static_cast<double>(s.pool_hits + s.pool_misses)
              : 0.0;
      table.AddRow(
          {TablePrinter::Count(static_cast<long long>(workers)),
           TablePrinter::Num(run.qps, 1),
           TablePrinter::Num(qps_at_1 > 0 ? run.qps / qps_at_1 : 1.0, 2),
           TablePrinter::Count(static_cast<long long>(s.p50_latency_us)),
           TablePrinter::Count(static_cast<long long>(s.p95_latency_us)),
           TablePrinter::Count(static_cast<long long>(s.p99_latency_us)),
           TablePrinter::Num(s.mean_latency_us, 0),
           TablePrinter::Percent(hit_rate),
           TablePrinter::Count(static_cast<long long>(s.pool_evictions)),
           TablePrinter::Count(static_cast<long long>(s.pool_contention)),
           run.identical ? "yes" : "NO"});
      const std::string prefix =
          std::string("qps_") + mode + "_" + std::to_string(workers) + "w";
      json.Set(prefix, run.qps);
      json.Set(std::string("hit_rate_") + mode + "_" +
                   std::to_string(workers) + "w",
               hit_rate);
      if (shared) {
        json.Set("pool_shards", static_cast<double>(s.pool_shards));
        json.Set(std::string("contention_shared_") + std::to_string(workers) +
                     "w",
                 static_cast<double>(s.pool_contention));
      }
    }
    std::printf("closed loop (%s pool): %zu clients, queue depth %lld, "
                "k=%lld, io_delay=%lldus, pool budget=%lld pages/worker\n%s\n",
                mode, static_cast<size_t>(*clients),
                static_cast<long long>(config->queue_depth),
                static_cast<long long>(config->k),
                static_cast<long long>(*io_delay_us),
                static_cast<long long>(*pool_pages),
                table.ToString().c_str());
  }

  if (qps_shared_4 > 0 && qps_private_4 > 0) {
    json.Set("qps_shared_over_private_4w", qps_shared_4 / qps_private_4);
    std::printf("pool comparison: shared / private at 4 workers = %.2fx "
                "aggregate QPS (target >= 1x)\n\n",
                qps_shared_4 / qps_private_4);
  }

  // Frontier-prefetch A/B under the same I/O model: each run gets a
  // fresh service (cold pools), so every first touch is a charged miss.
  // The baseline pays io_delay_us per miss as the frontier pops nodes
  // one read at a time; the prefetch run batches the nearest children
  // of each expanded node so their simulated reads overlap (one delay
  // per batch) — the asynchronous read engine's effect on tree descent.
  if (*io_delay_us > 0) {
    bw::service::ServiceOptions frontier = options;
    frontier.shared_pool = true;
    frontier.num_workers = 4;
    const size_t frontier_clients = std::max<size_t>(*clients, 4);
    frontier.frontier_prefetch = false;
    const RunOutcome sync_run =
        RunClosedLoop(tree, queries, k, frontier, frontier_clients, expected);
    frontier.frontier_prefetch = true;
    const RunOutcome prefetch_run =
        RunClosedLoop(tree, queries, k, frontier, frontier_clients, expected);
    const double speedup =
        sync_run.qps > 0 ? prefetch_run.qps / sync_run.qps : 0.0;
    std::printf("frontier prefetch (cold shared pool, 4 workers, "
                "io_delay=%lldus):\n"
                "  one read per pop: %.1f QPS; batched child reads: %.1f QPS "
                "-> %.2fx (target > 1x), identical %s\n\n",
                static_cast<long long>(*io_delay_us), sync_run.qps,
                prefetch_run.qps, speedup,
                (sync_run.identical && prefetch_run.identical) ? "yes" : "NO");
    json.Set("qps_frontier_sync_4w", sync_run.qps);
    json.Set("qps_frontier_prefetch_4w", prefetch_run.qps);
    json.Set("frontier_prefetch_speedup", speedup);
    json.Set("frontier_identical",
             (sync_run.identical && prefetch_run.identical) ? 1.0 : 0.0);
  }
  if (*net) {
    // The same service configuration the 4-worker shared-pool baseline
    // ran, fronted by the real epoll server on a loopback socket. The
    // dispatch tier is sized to the client count so the gateway, not
    // the wire, is never the bottleneck being measured.
    options.shared_pool = true;
    options.num_workers = 4;
    bw::service::QueryService service(tree, options);
    bw::net::ServerOptions nopts;
    nopts.dispatch_threads = std::max<size_t>(4, static_cast<size_t>(*clients));
    nopts.quota.max_inflight =
        std::max<size_t>(64, static_cast<size_t>(*pipeline_window) * 2);
    bw::net::Server server(&service, nopts);
    BW_CHECK_OK(server.Start());

    const NetOutcome wire = RunNetClosedLoop(
        server.port(), queries, k, std::max<size_t>(*clients, 4), expected);
    const NetOutcome piped = RunNetPipelined(
        server.port(), queries, k, static_cast<size_t>(*pipeline_window),
        expected);
    const NetOutcome serial_conn =
        RunNetPipelined(server.port(), queries, k, 1, expected);
    server.Shutdown();

    const double net_ratio =
        qps_shared_4 > 0 ? wire.qps / qps_shared_4 : 0.0;
    const double pipeline_speedup =
        serial_conn.qps > 0 ? piped.qps / serial_conn.qps : 0.0;
    std::printf(
        "net front end (loopback, 4 workers, %lld dispatch):\n"
        "  closed loop over %zu connections: %.1f QPS (%.2fx in-process), "
        "p50 %.0f us, p99 %.0f us, identical %s\n"
        "  single connection, window %lld: %.1f QPS; window 1: %.1f QPS "
        "-> pipelining %.2fx (target >= 1.5x)\n\n",
        (long long)nopts.dispatch_threads,
        std::max<size_t>(*clients, 4), wire.qps, net_ratio, wire.p50_us,
        wire.p99_us,
        (wire.identical && piped.identical && serial_conn.identical)
            ? "yes"
            : "NO",
        (long long)*pipeline_window, piped.qps, serial_conn.qps,
        pipeline_speedup);
    json.Set("qps_net_4w", wire.qps);
    json.Set("net_over_inprocess_4w", net_ratio);
    json.Set("net_p50_us", wire.p50_us);
    json.Set("net_p99_us", wire.p99_us);
    json.Set("net_p999_us", wire.p999_us);
    json.Set("qps_net_pipelined_1conn", piped.qps);
    json.Set("qps_net_sequential_1conn", serial_conn.qps);
    json.Set("net_pipelining_speedup", pipeline_speedup);
    json.Set("net_identical",
             (wire.identical && piped.identical && serial_conn.identical)
                 ? 1.0
                 : 0.0);
  }

  if (*write_fraction > 0) {
    // The write path needs a WAL: rebuild the index durably in scratch
    // files, then serve the mixed workload against it.
    const std::string scratch = "/tmp/bw_svc_thr_" + std::to_string(::getpid());
    const std::string dbase = scratch + ".bwpf";
    const std::string dwal = scratch + ".bwwal";
    bw::storage::StoreOptions store_options;
    store_options.wal_segment_bytes = 4ull << 20;
    store_options.checkpoint_every_commits = 64;
    watch.Restart();
    auto durable = bw::core::BuildDurableIndex(data.vectors, build, dbase,
                                               dwal, store_options);
    BW_CHECK_MSG(durable.ok(), durable.status().ToString());
    std::printf("built durable %s for the mixed run in %.1fs\n", am->c_str(),
                watch.ElapsedSeconds());

    bw::service::ServiceOptions mixed = options;
    mixed.num_workers = static_cast<size_t>(config->threads);
    mixed.shared_pool = true;
    mixed.write.enabled = true;
    const size_t total_ops = std::max<size_t>(queries.size() * 4, 2000);
    const MixedOutcome run = RunMixedLoop(
        durable->get(), data.vectors, queries, k, mixed,
        std::max<size_t>(*clients, mixed.num_workers), *write_fraction,
        total_ops);
    const auto& s = run.snap;
    std::printf(
        "mixed loop: %zu ops (%.0f%% writes) with %zu workers -> %.1f "
        "ops/s\n  writes: acked %llu, rejected %llu (admission %zu), "
        "failed %llu, p50 %llu us, p99 %llu us, commit batches %llu\n"
        "  reads: p50 %llu us, p99 %llu us\n",
        run.ops, 100.0 * *write_fraction, mixed.num_workers, run.ops_per_sec,
        (unsigned long long)s.writes_acked,
        (unsigned long long)s.writes_rejected, run.admission_rejects,
        (unsigned long long)s.writes_failed,
        (unsigned long long)s.p50_write_latency_us,
        (unsigned long long)s.p99_write_latency_us,
        (unsigned long long)s.commit_batches,
        (unsigned long long)s.p50_latency_us,
        (unsigned long long)s.p99_latency_us);
    json.Set("write_fraction", *write_fraction);
    json.Set("mixed_ops_per_sec", run.ops_per_sec);
    json.Set("write_p50_us", static_cast<double>(s.p50_write_latency_us));
    json.Set("write_p99_us", static_cast<double>(s.p99_write_latency_us));
    json.Set("write_p999_us", static_cast<double>(s.p999_write_latency_us));
    json.Set("read_p999_us", static_cast<double>(s.p999_latency_us));
    json.Set("mean_write_latency_us", s.mean_write_latency_us);
    json.Set("writes_acked", static_cast<double>(s.writes_acked));
    json.Set("writes_rejected", static_cast<double>(s.writes_rejected));
    json.Set("writes_failed", static_cast<double>(s.writes_failed));
    json.Set("commit_batches", static_cast<double>(s.commit_batches));
    json.Set("wal_segments_created",
             static_cast<double>(s.wal_segments_created));

    durable->reset();
    std::remove(dbase.c_str());
    std::remove(dwal.c_str());
    for (uint64_t seq = 1; seq <= s.wal_segments_created + 1; ++seq) {
      char suffix[16];
      std::snprintf(suffix, sizeof(suffix), ".%06llu",
                    static_cast<unsigned long long>(seq));
      std::remove((dwal + suffix).c_str());
    }
  }

  if (!json_out->empty()) {
    json.Write(*json_out);
    std::printf("wrote %s\n", json_out->c_str());
  }

  if (*open_loop_qps > 0) {
    options.num_workers = static_cast<size_t>(config->threads);
    const RunOutcome run =
        RunOpenLoop(tree, queries, k, options, *open_loop_qps);
    const auto& s = run.snap;
    std::printf("open loop: offered %.0f QPS with %zu workers -> achieved "
                "%.1f QPS, rejected %llu/%llu (%.1f%%), p99 %llu us\n",
                *open_loop_qps, options.num_workers, run.qps,
                (unsigned long long)s.rejected,
                (unsigned long long)(s.rejected + s.submitted),
                100.0 * static_cast<double>(s.rejected) /
                    static_cast<double>(s.rejected + s.submitted),
                (unsigned long long)s.p99_latency_us);
  }
  return 0;
}
