// Reproduces Figures 14, 15 and 16 of the paper: amdb performance losses
// for the bulk-loaded R-tree vs. the three custom access methods (aMAP,
// JB, XJB with X = 10) on the Blobworld 200-NN workload.
//
//   Fig 14: losses as a fraction of workload leaf-level I/Os
//   Fig 15: losses in absolute leaf-level I/Os
//   Fig 16: total workload I/Os (inner + leaf) and tree heights
//
// Expected shape (paper): JB leaf excess coverage ~0 and ~2 leaf I/Os per
// query; XJB leaf I/Os < 1/2 of R-tree's; aMAP ~ R-tree at the leaf level
// but worse in total I/Os; JB tree much taller than R-tree.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int64_t* xjb_x = flags.AddInt64("xjb_x", 10, "bites kept per XJB BP");
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();

  std::printf("=== Figures 14/15/16: custom access methods ===\n");
  std::printf("blobs=%lld queries=%lld k=%lld dim=%lld page=%lldB X=%lld\n\n",
              (long long)config->blobs, (long long)config->queries,
              (long long)config->k, (long long)config->dim,
              (long long)config->page_bytes, (long long)*xjb_x);

  bw::Stopwatch prep_watch;
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);
  std::printf("prepared %zu blobs in %.1fs\n\n", data.vectors.size(),
              prep_watch.ElapsedSeconds());

  const std::vector<std::string> ams = {"rtree", "amap", "jb", "xjb"};
  std::vector<bw::amdb::AnalysisReport> reports;
  for (const std::string& am : ams) {
    bw::Stopwatch watch;
    bw::core::IndexBuildOptions unused;  // xjb_x plumbed via AnalyzeAm copy.
    (void)unused;
    bw::bench::ExperimentConfig local = *config;
    auto report = [&]() {
      bw::core::IndexBuildOptions options;
      options.am = am;
      options.page_bytes = static_cast<size_t>(local.page_bytes);
      options.fill_fraction = local.fill;
      options.seed = static_cast<uint64_t>(local.seed);
      options.xjb_x = static_cast<size_t>(*xjb_x);
      auto index = bw::core::BuildIndex(data.vectors, options);
      BW_CHECK_MSG(index.ok(), index.status().ToString());
      bw::amdb::AnalysisOptions analysis;
      analysis.target_utilization = local.fill;
      return bw::amdb::AnalyzeWorkload((*index)->tree(), data.workload,
                                       analysis);
    }();
    BW_CHECK_MSG(report.ok(), report.status().ToString());
    std::printf("analyzed %-6s in %.1fs (height %d)\n", am.c_str(),
                watch.ElapsedSeconds(), report->shape.height);
    reports.push_back(*report);
  }
  std::printf("\n");

  using bw::TablePrinter;
  {
    TablePrinter table({"AM", "excess coverage", "utilization loss",
                        "clustering loss"});
    for (size_t i = 0; i < ams.size(); ++i) {
      table.AddRow({ams[i],
                    TablePrinter::Percent(reports[i].LeafExcessFraction()),
                    TablePrinter::Percent(reports[i].LeafUtilizationFraction()),
                    TablePrinter::Percent(reports[i].LeafClusteringFraction())});
    }
    std::printf("Figure 14: losses relative to workload leaf-level I/Os\n%s\n",
                table.ToString().c_str());
  }
  {
    TablePrinter table({"AM", "leaf I/Os", "excess coverage",
                        "utilization loss", "clustering loss",
                        "leaf I/Os per query"});
    for (size_t i = 0; i < ams.size(); ++i) {
      table.AddRow(
          {ams[i], TablePrinter::Count((long long)reports[i].leaf_accesses),
           TablePrinter::Count((long long)reports[i].leaf_excess_coverage_loss),
           TablePrinter::Count((long long)reports[i].leaf_utilization_loss),
           TablePrinter::Count((long long)reports[i].leaf_clustering_loss),
           TablePrinter::Num(reports[i].MeanLeafAccessesPerQuery(), 2)});
    }
    std::printf("Figure 15: losses in number of leaf-level I/Os\n%s\n",
                table.ToString().c_str());
  }
  {
    TablePrinter table({"AM", "total I/Os", "inner I/Os", "leaf I/Os",
                        "height", "nodes"});
    for (size_t i = 0; i < ams.size(); ++i) {
      table.AddRow(
          {ams[i], TablePrinter::Count((long long)reports[i].TotalAccesses()),
           TablePrinter::Count((long long)reports[i].internal_accesses),
           TablePrinter::Count((long long)reports[i].leaf_accesses),
           TablePrinter::Count(reports[i].shape.height),
           TablePrinter::Count((long long)reports[i].shape.TotalNodes())});
    }
    std::printf("Figure 16: total workload I/Os (inner + leaf)\n%s\n",
                table.ToString().c_str());
  }

  // Section 6 checks the paper calls out in prose.
  const auto& rtree = reports[0];
  const auto& jb = reports[2];
  const auto& xjb = reports[3];
  std::printf("paper checks:\n");
  std::printf("  JB leaf I/Os per query (paper: ~2):        %.2f\n",
              jb.MeanLeafAccessesPerQuery());
  std::printf("  JB leaf excess fraction (paper: ~0):       %.2f%%\n",
              jb.LeafExcessFraction() * 100.0);
  std::printf("  XJB/R leaf I/O ratio (paper: < 0.5):       %.2f\n",
              xjb.MeanLeafAccessesPerQuery() /
                  rtree.MeanLeafAccessesPerQuery());
  std::printf("  height R/XJB/JB (paper: 3/4/6):            %d/%d/%d\n",
              rtree.shape.height, xjb.shape.height, jb.shape.height);
  return 0;
}
