// Reproduces Figures 7 and 8 of the paper: amdb losses of the three
// traditional multidimensional access methods — R-tree, SR-tree and
// SS-tree — all STR bulk-loaded, over the Blobworld 200-NN workload.
//
//   Fig 7: losses as a fraction of workload leaf-level I/Os
//   Fig 8: losses in absolute leaf-level I/Os
//
// Expected shape (paper): the bulk of every tree's loss is excess
// coverage; SS-tree is the worst of the three by far (its leaf-level
// excess alone exceeds the R/SR trees' totals); R and SR are comparable,
// with SR's spheres saving a little leaf-level excess coverage.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();

  std::printf("=== Figures 7/8: standard access methods (R, SR, SS) ===\n");
  bw::Stopwatch watch;
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);
  std::printf("prepared %zu blobs in %.1fs\n\n", data.vectors.size(),
              watch.ElapsedSeconds());

  const std::vector<std::string> ams = {"rtree", "srtree", "sstree"};
  std::vector<bw::amdb::AnalysisReport> reports;
  for (const std::string& am : ams) {
    watch.Restart();
    auto report = bw::bench::AnalyzeAm(am, data, *config);
    BW_CHECK_MSG(report.ok(), report.status().ToString());
    std::printf("analyzed %-7s in %.1fs (height %d)\n", am.c_str(),
                watch.ElapsedSeconds(), report->shape.height);
    reports.push_back(*report);
  }
  std::printf("\n");

  using bw::TablePrinter;
  {
    TablePrinter table({"AM", "excess coverage", "utilization loss",
                        "clustering loss"});
    for (size_t i = 0; i < ams.size(); ++i) {
      table.AddRow({ams[i],
                    TablePrinter::Percent(reports[i].LeafExcessFraction()),
                    TablePrinter::Percent(reports[i].LeafUtilizationFraction()),
                    TablePrinter::Percent(reports[i].LeafClusteringFraction())});
    }
    std::printf("Figure 7: losses relative to workload leaf-level I/Os\n%s\n",
                table.ToString().c_str());
  }
  {
    TablePrinter table({"AM", "leaf I/Os", "excess coverage",
                        "utilization loss", "clustering loss", "total I/Os"});
    for (size_t i = 0; i < ams.size(); ++i) {
      table.AddRow(
          {ams[i], TablePrinter::Count((long long)reports[i].leaf_accesses),
           TablePrinter::Count((long long)reports[i].leaf_excess_coverage_loss),
           TablePrinter::Count((long long)reports[i].leaf_utilization_loss),
           TablePrinter::Count((long long)reports[i].leaf_clustering_loss),
           TablePrinter::Count((long long)reports[i].TotalAccesses())});
    }
    std::printf("Figure 8: losses in number of leaf-level I/Os\n%s\n",
                table.ToString().c_str());
  }

  const auto& rtree = reports[0];
  const auto& srtree = reports[1];
  const auto& sstree = reports[2];
  std::printf("paper checks:\n");
  std::printf("  SS leaf excess vs R total leaf I/Os (paper: SS > R): "
              "%llu vs %llu\n",
              (unsigned long long)sstree.leaf_excess_coverage_loss,
              (unsigned long long)rtree.leaf_accesses);
  std::printf("  R vs SR leaf I/Os (paper: comparable, SR slightly lower "
              "excess at leaf level): %llu vs %llu\n",
              (unsigned long long)rtree.leaf_accesses,
              (unsigned long long)srtree.leaf_accesses);
  std::printf("  excess dominates losses for all three: R %.0f%% SR %.0f%% "
              "SS %.0f%% of losses\n",
              100.0 * double(rtree.leaf_excess_coverage_loss) /
                  double(rtree.leaf_excess_coverage_loss +
                         rtree.leaf_utilization_loss +
                         rtree.leaf_clustering_loss + 1),
              100.0 * double(srtree.leaf_excess_coverage_loss) /
                  double(srtree.leaf_excess_coverage_loss +
                         srtree.leaf_utilization_loss +
                         srtree.leaf_clustering_loss + 1),
              100.0 * double(sstree.leaf_excess_coverage_loss) /
                  double(sstree.leaf_excess_coverage_loss +
                         sstree.leaf_utilization_loss +
                         sstree.leaf_clustering_loss + 1));
  return 0;
}
