// Reproduces Figure 6 of the paper: average recall of k-NN queries over
// SVD-reduced feature vectors against the top-40 images of a full
// Blobworld query (218-D quadratic-form ranking), as a function of the
// number of images the low-dimensional query returns.
//
// Expected shape (paper): recall strictly improves with dimensionality;
// the curves rise sharply up to ~5-D and adding a 6th dimension brings
// negligible improvement; more images returned => higher recall.
//
// The low-dimensional query is evaluated by exact k-NN over the reduced
// vectors (a linear scan; the tree-based AMs return the identical set —
// see tests/am_correctness_test.cc — so this measures dimensionality,
// not index quality, exactly as in the paper).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "blobworld/ranker.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

// Returns up to `max_images` distinct image ids, nearest blob first.
std::vector<bw::blobworld::ImageId> LowDimImageCandidates(
    const std::vector<bw::geom::Vec>& reduced,
    const bw::blobworld::BlobDataset& dataset, uint32_t query_blob,
    size_t max_images) {
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(reduced.size());
  for (uint32_t b = 0; b < reduced.size(); ++b) {
    scored.emplace_back(reduced[query_blob].DistanceSquaredTo(reduced[b]), b);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<bw::blobworld::ImageId> images;
  std::vector<bool> seen(dataset.num_images() + 1, false);
  for (const auto& [dist, blob] : scored) {
    (void)dist;
    const bw::blobworld::ImageId image = dataset.blob(blob).image;
    if (image < seen.size() && !seen[image]) {
      seen[image] = true;
      images.push_back(image);
      if (images.size() >= max_images) break;
    }
  }
  return images;
}

}  // namespace

int main(int argc, char** argv) {
  bw::Flags flags;
  auto* config = bw::bench::ExperimentConfig::Register(&flags);
  int64_t* truth_k = flags.AddInt64("truth_k", 40, "ground-truth image count");
  int exit_code = 0;
  if (!bw::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }
  config->Resolve();
  // Figure 6 sweeps dimensionality itself and is feature-level, so the
  // shared --dim flag is ignored; a smaller query count keeps the
  // exhaustive ground-truth ranking fast.
  const size_t queries =
      std::min<size_t>(static_cast<size_t>(config->queries), 150);

  std::printf("=== Figure 6: recall vs. data dimensionality ===\n");
  bw::Stopwatch watch;
  const bw::bench::ExperimentData data = bw::bench::PrepareExperiment(*config);
  std::printf("blobs=%zu images=%zu queries=%zu (prepared in %.1fs)\n",
              data.dataset.num_blobs(), data.dataset.num_images(), queries,
              watch.ElapsedSeconds());

  // Ground truth: full 218-D quadratic-form ranking.
  auto ranker = bw::blobworld::FullRanker::Create(&data.dataset);
  BW_CHECK_MSG(ranker.ok(), ranker.status().ToString());

  const std::vector<size_t> dims = {1, 2, 3, 4, 5, 6, 10, 20};
  const std::vector<size_t> returned = {50, 100, 200, 400, 800};

  // Refit the reducer once at the maximum dimensionality; lower-D
  // vectors are prefixes of the projection (SVD nesting).
  bw::linalg::SvdReducer reducer;
  BW_CHECK_OK(reducer.Fit(data.dataset.Histograms(), 20));
  const std::vector<bw::geom::Vec> full20 =
      reducer.ProjectAll(data.dataset.Histograms(), 20);

  std::printf("\nSVD explained variance: ");
  for (size_t d : dims) {
    std::printf("%zuD=%.2f ", d, reducer.ExplainedVarianceRatio(d));
  }
  std::printf("\n\n");

  std::vector<std::string> header = {"images returned"};
  for (size_t d : dims) header.push_back(std::to_string(d) + "D");
  bw::TablePrinter table(std::move(header));

  // Ground-truth top images per query (computed once).
  std::vector<std::vector<bw::blobworld::RankedImage>> truth;
  truth.reserve(queries);
  for (size_t q = 0; q < queries; ++q) {
    truth.push_back(ranker->RankAllImages(
        data.query_foci[q], static_cast<size_t>(*truth_k)));
  }

  for (size_t n : returned) {
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t d : dims) {
      std::vector<bw::geom::Vec> reduced;
      reduced.reserve(full20.size());
      for (const auto& v : full20) reduced.push_back(v.Truncated(d));
      double recall_sum = 0.0;
      for (size_t q = 0; q < queries; ++q) {
        const auto candidates = LowDimImageCandidates(
            reduced, data.dataset, data.query_foci[q], n);
        recall_sum += bw::blobworld::RecallAgainst(truth[q], candidates);
      }
      row.push_back(
          bw::TablePrinter::Num(recall_sum / static_cast<double>(queries), 3));
    }
    table.AddRow(std::move(row));
  }
  std::printf("Average recall@%lld vs. full Blobworld query\n%s\n",
              (long long)*truth_k, table.ToString().c_str());

  std::printf(
      "paper checks: recall should increase monotonically with D and with\n"
      "images returned; the 5D and 6D columns should be nearly equal.\n");
  return 0;
}
