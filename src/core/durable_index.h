// Durable index lifecycle: a GiST built on a storage::DurableStore so
// its pages survive crashes. Tree metadata (root, height, size, access
// method) lives in a reserved meta page (page 0) inside the same store,
// so one commit covers pages and metadata atomically — recovery never
// sees a new root pointing at pages from an uncommitted batch.
//
//   auto index = bw::core::BuildDurableIndex(vectors, opts, base, wal);
//   ...crash...
//   auto recovered = bw::core::OpenDurableIndex(base, wal, opts);
//   recovered->tree().KnnSearch(...);   // or serve via QueryService.

#ifndef BLOBWORLD_CORE_DURABLE_INDEX_H_
#define BLOBWORLD_CORE_DURABLE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "core/index_factory.h"
#include "storage/store.h"

namespace bw::core {

/// Page id reserved for tree metadata in every durable index store.
/// Index nodes start at page 1; the GiST never sees page 0 (it reaches
/// pages only by descending from the root).
inline constexpr pages::PageId kMetaPageId = 0;

/// Serializes the tree's metadata into the store's meta page. Called by
/// DurableIndex::Commit so the metadata rides in the same WAL batch as
/// the page changes it describes.
Status WriteTreeMeta(storage::DurableStore* store, const gist::Tree& tree);

/// Re-reads the meta page and reinstalls root/height/size into `tree` —
/// the catch-up path's post-apply refresh after shipped page images
/// (which include the meta page) replaced the store's contents under an
/// installed tree. The extension must already match what the meta page
/// records (same access method and dimensionality); InvalidArgument
/// otherwise, Corruption if the meta page or root is malformed.
Status RefreshTreeFromMeta(storage::DurableStore* store, gist::Tree* tree);

/// An index whose pages live in a DurableStore: the durable analogue of
/// BuiltIndex. Mutations (tree().Insert/Delete) are single-threaded and
/// volatile until Commit(); Checkpoint() bounds recovery replay time.
class DurableIndex {
 public:
  DurableIndex(std::unique_ptr<storage::DurableStore> store,
               std::unique_ptr<gist::Tree> tree,
               storage::RecoveryManager::Summary recovery =
                   storage::RecoveryManager::Summary())
      : store_(std::move(store)),
        tree_(std::move(tree)),
        recovery_(recovery) {}

  gist::Tree& tree() { return *tree_; }
  const gist::Tree& tree() const { return *tree_; }
  storage::DurableStore& store() { return *store_; }
  const storage::DurableStore& store() const { return *store_; }

  /// Makes everything since the previous commit durable as one atomic
  /// WAL batch (metadata included). `tag` is an application sequence
  /// number; after a crash, recovery reports the tag of the newest
  /// durable batch (see RecoveryManager::Summary::last_commit_tag).
  Status Commit(uint64_t tag) {
    BW_RETURN_IF_ERROR(WriteTreeMeta(store_.get(), *tree_));
    return store_->CommitBatch(tag);
  }
  Status Commit() { return Commit(store_->committed_batches() + 1); }

  /// Folds committed state into the base file and empties the WAL.
  Status Checkpoint() { return store_->Checkpoint(); }

  /// How this index was recovered (all-zero for a freshly built one).
  const storage::RecoveryManager::Summary& recovery() const {
    return recovery_;
  }

 private:
  std::unique_ptr<storage::DurableStore> store_;
  std::unique_ptr<gist::Tree> tree_;
  storage::RecoveryManager::Summary recovery_;
};

/// Creates an empty durable index: fresh store at (base_path, wal_path),
/// meta page reserved, extension from `options.am`, initial commit +
/// checkpoint taken. `dim` is needed up front because no vectors are.
Result<std::unique_ptr<DurableIndex>> CreateDurableIndex(
    const std::string& base_path, const std::string& wal_path, size_t dim,
    const IndexBuildOptions& options,
    storage::StoreOptions store_options = storage::StoreOptions());

/// Builds a durable index over `vectors` (RIDs are vector indices),
/// bulk- or insertion-loaded per `options`, committed and checkpointed.
Result<std::unique_ptr<DurableIndex>> BuildDurableIndex(
    const std::vector<geom::Vec>& vectors, const IndexBuildOptions& options,
    const std::string& base_path, const std::string& wal_path,
    storage::StoreOptions store_options = storage::StoreOptions());

/// Recovers a durable index from whatever a crash left behind: replays
/// committed WAL batches, verifies checksums, re-instantiates the access
/// method recorded in the meta page (`options` supplies tuning values,
/// as with LoadIndex), and validates the tree. The returned index
/// carries the recovery summary.
Result<std::unique_ptr<DurableIndex>> OpenDurableIndex(
    const std::string& base_path, const std::string& wal_path,
    IndexBuildOptions options = IndexBuildOptions(),
    storage::StoreOptions store_options = storage::StoreOptions());

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_DURABLE_INDEX_H_
