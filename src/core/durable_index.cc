#include "core/durable_index.h"

#include <cstring>
#include <numeric>

#include "am/bulk_load.h"

namespace bw::core {

namespace {

constexpr uint32_t kMetaMagic = 0x42574D54;  // "BWMT"
constexpr uint32_t kMetaVersion = 1;

struct TreeMeta {
  pages::PageId root = pages::kInvalidPageId;
  int height = 0;
  uint64_t size = 0;
  uint32_t dim = 0;
  uint32_t aux_param = 0;
  std::string extension_name;
};

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

Status ReadTreeMeta(const pages::Page& page, TreeMeta* meta) {
  if (page.slot_count() != 1) {
    return Status::Corruption("meta page must hold exactly one record");
  }
  const uint8_t* p = page.RecordData(0);
  const size_t len = page.RecordLength(0);
  // Fixed prefix: magic, version, root, height, size, dim, aux, name_len
  // (seven u32 fields and one u64).
  constexpr size_t kPrefix = 4 * 7 + 8;
  if (len < kPrefix) return Status::Corruption("meta record truncated");
  uint32_t magic, version, root, height, dim, aux, name_len;
  uint64_t size;
  std::memcpy(&magic, p + 0, 4);
  std::memcpy(&version, p + 4, 4);
  std::memcpy(&root, p + 8, 4);
  std::memcpy(&height, p + 12, 4);
  std::memcpy(&size, p + 16, 8);
  std::memcpy(&dim, p + 24, 4);
  std::memcpy(&aux, p + 28, 4);
  std::memcpy(&name_len, p + 32, 4);
  if (magic != kMetaMagic) return Status::Corruption("bad meta magic");
  if (version != kMetaVersion) {
    return Status::NotSupported("unsupported meta version");
  }
  if (len != kPrefix + name_len) {
    return Status::Corruption("meta record length mismatch");
  }
  meta->root = root;
  meta->height = static_cast<int>(height);
  meta->size = size;
  meta->dim = dim;
  meta->aux_param = aux;
  meta->extension_name.assign(reinterpret_cast<const char*>(p + kPrefix),
                              name_len);
  return Status::OK();
}

}  // namespace

Status WriteTreeMeta(storage::DurableStore* store, const gist::Tree& tree) {
  const std::string name = tree.extension().Name();
  std::vector<uint8_t> blob;
  AppendU32(&blob, kMetaMagic);
  AppendU32(&blob, kMetaVersion);
  AppendU32(&blob, tree.root());
  AppendU32(&blob, static_cast<uint32_t>(tree.height()));
  AppendU64(&blob, tree.size());
  AppendU32(&blob, static_cast<uint32_t>(tree.extension().dim()));
  AppendU32(&blob, tree.extension().AuxParam());
  AppendU32(&blob, static_cast<uint32_t>(name.size()));
  const size_t at = blob.size();
  blob.resize(at + name.size());
  std::memcpy(blob.data() + at, name.data(), name.size());

  BW_ASSIGN_OR_RETURN(pages::Page * page, store->pages()->Write(kMetaPageId));
  page->Clear();
  return page->Insert(blob.data(), blob.size()).status();
}

Status RefreshTreeFromMeta(storage::DurableStore* store, gist::Tree* tree) {
  if (store->pages()->page_count() == 0) {
    return Status::Corruption("store has no meta page");
  }
  TreeMeta meta;
  BW_RETURN_IF_ERROR(ReadTreeMeta(
      *static_cast<const pages::PageStore*>(store->pages())->PeekNoIo(
          kMetaPageId),
      &meta));
  if (meta.root != pages::kInvalidPageId &&
      meta.root >= store->pages()->page_count()) {
    return Status::Corruption("meta root page out of range");
  }
  if (meta.extension_name != tree->extension().Name() ||
      meta.dim != static_cast<uint32_t>(tree->extension().dim())) {
    return Status::InvalidArgument(
        "meta page describes a different access method (" +
        meta.extension_name + "/dim " + std::to_string(meta.dim) +
        ") than the installed tree (" + tree->extension().Name() + "/dim " +
        std::to_string(tree->extension().dim()) + ")");
  }
  tree->InstallBulkLoaded(meta.root, meta.height, meta.size);
  return Status::OK();
}

Result<std::unique_ptr<DurableIndex>> CreateDurableIndex(
    const std::string& base_path, const std::string& wal_path, size_t dim,
    const IndexBuildOptions& options, storage::StoreOptions store_options) {
  store_options.page_size = options.page_bytes;
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DurableStore> store,
      storage::DurableStore::Create(base_path, wal_path, store_options));
  const pages::PageId meta = store->pages()->Allocate();
  if (meta != kMetaPageId) {
    return Status::Internal("meta page must be the store's first page");
  }
  BW_ASSIGN_OR_RETURN(std::unique_ptr<gist::Extension> extension,
                      MakeExtension(dim, options, /*num_points_hint=*/0));
  auto tree =
      std::make_unique<gist::Tree>(store->pages(), std::move(extension));
  auto index =
      std::make_unique<DurableIndex>(std::move(store), std::move(tree));
  BW_RETURN_IF_ERROR(index->Commit(/*tag=*/0));
  BW_RETURN_IF_ERROR(index->Checkpoint());
  return index;
}

Result<std::unique_ptr<DurableIndex>> BuildDurableIndex(
    const std::vector<geom::Vec>& vectors, const IndexBuildOptions& options,
    const std::string& base_path, const std::string& wal_path,
    storage::StoreOptions store_options) {
  if (vectors.empty()) {
    return Status::InvalidArgument("cannot index an empty vector set");
  }
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableIndex> index,
      CreateDurableIndex(base_path, wal_path, vectors[0].dim(), options,
                         store_options));
  std::vector<gist::Rid> rids(vectors.size());
  std::iota(rids.begin(), rids.end(), 0);
  if (options.bulk_load) {
    am::BulkLoadOptions load;
    load.fill_fraction = options.fill_fraction;
    BW_RETURN_IF_ERROR(am::StrBulkLoad(&index->tree(), vectors, rids, load));
  } else {
    BW_RETURN_IF_ERROR(am::InsertionLoad(&index->tree(), vectors, rids));
  }
  BW_RETURN_IF_ERROR(index->Commit(/*tag=*/vectors.size()));
  BW_RETURN_IF_ERROR(index->Checkpoint());
  index->store().pages()->ResetStats();
  return index;
}

Result<std::unique_ptr<DurableIndex>> OpenDurableIndex(
    const std::string& base_path, const std::string& wal_path,
    IndexBuildOptions options, storage::StoreOptions store_options) {
  storage::RecoveryManager::Summary summary;
  BW_ASSIGN_OR_RETURN(std::unique_ptr<storage::DurableStore> store,
                      storage::RecoveryManager::Recover(
                          base_path, wal_path, store_options, &summary));
  if (store->pages()->page_count() == 0) {
    return Status::Corruption("recovered store has no meta page");
  }
  TreeMeta meta;
  BW_RETURN_IF_ERROR(ReadTreeMeta(
      *static_cast<const pages::PageStore*>(store->pages())->PeekNoIo(
          kMetaPageId),
      &meta));
  if (meta.root != pages::kInvalidPageId &&
      meta.root >= store->pages()->page_count()) {
    return Status::Corruption("meta root page out of range");
  }
  options.am = meta.extension_name;
  options.page_bytes = store->pages()->page_size();
  if (options.am == "xjb" && meta.aux_param != 0) {
    options.xjb_x = meta.aux_param;
  }
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<gist::Extension> extension,
      MakeExtension(meta.dim, options, static_cast<size_t>(meta.size)));
  if (extension->AuxParam() != meta.aux_param) {
    return Status::InvalidArgument(
        "extension parameter mismatch (index built with " +
        std::to_string(meta.aux_param) + ", reopened with " +
        std::to_string(extension->AuxParam()) + ")");
  }
  auto tree =
      std::make_unique<gist::Tree>(store->pages(), std::move(extension));
  tree->InstallBulkLoaded(meta.root, meta.height, meta.size);
  BW_RETURN_IF_ERROR(tree->Validate());
  store->pages()->ResetStats();
  return std::make_unique<DurableIndex>(std::move(store), std::move(tree),
                                        summary);
}

}  // namespace bw::core
