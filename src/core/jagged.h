// Shared base for the jagged bounding predicates (JB and XJB): an MBR
// with rectangular bites removed from its corners, where spherical
// nearest-neighbor queries are most likely to impinge (Section 5 of the
// paper).

#ifndef BLOBWORLD_CORE_JAGGED_H_
#define BLOBWORLD_CORE_JAGGED_H_

#include <string>
#include <vector>

#include "core/bites.h"
#include "gist/extension.h"

namespace bw::core {

/// A decoded jagged predicate.
struct JaggedBp {
  geom::Rect mbr;
  std::vector<Bite> bites;  // empty bites may be omitted by the codec.
};

/// Common behavior of JB and XJB; subclasses provide the codec and the
/// bite-selection policy.
class JaggedExtension : public gist::Extension {
 public:
  JaggedExtension(size_t dim, uint64_t seed, double min_fill,
                  BiteAlgorithm algorithm)
      : Extension(dim, seed), min_fill_(min_fill), algorithm_(algorithm) {}

  BiteAlgorithm bite_algorithm() const { return algorithm_; }

  gist::Bytes BpFromPoints(const std::vector<geom::Vec>& points) override;
  gist::Bytes BpFromChildBps(const std::vector<gist::Bytes>& children) override;
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  double BpPenalty(gist::ByteSpan bp, const geom::Vec& point) const override;
  geom::Vec BpCenter(gist::ByteSpan bp) const override;
  gist::Bytes BpIncludePoint(gist::ByteSpan bp,
                             const geom::Vec& point) const override;
  gist::SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) override;
  gist::SplitAssignment PickSplitBps(
      const std::vector<gist::Bytes>& bps) override;
  double BpVolume(gist::ByteSpan bp) const override;
  std::string BpToString(gist::ByteSpan bp) const override;

  /// Decodes a BP (codec provided by the subclass).
  virtual JaggedBp Decode(gist::ByteSpan bp) const = 0;

 protected:
  /// Encodes mbr + the subclass's selection of `bites` (which arrive as
  /// the full 2^D nibble result, indexed by corner).
  virtual gist::Bytes Encode(const geom::Rect& mbr,
                             const std::vector<Bite>& all_bites) const = 0;

  /// Builds the BP over content rectangles (points are degenerate).
  gist::Bytes BuildOver(const std::vector<geom::Rect>& contents);

  /// Shared batched min-distance for both jagged codecs. Fast path: a
  /// vectorized MBR clamp pass (am::RectClampMinDistSquared), then a
  /// per-entry test of whether the clamp point falls strictly inside any
  /// bite — when it does not, the region search's exact answer IS the
  /// box distance (RegionDistanceImpl returns it before any recursion),
  /// so sqrt(box_dist_sq) is bit-identical to the scalar result. Only
  /// covered entries (query clamps into a carved corner) run the
  /// recursive region search, resumed from the already-computed clamp
  /// and covering bite (JaggedMinDistanceStaged — bit-identical to the
  /// scalar path by construction). `interleaved` selects the codec:
  /// false = JB's
  /// positional corners (bite c's inner at float (2+c)*D), true = XJB's
  /// (u32 corner, D floats) records after the MBR.
  void BatchMinDistanceImpl(gist::BatchScratch& scratch,
                            const geom::Vec& query, size_t bite_count,
                            bool interleaved) const;

  /// Shared batched consistent() with the range radius pushed down into
  /// the scan: an entry whose box distance already exceeds `radius` is
  /// inconsistent without running the covering test or the region
  /// search, because the region distance can never be smaller than the
  /// box distance (every value the recursion returns — exact distances,
  /// child box distances on budget exhaustion, pruned bounds — is >= the
  /// root box distance). Entries within `radius` of the box run the
  /// identical min-distance path, so scratch.consistent is bit-identical
  /// to the scalar BpConsistentRange decision; scratch.distances is NOT
  /// meaningful afterwards (see gist/extension.h).
  void BatchConsistentRangeImpl(gist::BatchScratch& scratch,
                                const geom::Vec& query, size_t bite_count,
                                bool interleaved, double radius) const;

  /// Dim-specialized body behind both dispatchers above (DIM = 0 is the
  /// runtime-dim fallback; `range_mode` selects the radius push-down).
  template <size_t DIM>
  void BatchScanImpl(gist::BatchScratch& scratch, const geom::Vec& query,
                     size_t bite_count, bool interleaved, bool range_mode,
                     double radius) const;

  /// Covered-entry fallback of BatchScanImpl: stages one BP's
  /// live bites in a single pass and resumes the region search from the
  /// batch pass's clamp point, squared box distance, and covering bite
  /// (`covering_bite` is the codec index the batch test identified).
  /// Oversized BPs (over 256 bites or 16 dimensions) take the scalar
  /// virtual call instead, as the scalar overrides themselves do.
  template <size_t DIM>
  double BatchCoveredMinDistance(gist::ByteSpan bp, const geom::Vec& query,
                                 size_t bite_count, bool interleaved,
                                 size_t covering_bite, const float* clamped,
                                 double box_dist_sq) const;

  double min_fill_;
  BiteAlgorithm algorithm_;
};

/// JB ("Jagged Bites", Section 5.2): keeps a bite for every one of the
/// 2^D corners, stored positionally — BP size (2 + 2^D)·D floats,
/// matching Table 3.
class JbExtension : public JaggedExtension {
 public:
  explicit JbExtension(size_t dim, uint64_t seed = 42, double min_fill = 0.40,
                       BiteAlgorithm algorithm = BiteAlgorithm::kMaxVolume)
      : JaggedExtension(dim, seed, min_fill, algorithm) {
    BW_CHECK_LE(dim, 12u);  // 2^D bites must stay addressable in a page.
  }

  std::string Name() const override { return "jb"; }
  JaggedBp Decode(gist::ByteSpan bp) const override;
  /// Allocation-free hot-path override (parses the BP on the stack).
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  void BpMinDistanceBatch(gist::BatchScratch& scratch,
                          const geom::Vec& query) const override;
  void BpConsistentRangeBatch(gist::BatchScratch& scratch,
                              const geom::Vec& query,
                              double radius) const override;

  /// BP size in floats: (2 + 2^D) * D.
  size_t BpFloatCount() const { return (2 + (size_t{1} << dim())) * dim(); }

 protected:
  gist::Bytes Encode(const geom::Rect& mbr,
                     const std::vector<Bite>& all_bites) const override;
};

/// XJB ("Top X Jagged Bites", Section 5.3): keeps only the X
/// largest-volume bites, each tagged with its corner — BP size
/// 2D + (D+1)·X numbers, matching Table 3.
class XjbExtension : public JaggedExtension {
 public:
  XjbExtension(size_t dim, size_t x, uint64_t seed = 42,
               double min_fill = 0.40,
               BiteAlgorithm algorithm = BiteAlgorithm::kMaxVolume)
      : JaggedExtension(dim, seed, min_fill, algorithm), x_(x) {
    BW_CHECK_LE(x, size_t{1} << dim);
  }

  /// Workload-aware bite selection (the paper's future-work item: "the
  /// ideal bites ... would minimize the number of queries incorrectly
  /// impinging into the BP from outside of it"). When reference query
  /// points are supplied, Encode ranks each corner's bite by how many
  /// reference queries clamp into it (those are exactly the queries the
  /// bite can shield), with volume as the tiebreak; without references
  /// it falls back to the paper's largest-volume heuristic.
  void SetReferenceQueries(std::vector<geom::Vec> queries) {
    reference_queries_ = std::move(queries);
  }
  bool has_reference_queries() const { return !reference_queries_.empty(); }

  std::string Name() const override { return "xjb"; }
  uint32_t AuxParam() const override { return static_cast<uint32_t>(x_); }
  size_t x() const { return x_; }
  JaggedBp Decode(gist::ByteSpan bp) const override;
  /// Allocation-free hot-path override (parses the BP on the stack).
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  void BpMinDistanceBatch(gist::BatchScratch& scratch,
                          const geom::Vec& query) const override;
  void BpConsistentRangeBatch(gist::BatchScratch& scratch,
                              const geom::Vec& query,
                              double radius) const override;

  /// BP size in stored numbers: 2D + (D+1)*X.
  size_t BpNumberCount() const { return 2 * dim() + (dim() + 1) * x_; }

 protected:
  gist::Bytes Encode(const geom::Rect& mbr,
                     const std::vector<Bite>& all_bites) const override;

 private:
  size_t x_;
  std::vector<geom::Vec> reference_queries_;
};

/// Implements the paper's future-work item "a means for the best X to be
/// automatically selected": returns the largest X whose estimated tree
/// height equals the height at X = 1 ("as large as possible without
/// causing the index to add another level"), given the leaf count the
/// bulk loader will produce.
size_t AutoSelectXjbX(size_t num_points, size_t dim, size_t page_bytes,
                      double fill_fraction);

/// Estimated bulk-loaded tree height for an XJB tree with parameter `x`.
int EstimateXjbHeight(size_t num_points, size_t dim, size_t x,
                      size_t page_bytes, double fill_fraction);

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_JAGGED_H_
