// Internal: SIMD variant of the region search's covering scan, defined
// in bites_simd.cc (the only core/ translation unit compiled with
// -mavx2 -mfma; present only when the build defines BW_HAVE_AVX2).
// Callers must gate on util::ActiveKernelIsa() == kAvx2.
//
// The scan is pure float comparison — no rounding — so it returns
// exactly the index the scalar FirstCoveringBite loop would: the first
// live bite b (codec order) with
//   plane_lo[d*stride + b] < clamped[d] < plane_hi[d*stride + b]
// for every dimension d, or live_count if none. `stride` must be a
// multiple of 8 so whole-vector loads stay inside each dimension's
// plane row (lanes at or past live_count are masked off, never read as
// results).

#ifndef BLOBWORLD_CORE_BITES_ISA_H_
#define BLOBWORLD_CORE_BITES_ISA_H_

#include <cstddef>
#include <cstdint>

namespace bw::core::detail {

#if defined(BW_HAVE_AVX2)
size_t FirstCoveringBitePlanesAvx2(const float* plane_lo,
                                   const float* plane_hi, size_t stride,
                                   size_t live_count, size_t dim,
                                   const float* clamped);

// One-dimension covering mask: bit b set iff
//   row_lo[b] < clamped < row_hi[b]
// for b < round8(n) (bits at or past n may be garbage from
// uninitialized lanes; callers mask them off). Pure comparison, so the
// mask bits below n are exactly the scalar loop's.
uint64_t CoveringMaskDimAvx2(const float* row_lo, const float* row_hi,
                             size_t n, float clamped);

// Bulk bite-plane staging: the AVX2 variant of
// JaggedLiveBites::StageAll's plane construction. Transposes the
// bite-major inner records into dimension-major rows eight bites at a
// time (8x8 in-register transpose) and blends each row against the
// +-infinity unconstrained side selected by the corner bit — pure
// moves and blends, so every plane value is bit-identical to the
// scalar staging loop's.
//
// Requirements: dim <= 8; `stride` a multiple of 8 and >= n rounded up
// to 8; `corners` readable and `inners` readable for a full final
// block — i.e. corners up to round8(n) entries and inners up to
// round8(n)*dim + 8 floats (the staging buffers in the batch scan are
// fixed-capacity stack arrays, which satisfies this; lanes at or past
// n receive garbage bounds but the covering scans never read them).
void StageBitePlanesAvx2(size_t dim, const uint32_t* corners,
                         const float* inners, size_t n, float* plane_lo,
                         float* plane_hi, size_t stride);
#endif

}  // namespace bw::core::detail

#endif  // BLOBWORLD_CORE_BITES_ISA_H_
