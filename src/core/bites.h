// Corner-bite machinery shared by the JB and XJB bounding predicates
// (Sections 5.2-5.3 of the paper).
//
// A "bite" removes an axis-aligned box from one corner of an MBR. It is
// identified by the corner (bitmask: bit d set = corner at hi in
// dimension d) and the "inner point" — the one corner of the bite box
// that touches no MBR hyper-edge. The nibbling heuristic of the paper's
// Figure 13 grows each bite over the sorted per-dimension projections of
// the node's contents until a content element would fall inside.
//
// Contents are modeled as rectangles so one implementation serves both
// levels of the tree: leaf points are degenerate rectangles, and at
// internal levels the bites are grown against the child BPs' MBRs
// (conservative: a parent bite never cuts into any child region).

#ifndef BLOBWORLD_CORE_BITES_H_
#define BLOBWORLD_CORE_BITES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/rect.h"
#include "geom/vec.h"

namespace bw::core {

/// One corner bite.
struct Bite {
  uint32_t corner = 0;  // bit d set => corner is at hi[d].
  geom::Vec inner;      // the bite box spans (inner, corner point).

  /// Volume of the bite box given the owning MBR.
  double Volume(const geom::Rect& mbr) const;

  /// True when the bite removes nothing (inner == corner point).
  bool IsEmpty(const geom::Rect& mbr) const;
};

/// True if `point` lies strictly inside the open bite box (such points
/// are NOT covered by the jagged BP).
bool PointInsideBite(const geom::Rect& mbr, const Bite& bite,
                     const geom::Vec& point);

/// True if `rect` overlaps the open bite box with positive extent in
/// every dimension.
bool RectIntersectsBite(const geom::Rect& mbr, const Bite& bite,
                        const geom::Rect& rect);

/// Runs the Figure-13 nibbling heuristic for every corner of `mbr`
/// against `contents` (none of which may protrude from `mbr`). Returns
/// 2^D bites, indexed by corner bitmask; unproductive corners come back
/// as empty bites. D is capped at 16 dimensions (65536 corners) by the
/// caller's page budget long before that.
std::vector<Bite> NibbleAllCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents);

/// The "better JB BP" construction the paper's footnote 7 alludes to:
/// per corner, the dimensions are extended one at a time to their exact
/// maximal empty extent (the extension rule keeps the quadrant free of
/// contents by construction), under several dimension orders; the
/// largest-volume result is kept. Strictly dominates the Figure-13
/// nibble (every nibbled bite is a subset of some maximal bite).
std::vector<Bite> MaxVolumeCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents);

/// Which bite construction a jagged extension uses.
enum class BiteAlgorithm {
  kFigure13Nibble,  // the paper's published heuristic (lower bound).
  kMaxVolume,       // the improved construction (default).
};

/// Exact distance from `query` to the region (mbr minus one bite): the
/// minimum over the bite's D interior faces of the distance to the
/// correspondingly shrunken MBR. Requires the clamp of `query` onto
/// `mbr` to lie inside the bite (otherwise the plain MBR distance is
/// already exact and this function must not be used).
double DistanceAroundBite(const geom::Rect& mbr, const Bite& bite,
                          const geom::Vec& query);

/// Admissible lower bound on the distance from `query` to
/// (mbr minus all bites), computed by exact recursive decomposition of
/// the region (a covering bite splits the box into D clipped sub-boxes)
/// under a node budget; budget exhaustion falls back to the plain box
/// distance, so the bound is always admissible and usually exact.
double JaggedMinDistance(const geom::Rect& mbr,
                         const std::vector<Bite>& bites,
                         const geom::Vec& query);

/// Allocation-free variant for the k-NN hot path: the MBR as raw float
/// arrays and the bites as parallel (corner mask, inner coordinates)
/// arrays, `dim` floats per bite. Empty bites (zero extent in any
/// dimension) are skipped internally.
double JaggedMinDistanceRaw(size_t dim, const float* lo, const float* hi,
                            const uint32_t* corners, const float* inners,
                            size_t bite_count, const geom::Vec& query);

/// Live (non-empty) bites staged for the region search, built in one
/// pass by the caller. Holds the corner masks, pointers to the inner
/// coordinates (caller-owned storage that must outlive the search), and
/// the branchless covering-test bounds: a clamp point c is strictly
/// inside live bite b iff for every dimension d
///   test_lo[b*dim + d] < c[d] < test_hi[b*dim + d]
/// (the side a bite does not constrain is +-infinity, which a finite
/// clamp coordinate always passes, so the two-sided compare equals the
/// one-sided strict test the scalar path performs).
struct JaggedLiveBites {
  static constexpr size_t kMaxBites = 256;
  static constexpr size_t kMaxDim = 16;

  uint32_t corner[kMaxBites];
  const float* inner[kMaxBites];
  float test_lo[kMaxBites * kMaxDim];
  float test_hi[kMaxBites * kMaxDim];
  size_t count = 0;

  /// Appends a bite, filtering empty ones (inner on the MBR corner in
  /// any dimension) exactly like the region search's live filter.
  /// Returns the live index, or kMaxBites if the bite was empty or
  /// capacity is exhausted. `inner_coords` must stay valid for the
  /// lifetime of the search. DIM, when non-zero, fixes the
  /// dimensionality at compile time so the loop unrolls (same
  /// comparisons and stores — the result is identical).
  template <size_t DIM = 0>
  size_t Add(size_t dim, const float* lo, const float* hi,
             uint32_t corner_mask, const float* inner_coords) {
    if (count >= kMaxBites) return kMaxBites;
    if (DIM != 0) dim = DIM;
    const size_t live = count;
    unsigned empty = 0;
    for (size_t d = 0; d < dim; ++d) {
      const unsigned hi_side = (corner_mask >> d) & 1u;
      const float corner_coord = hi_side ? hi[d] : lo[d];
      const float in = inner_coords[d];
      empty |= unsigned(in == corner_coord);
      constexpr float kInf = std::numeric_limits<float>::infinity();
      test_lo[live * dim + d] = hi_side ? in : -kInf;
      test_hi[live * dim + d] = hi_side ? kInf : in;
    }
    corner[live] = corner_mask;
    inner[live] = inner_coords;
    count += 1 - empty;
    return empty ? kMaxBites : live;
  }
};

/// Entry point for the batched node scan, which has already clamped the
/// query onto the MBR (with the identical per-dimension float select),
/// accumulated the squared box distance in the identical dimension
/// order, staged the live bites, and identified the first live bite
/// strictly containing the clamp point. Skips the root box evaluation
/// and the root covering scan and resumes the region search from there;
/// bit-identical to JaggedMinDistanceRaw over the same bites by
/// construction (at the root, the prune and budget checks cannot fire,
/// and the covering scan would select exactly `covering_live_index`).
double JaggedMinDistanceStaged(size_t dim, const float* lo, const float* hi,
                               const JaggedLiveBites& live,
                               size_t covering_live_index,
                               const geom::Vec& query, const float* clamped,
                               double box_dist_sq);

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_BITES_H_
