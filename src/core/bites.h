// Corner-bite machinery shared by the JB and XJB bounding predicates
// (Sections 5.2-5.3 of the paper).
//
// A "bite" removes an axis-aligned box from one corner of an MBR. It is
// identified by the corner (bitmask: bit d set = corner at hi in
// dimension d) and the "inner point" — the one corner of the bite box
// that touches no MBR hyper-edge. The nibbling heuristic of the paper's
// Figure 13 grows each bite over the sorted per-dimension projections of
// the node's contents until a content element would fall inside.
//
// Contents are modeled as rectangles so one implementation serves both
// levels of the tree: leaf points are degenerate rectangles, and at
// internal levels the bites are grown against the child BPs' MBRs
// (conservative: a parent bite never cuts into any child region).

#ifndef BLOBWORLD_CORE_BITES_H_
#define BLOBWORLD_CORE_BITES_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "geom/vec.h"

namespace bw::core {

/// One corner bite.
struct Bite {
  uint32_t corner = 0;  // bit d set => corner is at hi[d].
  geom::Vec inner;      // the bite box spans (inner, corner point).

  /// Volume of the bite box given the owning MBR.
  double Volume(const geom::Rect& mbr) const;

  /// True when the bite removes nothing (inner == corner point).
  bool IsEmpty(const geom::Rect& mbr) const;
};

/// True if `point` lies strictly inside the open bite box (such points
/// are NOT covered by the jagged BP).
bool PointInsideBite(const geom::Rect& mbr, const Bite& bite,
                     const geom::Vec& point);

/// True if `rect` overlaps the open bite box with positive extent in
/// every dimension.
bool RectIntersectsBite(const geom::Rect& mbr, const Bite& bite,
                        const geom::Rect& rect);

/// Runs the Figure-13 nibbling heuristic for every corner of `mbr`
/// against `contents` (none of which may protrude from `mbr`). Returns
/// 2^D bites, indexed by corner bitmask; unproductive corners come back
/// as empty bites. D is capped at 16 dimensions (65536 corners) by the
/// caller's page budget long before that.
std::vector<Bite> NibbleAllCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents);

/// The "better JB BP" construction the paper's footnote 7 alludes to:
/// per corner, the dimensions are extended one at a time to their exact
/// maximal empty extent (the extension rule keeps the quadrant free of
/// contents by construction), under several dimension orders; the
/// largest-volume result is kept. Strictly dominates the Figure-13
/// nibble (every nibbled bite is a subset of some maximal bite).
std::vector<Bite> MaxVolumeCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents);

/// Which bite construction a jagged extension uses.
enum class BiteAlgorithm {
  kFigure13Nibble,  // the paper's published heuristic (lower bound).
  kMaxVolume,       // the improved construction (default).
};

/// Exact distance from `query` to the region (mbr minus one bite): the
/// minimum over the bite's D interior faces of the distance to the
/// correspondingly shrunken MBR. Requires the clamp of `query` onto
/// `mbr` to lie inside the bite (otherwise the plain MBR distance is
/// already exact and this function must not be used).
double DistanceAroundBite(const geom::Rect& mbr, const Bite& bite,
                          const geom::Vec& query);

/// Admissible lower bound on the distance from `query` to
/// (mbr minus all bites), computed by exact recursive decomposition of
/// the region (a covering bite splits the box into D clipped sub-boxes)
/// under a node budget; budget exhaustion falls back to the plain box
/// distance, so the bound is always admissible and usually exact.
double JaggedMinDistance(const geom::Rect& mbr,
                         const std::vector<Bite>& bites,
                         const geom::Vec& query);

/// Allocation-free variant for the k-NN hot path: the MBR as raw float
/// arrays and the bites as parallel (corner mask, inner coordinates)
/// arrays, `dim` floats per bite. Empty bites (zero extent in any
/// dimension) are skipped internally.
double JaggedMinDistanceRaw(size_t dim, const float* lo, const float* hi,
                            const uint32_t* corners, const float* inners,
                            size_t bite_count, const geom::Vec& query);

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_BITES_H_
