// Corner-bite machinery shared by the JB and XJB bounding predicates
// (Sections 5.2-5.3 of the paper).
//
// A "bite" removes an axis-aligned box from one corner of an MBR. It is
// identified by the corner (bitmask: bit d set = corner at hi in
// dimension d) and the "inner point" — the one corner of the bite box
// that touches no MBR hyper-edge. The nibbling heuristic of the paper's
// Figure 13 grows each bite over the sorted per-dimension projections of
// the node's contents until a content element would fall inside.
//
// Contents are modeled as rectangles so one implementation serves both
// levels of the tree: leaf points are degenerate rectangles, and at
// internal levels the bites are grown against the child BPs' MBRs
// (conservative: a parent bite never cuts into any child region).

#ifndef BLOBWORLD_CORE_BITES_H_
#define BLOBWORLD_CORE_BITES_H_

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/bites_isa.h"
#include "geom/rect.h"
#include "geom/vec.h"
#include "util/cpu.h"

namespace bw::core {

/// One corner bite.
struct Bite {
  uint32_t corner = 0;  // bit d set => corner is at hi[d].
  geom::Vec inner;      // the bite box spans (inner, corner point).

  /// Volume of the bite box given the owning MBR.
  double Volume(const geom::Rect& mbr) const;

  /// True when the bite removes nothing (inner == corner point).
  bool IsEmpty(const geom::Rect& mbr) const;
};

/// True if `point` lies strictly inside the open bite box (such points
/// are NOT covered by the jagged BP).
bool PointInsideBite(const geom::Rect& mbr, const Bite& bite,
                     const geom::Vec& point);

/// True if `rect` overlaps the open bite box with positive extent in
/// every dimension.
bool RectIntersectsBite(const geom::Rect& mbr, const Bite& bite,
                        const geom::Rect& rect);

/// Runs the Figure-13 nibbling heuristic for every corner of `mbr`
/// against `contents` (none of which may protrude from `mbr`). Returns
/// 2^D bites, indexed by corner bitmask; unproductive corners come back
/// as empty bites. D is capped at 16 dimensions (65536 corners) by the
/// caller's page budget long before that.
std::vector<Bite> NibbleAllCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents);

/// The "better JB BP" construction the paper's footnote 7 alludes to:
/// per corner, the dimensions are extended one at a time to their exact
/// maximal empty extent (the extension rule keeps the quadrant free of
/// contents by construction), under several dimension orders; the
/// largest-volume result is kept. Strictly dominates the Figure-13
/// nibble (every nibbled bite is a subset of some maximal bite).
std::vector<Bite> MaxVolumeCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents);

/// Which bite construction a jagged extension uses.
enum class BiteAlgorithm {
  kFigure13Nibble,  // the paper's published heuristic (lower bound).
  kMaxVolume,       // the improved construction (default).
};

/// Exact distance from `query` to the region (mbr minus one bite): the
/// minimum over the bite's D interior faces of the distance to the
/// correspondingly shrunken MBR. Requires the clamp of `query` onto
/// `mbr` to lie inside the bite (otherwise the plain MBR distance is
/// already exact and this function must not be used).
double DistanceAroundBite(const geom::Rect& mbr, const Bite& bite,
                          const geom::Vec& query);

/// Admissible lower bound on the distance from `query` to
/// (mbr minus all bites), computed by exact recursive decomposition of
/// the region (a covering bite splits the box into D clipped sub-boxes)
/// under a node budget; budget exhaustion falls back to the plain box
/// distance, so the bound is always admissible and usually exact.
double JaggedMinDistance(const geom::Rect& mbr,
                         const std::vector<Bite>& bites,
                         const geom::Vec& query);

/// Allocation-free variant for the k-NN hot path: the MBR as raw float
/// arrays and the bites as parallel (corner mask, inner coordinates)
/// arrays, `dim` floats per bite. Empty bites (zero extent in any
/// dimension) are skipped internally.
double JaggedMinDistanceRaw(size_t dim, const float* lo, const float* hi,
                            const uint32_t* corners, const float* inners,
                            size_t bite_count, const geom::Vec& query);

/// Bites staged for the region search, built in one pass by the caller
/// (Add filters empty bites; the bulk StageAll paths keep them, which
/// is equivalent — see StageAll). Holds the corner masks, pointers to
/// the inner coordinates (caller-owned storage that must outlive the
/// search), and
/// the branchless covering-test bounds laid out as dim-major SoA
/// planes: a clamp point c is strictly inside live bite b iff for every
/// dimension d
///   plane_lo[d*kMaxBites + b] < c[d] < plane_hi[d*kMaxBites + b]
/// (the side a bite does not constrain is +-infinity, which a finite
/// clamp coordinate always passes, so the two-sided compare equals the
/// one-sided strict test the scalar path performs). Dim-major keeps one
/// dimension of every bite contiguous, so the covering scan can test 8
/// bites per AVX2 compare (bites_simd.cc); compares round nothing, so
/// the SIMD scan selects the exact bite the scalar scan would.
namespace detail {

/// Corner masks of a positional codec (JB): bite b's mask is b. Sized
/// to JaggedLiveBites' bite capacity so it can serve directly as the
/// corner array for the bulk staging paths.
inline constexpr size_t kStagedBiteCap = 256;
constexpr std::array<uint32_t, kStagedBiteCap> MakePositionalCorners() {
  std::array<uint32_t, kStagedBiteCap> a{};
  for (size_t i = 0; i < kStagedBiteCap; ++i) a[i] = static_cast<uint32_t>(i);
  return a;
}
inline constexpr std::array<uint32_t, kStagedBiteCap> kPositionalCorners =
    MakePositionalCorners();

}  // namespace detail

struct JaggedLiveBites {
  static constexpr size_t kMaxBites = detail::kStagedBiteCap;
  static constexpr size_t kMaxDim = 16;

  uint32_t corner[kMaxBites];
  const float* inner[kMaxBites];
  float plane_lo[kMaxDim * kMaxBites];
  float plane_hi[kMaxDim * kMaxBites];
  size_t count = 0;

  /// Appends a bite, filtering empty ones (inner on the MBR corner in
  /// any dimension) exactly like the region search's live filter.
  /// Returns the live index, or kMaxBites if the bite was empty or
  /// capacity is exhausted. `inner_coords` must stay valid for the
  /// lifetime of the search. DIM, when non-zero, fixes the
  /// dimensionality at compile time so the loop unrolls (same
  /// comparisons and stores — the result is identical).
  template <size_t DIM = 0>
  size_t Add(size_t dim, const float* lo, const float* hi,
             uint32_t corner_mask, const float* inner_coords) {
    if (count >= kMaxBites) return kMaxBites;
    if (DIM != 0) dim = DIM;
    const size_t live = count;
    unsigned empty = 0;
    for (size_t d = 0; d < dim; ++d) {
      const unsigned hi_side = (corner_mask >> d) & 1u;
      const float corner_coord = hi_side ? hi[d] : lo[d];
      const float in = inner_coords[d];
      empty |= unsigned(in == corner_coord);
      constexpr float kInf = std::numeric_limits<float>::infinity();
      plane_lo[d * kMaxBites + live] = hi_side ? in : -kInf;
      plane_hi[d * kMaxBites + live] = hi_side ? kInf : in;
    }
    corner[live] = corner_mask;
    inner[live] = inner_coords;
    count += 1 - empty;
    return empty ? kMaxBites : live;
  }

  /// Bulk staging without the empty-bite filter: every bite keeps its
  /// codec position, and the planes are written one dimension row at a
  /// time (branchless sequential stores — or, under AVX2 dispatch, the
  /// 8-bites-per-register transpose-and-blend kernel of bites_simd.cc,
  /// which writes bit-identical plane values since staging is pure
  /// moves and blends). Correctness of skipping the filter: an empty
  /// bite's natural test bound degenerates to a strict compare against
  /// its own MBR face (clamp > hi[d] or clamp < lo[d]), which no clamp
  /// point of the MBR or of any sub-box can pass — so empty bites
  /// never win a covering scan and the first covering index is the
  /// index of the exact bite the compacted staging would select. The
  /// search reads corner/inner only for covering bites, making the
  /// region search bit-identical to one over Add-compacted bites.
  ///
  /// `inners` (dim floats per bite, codec order) must outlive the
  /// search; `n` must be <= kMaxBites. Because the SIMD kernel works in
  /// whole 8-bite blocks, `corners` must be readable up to n rounded up
  /// to 8 entries and `inners` up to round8(n)*dim + 8 floats (the
  /// batch scan's fixed-capacity staging buffers satisfy this; pad
  /// accordingly when staging from exact-size allocations).
  template <size_t DIM = 0>
  void StageAll(size_t dim, const uint32_t* corners, const float* inners,
                size_t n) {
    if (DIM != 0) dim = DIM;
#if defined(BW_HAVE_AVX2)
    if (dim <= 8 && util::ActiveKernelIsa() == util::KernelIsa::kAvx2) {
      detail::StageBitePlanesAvx2(dim, corners, inners, n, plane_lo,
                                  plane_hi, kMaxBites);
    } else {
      StagePlanesScalar<DIM>(dim, corners, inners, n);
    }
#else
    StagePlanesScalar<DIM>(dim, corners, inners, n);
#endif
    for (size_t b = 0; b < n; ++b) {
      corner[b] = corners[b];
      inner[b] = inners + b * dim;
    }
    count = n;
  }

  /// StageAll for positional codecs (JB: bite b's corner mask IS b, so
  /// the shared corner-index table serves as the corner array).
  template <size_t DIM = 0>
  void StageAllPositional(size_t dim, const float* inners, size_t n) {
    StageAll<DIM>(dim, detail::kPositionalCorners.data(), inners, n);
  }

 private:
  template <size_t DIM = 0>
  void StagePlanesScalar(size_t dim, const uint32_t* corners,
                         const float* inners, size_t n) {
    if (DIM != 0) dim = DIM;
    constexpr float kInf = std::numeric_limits<float>::infinity();
    for (size_t d = 0; d < dim; ++d) {
      float* row_lo = plane_lo + d * kMaxBites;
      float* row_hi = plane_hi + d * kMaxBites;
      for (size_t b = 0; b < n; ++b) {
        const float in = inners[b * dim + d];
        const bool hi_side = ((corners[b] >> d) & 1u) != 0;
        row_lo[b] = hi_side ? in : -kInf;
        row_hi[b] = hi_side ? kInf : in;
      }
    }
  }
};

/// Entry point for the batched node scan, which has already clamped the
/// query onto the MBR (with the identical per-dimension float select),
/// accumulated the squared box distance in the identical dimension
/// order, staged the bites, and identified the first staged bite
/// strictly containing the clamp point. Skips the root box evaluation
/// and the root covering scan and resumes the region search from there;
/// bit-identical to JaggedMinDistanceRaw over the same bites by
/// construction (at the root, the prune and budget checks cannot fire,
/// and the covering scan would select exactly `covering_live_index` —
/// with StageAll staging, the bite at the covering codec position).
double JaggedMinDistanceStaged(size_t dim, const float* lo, const float* hi,
                               const JaggedLiveBites& live,
                               size_t covering_live_index,
                               const geom::Vec& query, const float* clamped,
                               double box_dist_sq);

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_BITES_H_
