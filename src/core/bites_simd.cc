// AVX2 covering scan over dim-major bite planes (see bites_isa.h).
// Compiled with -mavx2 -mfma via per-file CMake flags; only reached
// through the runtime-dispatched region search in bites.cc.

#include "core/bites_isa.h"

#if defined(BW_HAVE_AVX2)

#include <immintrin.h>

namespace bw::core::detail {

size_t FirstCoveringBitePlanesAvx2(const float* plane_lo,
                                   const float* plane_hi, size_t stride,
                                   size_t live_count, size_t dim,
                                   const float* clamped) {
  for (size_t b0 = 0; b0 < live_count; b0 += 8) {
    const unsigned valid = live_count - b0 >= 8
                               ? 0xffu
                               : ((1u << (live_count - b0)) - 1u);
    __m256 inside = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    for (size_t d = 0; d < dim; ++d) {
      const __m256 c = _mm256_set1_ps(clamped[d]);
      const __m256 lo = _mm256_loadu_ps(plane_lo + d * stride + b0);
      const __m256 hi = _mm256_loadu_ps(plane_hi + d * stride + b0);
      // Strict two-sided compare, same semantics as the scalar loop.
      // Lanes past live_count may hold uninitialized floats; any NaN
      // there compares false (quiet, exceptions masked) and the lane is
      // discarded by `valid` regardless.
      const __m256 in_d = _mm256_and_ps(_mm256_cmp_ps(lo, c, _CMP_LT_OQ),
                                        _mm256_cmp_ps(c, hi, _CMP_LT_OQ));
      inside = _mm256_and_ps(inside, in_d);
    }
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_ps(inside)) & valid;
    if (m != 0) return b0 + static_cast<size_t>(__builtin_ctz(m));
  }
  return live_count;
}

uint64_t CoveringMaskDimAvx2(const float* row_lo, const float* row_hi,
                             size_t n, float clamped) {
  const __m256 c = _mm256_set1_ps(clamped);
  uint64_t m = 0;
  for (size_t b0 = 0; b0 < n; b0 += 8) {
    const __m256 lo = _mm256_loadu_ps(row_lo + b0);
    const __m256 hi = _mm256_loadu_ps(row_hi + b0);
    const __m256 in = _mm256_and_ps(_mm256_cmp_ps(lo, c, _CMP_LT_OQ),
                                    _mm256_cmp_ps(c, hi, _CMP_LT_OQ));
    m |= static_cast<uint64_t>(
             static_cast<unsigned>(_mm256_movemask_ps(in)))
         << b0;
  }
  return m;
}

void StageBitePlanesAvx2(size_t dim, const uint32_t* corners,
                         const float* inners, size_t n, float* plane_lo,
                         float* plane_hi, size_t stride) {
  const __m256 pos_inf = _mm256_set1_ps(__builtin_inff());
  const __m256 neg_inf = _mm256_set1_ps(-__builtin_inff());
  for (size_t b0 = 0; b0 < n; b0 += 8) {
    // Eight bite records, one per register row. Each row load spills
    // (8 - dim) floats into the next record — in range by the caller's
    // padding contract; the spilled lanes fall out of the transpose's
    // first `dim` columns.
    const float* base = inners + b0 * dim;
    const __m256 r0 = _mm256_loadu_ps(base + 0 * dim);
    const __m256 r1 = _mm256_loadu_ps(base + 1 * dim);
    const __m256 r2 = _mm256_loadu_ps(base + 2 * dim);
    const __m256 r3 = _mm256_loadu_ps(base + 3 * dim);
    const __m256 r4 = _mm256_loadu_ps(base + 4 * dim);
    const __m256 r5 = _mm256_loadu_ps(base + 5 * dim);
    const __m256 r6 = _mm256_loadu_ps(base + 6 * dim);
    const __m256 r7 = _mm256_loadu_ps(base + 7 * dim);
    // Standard 8x8 transpose: unpack pairs, shuffle quads, then stitch
    // the 128-bit halves. col[d] = coordinate d of bites b0..b0+7.
    const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 col[8];
    col[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
    col[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
    col[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
    col[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
    col[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
    col[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
    col[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
    col[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
    const __m256i corner_bits = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(corners + b0));
    for (size_t d = 0; d < dim; ++d) {
      // Shift corner bit d into the sign position: blendv reads only
      // the sign, so the mask selects the bite's constrained side with
      // no compare needed. Sign set (corner at hi[d]): the bite bounds
      // the clamp from below (plane_lo = inner, plane_hi = +inf);
      // clear: from above.
      const __m256 mask = _mm256_castsi256_ps(_mm256_sll_epi32(
          corner_bits, _mm_cvtsi32_si128(static_cast<int>(31 - d))));
      const __m256 lo = _mm256_blendv_ps(neg_inf, col[d], mask);
      const __m256 hi = _mm256_blendv_ps(col[d], pos_inf, mask);
      _mm256_storeu_ps(plane_lo + d * stride + b0, lo);
      _mm256_storeu_ps(plane_hi + d * stride + b0, hi);
    }
  }
}

}  // namespace bw::core::detail

#endif  // BW_HAVE_AVX2
