#include "core/map_tree.h"

#include <algorithm>
#include <cmath>

#include "am/bp_kernels.h"
#include "am/split_heuristics.h"

namespace bw::core {

gist::Bytes MapExtension::EncodePair(const geom::Rect& a,
                                     const geom::Rect& b) const {
  BW_CHECK_EQ(a.dim(), dim());
  BW_CHECK_EQ(b.dim(), dim());
  gist::Bytes out;
  out.reserve(4 * dim() * sizeof(float));
  for (const geom::Rect* r : {&a, &b}) {
    for (size_t i = 0; i < dim(); ++i) AppendFloat(out, r->lo()[i]);
    for (size_t i = 0; i < dim(); ++i) AppendFloat(out, r->hi()[i]);
  }
  return out;
}

std::pair<geom::Rect, geom::Rect> MapExtension::DecodePair(
    gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), 4 * dim() * sizeof(float));
  auto read_rect = [&](size_t base) {
    geom::Vec lo(dim());
    geom::Vec hi(dim());
    for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, base + i);
    for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, base + dim() + i);
    return geom::Rect(std::move(lo), std::move(hi));
  };
  return {read_rect(0), read_rect(2 * dim())};
}

double MapExtension::PairVolume(const geom::Rect& a, const geom::Rect& b) {
  return a.Volume() + b.Volume() - a.IntersectionVolume(b);
}

std::pair<geom::Rect, geom::Rect> MapExtension::BestPair(
    const std::vector<geom::Rect>& units) {
  BW_CHECK(!units.empty());
  const geom::Rect everything = geom::Rect::BoundingBoxOfRects(units);
  if (units.size() == 1) return {everything, everything};

  geom::Rect best_a = everything;
  geom::Rect best_b = everything;
  double best_volume = PairVolume(best_a, best_b);

  for (size_t sample = 0; sample < partition_samples_; ++sample) {
    // Random 2-partition; re-draw the two anchors to guarantee both
    // sides are non-empty.
    const size_t anchor_a = rng().NextBelow(units.size());
    size_t anchor_b = rng().NextBelow(units.size() - 1);
    if (anchor_b >= anchor_a) ++anchor_b;

    geom::Rect a = units[anchor_a];
    geom::Rect b = units[anchor_b];
    for (size_t i = 0; i < units.size(); ++i) {
      if (i == anchor_a || i == anchor_b) continue;
      if (rng().Bernoulli(0.5)) {
        a.ExpandToInclude(units[i]);
      } else {
        b.ExpandToInclude(units[i]);
      }
    }
    const double volume = PairVolume(a, b);
    if (volume < best_volume) {
      best_volume = volume;
      best_a = a;
      best_b = b;
    }
  }
  return {best_a, best_b};
}

gist::Bytes MapExtension::BpFromPoints(const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> units;
  units.reserve(points.size());
  for (const auto& p : points) units.emplace_back(p);
  auto [a, b] = BestPair(units);
  return EncodePair(a, b);
}

gist::Bytes MapExtension::BpFromChildBps(
    const std::vector<gist::Bytes>& children) {
  // Each child contributes its two rectangles as indivisible units; the
  // sampled partition keeps a child's rectangles together so the child
  // region stays covered by whichever parent rectangle absorbs it.
  std::vector<geom::Rect> units;
  units.reserve(children.size());
  for (const auto& child : children) {
    auto [a, b] = DecodePair(child);
    geom::Rect merged = a;
    merged.ExpandToInclude(b);
    units.push_back(std::move(merged));
  }
  auto [a, b] = BestPair(units);
  return EncodePair(a, b);
}

double MapExtension::BpMinDistance(gist::ByteSpan bp,
                                   const geom::Vec& query) const {
  auto [a, b] = DecodePair(bp);
  return std::sqrt(
      std::min(a.MinDistanceSquared(query), b.MinDistanceSquared(query)));
}

void MapExtension::BpMinDistanceBatch(gist::BatchScratch& scratch,
                                      const geom::Vec& query) const {
  const size_t d = dim();
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  scratch.soa.resize(4 * d * n);
  scratch.soa_d.resize(n);
  float* lo_a = scratch.soa.data();
  float* hi_a = lo_a + d * n;
  float* lo_b = hi_a + d * n;
  float* hi_b = lo_b + d * n;
  for (size_t e = 0; e < n; ++e) {
    const gist::ByteSpan bp = scratch.preds[e];
    BW_DCHECK_EQ(bp.size(), 4 * d * sizeof(float));
    for (size_t dd = 0; dd < d; ++dd) {
      lo_a[dd * n + e] = ReadFloat(bp, dd);
      hi_a[dd * n + e] = ReadFloat(bp, d + dd);
      lo_b[dd * n + e] = ReadFloat(bp, 2 * d + dd);
      hi_b[dd * n + e] = ReadFloat(bp, 3 * d + dd);
    }
  }
  am::RectMinDistSquared(d, n, lo_a, hi_a, query, scratch.distances.data());
  am::RectMinDistSquared(d, n, lo_b, hi_b, query, scratch.soa_d.data());
  for (size_t e = 0; e < n; ++e) {
    scratch.distances[e] =
        std::sqrt(std::min(scratch.distances[e], scratch.soa_d[e]));
  }
}

double MapExtension::BpPenalty(gist::ByteSpan bp,
                               const geom::Vec& point) const {
  auto [a, b] = DecodePair(bp);
  const geom::Rect point_rect(point);
  return std::min(a.Enlargement(point_rect), b.Enlargement(point_rect));
}

geom::Vec MapExtension::BpCenter(gist::ByteSpan bp) const {
  auto [a, b] = DecodePair(bp);
  geom::Rect merged = a;
  merged.ExpandToInclude(b);
  return merged.Center();
}

gist::Bytes MapExtension::BpIncludePoint(gist::ByteSpan bp,
                                         const geom::Vec& point) const {
  auto [a, b] = DecodePair(bp);
  const geom::Rect point_rect(point);
  if (a.Enlargement(point_rect) <= b.Enlargement(point_rect)) {
    a.ExpandToInclude(point);
  } else {
    b.ExpandToInclude(point);
  }
  return EncodePair(a, b);
}

gist::SplitAssignment MapExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const auto& p : points) rects.emplace_back(p);
  return am::QuadraticSplit(rects, min_fill_);
}

gist::SplitAssignment MapExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Rect> rects;
  rects.reserve(bps.size());
  for (const auto& bp : bps) {
    auto [a, b] = DecodePair(bp);
    geom::Rect merged = a;
    merged.ExpandToInclude(b);
    rects.push_back(std::move(merged));
  }
  return am::QuadraticSplit(rects, min_fill_);
}

double MapExtension::BpVolume(gist::ByteSpan bp) const {
  auto [a, b] = DecodePair(bp);
  return PairVolume(a, b);
}

std::string MapExtension::BpToString(gist::ByteSpan bp) const {
  auto [a, b] = DecodePair(bp);
  return a.ToString() + " | " + b.ToString();
}

}  // namespace bw::core
