#include "core/index_factory.h"

#include <algorithm>

#include "gist/persist.h"

#include <numeric>

#include "am/bulk_load.h"
#include "am/rstar_tree.h"
#include "am/rtree.h"
#include "am/srtree.h"
#include "am/sstree.h"
#include "core/jagged.h"
#include "core/map_tree.h"

namespace bw::core {

void BuiltIndex::UseBufferPool(size_t capacity) {
  if (capacity == 0) {
    tree_->set_buffer_pool(nullptr);
    pool_.reset();
    return;
  }
  pool_ = std::make_unique<pages::BufferPool>(file_.get(), capacity);
  tree_->set_buffer_pool(pool_.get());
}

Result<std::unique_ptr<gist::Extension>> MakeExtension(
    size_t dim, const IndexBuildOptions& options, size_t num_points_hint) {
  if (options.am == "rtree") {
    return std::unique_ptr<gist::Extension>(
        new am::RtreeExtension(dim, options.seed));
  }
  if (options.am == "rstar") {
    return std::unique_ptr<gist::Extension>(
        new am::RStarTreeExtension(dim, options.seed));
  }
  if (options.am == "sstree") {
    return std::unique_ptr<gist::Extension>(
        new am::SsTreeExtension(dim, options.seed));
  }
  if (options.am == "srtree") {
    return std::unique_ptr<gist::Extension>(
        new am::SrTreeExtension(dim, options.seed));
  }
  if (options.am == "amap") {
    return std::unique_ptr<gist::Extension>(new MapExtension(
        dim, options.seed, 0.40, options.amap_samples));
  }
  const BiteAlgorithm bites = options.bite_algorithm == "nibble"
                                  ? BiteAlgorithm::kFigure13Nibble
                                  : BiteAlgorithm::kMaxVolume;
  if (options.am == "jb") {
    return std::unique_ptr<gist::Extension>(
        new JbExtension(dim, options.seed, 0.40, bites));
  }
  if (options.am == "xjb") {
    size_t x = options.xjb_x;
    if (x == 0) {
      x = AutoSelectXjbX(num_points_hint, dim, options.page_bytes,
                         options.fill_fraction);
    }
    // A BP cannot hold more bites than its MBR has corners.
    x = std::min(x, size_t{1} << std::min<size_t>(dim, 12));
    auto xjb = std::make_unique<XjbExtension>(dim, x, options.seed, 0.40,
                                              bites);
    if (!options.xjb_reference_queries.empty()) {
      xjb->SetReferenceQueries(options.xjb_reference_queries);
    }
    return std::unique_ptr<gist::Extension>(std::move(xjb));
  }
  return Status::InvalidArgument("unknown access method '" + options.am +
                                 "'");
}

Result<std::unique_ptr<BuiltIndex>> BuildIndex(
    const std::vector<geom::Vec>& vectors, const IndexBuildOptions& options) {
  if (vectors.empty()) {
    return Status::InvalidArgument("cannot index an empty vector set");
  }
  const size_t dim = vectors[0].dim();

  auto file = std::make_unique<pages::PageFile>(options.page_bytes);
  BW_ASSIGN_OR_RETURN(std::unique_ptr<gist::Extension> extension,
                      MakeExtension(dim, options, vectors.size()));
  auto tree = std::make_unique<gist::Tree>(file.get(), std::move(extension));

  std::vector<gist::Rid> rids(vectors.size());
  std::iota(rids.begin(), rids.end(), 0);

  if (options.bulk_load) {
    am::BulkLoadOptions load;
    load.fill_fraction = options.fill_fraction;
    BW_RETURN_IF_ERROR(am::StrBulkLoad(tree.get(), vectors, rids, load));
  } else {
    BW_RETURN_IF_ERROR(am::InsertionLoad(tree.get(), vectors, rids));
  }
  file->ResetStats();
  return std::make_unique<BuiltIndex>(std::move(file), std::move(tree));
}

Status SaveIndex(const BuiltIndex& index, const std::string& path) {
  return gist::SaveTree(index.tree(), path);
}

Result<std::unique_ptr<BuiltIndex>> LoadIndex(const std::string& path,
                                              IndexBuildOptions options) {
  BW_ASSIGN_OR_RETURN(gist::LoadedIndex loaded, gist::LoadIndexFile(path));
  options.am = loaded.extension_name;
  if (options.am == "xjb" && loaded.aux_param != 0) {
    options.xjb_x = loaded.aux_param;
  }
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<gist::Extension> extension,
      MakeExtension(loaded.dim, options, static_cast<size_t>(loaded.size)));
  // AttachExtension wires the tree to loaded.file; ownership of the file
  // transfers to the BuiltIndex only afterwards.
  BW_ASSIGN_OR_RETURN(std::unique_ptr<gist::Tree> tree,
                      loaded.AttachExtension(std::move(extension)));
  return std::make_unique<BuiltIndex>(std::move(loaded.file),
                                      std::move(tree));
}

const std::vector<std::string>& KnownAccessMethods() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "rtree", "rstar", "sstree", "srtree", "amap", "jb", "xjb"};
  return *kNames;
}

}  // namespace bw::core
