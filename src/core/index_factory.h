// High-level entry point: build any of the paper's access methods over a
// set of feature vectors by name, bulk-loaded (STR) or insertion-loaded.
//
//   bw::core::IndexBuildOptions opts;
//   opts.am = "xjb";
//   auto index = bw::core::BuildIndex(vectors, opts);
//   auto neighbors = index->Knn(query, 200);

#ifndef BLOBWORLD_CORE_INDEX_FACTORY_H_
#define BLOBWORLD_CORE_INDEX_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "gist/tree.h"
#include "pages/buffer_pool.h"
#include "pages/page_store.h"
#include "util/status.h"

namespace bw::core {

/// Options controlling index construction.
struct IndexBuildOptions {
  /// Access method: "rtree", "rstar", "sstree", "srtree", "amap",
  /// "jb", "xjb".
  std::string am = "rtree";
  /// Page size in bytes (the paper uses 8 KB transfers; the scaled-down
  /// bench defaults use 4 KB to keep tree heights in the paper's regime).
  size_t page_bytes = 8192;
  /// STR bulk load (true) or repeated-insert load (false).
  bool bulk_load = true;
  /// Target fill fraction for bulk loading.
  double fill_fraction = 0.85;
  /// XJB only: number of bites kept per BP; 0 = automatic selection
  /// (largest X that does not add a tree level).
  size_t xjb_x = 10;
  /// aMAP only: number of random partitions sampled per BP.
  size_t amap_samples = 1024;
  /// JB/XJB only: bite construction ("maxvol" = improved maximal bites,
  /// "nibble" = the paper's Figure-13 heuristic).
  std::string bite_algorithm = "maxvol";
  /// XJB only: sample query points for workload-aware bite selection
  /// (empty = the paper's largest-volume heuristic).
  std::vector<geom::Vec> xjb_reference_queries;
  /// Deterministic seed for randomized heuristics.
  uint64_t seed = 42;
};

/// An owned index: page file + GiST tree + optional buffer pool,
/// packaged so callers do not manage substrate lifetimes.
class BuiltIndex {
 public:
  BuiltIndex(std::unique_ptr<pages::PageStore> file,
             std::unique_ptr<gist::Tree> tree)
      : file_(std::move(file)), tree_(std::move(tree)) {}

  gist::Tree& tree() { return *tree_; }
  const gist::Tree& tree() const { return *tree_; }
  pages::PageStore& file() { return *file_; }
  const pages::PageStore& file() const { return *file_; }

  /// k-nearest-neighbor query; stats may be null.
  Result<std::vector<gist::Neighbor>> Knn(const geom::Vec& query, size_t k,
                                          gist::TraversalStats* stats =
                                              nullptr) const {
    return tree_->KnnSearch(query, k, stats);
  }

  /// Attaches an LRU buffer pool of `capacity` pages to all reads; the
  /// pool is owned by the index. Pass 0 to detach.
  void UseBufferPool(size_t capacity);
  pages::BufferPool* buffer_pool() { return pool_.get(); }

 private:
  std::unique_ptr<pages::PageStore> file_;
  std::unique_ptr<gist::Tree> tree_;
  std::unique_ptr<pages::BufferPool> pool_;
};

/// Creates the extension named by `options.am` (factory used by tests
/// and benches that drive the GiST directly).
Result<std::unique_ptr<gist::Extension>> MakeExtension(
    size_t dim, const IndexBuildOptions& options, size_t num_points_hint);

/// Builds an index over `vectors`; RIDs are the vector indices.
Result<std::unique_ptr<BuiltIndex>> BuildIndex(
    const std::vector<geom::Vec>& vectors, const IndexBuildOptions& options);

/// The set of access-method names BuildIndex accepts.
const std::vector<std::string>& KnownAccessMethods();

/// Persists a built index (pages + tree metadata) to `path`.
Status SaveIndex(const BuiltIndex& index, const std::string& path);

/// Loads an index saved by SaveIndex. The access method recorded in the
/// file is re-instantiated; `options` supplies its tuning parameters
/// (xjb_x, amap_samples, seed) and must agree with the build-time values
/// for BPs that embed them.
Result<std::unique_ptr<BuiltIndex>> LoadIndex(const std::string& path,
                                              IndexBuildOptions options =
                                                  IndexBuildOptions());

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_INDEX_FACTORY_H_
