// MAP (Minimum Area Predicate) extension, Section 5.1 of the paper: each
// BP stores TWO hyper-rectangles whose union covers the node's contents.
// The idealized MAP minimizes total enclosed volume over every
// 2-partition of the contents; this implementation is aMAP (approximate
// MAP), which samples 1024 random partitions and keeps the best, exactly
// as the paper did.

#ifndef BLOBWORLD_CORE_MAP_TREE_H_
#define BLOBWORLD_CORE_MAP_TREE_H_

#include <string>
#include <utility>
#include <vector>

#include "geom/rect.h"
#include "gist/extension.h"

namespace bw::core {

/// aMAP bounding-predicate codec. BP layout: 4D floats (rect A lo/hi,
/// rect B lo/hi) — the "4D numbers" of Table 3.
class MapExtension : public gist::Extension {
 public:
  /// `partition_samples` is the number of random 2-partitions tried per
  /// BP construction (the paper's aMAP uses 1024).
  explicit MapExtension(size_t dim, uint64_t seed = 42,
                        double min_fill = 0.40,
                        size_t partition_samples = 1024)
      : Extension(dim, seed),
        min_fill_(min_fill),
        partition_samples_(partition_samples) {}

  std::string Name() const override { return "amap"; }

  gist::Bytes BpFromPoints(const std::vector<geom::Vec>& points) override;
  gist::Bytes BpFromChildBps(const std::vector<gist::Bytes>& children) override;
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  /// Batched scan: both rect planes decoded once, the vectorized rect
  /// kernel run per half, combined with the same min() as the scalar.
  void BpMinDistanceBatch(gist::BatchScratch& scratch,
                          const geom::Vec& query) const override;
  double BpPenalty(gist::ByteSpan bp, const geom::Vec& point) const override;
  geom::Vec BpCenter(gist::ByteSpan bp) const override;
  gist::Bytes BpIncludePoint(gist::ByteSpan bp,
                             const geom::Vec& point) const override;
  gist::SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) override;
  gist::SplitAssignment PickSplitBps(
      const std::vector<gist::Bytes>& bps) override;
  double BpVolume(gist::ByteSpan bp) const override;
  std::string BpToString(gist::ByteSpan bp) const override;

  gist::Bytes EncodePair(const geom::Rect& a, const geom::Rect& b) const;
  std::pair<geom::Rect, geom::Rect> DecodePair(gist::ByteSpan bp) const;

  /// Total volume of a rectangle pair, counting the overlap once:
  /// V(A) + V(B) - V(A ∩ B). This is the quantity aMAP minimizes.
  static double PairVolume(const geom::Rect& a, const geom::Rect& b);

 private:
  /// Core of aMAP: samples random 2-partitions of `units` (each unit is
  /// a rectangle that must stay whole) and returns the minimum-volume
  /// MBR pair.
  std::pair<geom::Rect, geom::Rect> BestPair(
      const std::vector<geom::Rect>& units);

  double min_fill_;
  size_t partition_samples_;
};

}  // namespace bw::core

#endif  // BLOBWORLD_CORE_MAP_TREE_H_
