#include "core/bites.h"

#include <algorithm>
#include <limits>
#include <cmath>

#include "util/logging.h"

namespace bw::core {

namespace {

inline bool CornerAtHi(uint32_t corner, size_t d) {
  return ((corner >> d) & 1u) != 0;
}

inline float CornerCoord(const geom::Rect& mbr, uint32_t corner, size_t d) {
  return CornerAtHi(corner, d) ? mbr.hi()[d] : mbr.lo()[d];
}

}  // namespace

double Bite::Volume(const geom::Rect& mbr) const {
  double v = 1.0;
  for (size_t d = 0; d < inner.dim(); ++d) {
    v *= std::abs(static_cast<double>(CornerCoord(mbr, corner, d)) - inner[d]);
  }
  return v;
}

bool Bite::IsEmpty(const geom::Rect& mbr) const {
  for (size_t d = 0; d < inner.dim(); ++d) {
    if (inner[d] == CornerCoord(mbr, corner, d)) return true;
  }
  return false;
}

bool PointInsideBite(const geom::Rect& mbr, const Bite& bite,
                     const geom::Vec& point) {
  (void)mbr;
  for (size_t d = 0; d < point.dim(); ++d) {
    if (CornerAtHi(bite.corner, d)) {
      if (!(point[d] > bite.inner[d])) return false;
    } else {
      if (!(point[d] < bite.inner[d])) return false;
    }
  }
  return true;
}

bool RectIntersectsBite(const geom::Rect& mbr, const Bite& bite,
                        const geom::Rect& rect) {
  (void)mbr;
  for (size_t d = 0; d < rect.dim(); ++d) {
    if (CornerAtHi(bite.corner, d)) {
      if (!(rect.hi()[d] > bite.inner[d])) return false;
    } else {
      if (!(rect.lo()[d] < bite.inner[d])) return false;
    }
  }
  return true;
}

std::vector<Bite> NibbleAllCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents) {
  const size_t dim = mbr.dim();
  BW_CHECK_LE(dim, 16u);
  const uint32_t corner_count = 1u << dim;

  // Per dimension, the content coordinates that nibbling can step
  // through: ascending (for lo corners) and descending (for hi corners),
  // deduplicated. Index 0 is the MBR face itself (zero-extent bite).
  std::vector<std::vector<float>> ascending(dim);
  std::vector<std::vector<float>> descending(dim);
  for (size_t d = 0; d < dim; ++d) {
    std::vector<float>& asc = ascending[d];
    std::vector<float>& desc = descending[d];
    asc.reserve(contents.size());
    desc.reserve(contents.size());
    for (const geom::Rect& r : contents) {
      asc.push_back(r.lo()[d]);
      desc.push_back(r.hi()[d]);
    }
    std::sort(asc.begin(), asc.end());
    asc.erase(std::unique(asc.begin(), asc.end()), asc.end());
    std::sort(desc.begin(), desc.end(), std::greater<float>());
    desc.erase(std::unique(desc.begin(), desc.end()), desc.end());
  }

  std::vector<Bite> bites;
  bites.reserve(corner_count);
  for (uint32_t corner = 0; corner < corner_count; ++corner) {
    Bite bite;
    bite.corner = corner;
    bite.inner = geom::Vec(dim);

    // Figure 13: simultaneously nibble the next projected value in each
    // dimension until content stops the nibbling everywhere.
    std::vector<size_t> how_far(dim, 0);
    std::vector<bool> done(dim, false);
    size_t stopped = 0;

    auto value_at = [&](size_t d, size_t steps) {
      const auto& vals = CornerAtHi(corner, d) ? descending[d] : ascending[d];
      return vals[std::min(steps, vals.size() - 1)];
    };
    auto values_count = [&](size_t d) {
      return (CornerAtHi(corner, d) ? descending[d] : ascending[d]).size();
    };

    while (stopped < dim) {
      for (size_t d = 0; d < dim; ++d) {
        if (done[d]) continue;
        if (how_far[d] + 1 >= values_count(d)) {
          done[d] = true;
          ++stopped;
          continue;
        }
        ++how_far[d];
        Bite candidate;
        candidate.corner = corner;
        candidate.inner = geom::Vec(dim);
        for (size_t d2 = 0; d2 < dim; ++d2) {
          candidate.inner[d2] = value_at(d2, how_far[d2]);
        }
        bool blocked = false;
        for (const geom::Rect& r : contents) {
          if (RectIntersectsBite(mbr, candidate, r)) {
            blocked = true;
            break;
          }
        }
        if (blocked) {
          --how_far[d];
          done[d] = true;
          ++stopped;
        }
      }
    }

    for (size_t d = 0; d < dim; ++d) {
      bite.inner[d] = value_at(d, how_far[d]);
    }
    bites.push_back(std::move(bite));
  }
  return bites;
}

std::vector<Bite> MaxVolumeCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents) {
  const size_t dim = mbr.dim();
  BW_CHECK_LE(dim, 16u);

  // Extends dimension d of the quadrant (corner .. inner) as far as
  // possible while keeping it free of contents. A content rect blocks
  // only if it protrudes strictly beyond `inner` in every other
  // dimension; the extension must stop at the extreme coordinate of the
  // blocking set, which keeps the quadrant empty by construction.
  auto extend_dim = [&](uint32_t corner, geom::Vec& inner, size_t d) {
    const bool hi = CornerAtHi(corner, d);
    // Start from the fully-extended position (the opposite face).
    float limit = hi ? mbr.lo()[d] : mbr.hi()[d];
    for (const geom::Rect& r : contents) {
      bool beyond_elsewhere = true;
      for (size_t d2 = 0; d2 < dim; ++d2) {
        if (d2 == d) continue;
        if (CornerAtHi(corner, d2)) {
          if (!(r.hi()[d2] > inner[d2])) {
            beyond_elsewhere = false;
            break;
          }
        } else {
          if (!(r.lo()[d2] < inner[d2])) {
            beyond_elsewhere = false;
            break;
          }
        }
      }
      if (!beyond_elsewhere) continue;
      if (hi) {
        limit = std::max(limit, r.hi()[d]);
      } else {
        limit = std::min(limit, r.lo()[d]);
      }
    }
    inner[d] = limit;
  };

  // Dimension orders to try: all cyclic rotations, forward and reversed.
  std::vector<std::vector<size_t>> orders;
  for (size_t rot = 0; rot < dim; ++rot) {
    std::vector<size_t> fwd(dim);
    std::vector<size_t> rev(dim);
    for (size_t i = 0; i < dim; ++i) {
      fwd[i] = (rot + i) % dim;
      rev[i] = (rot + dim - i) % dim;
    }
    orders.push_back(std::move(fwd));
    if (dim > 2) orders.push_back(std::move(rev));
  }

  // Seed with the Figure-13 nibble bites (valid by construction), then
  // run maximal extension passes. Seeding matters: extending dimensions
  // of a zero-size quadrant in sequence degenerates (early dimensions
  // extend fully and block every later one); from a square-ish seed the
  // extension rule converges to a genuinely maximal empty quadrant.
  std::vector<Bite> seeds = NibbleAllCorners(mbr, contents);
  std::vector<Bite> bites;
  bites.reserve(seeds.size());
  for (Bite& seed : seeds) {
    Bite best = seed;
    double best_volume = best.Volume(mbr);
    for (const auto& order : orders) {
      Bite candidate = seed;
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t d : order) extend_dim(candidate.corner, candidate.inner, d);
      }
      const double volume = candidate.Volume(mbr);
      if (volume > best_volume) {
        best_volume = volume;
        best = candidate;
      }
    }
    bites.push_back(std::move(best));
  }
  return bites;
}

double DistanceAroundBite(const geom::Rect& mbr, const Bite& bite,
                          const geom::Vec& query) {
  double best_sq = -1.0;
  for (size_t d = 0; d < query.dim(); ++d) {
    // Clip the MBR to the far side of the bite's interior face in
    // dimension d; the closest region point behind this face bounds the
    // way "around" the bite through that face.
    geom::Vec lo = mbr.lo();
    geom::Vec hi = mbr.hi();
    if (CornerAtHi(bite.corner, d)) {
      hi[d] = bite.inner[d];
    } else {
      lo[d] = bite.inner[d];
    }
    if (lo[d] > hi[d]) continue;  // Degenerate: bite spans the whole side.
    geom::Rect shrunk(std::move(lo), std::move(hi));
    const double d_sq = shrunk.MinDistanceSquared(query);
    if (best_sq < 0.0 || d_sq < best_sq) best_sq = d_sq;
  }
  // All faces degenerate cannot happen for a valid bite produced by
  // NibbleAllCorners (its inner point is a content coordinate inside the
  // MBR), but fall back to the MBR bound defensively.
  if (best_sq < 0.0) return std::sqrt(mbr.MinDistanceSquared(query));
  return std::sqrt(best_sq);
}

namespace {

// Exact distance to (box ∖ ∪ bites) by recursive decomposition: if the
// clamp of q onto the box lies inside some bite b, then every region
// point avoids b's quadrant through at least one dimension, i.e.
//   box ∖ b = ∪_d clip_d(box),
// where clip_d trims the box at b's interior face in dimension d. The
// distance is the min over those D sub-boxes, recursively. `budget`
// bounds the number of visited boxes; on exhaustion the plain box
// distance is returned, which is always admissible.
constexpr size_t kMaxRegionDim = 16;

// Allocation-free state for the region-distance search: boxes live in
// fixed stack arrays (BpMinDistance sits on the k-NN hot path, where a
// heap allocation per box would dominate the kernel cost).
struct RegionSearch {
  const geom::Vec* query;
  // Live non-empty bites, pre-filtered once (at most 2^12 tracked; a
  // 12-D jagged BP is already far beyond any page budget). Each bite is
  // a corner mask plus a pointer to its `dim` inner coordinates.
  uint32_t live_corner[4096];
  const float* live_inner[4096];
  size_t live_count = 0;
  size_t dim = 0;
  int budget = 0;
};

// `upper` is the best region distance found so far anywhere in the
// search: branches whose plain box distance already reaches it cannot
// improve the answer and are pruned (branch and bound).
double RegionDistanceImpl(RegionSearch& search, const float* lo,
                          const float* hi, double upper) {
  const geom::Vec& q = *search.query;
  const size_t dim = search.dim;

  double box_dist_sq = 0.0;
  float clamped[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    const float v = q[d];
    const float c = v < lo[d] ? lo[d] : (v > hi[d] ? hi[d] : v);
    clamped[d] = c;
    const double gap = double(v) - c;
    box_dist_sq += gap * gap;
  }
  const double box_dist = std::sqrt(box_dist_sq);
  if (box_dist >= upper) return upper;
  if (--search.budget < 0) return box_dist;

  uint32_t covering_corner = 0;
  const float* covering_inner = nullptr;
  for (size_t b = 0; b < search.live_count; ++b) {
    const uint32_t corner = search.live_corner[b];
    const float* inner = search.live_inner[b];
    bool inside = true;
    for (size_t d = 0; d < dim; ++d) {
      if ((corner >> d) & 1u) {
        if (!(clamped[d] > inner[d])) {
          inside = false;
          break;
        }
      } else {
        if (!(clamped[d] < inner[d])) {
          inside = false;
          break;
        }
      }
    }
    if (inside) {
      covering_corner = corner;
      covering_inner = inner;
      break;
    }
  }
  if (covering_inner == nullptr) {
    // The clamp point itself is in the region: exact.
    return box_dist;
  }

  double best = upper;
  float child_lo[kMaxRegionDim];
  float child_hi[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    std::copy(lo, lo + dim, child_lo);
    std::copy(hi, hi + dim, child_hi);
    if ((covering_corner >> d) & 1u) {
      child_hi[d] = std::min(child_hi[d], covering_inner[d]);
    } else {
      child_lo[d] = std::max(child_lo[d], covering_inner[d]);
    }
    if (child_lo[d] > child_hi[d]) continue;  // Sub-box vanished.
    best = std::min(best,
                    RegionDistanceImpl(search, child_lo, child_hi, best));
    if (best <= box_dist + 1e-12) break;  // Cannot get closer than the box.
  }
  // If every sub-box vanished (the bites cover this whole box), `best`
  // stays at `upper`, correctly pruning the branch: no data lives here.
  return best;
}

}  // namespace

double JaggedMinDistanceRaw(size_t dim, const float* lo, const float* hi,
                            const uint32_t* corners, const float* inners,
                            size_t bite_count, const geom::Vec& query) {
  BW_CHECK_LE(dim, kMaxRegionDim);
  RegionSearch search;
  search.query = &query;
  search.dim = dim;
  search.budget = 48;
  for (size_t b = 0; b < bite_count && search.live_count < 4096; ++b) {
    const uint32_t corner = corners[b];
    const float* inner = inners + b * dim;
    bool empty = false;
    for (size_t d = 0; d < dim; ++d) {
      const float corner_coord = ((corner >> d) & 1u) ? hi[d] : lo[d];
      if (inner[d] == corner_coord) {
        empty = true;
        break;
      }
    }
    if (empty) continue;
    search.live_corner[search.live_count] = corner;
    search.live_inner[search.live_count] = inner;
    ++search.live_count;
  }
  return RegionDistanceImpl(search, lo, hi,
                            std::numeric_limits<double>::infinity());
}

double JaggedMinDistance(const geom::Rect& mbr,
                         const std::vector<Bite>& bites,
                         const geom::Vec& query) {
  const size_t dim = query.dim();
  BW_CHECK_LE(dim, kMaxRegionDim);
  // Flatten the bites into the raw layout (bounded stack buffers).
  BW_CHECK_LE(bites.size(), 4096u);
  static thread_local std::vector<uint32_t> corners;
  static thread_local std::vector<float> inners;
  corners.clear();
  inners.clear();
  for (const Bite& bite : bites) {
    corners.push_back(bite.corner);
    for (size_t d = 0; d < dim; ++d) inners.push_back(bite.inner[d]);
  }
  float lo[kMaxRegionDim];
  float hi[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    lo[d] = mbr.lo()[d];
    hi[d] = mbr.hi()[d];
  }
  return JaggedMinDistanceRaw(dim, lo, hi, corners.data(), inners.data(),
                              corners.size(), query);
}

}  // namespace bw::core
