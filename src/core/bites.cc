#include "core/bites.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <vector>

#include "core/bites_isa.h"
#include "util/cpu.h"
#include "util/logging.h"

namespace bw::core {

namespace {

inline bool CornerAtHi(uint32_t corner, size_t d) {
  return ((corner >> d) & 1u) != 0;
}

inline float CornerCoord(const geom::Rect& mbr, uint32_t corner, size_t d) {
  return CornerAtHi(corner, d) ? mbr.hi()[d] : mbr.lo()[d];
}

}  // namespace

double Bite::Volume(const geom::Rect& mbr) const {
  double v = 1.0;
  for (size_t d = 0; d < inner.dim(); ++d) {
    v *= std::abs(static_cast<double>(CornerCoord(mbr, corner, d)) - inner[d]);
  }
  return v;
}

bool Bite::IsEmpty(const geom::Rect& mbr) const {
  for (size_t d = 0; d < inner.dim(); ++d) {
    if (inner[d] == CornerCoord(mbr, corner, d)) return true;
  }
  return false;
}

bool PointInsideBite(const geom::Rect& mbr, const Bite& bite,
                     const geom::Vec& point) {
  (void)mbr;
  for (size_t d = 0; d < point.dim(); ++d) {
    if (CornerAtHi(bite.corner, d)) {
      if (!(point[d] > bite.inner[d])) return false;
    } else {
      if (!(point[d] < bite.inner[d])) return false;
    }
  }
  return true;
}

bool RectIntersectsBite(const geom::Rect& mbr, const Bite& bite,
                        const geom::Rect& rect) {
  (void)mbr;
  for (size_t d = 0; d < rect.dim(); ++d) {
    if (CornerAtHi(bite.corner, d)) {
      if (!(rect.hi()[d] > bite.inner[d])) return false;
    } else {
      if (!(rect.lo()[d] < bite.inner[d])) return false;
    }
  }
  return true;
}

std::vector<Bite> NibbleAllCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents) {
  const size_t dim = mbr.dim();
  BW_CHECK_LE(dim, 16u);
  const uint32_t corner_count = 1u << dim;

  // Per dimension, the content coordinates that nibbling can step
  // through: ascending (for lo corners) and descending (for hi corners),
  // deduplicated. Index 0 is the MBR face itself (zero-extent bite).
  std::vector<std::vector<float>> ascending(dim);
  std::vector<std::vector<float>> descending(dim);
  for (size_t d = 0; d < dim; ++d) {
    std::vector<float>& asc = ascending[d];
    std::vector<float>& desc = descending[d];
    asc.reserve(contents.size());
    desc.reserve(contents.size());
    for (const geom::Rect& r : contents) {
      asc.push_back(r.lo()[d]);
      desc.push_back(r.hi()[d]);
    }
    std::sort(asc.begin(), asc.end());
    asc.erase(std::unique(asc.begin(), asc.end()), asc.end());
    std::sort(desc.begin(), desc.end(), std::greater<float>());
    desc.erase(std::unique(desc.begin(), desc.end()), desc.end());
  }

  std::vector<Bite> bites;
  bites.reserve(corner_count);
  for (uint32_t corner = 0; corner < corner_count; ++corner) {
    Bite bite;
    bite.corner = corner;
    bite.inner = geom::Vec(dim);

    // Figure 13: simultaneously nibble the next projected value in each
    // dimension until content stops the nibbling everywhere.
    std::vector<size_t> how_far(dim, 0);
    std::vector<bool> done(dim, false);
    size_t stopped = 0;

    auto value_at = [&](size_t d, size_t steps) {
      const auto& vals = CornerAtHi(corner, d) ? descending[d] : ascending[d];
      return vals[std::min(steps, vals.size() - 1)];
    };
    auto values_count = [&](size_t d) {
      return (CornerAtHi(corner, d) ? descending[d] : ascending[d]).size();
    };

    while (stopped < dim) {
      for (size_t d = 0; d < dim; ++d) {
        if (done[d]) continue;
        if (how_far[d] + 1 >= values_count(d)) {
          done[d] = true;
          ++stopped;
          continue;
        }
        ++how_far[d];
        Bite candidate;
        candidate.corner = corner;
        candidate.inner = geom::Vec(dim);
        for (size_t d2 = 0; d2 < dim; ++d2) {
          candidate.inner[d2] = value_at(d2, how_far[d2]);
        }
        bool blocked = false;
        for (const geom::Rect& r : contents) {
          if (RectIntersectsBite(mbr, candidate, r)) {
            blocked = true;
            break;
          }
        }
        if (blocked) {
          --how_far[d];
          done[d] = true;
          ++stopped;
        }
      }
    }

    for (size_t d = 0; d < dim; ++d) {
      bite.inner[d] = value_at(d, how_far[d]);
    }
    bites.push_back(std::move(bite));
  }
  return bites;
}

std::vector<Bite> MaxVolumeCorners(const geom::Rect& mbr,
                                   const std::vector<geom::Rect>& contents) {
  const size_t dim = mbr.dim();
  BW_CHECK_LE(dim, 16u);

  // Extends dimension d of the quadrant (corner .. inner) as far as
  // possible while keeping it free of contents. A content rect blocks
  // only if it protrudes strictly beyond `inner` in every other
  // dimension; the extension must stop at the extreme coordinate of the
  // blocking set, which keeps the quadrant empty by construction.
  auto extend_dim = [&](uint32_t corner, geom::Vec& inner, size_t d) {
    const bool hi = CornerAtHi(corner, d);
    // Start from the fully-extended position (the opposite face).
    float limit = hi ? mbr.lo()[d] : mbr.hi()[d];
    for (const geom::Rect& r : contents) {
      bool beyond_elsewhere = true;
      for (size_t d2 = 0; d2 < dim; ++d2) {
        if (d2 == d) continue;
        if (CornerAtHi(corner, d2)) {
          if (!(r.hi()[d2] > inner[d2])) {
            beyond_elsewhere = false;
            break;
          }
        } else {
          if (!(r.lo()[d2] < inner[d2])) {
            beyond_elsewhere = false;
            break;
          }
        }
      }
      if (!beyond_elsewhere) continue;
      if (hi) {
        limit = std::max(limit, r.hi()[d]);
      } else {
        limit = std::min(limit, r.lo()[d]);
      }
    }
    inner[d] = limit;
  };

  // Dimension orders to try: all cyclic rotations, forward and reversed.
  std::vector<std::vector<size_t>> orders;
  for (size_t rot = 0; rot < dim; ++rot) {
    std::vector<size_t> fwd(dim);
    std::vector<size_t> rev(dim);
    for (size_t i = 0; i < dim; ++i) {
      fwd[i] = (rot + i) % dim;
      rev[i] = (rot + dim - i) % dim;
    }
    orders.push_back(std::move(fwd));
    if (dim > 2) orders.push_back(std::move(rev));
  }

  // Seed with the Figure-13 nibble bites (valid by construction), then
  // run maximal extension passes. Seeding matters: extending dimensions
  // of a zero-size quadrant in sequence degenerates (early dimensions
  // extend fully and block every later one); from a square-ish seed the
  // extension rule converges to a genuinely maximal empty quadrant.
  std::vector<Bite> seeds = NibbleAllCorners(mbr, contents);
  std::vector<Bite> bites;
  bites.reserve(seeds.size());
  for (Bite& seed : seeds) {
    Bite best = seed;
    double best_volume = best.Volume(mbr);
    for (const auto& order : orders) {
      Bite candidate = seed;
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t d : order) extend_dim(candidate.corner, candidate.inner, d);
      }
      const double volume = candidate.Volume(mbr);
      if (volume > best_volume) {
        best_volume = volume;
        best = candidate;
      }
    }
    bites.push_back(std::move(best));
  }
  return bites;
}

double DistanceAroundBite(const geom::Rect& mbr, const Bite& bite,
                          const geom::Vec& query) {
  double best_sq = -1.0;
  for (size_t d = 0; d < query.dim(); ++d) {
    // Clip the MBR to the far side of the bite's interior face in
    // dimension d; the closest region point behind this face bounds the
    // way "around" the bite through that face.
    geom::Vec lo = mbr.lo();
    geom::Vec hi = mbr.hi();
    if (CornerAtHi(bite.corner, d)) {
      hi[d] = bite.inner[d];
    } else {
      lo[d] = bite.inner[d];
    }
    if (lo[d] > hi[d]) continue;  // Degenerate: bite spans the whole side.
    geom::Rect shrunk(std::move(lo), std::move(hi));
    const double d_sq = shrunk.MinDistanceSquared(query);
    if (best_sq < 0.0 || d_sq < best_sq) best_sq = d_sq;
  }
  // All faces degenerate cannot happen for a valid bite produced by
  // NibbleAllCorners (its inner point is a content coordinate inside the
  // MBR), but fall back to the MBR bound defensively.
  if (best_sq < 0.0) return std::sqrt(mbr.MinDistanceSquared(query));
  return std::sqrt(best_sq);
}

namespace {

// Exact distance to (box ∖ ∪ bites) by recursive decomposition: if the
// clamp of q onto the box lies inside some bite b, then every region
// point avoids b's quadrant through at least one dimension, i.e.
//   box ∖ b = ∪_d clip_d(box),
// where clip_d trims the box at b's interior face in dimension d. The
// distance is the min over those D sub-boxes, recursively. `budget`
// bounds the number of visited boxes; on exhaustion the plain box
// distance is returned, which is always admissible.
constexpr size_t kMaxRegionDim = 16;

// Allocation-free state for the region-distance search: points into the
// caller's staged live-bite arrays (a stack JaggedLiveBites in the
// common case; BpMinDistance sits on the k-NN hot path, where a heap
// allocation per box would dominate the kernel cost).
struct RegionSearch {
  const geom::Vec* query = nullptr;
  const uint32_t* live_corner = nullptr;
  const float* const* live_inner = nullptr;
  // Branchless covering-test bounds, dim-major SoA (see JaggedLiveBites):
  // replacing the per-dimension corner-mask branches with pure float
  // compares removes the data-dependent mispredictions that dominated
  // the scan, and the dim-major planes let the staged search's SIMD
  // variant test 8 bites per compare. `plane_stride` is the plane row
  // length in floats (a multiple of 8).
  const float* plane_lo = nullptr;
  const float* plane_hi = nullptr;
  size_t plane_stride = 0;
  size_t live_count = 0;
  size_t dim = 0;
  int budget = 0;
  // True when the covering scan should take the AVX2 variant (staged
  // searches only; resolved from util::ActiveKernelIsa() per search).
  // The SIMD scan selects the identical bite, so this flag never
  // changes results.
  bool simd_covering = false;
};

void PointSearchAtLive(RegionSearch& search, const JaggedLiveBites& live) {
  search.live_corner = live.corner;
  search.live_inner = live.inner;
  search.plane_lo = live.plane_lo;
  search.plane_hi = live.plane_hi;
  search.plane_stride = JaggedLiveBites::kMaxBites;
  search.live_count = live.count;
}

// Overflow staging for BPs with more than JaggedLiveBites::kMaxBites
// bites (JB beyond 8 dimensions): same layout, heap-backed,
// thread-local so the hot path never allocates after warm-up.
struct OverflowLiveBites {
  std::vector<uint32_t> corner;
  std::vector<const float*> inner;
  std::vector<float> bounds;  // test_lo then test_hi, cap*dim each
  size_t count = 0;
};

OverflowLiveBites& OverflowScratch() {
  static thread_local OverflowLiveBites scratch;
  return scratch;
}

// Fills the overflow staging arrays (empty bites filtered out, codec
// order preserved — the same live filter JaggedLiveBites::Add applies)
// and points `search` at them.
void BuildOverflowLiveBites(RegionSearch& search, size_t dim,
                            const float* lo, const float* hi,
                            const uint32_t* corners, const float* inners,
                            size_t bite_count) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  OverflowLiveBites& live = OverflowScratch();
  const size_t cap = std::min<size_t>(bite_count, 4096);
  // Plane rows are padded to a multiple of 8 floats so the SIMD
  // covering scan's whole-vector loads stay inside each row.
  const size_t stride = (cap + 7) & ~size_t{7};
  live.corner.resize(cap);
  live.inner.resize(cap);
  live.bounds.resize(2 * stride * dim);
  live.count = 0;
  float* plane_lo = live.bounds.data();
  float* plane_hi = plane_lo + stride * dim;
  for (size_t b = 0; b < bite_count && live.count < cap; ++b) {
    const uint32_t corner = corners[b];
    const float* inner = inners + b * dim;
    // Write the tentative live slot unconditionally (branchless; an
    // empty bite's slot is simply overwritten by the next candidate).
    const size_t slot = live.count;
    unsigned empty = 0;
    for (size_t d = 0; d < dim; ++d) {
      const unsigned hi_side = (corner >> d) & 1u;
      const float corner_coord = hi_side ? hi[d] : lo[d];
      const float in = inner[d];
      empty |= unsigned(in == corner_coord);
      plane_lo[d * stride + slot] = hi_side ? in : -kInf;
      plane_hi[d * stride + slot] = hi_side ? kInf : in;
    }
    live.corner[slot] = corner;
    live.inner[slot] = inner;
    live.count += 1 - empty;
  }
  search.live_corner = live.corner.data();
  search.live_inner = live.inner.data();
  search.plane_lo = plane_lo;
  search.plane_hi = plane_hi;
  search.plane_stride = stride;
  search.live_count = live.count;
}

// The recursion below is templated on the dimensionality (DIM == 0 is
// the runtime-dim fallback): the paper's workloads live at d <= 8, and
// fixing DIM at compile time fully unrolls the per-dimension loops in
// the covering scan, the clamp, and the child staging — the arithmetic
// is unchanged (no reassociation), so the result is bit-identical to
// the generic path.

// Index of the first live bite strictly containing the clamp point, or
// live_count if none. Same scan order and same strict float compares as
// the pre-SoA per-bite loop, so the selected bite (and therefore the
// whole recursion) is unchanged; only the branches are gone.
template <size_t DIM>
size_t FirstCoveringBite(const RegionSearch& search, const float* clamped) {
  const size_t dim = DIM == 0 ? search.dim : DIM;
  const size_t stride = search.plane_stride;
  for (size_t b = 0; b < search.live_count; ++b) {
    unsigned inside = 1;
    for (size_t d = 0; d < dim; ++d) {
      const float c = clamped[d];
      inside &= unsigned(search.plane_lo[d * stride + b] < c) &
                unsigned(c < search.plane_hi[d * stride + b]);
    }
    if (inside) return b;
  }
  return search.live_count;
}

// Covering-scan dispatch for the staged (stack) search: the AVX2
// variant tests 8 bites per compare over the dim-major planes and, being
// compare-only, returns exactly the scalar scan's index. The recursive
// reference path below calls FirstCoveringBite directly and stays fully
// scalar.
template <size_t DIM>
inline size_t CoveringScan(const RegionSearch& search, const float* clamped) {
#if defined(BW_HAVE_AVX2)
  if (search.simd_covering) {
    return detail::FirstCoveringBitePlanesAvx2(
        search.plane_lo, search.plane_hi, search.plane_stride,
        search.live_count, DIM == 0 ? search.dim : DIM, clamped);
  }
#endif
  return FirstCoveringBite<DIM>(search, clamped);
}

template <size_t DIM>
double SplitAroundBite(RegionSearch& search, const float* lo, const float* hi,
                       const float* clamped, double box_dist,
                       uint32_t covering_corner, const float* covering_inner,
                       double upper);

// Continues a box evaluation past its (already computed) clamp and box
// distance: consume a budget tick, look for a covering live bite, and
// split around it if one exists. The caller has already applied the
// `box_dist >= upper` prune.
template <size_t DIM>
double RegionDistanceResume(RegionSearch& search, const float* lo,
                            const float* hi, const float* clamped,
                            double box_dist, double upper) {
  if (--search.budget < 0) return box_dist;
  const size_t covering = FirstCoveringBite<DIM>(search, clamped);
  if (covering == search.live_count) {
    // The clamp point itself is in the region: exact.
    return box_dist;
  }
  return SplitAroundBite<DIM>(search, lo, hi, clamped, box_dist,
                              search.live_corner[covering],
                              search.live_inner[covering], upper);
}

// The recursive step once a covering bite is known: the region distance
// of (box \ bites) is the min over the <= dim sub-boxes obtained by
// clipping the box at the covering bite's interior face in each
// dimension. Children are visited nearest-first (by their plain box
// distance, which the split can compute cheaply before recursing):
// best-first order tightens `best` as fast as possible, and because a
// child's region distance is at least its box distance, the sorted scan
// stops outright once `best` is at or below the next child's box
// distance — the dominant saving on deep decompositions.
template <size_t DIM>
double SplitAroundBite(RegionSearch& search, const float* lo, const float* hi,
                       const float* clamped, double box_dist,
                       uint32_t covering_corner, const float* covering_inner,
                       double upper) {
  const size_t dim = DIM == 0 ? search.dim : DIM;
  const geom::Vec& q = *search.query;

  // The parent's per-dimension squared gaps, recomputed from its clamp
  // point — identical values and rounding as the parent's own
  // accumulation. A child box differs from its parent in exactly one
  // dimension, so each child's clamp and box distance need only one
  // dimension recomputed; re-summing the squared gaps in ascending
  // dimension order keeps the staged distance bit-identical to what a
  // fresh child evaluation would produce.
  double g2[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    const double gap = double(q[d]) - clamped[d];
    g2[d] = gap * gap;
  }

  // Stage every non-vanished child's clamp coordinate and box distance
  // (no budget consumed: this mirrors the upper-bound prune a child
  // evaluation would apply before its own budget tick).
  double child_dist[kMaxRegionDim];
  float child_c[kMaxRegionDim];  // the one clamp coordinate that changes
  uint8_t child_dim[kMaxRegionDim];
  size_t child_count = 0;
  for (size_t d = 0; d < dim; ++d) {
    const bool hi_side = ((covering_corner >> d) & 1u) != 0;
    const float clip = covering_inner[d];
    const float nlo = hi_side ? lo[d] : std::max(lo[d], clip);
    const float nhi = hi_side ? std::min(hi[d], clip) : hi[d];
    if (nlo > nhi) continue;  // Sub-box vanished.
    const float v = q[d];
    const float c = v < nlo ? nlo : (v > nhi ? nhi : v);
    const double gap = double(v) - c;
    const double saved = g2[d];
    g2[d] = gap * gap;
    double sum = 0.0;
    for (size_t dd = 0; dd < dim; ++dd) sum += g2[dd];
    g2[d] = saved;
    child_dist[child_count] = std::sqrt(sum);
    child_c[child_count] = c;
    child_dim[child_count] = static_cast<uint8_t>(d);
    ++child_count;
  }

  // Nearest-first visit order (insertion sort: at most `dim` children).
  size_t order[kMaxRegionDim];
  for (size_t i = 0; i < child_count; ++i) order[i] = i;
  for (size_t i = 1; i < child_count; ++i) {
    const size_t k = order[i];
    size_t j = i;
    for (; j > 0 && child_dist[order[j - 1]] > child_dist[k]; --j) {
      order[j] = order[j - 1];
    }
    order[j] = k;
  }

  double best = upper;
  float child_lo[kMaxRegionDim];
  float child_hi[kMaxRegionDim];
  float child_clamp[kMaxRegionDim];
  for (size_t i = 0; i < child_count; ++i) {
    const size_t k = order[i];
    // Sorted prune: every remaining child's box distance is >= this
    // one's, so none can improve `best`.
    if (child_dist[k] >= best) break;
    const size_t d = child_dim[k];
    std::copy(lo, lo + dim, child_lo);
    std::copy(hi, hi + dim, child_hi);
    std::copy(clamped, clamped + dim, child_clamp);
    child_clamp[d] = child_c[k];
    if ((covering_corner >> d) & 1u) {
      child_hi[d] = std::min(child_hi[d], covering_inner[d]);
    } else {
      child_lo[d] = std::max(child_lo[d], covering_inner[d]);
    }
    best = std::min(best, RegionDistanceResume<DIM>(search, child_lo, child_hi,
                                                    child_clamp, child_dist[k],
                                                    best));
    if (best <= box_dist + 1e-12) break;  // Cannot get closer than the box.
  }
  // If every sub-box vanished (the bites cover this whole box), `best`
  // stays at `upper`, correctly pruning the branch: no data lives here.
  return best;
}

// `upper` is the best region distance found so far anywhere in the
// search: branches whose plain box distance already reaches it cannot
// improve the answer and are pruned (branch and bound).
template <size_t DIM>
double RegionDistanceImpl(RegionSearch& search, const float* lo,
                          const float* hi, double upper) {
  const geom::Vec& q = *search.query;
  const size_t dim = DIM == 0 ? search.dim : DIM;

  double box_dist_sq = 0.0;
  float clamped[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    const float v = q[d];
    const float c = v < lo[d] ? lo[d] : (v > hi[d] ? hi[d] : v);
    clamped[d] = c;
    const double gap = double(v) - c;
    box_dist_sq += gap * gap;
  }
  const double box_dist = std::sqrt(box_dist_sq);
  if (box_dist >= upper) return upper;
  return RegionDistanceResume<DIM>(search, lo, hi, clamped, box_dist, upper);
}

// Dispatches once per region search to the dim-specialized recursion
// (dims 2..8 cover every paper workload; 0 is the runtime-dim fallback).
double RegionDistanceDispatch(RegionSearch& search, const float* lo,
                              const float* hi, double upper) {
  switch (search.dim) {
    case 2: return RegionDistanceImpl<2>(search, lo, hi, upper);
    case 3: return RegionDistanceImpl<3>(search, lo, hi, upper);
    case 4: return RegionDistanceImpl<4>(search, lo, hi, upper);
    case 5: return RegionDistanceImpl<5>(search, lo, hi, upper);
    case 6: return RegionDistanceImpl<6>(search, lo, hi, upper);
    case 7: return RegionDistanceImpl<7>(search, lo, hi, upper);
    case 8: return RegionDistanceImpl<8>(search, lo, hi, upper);
    default: return RegionDistanceImpl<0>(search, lo, hi, upper);
  }
}

// ---------------------------------------------------------------------------
// Flattened iterative region search (the staged/batch hot path)
// ---------------------------------------------------------------------------
//
// The recursion above is the bit-identity reference (JaggedMinDistanceRaw
// keeps it); the staged entry point used by the batched node scan runs
// this explicit LIFO stack instead. It visits the identical boxes in the
// identical depth-first nearest-first order, consumes budget ticks at
// the identical points, and applies the identical prunes, so its result
// is bit-for-bit the recursion's — the tests that compare batch scans
// against the scalar path enforce exactly that. What changes is the
// machinery: no call frames, child staging kept in flat reusable
// frames, and the covering scan dispatched to the 8-wide SIMD variant.

// Depth never exceeds 1 + (budget ticks): each pushed frame consumed
// one successful tick, and the search budget is <= 48.
constexpr size_t kMaxStackDepth = 64;

// One split-in-progress: a box, its clamp/distance, the covering bite
// being split around, and the staged (sorted) children not yet visited.
struct SplitFrame {
  float lo[kMaxRegionDim];
  float hi[kMaxRegionDim];
  float clamped[kMaxRegionDim];
  double box_dist;
  uint32_t corner;           // covering bite's corner mask
  const float* inner;        // covering bite's inner point
  // Per-dimension covering masks for THIS box's clamp point: bit b of
  // dim_mask[d] is the dimension-d strict-inside test of bite b (see
  // CoveringMaskDim). A child's clamp differs from its parent's in
  // exactly one dimension, so a child scan copies these and recomputes
  // a single row — the incremental trick that makes the stack search's
  // covering scans ~dim times cheaper than full rescans. Only
  // maintained when live_count <= 64 (JB up to 6 dimensions; larger
  // bite sets take the full-scan fallback).
  uint64_t dim_mask[kMaxRegionDim];
  double child_dist[kMaxRegionDim];
  float child_c[kMaxRegionDim];  // the one clamp coordinate that changes
  uint8_t child_dim[kMaxRegionDim];
  uint8_t order[kMaxRegionDim];
  uint32_t child_count;
  uint32_t next;  // index into `order` of the next child to visit
};

// Bit b: does clamp coordinate `c` pass bite b's dimension-`d` strict
// inside test? Exact compares (identical to FirstCoveringBite's per-dim
// term), so ANDing the masks over all dimensions and taking the lowest
// set bit selects exactly the bite the full scan would. Bits at or past
// live_count may be garbage (SIMD reads whole 8-lane blocks); callers
// AND with the valid mask.
template <size_t DIM>
uint64_t CoveringMaskDim(const RegionSearch& search, size_t d, float c) {
  const float* row_lo = search.plane_lo + d * search.plane_stride;
  const float* row_hi = search.plane_hi + d * search.plane_stride;
#if defined(BW_HAVE_AVX2)
  if (search.simd_covering) {
    return detail::CoveringMaskDimAvx2(row_lo, row_hi, search.live_count, c);
  }
#endif
  uint64_t m = 0;
  for (size_t b = 0; b < search.live_count; ++b) {
    m |= static_cast<uint64_t>(unsigned(row_lo[b] < c) &
                               unsigned(c < row_hi[b]))
         << b;
  }
  return m;
}

// Stages the children of the split around f.corner/f.inner: the same
// arithmetic, in the same order, as SplitAroundBite's staging block
// (g2 recomputed from the parent clamp; one-dimension re-sum per child
// in ascending dimension order; nearest-first insertion sort), so the
// staged distances are bit-identical to what the recursion computes.
template <size_t DIM>
void StageSplitChildren(const RegionSearch& search, SplitFrame& f) {
  const size_t dim = DIM == 0 ? search.dim : DIM;
  const geom::Vec& q = *search.query;

  double g2[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    const double gap = double(q[d]) - f.clamped[d];
    g2[d] = gap * gap;
  }

  f.child_count = 0;
  f.next = 0;
  for (size_t d = 0; d < dim; ++d) {
    const bool hi_side = ((f.corner >> d) & 1u) != 0;
    const float clip = f.inner[d];
    const float nlo = hi_side ? f.lo[d] : std::max(f.lo[d], clip);
    const float nhi = hi_side ? std::min(f.hi[d], clip) : f.hi[d];
    if (nlo > nhi) continue;  // Sub-box vanished.
    const float v = q[d];
    const float c = v < nlo ? nlo : (v > nhi ? nhi : v);
    const double gap = double(v) - c;
    const double saved = g2[d];
    g2[d] = gap * gap;
    double sum = 0.0;
    for (size_t dd = 0; dd < dim; ++dd) sum += g2[dd];
    g2[d] = saved;
    f.child_dist[f.child_count] = std::sqrt(sum);
    f.child_c[f.child_count] = c;
    f.child_dim[f.child_count] = static_cast<uint8_t>(d);
    ++f.child_count;
  }

  for (uint32_t i = 0; i < f.child_count; ++i) {
    f.order[i] = static_cast<uint8_t>(i);
  }
  for (uint32_t i = 1; i < f.child_count; ++i) {
    const uint8_t k = f.order[i];
    uint32_t j = i;
    for (; j > 0 && f.child_dist[f.order[j - 1]] > f.child_dist[k]; --j) {
      f.order[j] = f.order[j - 1];
    }
    f.order[j] = k;
  }
}

// The iterative equivalent of SplitAroundBite + RegionDistanceResume,
// entered (like the staged recursion) at the root split. `best` threads
// the recursion's upper bound: a child call's `upper` is always the
// caller's current best, and its return value becomes the caller's new
// best, so one variable carries both. The three recursion exits map to:
//   child_dist >= best   -> pop (the sorted-scan break),
//   best <= box_dist+eps -> pop on resume (the cannot-get-closer break,
//                           checked only after at least one child, as in
//                           the recursion's loop tail),
//   budget/no-covering   -> fold the child's box distance into best.
template <size_t DIM>
double StackRegionSearch(RegionSearch& search, const float* lo,
                         const float* hi, const float* clamped,
                         double box_dist, uint32_t covering_corner,
                         const float* covering_inner, double upper) {
  const size_t dim = DIM == 0 ? search.dim : DIM;
  BW_CHECK_LT(static_cast<size_t>(search.budget) + 2, kMaxStackDepth);

  // Incremental covering masks fit 64 bites; beyond that every child
  // scan falls back to the full plane scan (CoveringScan).
  const bool use_masks = search.live_count <= 64;
  const uint64_t valid_mask =
      search.live_count >= 64 ? ~uint64_t{0}
                              : (uint64_t{1} << search.live_count) - 1;

  SplitFrame frames[kMaxStackDepth];
  SplitFrame& root = frames[0];
  std::copy(lo, lo + dim, root.lo);
  std::copy(hi, hi + dim, root.hi);
  std::copy(clamped, clamped + dim, root.clamped);
  root.box_dist = box_dist;
  root.corner = covering_corner;
  root.inner = covering_inner;
  if (use_masks) {
    for (size_t d = 0; d < dim; ++d) {
      root.dim_mask[d] = CoveringMaskDim<DIM>(search, d, clamped[d]);
    }
  }
  StageSplitChildren<DIM>(search, root);

  double best = upper;
  size_t depth = 1;
  while (depth > 0) {
    SplitFrame& f = frames[depth - 1];
    if (f.next > 0 && best <= f.box_dist + 1e-12) {
      --depth;  // Cannot get closer than this box: abandon its siblings.
      continue;
    }
    if (f.next >= f.child_count) {
      --depth;
      continue;
    }
    const size_t k = f.order[f.next++];
    if (f.child_dist[k] >= best) {
      --depth;  // Sorted scan: no remaining child can improve best.
      continue;
    }

    // Visit the child: build its box and clamp in the next frame slot
    // (it becomes a real frame only if the child itself splits).
    SplitFrame& g = frames[depth];
    const size_t d = f.child_dim[k];
    std::copy(f.lo, f.lo + dim, g.lo);
    std::copy(f.hi, f.hi + dim, g.hi);
    std::copy(f.clamped, f.clamped + dim, g.clamped);
    g.clamped[d] = f.child_c[k];
    if ((f.corner >> d) & 1u) {
      g.hi[d] = std::min(g.hi[d], f.inner[d]);
    } else {
      g.lo[d] = std::max(g.lo[d], f.inner[d]);
    }
    g.box_dist = f.child_dist[k];

    if (--search.budget < 0) {
      best = std::min(best, g.box_dist);  // Admissible budget fallback.
      continue;
    }
    size_t covering;
    if (use_masks) {
      // Only dimension d's clamp coordinate changed: inherit the other
      // rows' masks, recompute d's, AND them all. Lowest set bit =
      // first covering bite, exactly as the full scan.
      std::copy(f.dim_mask, f.dim_mask + dim, g.dim_mask);
      g.dim_mask[d] = CoveringMaskDim<DIM>(search, d, g.clamped[d]);
      uint64_t all = valid_mask;
      for (size_t dd = 0; dd < dim; ++dd) all &= g.dim_mask[dd];
      covering = all != 0 ? static_cast<size_t>(__builtin_ctzll(all))
                          : search.live_count;
    } else {
      covering = CoveringScan<DIM>(search, g.clamped);
    }
    if (covering == search.live_count) {
      best = std::min(best, g.box_dist);  // Clamp in region: exact.
      continue;
    }
    g.corner = search.live_corner[covering];
    g.inner = search.live_inner[covering];
    StageSplitChildren<DIM>(search, g);
    ++depth;
  }
  return best;
}

double StackRegionSearchDispatch(RegionSearch& search, const float* lo,
                                 const float* hi, const float* clamped,
                                 double box_dist, uint32_t covering_corner,
                                 const float* covering_inner, double upper) {
  switch (search.dim) {
    case 2:
      return StackRegionSearch<2>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    case 3:
      return StackRegionSearch<3>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    case 4:
      return StackRegionSearch<4>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    case 5:
      return StackRegionSearch<5>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    case 6:
      return StackRegionSearch<6>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    case 7:
      return StackRegionSearch<7>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    case 8:
      return StackRegionSearch<8>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
    default:
      return StackRegionSearch<0>(search, lo, hi, clamped, box_dist,
                                  covering_corner, covering_inner, upper);
  }
}

}  // namespace

double JaggedMinDistanceRaw(size_t dim, const float* lo, const float* hi,
                            const uint32_t* corners, const float* inners,
                            size_t bite_count, const geom::Vec& query) {
  BW_CHECK_LE(dim, kMaxRegionDim);
  RegionSearch search;
  search.query = &query;
  search.dim = dim;
  search.budget = 48;
  JaggedLiveBites live;
  if (bite_count <= JaggedLiveBites::kMaxBites) {
    for (size_t b = 0; b < bite_count; ++b) {
      live.Add(dim, lo, hi, corners[b], inners + b * dim);
    }
    PointSearchAtLive(search, live);
  } else {
    BuildOverflowLiveBites(search, dim, lo, hi, corners, inners, bite_count);
  }
  return RegionDistanceDispatch(search, lo, hi,
                                std::numeric_limits<double>::infinity());
}

double JaggedMinDistanceStaged(size_t dim, const float* lo, const float* hi,
                               const JaggedLiveBites& live,
                               size_t covering_live_index,
                               const geom::Vec& query, const float* clamped,
                               double box_dist_sq) {
  BW_CHECK_LE(dim, kMaxRegionDim);
  RegionSearch search;
  search.query = &query;
  search.dim = dim;
  // Replays the root-level step of JaggedMinDistanceRaw without
  // recomputing the clamp or rescanning for the covering bite: at the
  // root, `upper` is +inf (the box-distance prune cannot fire) and the
  // budget check (48 -> 47) cannot fire either, and the caller's
  // mask-filtered covering test selects the same first live bite the
  // root scan would (the filter drops only provably-non-containing
  // bites and preserves codec order), so resuming at the split is a
  // bit-identical recursion.
  search.budget = 47;
#if defined(BW_HAVE_AVX2)
  search.simd_covering =
      util::ActiveKernelIsa() == util::KernelIsa::kAvx2;
#endif
  PointSearchAtLive(search, live);
  const double box_dist = std::sqrt(box_dist_sq);
  // The staged hot path runs the flattened stack (bit-identical to the
  // recursion; see StackRegionSearch).
  return StackRegionSearchDispatch(search, lo, hi, clamped, box_dist,
                                   live.corner[covering_live_index],
                                   live.inner[covering_live_index],
                                   std::numeric_limits<double>::infinity());
}

double JaggedMinDistance(const geom::Rect& mbr,
                         const std::vector<Bite>& bites,
                         const geom::Vec& query) {
  const size_t dim = query.dim();
  BW_CHECK_LE(dim, kMaxRegionDim);
  // Flatten the bites into the raw layout (bounded stack buffers).
  BW_CHECK_LE(bites.size(), 4096u);
  static thread_local std::vector<uint32_t> corners;
  static thread_local std::vector<float> inners;
  corners.clear();
  inners.clear();
  for (const Bite& bite : bites) {
    corners.push_back(bite.corner);
    for (size_t d = 0; d < dim; ++d) inners.push_back(bite.inner[d]);
  }
  float lo[kMaxRegionDim];
  float hi[kMaxRegionDim];
  for (size_t d = 0; d < dim; ++d) {
    lo[d] = mbr.lo()[d];
    hi[d] = mbr.hi()[d];
  }
  return JaggedMinDistanceRaw(dim, lo, hi, corners.data(), inners.data(),
                              corners.size(), query);
}

}  // namespace bw::core
