#include "core/jagged.h"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <numeric>

#include "am/bp_kernels.h"
#include "am/split_heuristics.h"
#include "util/cpu.h"

namespace bw::core {

// ---------------------------------------------------------------------------
// JaggedExtension: shared behavior
// ---------------------------------------------------------------------------

gist::Bytes JaggedExtension::BuildOver(
    const std::vector<geom::Rect>& contents) {
  const geom::Rect mbr = geom::Rect::BoundingBoxOfRects(contents);
  std::vector<Bite> bites = algorithm_ == BiteAlgorithm::kMaxVolume
                                ? MaxVolumeCorners(mbr, contents)
                                : NibbleAllCorners(mbr, contents);
  return Encode(mbr, bites);
}

gist::Bytes JaggedExtension::BpFromPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> contents;
  contents.reserve(points.size());
  for (const auto& p : points) contents.emplace_back(p);
  return BuildOver(contents);
}

gist::Bytes JaggedExtension::BpFromChildBps(
    const std::vector<gist::Bytes>& children) {
  // Parent bites are nibbled against the child MBRs: conservative (a
  // child's region is inside its MBR), so covering is preserved.
  std::vector<geom::Rect> contents;
  contents.reserve(children.size());
  for (const auto& child : children) contents.push_back(Decode(child).mbr);
  return BuildOver(contents);
}

double JaggedExtension::BpMinDistance(gist::ByteSpan bp,
                                      const geom::Vec& query) const {
  const JaggedBp decoded = Decode(bp);
  return JaggedMinDistance(decoded.mbr, decoded.bites, query);
}

double JaggedExtension::BpPenalty(gist::ByteSpan bp,
                                  const geom::Vec& point) const {
  // Insertion descends by MBR enlargement; bites are rebuilt by the
  // adjust-keys pass after the insert (the paper left native JB/XJB
  // insertion algorithms as future work; this recompute-based scheme is
  // the straightforward realization).
  return Decode(bp).mbr.Enlargement(geom::Rect(point));
}

geom::Vec JaggedExtension::BpCenter(gist::ByteSpan bp) const {
  return Decode(bp).mbr.Center();
}

gist::Bytes JaggedExtension::BpIncludePoint(gist::ByteSpan bp,
                                            const geom::Vec& point) const {
  // Enlarge the MBR; invalidate any bite the new point now falls into
  // (covering must be preserved; bites are only rebuilt on splits).
  JaggedBp decoded = Decode(bp);
  decoded.mbr.ExpandToInclude(point);
  const size_t corners = size_t{1} << dim();
  std::vector<Bite> full(corners);
  for (size_t c = 0; c < corners; ++c) {
    full[c].corner = static_cast<uint32_t>(c);
    full[c].inner = geom::Vec(dim());
    for (size_t d = 0; d < dim(); ++d) {
      full[c].inner[d] = ((c >> d) & 1u) ? decoded.mbr.hi()[d]
                                         : decoded.mbr.lo()[d];
    }
  }
  for (const Bite& bite : decoded.bites) {
    if (!PointInsideBite(decoded.mbr, bite, point)) {
      full[bite.corner] = bite;
    }
  }
  return Encode(decoded.mbr, full);
}

gist::SplitAssignment JaggedExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const auto& p : points) rects.emplace_back(p);
  return am::QuadraticSplit(rects, min_fill_);
}

gist::SplitAssignment JaggedExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Rect> rects;
  rects.reserve(bps.size());
  for (const auto& bp : bps) rects.push_back(Decode(bp).mbr);
  return am::QuadraticSplit(rects, min_fill_);
}

double JaggedExtension::BpVolume(gist::ByteSpan bp) const {
  const JaggedBp decoded = Decode(bp);
  double volume = decoded.mbr.Volume();
  // Bites may overlap each other; subtracting their raw volumes is an
  // optimistic diagnostic, clamped at zero.
  for (const Bite& bite : decoded.bites) {
    volume -= bite.Volume(decoded.mbr);
  }
  return std::max(volume, 0.0);
}

std::string JaggedExtension::BpToString(gist::ByteSpan bp) const {
  const JaggedBp decoded = Decode(bp);
  size_t live = 0;
  for (const Bite& b : decoded.bites) {
    if (!b.IsEmpty(decoded.mbr)) ++live;
  }
  return decoded.mbr.ToString() + " with " + std::to_string(live) + " bites";
}

// ---------------------------------------------------------------------------
// JB codec: positional bites for every corner
// ---------------------------------------------------------------------------

gist::Bytes JbExtension::Encode(const geom::Rect& mbr,
                                const std::vector<Bite>& all_bites) const {
  const size_t corners = size_t{1} << dim();
  BW_CHECK_EQ(all_bites.size(), corners);
  gist::Bytes out;
  out.reserve(BpFloatCount() * sizeof(float));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.lo()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.hi()[i]);
  for (size_t c = 0; c < corners; ++c) {
    BW_CHECK_EQ(all_bites[c].corner, static_cast<uint32_t>(c));
    for (size_t i = 0; i < dim(); ++i) {
      AppendFloat(out, all_bites[c].inner[i]);
    }
  }
  return out;
}

namespace {
// Stack-staging caps for the batched covered fallback, mirroring the
// scalar overrides' own stack buffers; oversized BPs (which those
// overrides also route to the generic decoding path) take the virtual
// scalar call instead.
constexpr size_t kMaxBatchBites = 256;
constexpr size_t kMaxBatchDim = 16;
}  // namespace

template <size_t DIM>
double JaggedExtension::BatchCoveredMinDistance(gist::ByteSpan bp,
                                                const geom::Vec& query,
                                                size_t bite_count,
                                                bool interleaved,
                                                size_t covering_bite,
                                                const float* clamped,
                                                double box_dist_sq) const {
  const size_t d = DIM == 0 ? dim() : DIM;
  if (bite_count > kMaxBatchBites || d > kMaxBatchDim) {
    return BpMinDistance(bp, query);
  }
  // Single staging pass: de-interleave the codec records and bulk-build
  // the bite planes (branchless per-dimension rows, no empty-bite
  // compaction — empty bites never win a covering scan, see
  // JaggedLiveBites::StageAll). Bites keep their codec positions, so
  // the covering bite the batch test already identified is passed down
  // by index directly and the region search resumes at the split around
  // it — no second decode pass, no root covering rescan.
  float mbr[2 * kMaxBatchDim];
  float inners[kMaxBatchBites * kMaxBatchDim];
  std::memcpy(mbr, bp.data(), 2 * d * sizeof(float));
  JaggedLiveBites live;
  if (interleaved) {
    // XJB: (corner, inner) records after the MBR.
    uint32_t corners[kMaxBatchBites];
    size_t offset = 2 * d * sizeof(float);
    for (size_t b = 0; b < bite_count; ++b) {
      std::memcpy(&corners[b], bp.data() + offset, sizeof(uint32_t));
      offset += sizeof(uint32_t);
      std::memcpy(&inners[b * d], bp.data() + offset, d * sizeof(float));
      offset += d * sizeof(float);
    }
    live.StageAll<DIM>(d, corners, inners, bite_count);
  } else {
    // JB: inners are already planar after the MBR; corners positional.
    std::memcpy(inners, bp.data() + 2 * d * sizeof(float),
                bite_count * d * sizeof(float));
    live.StageAllPositional<DIM>(d, inners, bite_count);
  }
  return JaggedMinDistanceStaged(d, mbr, mbr + d, live, covering_bite, query,
                                 clamped, box_dist_sq);
}

template <size_t DIM>
void JaggedExtension::BatchScanImpl(gist::BatchScratch& scratch,
                                    const geom::Vec& query, size_t bite_count,
                                    bool interleaved, bool range_mode,
                                    double radius) const {
  const size_t d = DIM == 0 ? dim() : DIM;
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  if (range_mode) scratch.consistent.resize(n);
  scratch.soa.resize(3 * d * n);
  float* lo = scratch.soa.data();
  float* hi = lo + d * n;
  float* clamp = hi + d * n;
  for (size_t e = 0; e < n; ++e) {
    const gist::ByteSpan bp = scratch.preds[e];
    for (size_t dd = 0; dd < d; ++dd) {
      lo[dd * n + e] = ReadFloat(bp, dd);
      hi[dd * n + e] = ReadFloat(bp, d + dd);
    }
  }
  // Vectorized pass: clamp of the query onto every MBR + box distance,
  // with the exact per-dim arithmetic of the region search.
  am::RectClampMinDistSquared(d, n, lo, hi, query, clamp,
                              scratch.distances.data());
  if (d > kMaxBatchDim) {
    // Beyond the stack-staging caps every entry takes the scalar path
    // (the region search itself also caps at 16 dimensions).
    for (size_t e = 0; e < n; ++e) {
      scratch.distances[e] = BpMinDistance(scratch.preds[e], query);
      if (range_mode) {
        scratch.consistent[e] = scratch.distances[e] <= radius ? 1 : 0;
      }
    }
    return;
  }
  for (size_t e = 0; e < n; ++e) {
    if (range_mode) {
      // Radius push-down: the region distance is never below the box
      // distance, so a box already beyond the radius decides the entry
      // without the covering test or the region search. (Compared as
      // distances, not squares, to reuse the exact scalar `<= radius`
      // arithmetic on the boundary.)
      const double box_dist = std::sqrt(scratch.distances[e]);
      if (!(box_dist <= radius)) {
        scratch.distances[e] = box_dist;
        scratch.consistent[e] = 0;
        continue;
      }
    }
    const gist::ByteSpan bp = scratch.preds[e];
    // Pull the next entry's BP record toward the cache while this one's
    // covering scan runs: node entries are independent byte spans, so
    // without the hint each iteration starts with a cold dependent load.
    if (e + 1 < n) {
      const auto* next = scratch.preds[e + 1].data();
      util::PrefetchRead(next);
      util::PrefetchRead(next + 64);
    }
    // Is the clamp point strictly inside any bite? Strict inequality on
    // every axis implies the bite is non-empty (clamp can never lie
    // strictly beyond its own MBR face), so the scalar path's empty-bite
    // filter needs no separate check here.
    //
    // Corner-mask pre-filter: a dimension whose clamp coordinate sits ON
    // an MBR face pins the corner bit a containing bite could have — a
    // clamp at lo[dd] can never be strictly past a hi-side bite's inner
    // face (codec invariant: inners lie within the MBR), and vice versa.
    // Distant queries clamp onto faces in most dimensions, so the two
    // u32 mask compares below reject almost every bite without touching
    // its inner coordinates.
    float clamped[kMaxBatchDim];
    uint32_t face_lo = 0;  // dims clamped onto the lo face: corner bit must be 0
    uint32_t face_hi = 0;  // dims clamped onto the hi face: corner bit must be 1
    for (size_t dd = 0; dd < d; ++dd) {
      const float cl = clamp[dd * n + e];
      clamped[dd] = cl;
      face_lo |= uint32_t(cl == lo[dd * n + e]) << dd;
      face_hi |= uint32_t(cl == hi[dd * n + e]) << dd;
    }
    size_t covering = bite_count;
    for (size_t b = 0; b < bite_count && covering == bite_count; ++b) {
      uint32_t corner;
      size_t inner_base;  // float index of the bite's first inner coord.
      if (interleaved) {
        const size_t rec = 2 * d + b * (1 + d);
        corner = ReadU32(bp, rec * sizeof(float));
        inner_base = rec + 1;
      } else {
        corner = static_cast<uint32_t>(b);
        inner_base = (2 + b) * d;
      }
      if ((corner & face_lo) != 0 || (face_hi & ~corner) != 0) continue;
      // Branchless per-dimension strict-inside test for the rare
      // candidates that survive the mask filter.
      unsigned inside = 1;
      for (size_t dd = 0; dd < d; ++dd) {
        const float inner = ReadFloat(bp, inner_base + dd);
        const unsigned hi_side = (corner >> dd) & 1u;
        inside &= hi_side ? unsigned(clamped[dd] > inner)
                          : unsigned(clamped[dd] < inner);
      }
      if (inside) covering = b;
    }
    if (covering != bite_count) {
      // The query impinges into a carved corner: the answer needs the
      // recursive region decomposition. Resume the region search from
      // the clamp, squared box distance, and covering bite this pass
      // already produced (bit-identical to the scalar path by
      // construction; see JaggedMinDistanceStaged).
      scratch.distances[e] = BatchCoveredMinDistance<DIM>(
          bp, query, bite_count, interleaved, covering, clamped,
          scratch.distances[e]);
    } else {
      // The clamp point itself is in the jagged region: the box distance
      // is exact, as in RegionDistanceImpl's no-covering-bite return.
      scratch.distances[e] = std::sqrt(scratch.distances[e]);
    }
    if (range_mode) {
      // Same doubles as the scalar path reached this point, so the
      // `<= radius` decision is bit-identical.
      scratch.consistent[e] = scratch.distances[e] <= radius ? 1 : 0;
    }
  }
}

void JaggedExtension::BatchMinDistanceImpl(gist::BatchScratch& scratch,
                                           const geom::Vec& query,
                                           size_t bite_count,
                                           bool interleaved) const {
  // One dim dispatch per node scan: the specialized bodies fully unroll
  // their per-dimension loops (dims 2..8 cover the paper's workloads).
  switch (dim()) {
    case 2: return BatchScanImpl<2>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    case 3: return BatchScanImpl<3>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    case 4: return BatchScanImpl<4>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    case 5: return BatchScanImpl<5>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    case 6: return BatchScanImpl<6>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    case 7: return BatchScanImpl<7>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    case 8: return BatchScanImpl<8>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/false, 0.0);
    default: return BatchScanImpl<0>(scratch, query, bite_count, interleaved,
                                     /*range_mode=*/false, 0.0);
  }
}

void JaggedExtension::BatchConsistentRangeImpl(gist::BatchScratch& scratch,
                                               const geom::Vec& query,
                                               size_t bite_count,
                                               bool interleaved,
                                               double radius) const {
  switch (dim()) {
    case 2: return BatchScanImpl<2>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    case 3: return BatchScanImpl<3>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    case 4: return BatchScanImpl<4>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    case 5: return BatchScanImpl<5>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    case 6: return BatchScanImpl<6>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    case 7: return BatchScanImpl<7>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    case 8: return BatchScanImpl<8>(scratch, query, bite_count, interleaved,
                                    /*range_mode=*/true, radius);
    default: return BatchScanImpl<0>(scratch, query, bite_count, interleaved,
                                     /*range_mode=*/true, radius);
  }
}

double JbExtension::BpMinDistance(gist::ByteSpan bp,
                                  const geom::Vec& query) const {
  const size_t d = dim();
  BW_CHECK_MSG(bp.size() == BpFloatCount() * sizeof(float),
               "JB predicate size mismatch");
  const size_t corner_count = size_t{1} << d;
  // Stack buffer covers JB up to D = 8 ((2 + 256) * 8 floats); beyond
  // that, fall back to the generic decoding path.
  float buf[2064];
  static constexpr size_t kMaxCorners = 256;
  if (bp.size() > sizeof(buf) || corner_count > kMaxCorners) {
    return JaggedExtension::BpMinDistance(bp, query);
  }
  std::memcpy(buf, bp.data(), bp.size());
  uint32_t corner_ids[kMaxCorners];
  for (uint32_t c = 0; c < corner_count; ++c) corner_ids[c] = c;
  return JaggedMinDistanceRaw(d, buf, buf + d, corner_ids, buf + 2 * d,
                              corner_count, query);
}

JaggedBp JbExtension::Decode(gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), BpFloatCount() * sizeof(float));
  JaggedBp out;
  geom::Vec lo(dim());
  geom::Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, i);
  for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, dim() + i);
  out.mbr = geom::Rect(std::move(lo), std::move(hi));
  const size_t corners = size_t{1} << dim();
  out.bites.reserve(corners);
  for (size_t c = 0; c < corners; ++c) {
    Bite bite;
    bite.corner = static_cast<uint32_t>(c);
    bite.inner = geom::Vec(dim());
    for (size_t i = 0; i < dim(); ++i) {
      bite.inner[i] = ReadFloat(bp, (2 + c) * dim() + i);
    }
    out.bites.push_back(std::move(bite));
  }
  return out;
}

// ---------------------------------------------------------------------------
// XJB codec: the X largest bites, tagged by corner
// ---------------------------------------------------------------------------

gist::Bytes XjbExtension::Encode(const geom::Rect& mbr,
                                 const std::vector<Bite>& all_bites) const {
  // Rank bites and keep the top X non-empty ones. Default ranking is the
  // paper's heuristic ("picking the bites with the largest volumes");
  // with reference queries the primary key becomes the number of queries
  // whose clamp onto this MBR falls inside the bite — the queries the
  // bite actually shields.
  std::vector<size_t> order(all_bites.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> volumes(all_bites.size());
  std::vector<double> shields(all_bites.size(), 0.0);
  for (size_t i = 0; i < all_bites.size(); ++i) {
    volumes[i] = all_bites[i].IsEmpty(mbr) ? 0.0 : all_bites[i].Volume(mbr);
  }
  if (!reference_queries_.empty()) {
    for (const geom::Vec& q : reference_queries_) {
      if (q.dim() != mbr.dim()) continue;
      const geom::Vec clamp = mbr.ClosestPointTo(q);
      for (size_t i = 0; i < all_bites.size(); ++i) {
        if (volumes[i] <= 0.0) continue;
        if (PointInsideBite(mbr, all_bites[i], clamp)) shields[i] += 1.0;
      }
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shields[a] != shields[b]) return shields[a] > shields[b];
    return volumes[a] > volumes[b];
  });

  gist::Bytes out;
  out.reserve(BpNumberCount() * sizeof(float));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.lo()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.hi()[i]);
  for (size_t rank = 0; rank < x_; ++rank) {
    if (rank < order.size() && volumes[order[rank]] > 0.0) {
      const Bite& bite = all_bites[order[rank]];
      AppendU32(out, bite.corner);
      for (size_t i = 0; i < dim(); ++i) AppendFloat(out, bite.inner[i]);
    } else {
      // Pad with an empty bite at corner 0 (inner == corner point).
      AppendU32(out, 0);
      for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.lo()[i]);
    }
  }
  return out;
}

void JbExtension::BpMinDistanceBatch(gist::BatchScratch& scratch,
                                     const geom::Vec& query) const {
  for (size_t e = 0; e < scratch.count(); ++e) {
    BW_CHECK_MSG(scratch.preds[e].size() == BpFloatCount() * sizeof(float),
                 "JB predicate size mismatch");
  }
  BatchMinDistanceImpl(scratch, query, size_t{1} << dim(),
                       /*interleaved=*/false);
}

void JbExtension::BpConsistentRangeBatch(gist::BatchScratch& scratch,
                                         const geom::Vec& query,
                                         double radius) const {
  for (size_t e = 0; e < scratch.count(); ++e) {
    BW_CHECK_MSG(scratch.preds[e].size() == BpFloatCount() * sizeof(float),
                 "JB predicate size mismatch");
  }
  BatchConsistentRangeImpl(scratch, query, size_t{1} << dim(),
                           /*interleaved=*/false, radius);
}

double XjbExtension::BpMinDistance(gist::ByteSpan bp,
                                   const geom::Vec& query) const {
  const size_t d = dim();
  BW_CHECK_MSG(bp.size() == BpNumberCount() * sizeof(float),
               "XJB predicate size mismatch: index built with a different X");
  static constexpr size_t kMaxBites = 256;
  float mbr[2 * 16];
  float inners[kMaxBites * 16];
  uint32_t corners[kMaxBites];
  if (x_ > kMaxBites || d > 16) {
    return JaggedExtension::BpMinDistance(bp, query);
  }
  std::memcpy(mbr, bp.data(), 2 * d * sizeof(float));
  // Repack the interleaved (corner, inner) records into parallel arrays.
  size_t offset = 2 * d * sizeof(float);
  for (size_t b = 0; b < x_; ++b) {
    std::memcpy(&corners[b], bp.data() + offset, sizeof(uint32_t));
    offset += sizeof(uint32_t);
    std::memcpy(&inners[b * d], bp.data() + offset, d * sizeof(float));
    offset += d * sizeof(float);
  }
  return JaggedMinDistanceRaw(d, mbr, mbr + d, corners, inners, x_, query);
}

void XjbExtension::BpMinDistanceBatch(gist::BatchScratch& scratch,
                                      const geom::Vec& query) const {
  for (size_t e = 0; e < scratch.count(); ++e) {
    BW_CHECK_MSG(scratch.preds[e].size() == BpNumberCount() * sizeof(float),
                 "XJB predicate size mismatch: index built with a different X");
  }
  BatchMinDistanceImpl(scratch, query, x_, /*interleaved=*/true);
}

void XjbExtension::BpConsistentRangeBatch(gist::BatchScratch& scratch,
                                          const geom::Vec& query,
                                          double radius) const {
  for (size_t e = 0; e < scratch.count(); ++e) {
    BW_CHECK_MSG(scratch.preds[e].size() == BpNumberCount() * sizeof(float),
                 "XJB predicate size mismatch: index built with a different X");
  }
  BatchConsistentRangeImpl(scratch, query, x_, /*interleaved=*/true, radius);
}

JaggedBp XjbExtension::Decode(gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), BpNumberCount() * sizeof(float));
  JaggedBp out;
  geom::Vec lo(dim());
  geom::Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, i);
  for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, dim() + i);
  out.mbr = geom::Rect(std::move(lo), std::move(hi));
  out.bites.reserve(x_);
  size_t offset = 2 * dim() * sizeof(float);
  for (size_t rank = 0; rank < x_; ++rank) {
    Bite bite;
    bite.corner = ReadU32(bp, offset);
    offset += sizeof(uint32_t);
    bite.inner = geom::Vec(dim());
    for (size_t i = 0; i < dim(); ++i) {
      bite.inner[i] = ReadFloat(bp.subspan(offset), i);
    }
    offset += dim() * sizeof(float);
    if (!bite.IsEmpty(out.mbr)) out.bites.push_back(std::move(bite));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Automatic X selection (paper future-work item)
// ---------------------------------------------------------------------------

int EstimateXjbHeight(size_t num_points, size_t dim, size_t x,
                      size_t page_bytes, double fill_fraction) {
  const size_t slot_overhead = 2 * sizeof(uint32_t);
  const size_t usable =
      static_cast<size_t>(fill_fraction * static_cast<double>(page_bytes));

  const size_t leaf_entry = dim * sizeof(float) + sizeof(uint64_t) +
                            slot_overhead;
  const size_t leaf_capacity = std::max<size_t>(1, usable / leaf_entry);

  const size_t bp_bytes =
      (2 * dim + (dim + 1) * x) * sizeof(float);
  const size_t internal_entry = bp_bytes + sizeof(uint64_t) + slot_overhead;
  const size_t internal_capacity = std::max<size_t>(2, usable / internal_entry);

  size_t nodes = (num_points + leaf_capacity - 1) / leaf_capacity;
  int height = 1;
  while (nodes > 1) {
    nodes = (nodes + internal_capacity - 1) / internal_capacity;
    ++height;
  }
  return height;
}

size_t AutoSelectXjbX(size_t num_points, size_t dim, size_t page_bytes,
                      double fill_fraction) {
  const size_t max_x = size_t{1} << std::min<size_t>(dim, 12);
  const int base_height =
      EstimateXjbHeight(num_points, dim, 1, page_bytes, fill_fraction);
  size_t best = 1;
  for (size_t x = 2; x <= max_x; ++x) {
    if (EstimateXjbHeight(num_points, dim, x, page_bytes, fill_fraction) ==
        base_height) {
      best = x;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace bw::core
