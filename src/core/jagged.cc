#include "core/jagged.h"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <numeric>

#include "am/split_heuristics.h"

namespace bw::core {

// ---------------------------------------------------------------------------
// JaggedExtension: shared behavior
// ---------------------------------------------------------------------------

gist::Bytes JaggedExtension::BuildOver(
    const std::vector<geom::Rect>& contents) {
  const geom::Rect mbr = geom::Rect::BoundingBoxOfRects(contents);
  std::vector<Bite> bites = algorithm_ == BiteAlgorithm::kMaxVolume
                                ? MaxVolumeCorners(mbr, contents)
                                : NibbleAllCorners(mbr, contents);
  return Encode(mbr, bites);
}

gist::Bytes JaggedExtension::BpFromPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> contents;
  contents.reserve(points.size());
  for (const auto& p : points) contents.emplace_back(p);
  return BuildOver(contents);
}

gist::Bytes JaggedExtension::BpFromChildBps(
    const std::vector<gist::Bytes>& children) {
  // Parent bites are nibbled against the child MBRs: conservative (a
  // child's region is inside its MBR), so covering is preserved.
  std::vector<geom::Rect> contents;
  contents.reserve(children.size());
  for (const auto& child : children) contents.push_back(Decode(child).mbr);
  return BuildOver(contents);
}

double JaggedExtension::BpMinDistance(gist::ByteSpan bp,
                                      const geom::Vec& query) const {
  const JaggedBp decoded = Decode(bp);
  return JaggedMinDistance(decoded.mbr, decoded.bites, query);
}

double JaggedExtension::BpPenalty(gist::ByteSpan bp,
                                  const geom::Vec& point) const {
  // Insertion descends by MBR enlargement; bites are rebuilt by the
  // adjust-keys pass after the insert (the paper left native JB/XJB
  // insertion algorithms as future work; this recompute-based scheme is
  // the straightforward realization).
  return Decode(bp).mbr.Enlargement(geom::Rect(point));
}

geom::Vec JaggedExtension::BpCenter(gist::ByteSpan bp) const {
  return Decode(bp).mbr.Center();
}

gist::Bytes JaggedExtension::BpIncludePoint(gist::ByteSpan bp,
                                            const geom::Vec& point) const {
  // Enlarge the MBR; invalidate any bite the new point now falls into
  // (covering must be preserved; bites are only rebuilt on splits).
  JaggedBp decoded = Decode(bp);
  decoded.mbr.ExpandToInclude(point);
  const size_t corners = size_t{1} << dim();
  std::vector<Bite> full(corners);
  for (size_t c = 0; c < corners; ++c) {
    full[c].corner = static_cast<uint32_t>(c);
    full[c].inner = geom::Vec(dim());
    for (size_t d = 0; d < dim(); ++d) {
      full[c].inner[d] = ((c >> d) & 1u) ? decoded.mbr.hi()[d]
                                         : decoded.mbr.lo()[d];
    }
  }
  for (const Bite& bite : decoded.bites) {
    if (!PointInsideBite(decoded.mbr, bite, point)) {
      full[bite.corner] = bite;
    }
  }
  return Encode(decoded.mbr, full);
}

gist::SplitAssignment JaggedExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const auto& p : points) rects.emplace_back(p);
  return am::QuadraticSplit(rects, min_fill_);
}

gist::SplitAssignment JaggedExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Rect> rects;
  rects.reserve(bps.size());
  for (const auto& bp : bps) rects.push_back(Decode(bp).mbr);
  return am::QuadraticSplit(rects, min_fill_);
}

double JaggedExtension::BpVolume(gist::ByteSpan bp) const {
  const JaggedBp decoded = Decode(bp);
  double volume = decoded.mbr.Volume();
  // Bites may overlap each other; subtracting their raw volumes is an
  // optimistic diagnostic, clamped at zero.
  for (const Bite& bite : decoded.bites) {
    volume -= bite.Volume(decoded.mbr);
  }
  return std::max(volume, 0.0);
}

std::string JaggedExtension::BpToString(gist::ByteSpan bp) const {
  const JaggedBp decoded = Decode(bp);
  size_t live = 0;
  for (const Bite& b : decoded.bites) {
    if (!b.IsEmpty(decoded.mbr)) ++live;
  }
  return decoded.mbr.ToString() + " with " + std::to_string(live) + " bites";
}

// ---------------------------------------------------------------------------
// JB codec: positional bites for every corner
// ---------------------------------------------------------------------------

gist::Bytes JbExtension::Encode(const geom::Rect& mbr,
                                const std::vector<Bite>& all_bites) const {
  const size_t corners = size_t{1} << dim();
  BW_CHECK_EQ(all_bites.size(), corners);
  gist::Bytes out;
  out.reserve(BpFloatCount() * sizeof(float));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.lo()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.hi()[i]);
  for (size_t c = 0; c < corners; ++c) {
    BW_CHECK_EQ(all_bites[c].corner, static_cast<uint32_t>(c));
    for (size_t i = 0; i < dim(); ++i) {
      AppendFloat(out, all_bites[c].inner[i]);
    }
  }
  return out;
}

double JbExtension::BpMinDistance(gist::ByteSpan bp,
                                  const geom::Vec& query) const {
  const size_t d = dim();
  BW_CHECK_MSG(bp.size() == BpFloatCount() * sizeof(float),
               "JB predicate size mismatch");
  const size_t corner_count = size_t{1} << d;
  // Stack buffer covers JB up to D = 8 ((2 + 256) * 8 floats); beyond
  // that, fall back to the generic decoding path.
  float buf[2064];
  static constexpr size_t kMaxCorners = 256;
  if (bp.size() > sizeof(buf) || corner_count > kMaxCorners) {
    return JaggedExtension::BpMinDistance(bp, query);
  }
  std::memcpy(buf, bp.data(), bp.size());
  uint32_t corner_ids[kMaxCorners];
  for (uint32_t c = 0; c < corner_count; ++c) corner_ids[c] = c;
  return JaggedMinDistanceRaw(d, buf, buf + d, corner_ids, buf + 2 * d,
                              corner_count, query);
}

JaggedBp JbExtension::Decode(gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), BpFloatCount() * sizeof(float));
  JaggedBp out;
  geom::Vec lo(dim());
  geom::Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, i);
  for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, dim() + i);
  out.mbr = geom::Rect(std::move(lo), std::move(hi));
  const size_t corners = size_t{1} << dim();
  out.bites.reserve(corners);
  for (size_t c = 0; c < corners; ++c) {
    Bite bite;
    bite.corner = static_cast<uint32_t>(c);
    bite.inner = geom::Vec(dim());
    for (size_t i = 0; i < dim(); ++i) {
      bite.inner[i] = ReadFloat(bp, (2 + c) * dim() + i);
    }
    out.bites.push_back(std::move(bite));
  }
  return out;
}

// ---------------------------------------------------------------------------
// XJB codec: the X largest bites, tagged by corner
// ---------------------------------------------------------------------------

gist::Bytes XjbExtension::Encode(const geom::Rect& mbr,
                                 const std::vector<Bite>& all_bites) const {
  // Rank bites and keep the top X non-empty ones. Default ranking is the
  // paper's heuristic ("picking the bites with the largest volumes");
  // with reference queries the primary key becomes the number of queries
  // whose clamp onto this MBR falls inside the bite — the queries the
  // bite actually shields.
  std::vector<size_t> order(all_bites.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> volumes(all_bites.size());
  std::vector<double> shields(all_bites.size(), 0.0);
  for (size_t i = 0; i < all_bites.size(); ++i) {
    volumes[i] = all_bites[i].IsEmpty(mbr) ? 0.0 : all_bites[i].Volume(mbr);
  }
  if (!reference_queries_.empty()) {
    for (const geom::Vec& q : reference_queries_) {
      if (q.dim() != mbr.dim()) continue;
      const geom::Vec clamp = mbr.ClosestPointTo(q);
      for (size_t i = 0; i < all_bites.size(); ++i) {
        if (volumes[i] <= 0.0) continue;
        if (PointInsideBite(mbr, all_bites[i], clamp)) shields[i] += 1.0;
      }
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shields[a] != shields[b]) return shields[a] > shields[b];
    return volumes[a] > volumes[b];
  });

  gist::Bytes out;
  out.reserve(BpNumberCount() * sizeof(float));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.lo()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.hi()[i]);
  for (size_t rank = 0; rank < x_; ++rank) {
    if (rank < order.size() && volumes[order[rank]] > 0.0) {
      const Bite& bite = all_bites[order[rank]];
      AppendU32(out, bite.corner);
      for (size_t i = 0; i < dim(); ++i) AppendFloat(out, bite.inner[i]);
    } else {
      // Pad with an empty bite at corner 0 (inner == corner point).
      AppendU32(out, 0);
      for (size_t i = 0; i < dim(); ++i) AppendFloat(out, mbr.lo()[i]);
    }
  }
  return out;
}

double XjbExtension::BpMinDistance(gist::ByteSpan bp,
                                   const geom::Vec& query) const {
  const size_t d = dim();
  BW_CHECK_MSG(bp.size() == BpNumberCount() * sizeof(float),
               "XJB predicate size mismatch: index built with a different X");
  static constexpr size_t kMaxBites = 256;
  float mbr[2 * 16];
  float inners[kMaxBites * 16];
  uint32_t corners[kMaxBites];
  if (x_ > kMaxBites || d > 16) {
    return JaggedExtension::BpMinDistance(bp, query);
  }
  std::memcpy(mbr, bp.data(), 2 * d * sizeof(float));
  // Repack the interleaved (corner, inner) records into parallel arrays.
  size_t offset = 2 * d * sizeof(float);
  for (size_t b = 0; b < x_; ++b) {
    std::memcpy(&corners[b], bp.data() + offset, sizeof(uint32_t));
    offset += sizeof(uint32_t);
    std::memcpy(&inners[b * d], bp.data() + offset, d * sizeof(float));
    offset += d * sizeof(float);
  }
  return JaggedMinDistanceRaw(d, mbr, mbr + d, corners, inners, x_, query);
}

JaggedBp XjbExtension::Decode(gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), BpNumberCount() * sizeof(float));
  JaggedBp out;
  geom::Vec lo(dim());
  geom::Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, i);
  for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, dim() + i);
  out.mbr = geom::Rect(std::move(lo), std::move(hi));
  out.bites.reserve(x_);
  size_t offset = 2 * dim() * sizeof(float);
  for (size_t rank = 0; rank < x_; ++rank) {
    Bite bite;
    bite.corner = ReadU32(bp, offset);
    offset += sizeof(uint32_t);
    bite.inner = geom::Vec(dim());
    for (size_t i = 0; i < dim(); ++i) {
      bite.inner[i] = ReadFloat(bp.subspan(offset), i);
    }
    offset += dim() * sizeof(float);
    if (!bite.IsEmpty(out.mbr)) out.bites.push_back(std::move(bite));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Automatic X selection (paper future-work item)
// ---------------------------------------------------------------------------

int EstimateXjbHeight(size_t num_points, size_t dim, size_t x,
                      size_t page_bytes, double fill_fraction) {
  const size_t slot_overhead = 2 * sizeof(uint32_t);
  const size_t usable =
      static_cast<size_t>(fill_fraction * static_cast<double>(page_bytes));

  const size_t leaf_entry = dim * sizeof(float) + sizeof(uint64_t) +
                            slot_overhead;
  const size_t leaf_capacity = std::max<size_t>(1, usable / leaf_entry);

  const size_t bp_bytes =
      (2 * dim + (dim + 1) * x) * sizeof(float);
  const size_t internal_entry = bp_bytes + sizeof(uint64_t) + slot_overhead;
  const size_t internal_capacity = std::max<size_t>(2, usable / internal_entry);

  size_t nodes = (num_points + leaf_capacity - 1) / leaf_capacity;
  int height = 1;
  while (nodes > 1) {
    nodes = (nodes + internal_capacity - 1) / internal_capacity;
    ++height;
  }
  return height;
}

size_t AutoSelectXjbX(size_t num_points, size_t dim, size_t page_bytes,
                      double fill_fraction) {
  const size_t max_x = size_t{1} << std::min<size_t>(dim, 12);
  const int base_height =
      EstimateXjbHeight(num_points, dim, 1, page_bytes, fill_fraction);
  size_t best = 1;
  for (size_t x = 2; x <= max_x; ++x) {
    if (EstimateXjbHeight(num_points, dim, x, page_bytes, fill_fraction) ==
        base_height) {
      best = x;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace bw::core
