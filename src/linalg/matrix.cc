#include "linalg/matrix.h"

#include <cmath>

namespace bw::linalg {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  BW_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      const double* src = other.RowPtr(k);
      double* dst = out.RowPtr(r);
      for (size_t c = 0; c < other.cols_; ++c) dst[c] += v * src[c];
    }
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  BW_CHECK_EQ(rows_, other.rows_);
  BW_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace bw::linalg
