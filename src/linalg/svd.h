// Symmetric eigendecomposition (cyclic Jacobi) and singular value
// decomposition. The Blobworld pipeline reduces 218-D histograms to k-D
// via SVD of the mean-centered data matrix; for tall-skinny data this is
// computed through the D x D covariance eigendecomposition, which is
// numerically equivalent and orders of magnitude cheaper.

#ifndef BLOBWORLD_LINALG_SVD_H_
#define BLOBWORLD_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace bw::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T with
/// eigenvalues sorted in descending order; V's columns are eigenvectors.
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;  // n x n; column j corresponds to eigenvalues[j].
};

/// Cyclic Jacobi eigensolver for a symmetric matrix. Returns
/// InvalidArgument if `a` is not square, Internal if convergence fails
/// (does not happen for symmetric input within the sweep limit).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tol = 1e-12);

/// Thin SVD A = U diag(s) V^T via one-sided Jacobi on the columns of A.
/// Intended for small/medium matrices (tests, reference computations).
struct SvdDecomposition {
  Matrix u;                     // m x n (thin).
  std::vector<double> singular_values;  // descending, length n.
  Matrix v;                     // n x n.
};
Result<SvdDecomposition> ThinSvd(const Matrix& a, int max_sweeps = 64,
                                 double tol = 1e-12);

}  // namespace bw::linalg

#endif  // BLOBWORLD_LINALG_SVD_H_
