#include "linalg/cholesky.h"

#include <cmath>

namespace bw::linalg {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::Corruption(
              "matrix is not positive definite (pivot " +
              std::to_string(sum) + ")");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

}  // namespace bw::linalg
