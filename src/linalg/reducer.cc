#include "linalg/reducer.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"

namespace bw::linalg {

Status SvdReducer::Fit(const std::vector<geom::Vec>& data,
                       size_t max_components) {
  if (data.empty()) {
    return Status::InvalidArgument("SvdReducer::Fit needs at least 1 vector");
  }
  const size_t d = data[0].dim();
  for (const auto& v : data) {
    if (v.dim() != d) {
      return Status::InvalidArgument("inconsistent vector dimensionality");
    }
  }
  max_components = std::min(max_components, d);

  // Mean.
  std::vector<double> mean(d, 0.0);
  for (const auto& v : data) {
    for (size_t i = 0; i < d; ++i) mean[i] += v[i];
  }
  for (double& m : mean) m /= static_cast<double>(data.size());
  mean_ = geom::Vec(d);
  for (size_t i = 0; i < d; ++i) mean_[i] = static_cast<float>(mean[i]);

  // Covariance C = (1/n) sum (x - mean)(x - mean)^T, accumulated in the
  // upper triangle then mirrored.
  Matrix cov(d, d, 0.0);
  std::vector<double> centered(d);
  for (const auto& v : data) {
    for (size_t i = 0; i < d; ++i) centered[i] = v[i] - mean[i];
    for (size_t i = 0; i < d; ++i) {
      if (centered[i] == 0.0) continue;
      double* row = cov.RowPtr(i);
      for (size_t j = i; j < d; ++j) row[j] += centered[i] * centered[j];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov(i, j) *= inv_n;
      cov(j, i) = cov(i, j);
    }
  }

  BW_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(cov));

  total_variance_ = 0.0;
  for (double w : eig.eigenvalues) total_variance_ += std::max(w, 0.0);

  basis_.assign(max_components, std::vector<double>(d));
  singular_values_.assign(max_components, 0.0);
  component_variances_.assign(max_components, 0.0);
  for (size_t j = 0; j < max_components; ++j) {
    for (size_t i = 0; i < d; ++i) basis_[j][i] = eig.eigenvectors(i, j);
    component_variances_[j] = std::max(eig.eigenvalues[j], 0.0);
    singular_values_[j] = std::sqrt(component_variances_[j] *
                                    static_cast<double>(data.size()));
  }
  return Status::OK();
}

double SvdReducer::ExplainedVarianceRatio(size_t k) const {
  BW_CHECK(fitted());
  k = std::min(k, component_variances_.size());
  if (total_variance_ <= 0.0) return 1.0;
  double captured = 0.0;
  for (size_t j = 0; j < k; ++j) captured += component_variances_[j];
  return captured / total_variance_;
}

geom::Vec SvdReducer::Project(const geom::Vec& v, size_t k) const {
  BW_CHECK(fitted());
  BW_CHECK_LE(k, basis_.size());
  BW_CHECK_EQ(v.dim(), mean_.dim());
  geom::Vec out(k);
  const size_t d = mean_.dim();
  for (size_t j = 0; j < k; ++j) {
    double acc = 0.0;
    const std::vector<double>& dir = basis_[j];
    for (size_t i = 0; i < d; ++i) {
      acc += (static_cast<double>(v[i]) - mean_[i]) * dir[i];
    }
    out[j] = static_cast<float>(acc);
  }
  return out;
}

std::vector<geom::Vec> SvdReducer::ProjectAll(
    const std::vector<geom::Vec>& data, size_t k) const {
  std::vector<geom::Vec> out;
  out.reserve(data.size());
  for (const auto& v : data) out.push_back(Project(v, k));
  return out;
}

}  // namespace bw::linalg
