// Dense row-major double matrix: the minimal linear-algebra substrate
// needed for the SVD dimensionality reduction of blob feature vectors.

#ifndef BLOBWORLD_LINALG_MATRIX_H_
#define BLOBWORLD_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace bw::linalg {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t r, size_t c) const {
    BW_DCHECK_LT(r, rows_);
    BW_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) {
    BW_DCHECK_LT(r, rows_);
    BW_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  const double* RowPtr(size_t r) const { return &data_[r * cols_]; }
  double* RowPtr(size_t r) { return &data_[r * cols_]; }

  Matrix Transposed() const;

  /// this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Max absolute element difference; used by tests for approx equality.
  double MaxAbsDiff(const Matrix& other) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace bw::linalg

#endif  // BLOBWORLD_LINALG_MATRIX_H_
