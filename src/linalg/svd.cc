#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bw::linalg {

namespace {

// Sorts eigen/singular pairs descending by value, permuting columns of v
// (and optionally u) to match.
void SortPairsDescending(std::vector<double>& values, Matrix& v, Matrix* u) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return values[a] > values[b]; });

  std::vector<double> sorted_values(n);
  Matrix sorted_v(v.rows(), v.cols());
  Matrix sorted_u = u ? Matrix(u->rows(), u->cols()) : Matrix();
  for (size_t j = 0; j < n; ++j) {
    sorted_values[j] = values[order[j]];
    for (size_t r = 0; r < v.rows(); ++r) sorted_v(r, j) = v(r, order[j]);
    if (u) {
      for (size_t r = 0; r < u->rows(); ++r) {
        sorted_u(r, j) = (*u)(r, order[j]);
      }
    }
  }
  values = std::move(sorted_values);
  v = std::move(sorted_v);
  if (u) *u = std::move(sorted_u);
}

}  // namespace

Result<EigenDecomposition> SymmetricEigen(const Matrix& input, int max_sweeps,
                                          double tol) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::Identity(n);

  const double frobenius = a.FrobeniusNorm();
  const double threshold = tol * std::max(frobenius, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Largest off-diagonal magnitude this sweep; convergence criterion.
    double off_max = 0.0;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        off_max = std::max(off_max, std::abs(a(p, q)));
      }
    }
    if (off_max <= threshold) break;

    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= threshold * 1e-3) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic Jacobi rotation computation.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  for (size_t i = 0; i < n; ++i) out.eigenvalues[i] = a(i, i);
  out.eigenvectors = std::move(v);
  SortPairsDescending(out.eigenvalues, out.eigenvectors, nullptr);
  return out;
}

Result<SvdDecomposition> ThinSvd(const Matrix& input, int max_sweeps,
                                 double tol) {
  const size_t m = input.rows();
  const size_t n = input.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("ThinSvd requires a non-empty matrix");
  }

  // One-sided Jacobi: orthogonalize the columns of U (initialized to A)
  // by plane rotations, accumulating them into V.
  Matrix u = input;
  Matrix v = Matrix::Identity(n);

  auto col_dot = [&](size_t i, size_t j) {
    double acc = 0.0;
    for (size_t r = 0; r < m; ++r) acc += u(r, i) * u(r, j);
    return acc;
  };

  const double scale = input.FrobeniusNorm();
  const double threshold = tol * std::max(scale * scale, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double alpha = col_dot(p, p);
        const double beta = col_dot(q, q);
        const double gamma = col_dot(p, q);
        if (std::abs(gamma) <= threshold) continue;
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(zeta * zeta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t r = 0; r < m; ++r) {
          const double up = u(r, p);
          const double uq = u(r, q);
          u(r, p) = c * up - s * uq;
          u(r, q) = s * up + c * uq;
        }
        for (size_t r = 0; r < n; ++r) {
          const double vp = v(r, p);
          const double vq = v(r, q);
          v(r, p) = c * vp - s * vq;
          v(r, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  SvdDecomposition out;
  out.singular_values.resize(n);
  for (size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (size_t r = 0; r < m; ++r) norm += u(r, j) * u(r, j);
    norm = std::sqrt(norm);
    out.singular_values[j] = norm;
    if (norm > 0.0) {
      for (size_t r = 0; r < m; ++r) u(r, j) /= norm;
    }
  }
  out.u = std::move(u);
  out.v = std::move(v);
  SortPairsDescending(out.singular_values, out.v, &out.u);
  return out;
}

}  // namespace bw::linalg
