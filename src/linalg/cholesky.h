// Cholesky factorization, used to turn the quadratic-form histogram
// distance into a plain L2 distance in a transformed space:
// (x-y)^T A (x-y) = ||L^T x - L^T y||^2 for A = L L^T.

#ifndef BLOBWORLD_LINALG_CHOLESKY_H_
#define BLOBWORLD_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace bw::linalg {

/// Lower-triangular L with A = L L^T. Returns InvalidArgument for
/// non-square input and Corruption if A is not (numerically) positive
/// definite; callers typically add a small diagonal ridge first.
Result<Matrix> CholeskyFactor(const Matrix& a);

}  // namespace bw::linalg

#endif  // BLOBWORLD_LINALG_CHOLESKY_H_
