// SVD dimensionality reduction of feature vectors (Section 3 of the
// paper): fit on the full-dimensional blob histograms, project each
// vector onto the top-k principal directions, truncate.

#ifndef BLOBWORLD_LINALG_REDUCER_H_
#define BLOBWORLD_LINALG_REDUCER_H_

#include <vector>

#include "geom/vec.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace bw::linalg {

/// Fits the SVD basis of a set of high-dimensional vectors and projects
/// vectors onto the leading components. For a mean-centered data matrix A
/// the right singular vectors equal the eigenvectors of A^T A, which is
/// how Fit computes them (tall-skinny data makes the covariance route
/// vastly cheaper than a direct SVD and numerically equivalent).
class SvdReducer {
 public:
  SvdReducer() = default;

  /// Learns mean and basis from `data` (all vectors must share one
  /// dimensionality). `max_components` caps how many directions are kept.
  Status Fit(const std::vector<geom::Vec>& data, size_t max_components);

  bool fitted() const { return !basis_.empty(); }
  size_t input_dim() const { return mean_.dim(); }
  size_t num_components() const { return basis_.size(); }

  /// Fraction of total variance captured by the first k components.
  double ExplainedVarianceRatio(size_t k) const;

  /// Singular-value spectrum (sqrt of covariance eigenvalues, descending).
  const std::vector<double>& singular_values() const {
    return singular_values_;
  }

  /// Projects one vector onto the first `k` components (k <=
  /// num_components()).
  geom::Vec Project(const geom::Vec& v, size_t k) const;

  /// Projects a whole data set.
  std::vector<geom::Vec> ProjectAll(const std::vector<geom::Vec>& data,
                                    size_t k) const;

 private:
  geom::Vec mean_;
  std::vector<std::vector<double>> basis_;  // basis_[j] = j-th direction.
  std::vector<double> singular_values_;
  std::vector<double> component_variances_;  // covariance eigenvalues kept.
  double total_variance_ = 0.0;              // covariance trace.
};

}  // namespace bw::linalg

#endif  // BLOBWORLD_LINALG_REDUCER_H_
