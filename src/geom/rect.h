// Hyper-rectangle (minimum bounding rectangle) geometry: the backbone of
// the R-tree, SR-tree, MAP, JB and XJB bounding predicates.

#ifndef BLOBWORLD_GEOM_RECT_H_
#define BLOBWORLD_GEOM_RECT_H_

#include <string>
#include <vector>

#include "geom/vec.h"

namespace bw::geom {

/// Axis-aligned hyper-rectangle [lo, hi] in D dimensions. An empty Rect
/// (dim() == 0) acts as the identity for ExpandToInclude.
class Rect {
 public:
  Rect() = default;
  /// Degenerate rectangle containing exactly one point.
  explicit Rect(const Vec& point) : lo_(point), hi_(point) {}
  Rect(Vec lo, Vec hi);

  /// The MBR of a set of points. Requires a non-empty set.
  static Rect BoundingBox(const std::vector<Vec>& points);
  /// The MBR of a set of rectangles. Requires a non-empty set.
  static Rect BoundingBoxOfRects(const std::vector<Rect>& rects);

  size_t dim() const { return lo_.dim(); }
  bool IsEmpty() const { return lo_.dim() == 0; }

  const Vec& lo() const { return lo_; }
  const Vec& hi() const { return hi_; }

  /// Side length along dimension d (>= 0).
  double Extent(size_t d) const { return double(hi_[d]) - lo_[d]; }

  /// Product of extents. Zero for degenerate rectangles.
  double Volume() const;

  /// Sum of extents (the R*-tree "margin" heuristic).
  double Margin() const;

  /// Center point.
  Vec Center() const;

  /// True if the point lies within [lo, hi] (closed on all faces).
  bool Contains(const Vec& point) const;

  /// True if `other` lies entirely within this rectangle.
  bool ContainsRect(const Rect& other) const;

  /// True if the two rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  /// Volume of the intersection (0 if disjoint).
  double IntersectionVolume(const Rect& other) const;

  /// Grows this rectangle minimally to include the point.
  void ExpandToInclude(const Vec& point);
  /// Grows this rectangle minimally to include the other rectangle.
  void ExpandToInclude(const Rect& other);

  /// Volume increase if this rectangle were expanded to include `other`
  /// (the Guttman insertion penalty).
  double Enlargement(const Rect& other) const;

  /// Squared Euclidean distance from `point` to the nearest point of the
  /// rectangle; 0 if the point is inside. This is MINDIST of Roussopoulos
  /// et al., the admissible lower bound used by best-first NN search.
  double MinDistanceSquared(const Vec& point) const;

  /// Squared distance from `point` to the farthest point of the rectangle
  /// (MAXDIST); used by tests as an upper-bound sanity check.
  double MaxDistanceSquared(const Vec& point) const;

  /// The point of the rectangle closest to `point` (the clamp of `point`
  /// to [lo, hi]).
  Vec ClosestPointTo(const Vec& point) const;

  /// True if a sphere of radius r around `center` intersects the rect.
  bool IntersectsSphere(const Vec& center, double radius) const {
    return MinDistanceSquared(center) <= radius * radius;
  }

  bool operator==(const Rect& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

  std::string ToString() const;

 private:
  Vec lo_;
  Vec hi_;
};

}  // namespace bw::geom

#endif  // BLOBWORLD_GEOM_RECT_H_
