#include "geom/sphere.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace bw::geom {

Sphere::Sphere(Vec center, double radius)
    : center_(std::move(center)), radius_(radius) {
  BW_CHECK_GE(radius, 0.0);
}

Sphere Sphere::CentroidBound(const std::vector<Vec>& points) {
  BW_CHECK(!points.empty());
  const size_t d = points[0].dim();
  std::vector<double> acc(d, 0.0);
  for (const Vec& p : points) {
    BW_DCHECK_EQ(p.dim(), d);
    for (size_t i = 0; i < d; ++i) acc[i] += p[i];
  }
  Vec center(d);
  for (size_t i = 0; i < d; ++i) {
    center[i] = static_cast<float>(acc[i] / static_cast<double>(points.size()));
  }
  double r2 = 0.0;
  for (const Vec& p : points) {
    r2 = std::max(r2, center.DistanceSquaredTo(p));
  }
  return Sphere(std::move(center), std::sqrt(r2));
}

Sphere Sphere::CentroidBoundOfSpheres(const std::vector<Sphere>& spheres,
                                      const std::vector<double>& weights) {
  BW_CHECK(!spheres.empty());
  BW_CHECK_EQ(spheres.size(), weights.size());
  const size_t d = spheres[0].dim();
  std::vector<double> acc(d, 0.0);
  double total_weight = 0.0;
  for (size_t s = 0; s < spheres.size(); ++s) {
    BW_DCHECK_EQ(spheres[s].dim(), d);
    for (size_t i = 0; i < d; ++i) {
      acc[i] += weights[s] * spheres[s].center()[i];
    }
    total_weight += weights[s];
  }
  BW_CHECK_GT(total_weight, 0.0);
  Vec center(d);
  for (size_t i = 0; i < d; ++i) {
    center[i] = static_cast<float>(acc[i] / total_weight);
  }
  double radius = 0.0;
  for (const Sphere& s : spheres) {
    radius = std::max(radius, center.DistanceTo(s.center()) + s.radius());
  }
  return Sphere(std::move(center), radius);
}

double Sphere::MinDistance(const Vec& point) const {
  double d = center_.DistanceTo(point) - radius_;
  return d > 0.0 ? d : 0.0;
}

Rect Sphere::BoundingRect() const {
  Vec lo(dim());
  Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo[i] = static_cast<float>(center_[i] - radius_);
    hi[i] = static_cast<float>(center_[i] + radius_);
  }
  return Rect(std::move(lo), std::move(hi));
}

double Sphere::Volume() const {
  // V_d(r) = pi^(d/2) / Gamma(d/2 + 1) * r^d.
  const double d = static_cast<double>(dim());
  const double log_vol = (d / 2.0) * std::log(std::numbers::pi) -
                         std::lgamma(d / 2.0 + 1.0) +
                         d * std::log(std::max(radius_, 0.0) + 1e-300);
  return std::exp(log_vol);
}

std::string Sphere::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", radius_);
  return "Ball(center=" + center_.ToString() + ", r=" + buf + ")";
}

}  // namespace bw::geom
