// Distance kernels used by the Blobworld ranking pipeline: plain and
// weighted L2 for reduced vectors, and the quadratic-form histogram
// distance of Hafner et al. used for full 218-D color histograms.

#ifndef BLOBWORLD_GEOM_DISTANCE_H_
#define BLOBWORLD_GEOM_DISTANCE_H_

#include <vector>

#include "geom/vec.h"

namespace bw::geom {

/// Squared L2 with per-dimension weights: sum_i w_i (x_i - y_i)^2.
double WeightedL2Squared(const Vec& x, const Vec& y,
                         const std::vector<double>& weights);

/// Quadratic-form distance d(x,y) = (x-y)^T A (x-y) where A is a
/// bin-similarity matrix. The classic color-histogram distance [Hafner95]:
/// cross-bin similarity lets perceptually close colors match.
class QuadraticFormDistance {
 public:
  /// Builds the similarity matrix A with a_ij = exp(-alpha * d_ij / d_max)
  /// where d_ij is the Euclidean distance between the representative
  /// colors of bins i and j (as in the QBIC / Hafner formulation).
  QuadraticFormDistance(const std::vector<Vec>& bin_colors, double alpha);

  size_t num_bins() const { return n_; }

  /// d(x, y) >= 0; 0 iff x == y (A is positive definite for alpha > 0).
  double Distance(const Vec& x, const Vec& y) const;

  /// Raw matrix entry A[i][j] (exposed for tests).
  double SimilarityAt(size_t i, size_t j) const { return a_[i * n_ + j]; }

 private:
  size_t n_;
  std::vector<double> a_;  // row-major n_ x n_.
};

}  // namespace bw::geom

#endif  // BLOBWORLD_GEOM_DISTANCE_H_
