// Bounding sphere geometry for the SS-tree and SR-tree predicates.

#ifndef BLOBWORLD_GEOM_SPHERE_H_
#define BLOBWORLD_GEOM_SPHERE_H_

#include <string>
#include <vector>

#include "geom/rect.h"
#include "geom/vec.h"

namespace bw::geom {

/// A D-dimensional ball: center + radius.
class Sphere {
 public:
  Sphere() : radius_(0.0) {}
  Sphere(Vec center, double radius);

  /// Minimal-ish bounding sphere of a point set: centroid center with
  /// radius = max distance to any point. This is the construction the
  /// SS-tree paper uses (centroid-based), not the exact minimum enclosing
  /// ball; it is what the paper's SS/SR trees bound data with.
  static Sphere CentroidBound(const std::vector<Vec>& points);

  /// Centroid-based bounding sphere of child spheres, weighted by their
  /// `weights` (typically subtree entry counts per the SS-tree paper).
  static Sphere CentroidBoundOfSpheres(const std::vector<Sphere>& spheres,
                                       const std::vector<double>& weights);

  size_t dim() const { return center_.dim(); }
  const Vec& center() const { return center_; }
  double radius() const { return radius_; }

  bool Contains(const Vec& point) const {
    return center_.DistanceSquaredTo(point) <= radius_ * radius_ + kEps;
  }

  /// Distance from `point` to the sphere surface (0 if inside).
  double MinDistance(const Vec& point) const;
  double MinDistanceSquared(const Vec& point) const {
    double d = MinDistance(point);
    return d * d;
  }

  /// True if a query ball of radius r around `point` intersects this sphere.
  bool IntersectsSphere(const Vec& point, double r) const {
    return center_.DistanceTo(point) <= radius_ + r + kEps;
  }

  /// Tight axis-aligned bounding box of the ball.
  Rect BoundingRect() const;

  /// Ball volume (unit-ball coefficient included), for loss diagnostics.
  double Volume() const;

  std::string ToString() const;

 private:
  static constexpr double kEps = 1e-9;

  Vec center_;
  double radius_;
};

}  // namespace bw::geom

#endif  // BLOBWORLD_GEOM_SPHERE_H_
