#include "geom/distance.h"

#include <algorithm>
#include <cmath>

namespace bw::geom {

double WeightedL2Squared(const Vec& x, const Vec& y,
                         const std::vector<double>& weights) {
  BW_CHECK_EQ(x.dim(), y.dim());
  BW_CHECK_EQ(x.dim(), weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.dim(); ++i) {
    double d = static_cast<double>(x[i]) - y[i];
    acc += weights[i] * d * d;
  }
  return acc;
}

QuadraticFormDistance::QuadraticFormDistance(const std::vector<Vec>& bin_colors,
                                             double alpha)
    : n_(bin_colors.size()), a_(n_ * n_, 0.0) {
  BW_CHECK_GT(n_, 0u);
  // Max pairwise bin-color distance, to normalize.
  double d_max = 0.0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      d_max = std::max(d_max, bin_colors[i].DistanceTo(bin_colors[j]));
    }
  }
  if (d_max <= 0.0) d_max = 1.0;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      double dij = bin_colors[i].DistanceTo(bin_colors[j]);
      a_[i * n_ + j] = std::exp(-alpha * dij / d_max);
    }
  }
}

double QuadraticFormDistance::Distance(const Vec& x, const Vec& y) const {
  BW_CHECK_EQ(x.dim(), n_);
  BW_CHECK_EQ(y.dim(), n_);
  std::vector<double> z(n_);
  for (size_t i = 0; i < n_; ++i) {
    z[i] = static_cast<double>(x[i]) - y[i];
  }
  double acc = 0.0;
  for (size_t i = 0; i < n_; ++i) {
    if (z[i] == 0.0) continue;
    const double* row = &a_[i * n_];
    double dot = 0.0;
    for (size_t j = 0; j < n_; ++j) dot += row[j] * z[j];
    acc += z[i] * dot;
  }
  // Guard tiny negative values from floating-point cancellation.
  return acc > 0.0 ? acc : 0.0;
}

}  // namespace bw::geom
