#include "geom/vec.h"

#include <cstdio>

namespace bw::geom {

std::string Vec::ToString() const {
  std::string out = "(";
  char buf[32];
  for (size_t i = 0; i < coords_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", coords_[i]);
    if (i) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace bw::geom
