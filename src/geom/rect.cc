#include "geom/rect.h"

#include <algorithm>
#include <cmath>

namespace bw::geom {

Rect::Rect(Vec lo, Vec hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  BW_CHECK_EQ(lo_.dim(), hi_.dim());
  for (size_t d = 0; d < lo_.dim(); ++d) {
    BW_CHECK_LE(lo_[d], hi_[d]);
  }
}

Rect Rect::BoundingBox(const std::vector<Vec>& points) {
  BW_CHECK(!points.empty());
  Rect box(points[0]);
  for (size_t i = 1; i < points.size(); ++i) box.ExpandToInclude(points[i]);
  return box;
}

Rect Rect::BoundingBoxOfRects(const std::vector<Rect>& rects) {
  BW_CHECK(!rects.empty());
  Rect box = rects[0];
  for (size_t i = 1; i < rects.size(); ++i) box.ExpandToInclude(rects[i]);
  return box;
}

double Rect::Volume() const {
  double v = 1.0;
  for (size_t d = 0; d < dim(); ++d) v *= Extent(d);
  return v;
}

double Rect::Margin() const {
  double m = 0.0;
  for (size_t d = 0; d < dim(); ++d) m += Extent(d);
  return m;
}

Vec Rect::Center() const {
  Vec c(dim());
  for (size_t d = 0; d < dim(); ++d) {
    c[d] = 0.5f * (lo_[d] + hi_[d]);
  }
  return c;
}

bool Rect::Contains(const Vec& point) const {
  BW_DCHECK_EQ(point.dim(), dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (point[d] < lo_[d] || point[d] > hi_[d]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& other) const {
  BW_DCHECK_EQ(other.dim(), dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  BW_DCHECK_EQ(other.dim(), dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (other.hi_[d] < lo_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

double Rect::IntersectionVolume(const Rect& other) const {
  BW_DCHECK_EQ(other.dim(), dim());
  double v = 1.0;
  for (size_t d = 0; d < dim(); ++d) {
    double lo = std::max(lo_[d], other.lo_[d]);
    double hi = std::min(hi_[d], other.hi_[d]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

void Rect::ExpandToInclude(const Vec& point) {
  if (IsEmpty()) {
    lo_ = point;
    hi_ = point;
    return;
  }
  BW_DCHECK_EQ(point.dim(), dim());
  for (size_t d = 0; d < dim(); ++d) {
    lo_[d] = std::min(lo_[d], point[d]);
    hi_[d] = std::max(hi_[d], point[d]);
  }
}

void Rect::ExpandToInclude(const Rect& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  BW_DCHECK_EQ(other.dim(), dim());
  for (size_t d = 0; d < dim(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

double Rect::Enlargement(const Rect& other) const {
  Rect merged = *this;
  merged.ExpandToInclude(other);
  return merged.Volume() - Volume();
}

double Rect::MinDistanceSquared(const Vec& point) const {
  BW_DCHECK_EQ(point.dim(), dim());
  double acc = 0.0;
  for (size_t d = 0; d < dim(); ++d) {
    double gap = 0.0;
    if (point[d] < lo_[d]) {
      gap = double(lo_[d]) - point[d];
    } else if (point[d] > hi_[d]) {
      gap = double(point[d]) - hi_[d];
    }
    acc += gap * gap;
  }
  return acc;
}

double Rect::MaxDistanceSquared(const Vec& point) const {
  BW_DCHECK_EQ(point.dim(), dim());
  double acc = 0.0;
  for (size_t d = 0; d < dim(); ++d) {
    double to_lo = std::abs(double(point[d]) - lo_[d]);
    double to_hi = std::abs(double(point[d]) - hi_[d]);
    double gap = std::max(to_lo, to_hi);
    acc += gap * gap;
  }
  return acc;
}

Vec Rect::ClosestPointTo(const Vec& point) const {
  BW_DCHECK_EQ(point.dim(), dim());
  Vec out(dim());
  for (size_t d = 0; d < dim(); ++d) {
    out[d] = std::clamp(point[d], lo_[d], hi_[d]);
  }
  return out;
}

std::string Rect::ToString() const {
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

}  // namespace bw::geom
