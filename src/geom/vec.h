// Dynamic-dimensionality float vector: the point type stored in every
// access method in this project. Feature vectors are float (as in the
// original GiST/Blobworld code lineage); accumulations are done in double.

#ifndef BLOBWORLD_GEOM_VEC_H_
#define BLOBWORLD_GEOM_VEC_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace bw::geom {

/// A point in D-dimensional space. Dimensionality is a runtime property
/// (the Blobworld pipeline produces vectors of many different widths:
/// 218-D histograms, 1..20-D SVD projections).
class Vec {
 public:
  Vec() = default;
  explicit Vec(size_t dim, float fill = 0.0f) : coords_(dim, fill) {}
  explicit Vec(std::vector<float> coords) : coords_(std::move(coords)) {}
  Vec(std::initializer_list<float> coords) : coords_(coords) {}

  Vec(const Vec&) = default;
  Vec& operator=(const Vec&) = default;
  Vec(Vec&&) = default;
  Vec& operator=(Vec&&) = default;

  size_t dim() const { return coords_.size(); }
  bool empty() const { return coords_.empty(); }

  float operator[](size_t i) const {
    BW_DCHECK_LT(i, coords_.size());
    return coords_[i];
  }
  float& operator[](size_t i) {
    BW_DCHECK_LT(i, coords_.size());
    return coords_[i];
  }

  const float* data() const { return coords_.data(); }
  float* data() { return coords_.data(); }
  const std::vector<float>& coords() const { return coords_; }

  /// Squared Euclidean distance to another point of the same dimension.
  double DistanceSquaredTo(const Vec& other) const {
    BW_DCHECK_EQ(dim(), other.dim());
    double acc = 0.0;
    for (size_t i = 0; i < coords_.size(); ++i) {
      double d = static_cast<double>(coords_[i]) - other.coords_[i];
      acc += d * d;
    }
    return acc;
  }

  /// Euclidean distance to another point.
  double DistanceTo(const Vec& other) const {
    return std::sqrt(DistanceSquaredTo(other));
  }

  /// Euclidean norm.
  double Norm() const {
    double acc = 0.0;
    for (float c : coords_) acc += static_cast<double>(c) * c;
    return std::sqrt(acc);
  }

  /// Sum of all coordinates (used for histogram mass checks).
  double Sum() const {
    double acc = 0.0;
    for (float c : coords_) acc += c;
    return acc;
  }

  /// Returns the first `k` coordinates as a new vector (SVD truncation).
  Vec Truncated(size_t k) const {
    BW_DCHECK_LE(k, dim());
    return Vec(std::vector<float>(coords_.begin(), coords_.begin() + k));
  }

  bool operator==(const Vec& other) const { return coords_ == other.coords_; }

  Vec& operator+=(const Vec& other) {
    BW_DCHECK_EQ(dim(), other.dim());
    for (size_t i = 0; i < coords_.size(); ++i) coords_[i] += other.coords_[i];
    return *this;
  }
  Vec& operator-=(const Vec& other) {
    BW_DCHECK_EQ(dim(), other.dim());
    for (size_t i = 0; i < coords_.size(); ++i) coords_[i] -= other.coords_[i];
    return *this;
  }
  Vec& operator*=(float s) {
    for (float& c : coords_) c *= s;
    return *this;
  }

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, float s) { return a *= s; }

  /// "(x0, x1, ...)" for debugging output.
  std::string ToString() const;

 private:
  std::vector<float> coords_;
};

}  // namespace bw::geom

#endif  // BLOBWORLD_GEOM_VEC_H_
