// The GiST template algorithms: SEARCH (range and best-first k-NN),
// INSERT (penalty descent, pickSplit on overflow), DELETE (with
// underflow condensation), plus structural validation and iteration
// hooks for the amdb analysis framework.

#ifndef BLOBWORLD_GIST_TREE_H_
#define BLOBWORLD_GIST_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "gist/extension.h"
#include "gist/node.h"
#include "gist/stats.h"
#include "pages/page_reader.h"
#include "pages/page_store.h"

namespace bw::gist {

/// One k-NN result.
struct Neighbor {
  Rid rid = 0;
  double distance = 0.0;
  pages::PageId leaf = pages::kInvalidPageId;  // leaf that held the entry.
};

/// Tree construction options.
struct TreeOptions {
  /// Minimum fill fraction enforced by splits and deletes.
  double min_fill = 0.40;
};

/// Degraded-mode traversal state, threaded through the search methods.
/// When non-null, a search that fails to fetch a node with a degradable
/// error (quarantined page, unreadable frame) skips that subtree —
/// recording it here — instead of failing the whole query, as long as
/// the skip budget holds out. The caller owns flagging the partial
/// answer (see service::QueryResponse::completeness).
struct DegradedRead {
  /// Maximum unreadable subtrees one traversal may skip before the
  /// query fails outright (0 = degraded mode off: first error wins).
  size_t budget = 0;
  /// Roots of the subtrees skipped, in skip order. Non-empty means the
  /// result is a subset of the true answer.
  std::vector<pages::PageId> skipped;

  bool degraded() const { return !skipped.empty(); }
};

/// True for fetch errors that degraded-mode traversal may absorb by
/// skipping the subtree: the page is sick or unreadable (kUnavailable,
/// kDataLoss, kIoError). Deliberately excludes kAborted — a watchdog
/// expiry is the caller's own deadline and must end the query, not eat
/// the skip budget.
inline bool IsDegradableReadError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

/// A Generalized Search Tree over points, specialized by an Extension.
///
/// The tree reads pages through an optional PageReader (set via
/// set_buffer_pool) so experiments can model memory residency; when no
/// reader is attached, every node visit costs one PageStore read.
///
/// Node scans are batched: each visited node is staged once into a
/// NodeScanBuffer and handed to the extension's batch API — one virtual
/// call per node instead of per entry, and zero per-entry allocation.
/// The batch contract (extension.h) guarantees results bit-identical to
/// the per-entry scalar methods.
///
/// Thread-safety contract (audited for the concurrent query service):
/// the search methods (RangeSearch, KnnSearch, KnnSearchDfs) and the
/// cursor fetch path are const and mutate no tree, extension, or node
/// state — the only mutation on a default search is I/O accounting in
/// the attached reader or the PageStore, both shared. Concurrent
/// searches over one tree are therefore safe if and only if every
/// caller passes its own per-call PageReader (a private BufferPool with
/// charge_file_io=false, or a ShardedBufferPool session) via the `pool`
/// parameter, which overrides both the attached reader and the direct
/// PageStore::Read path. Insert/Delete and set_buffer_pool require
/// exclusive access. Extension consistency methods (BpMinDistance and
/// its batch variants, BpConsistentRange, DecodePoint) are const and
/// draw nothing from the extension Rng (the Rng feeds only the
/// non-const build-side methods), so one Extension instance safely
/// serves concurrent readers.
class Tree {
 public:
  Tree(pages::PageStore* file, std::unique_ptr<Extension> extension,
       TreeOptions options = TreeOptions());

  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;
  Tree(Tree&&) = default;

  const Extension& extension() const { return *extension_; }
  Extension& mutable_extension() { return *extension_; }
  pages::PageStore* file() { return file_; }
  const pages::PageStore* file() const { return file_; }

  bool empty() const { return root_ == pages::kInvalidPageId; }
  pages::PageId root() const { return root_; }
  /// Number of levels (0 for an empty tree, 1 for a single leaf root).
  int height() const { return height_; }
  /// Number of stored (point, RID) pairs.
  uint64_t size() const { return size_; }

  /// Routes all node reads through `pool` (pass nullptr to detach).
  void set_buffer_pool(pages::PageReader* pool) { pool_ = pool; }

  // --- Index operations -------------------------------------------------

  /// INSERT: adds one (point, RID) pair.
  Status Insert(const geom::Vec& point, Rid rid);

  /// DELETE: removes the pair if present; NotFound otherwise.
  Status Delete(const geom::Vec& point, Rid rid);

  /// SEARCH with an expanding-sphere predicate: all RIDs whose point lies
  /// within `radius` of `query`. A non-null `pool` overrides the tree's
  /// read path for this call only (see the thread-safety contract above).
  /// A non-null `degraded` enables degraded-mode traversal: unreadable
  /// subtrees are skipped (within budget) and recorded instead of
  /// failing the search.
  Result<std::vector<Neighbor>> RangeSearch(const geom::Vec& query,
                                            double radius,
                                            TraversalStats* stats,
                                            pages::PageReader* pool = nullptr,
                                            DegradedRead* degraded =
                                                nullptr) const;

  /// Best-first k-nearest-neighbor search (Hjaltason-Samet). Exact given
  /// an admissible extension MinDistance. Results sorted by distance.
  /// Under degraded-mode traversal the result is a subset of the true
  /// k-NN set: every returned (rid, distance) is genuine, but neighbors
  /// stored under skipped subtrees are missing.
  Result<std::vector<Neighbor>> KnnSearch(const geom::Vec& query, size_t k,
                                          TraversalStats* stats,
                                          pages::PageReader* pool = nullptr,
                                          DegradedRead* degraded =
                                              nullptr) const;

  /// Depth-first branch-and-bound k-NN (Roussopoulos/Kelley/Vincent
  /// style): children are visited in MinDistance order and pruned
  /// against the current k-th best candidate. Exact, but accesses a
  /// superset of the nodes best-first search touches — extra accesses
  /// happen while the candidate bound is still loose, which makes this
  /// search *far* more sensitive to bounding-predicate quality. This is
  /// the search the original libgist/amdb stack executed, so the amdb
  /// reproduction benches use it.
  Result<std::vector<Neighbor>> KnnSearchDfs(const geom::Vec& query,
                                             size_t k, TraversalStats* stats,
                                             pages::PageReader* pool = nullptr,
                                             DegradedRead* degraded =
                                                 nullptr) const;

  // --- Bulk-load hook -----------------------------------------------------

  /// Installs a pre-built structure (used by the STR bulk loader).
  void InstallBulkLoaded(pages::PageId root, int height, uint64_t size);

  // --- Introspection ------------------------------------------------------

  /// Computes per-level shape statistics without I/O accounting.
  TreeShape Shape() const;

  /// Invokes `fn(page_id, node)` for every node, leaves included,
  /// without I/O accounting (analysis must not perturb counters).
  void ForEachNode(
      const std::function<void(pages::PageId, const NodeView&)>& fn) const;

  /// Fetches a node page through the tree's configured read path
  /// (buffer pool if attached, counted I/O otherwise); a non-null `pool`
  /// overrides that path for this call. Used by search cursors; analysis
  /// code should use the no-I/O iteration hooks.
  Result<pages::Page*> FetchNode(pages::PageId id,
                                 pages::PageReader* pool = nullptr) const {
    return Fetch(id, pool);
  }

  /// RIDs stored in one leaf (no I/O accounting).
  std::vector<Rid> LeafRids(pages::PageId leaf) const;

  /// All (point, rid) pairs in one leaf (no I/O accounting).
  std::vector<std::pair<geom::Vec, Rid>> LeafPoints(pages::PageId leaf) const;

  /// Verifies structural invariants: balanced height, level monotonicity,
  /// and BP consistency (every stored point has MinDistance 0 from every
  /// ancestor predicate). Returns Corruption describing the first
  /// violation found.
  Status Validate() const;

 private:
  struct PathStep {
    pages::PageId page;
    size_t entry_index;  // index within parent; undefined for root.
  };

  /// Reads a node page: through `pool` when non-null, else the attached
  /// pool, else a counted PageStore read.
  Result<pages::Page*> Fetch(pages::PageId id,
                             pages::PageReader* pool = nullptr) const;

  /// Descends to the level-0 leaf with the minimum insertion penalty,
  /// recording the path (root first).
  Status DescendForInsert(const geom::Vec& point,
                          std::vector<PathStep>* path) const;

  /// Re-derives the BP for `page` and updates it in the parent entry,
  /// continuing upward while predicates change. `path` ends at the node
  /// whose predicate must be refreshed. Used by splits and deletes.
  Status AdjustKeysUpward(std::vector<PathStep>& path);

  /// Classic AdjustTree: widens every predicate on the insertion path
  /// just enough to cover `point` (never re-tightens). This is what
  /// dynamic R-tree-family inserts do, and the reason insertion-loaded
  /// trees accumulate the sloppy BPs Table 2 measures.
  Status EnlargeUpward(const std::vector<PathStep>& path,
                       const geom::Vec& point);

  /// Builds the current BP of a node from its live contents. Non-const:
  /// BP construction may draw from the extension's Rng.
  Result<Bytes> ComputeNodeBp(pages::PageId page);

  /// Splits the node at path.back() which cannot absorb the pending
  /// entry, then inserts the pending (predicate, payload) into the
  /// appropriate side and fixes up ancestors (possibly growing the tree).
  Status SplitAndInsert(std::vector<PathStep>& path, ByteSpan predicate,
                        uint64_t payload);

  /// Inserts an entry into an internal node at `path.back()`, splitting
  /// upward as needed.
  Status InsertIntoNode(std::vector<PathStep>& path, ByteSpan predicate,
                        uint64_t payload);

  /// Removes the entry `path.back().entry_index` of the parent of the
  /// (now empty or underfull) node, reinserting orphaned points.
  Status CondensePath(std::vector<PathStep>& path);

  Status ValidateSubtree(pages::PageId page, int expected_level,
                         std::vector<ByteSpan>& ancestor_preds,
                         std::vector<Bytes>& ancestor_storage) const;

  pages::PageStore* file_;
  pages::PageReader* pool_ = nullptr;
  std::unique_ptr<Extension> extension_;
  TreeOptions options_;

  pages::PageId root_ = pages::kInvalidPageId;
  int height_ = 0;
  uint64_t size_ = 0;
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_TREE_H_
