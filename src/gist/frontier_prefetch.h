// Frontier prefetch for best-first k-NN: after an internal node is
// expanded, its children are exactly the pages the search will pop
// next, ranked by the min-distances just computed. When the serving
// pool opts in (PageReader::wants_prefetch), the traversal hands the
// nearest few children to the pool as one batch, so an async read
// engine (or the pools' simulated-latency model) overlaps the next
// level's cold reads instead of paying them one blocking miss at a
// time. A pure hint: results, errors, and degraded-read handling are
// unchanged — the later Fetch of each child behaves exactly as before.

#ifndef BLOBWORLD_GIST_FRONTIER_PREFETCH_H_
#define BLOBWORLD_GIST_FRONTIER_PREFETCH_H_

#include <array>
#include <cstddef>

#include "gist/node_scan.h"
#include "pages/page_reader.h"

namespace bw::gist {

/// Children per prefetch batch. Best-first search rarely descends more
/// than a handful of a node's children before moving elsewhere, so
/// prefetching all 50+ entries would mostly pollute the cache; the
/// nearest 8 cover the likely next pops and match the async engines'
/// useful queue depth.
inline constexpr size_t kFrontierPrefetchFanout = 8;

/// Prefetches the nearest children of the internal node staged in
/// `scan` (scratch.distances holds the BpMinDistanceBatch results,
/// payloads the child page ids). No-op unless the pool wants batches.
inline void PrefetchNearestChildren(pages::PageReader* pool,
                                    const NodeScanBuffer& scan) {
  if (pool == nullptr || !pool->wants_prefetch()) return;
  const size_t n = scan.count();
  if (n == 0) return;
  // Bounded insertion-select of the `take` smallest distances: O(n * 8)
  // with zero allocation, and ties break on entry order so the batch is
  // deterministic for a given node.
  const size_t take = n < kFrontierPrefetchFanout ? n : kFrontierPrefetchFanout;
  std::array<size_t, kFrontierPrefetchFanout> best;
  size_t filled = 0;
  for (size_t i = 0; i < n; ++i) {
    const double d = scan.scratch.distances[i];
    size_t pos = filled;
    while (pos > 0 && d < scan.scratch.distances[best[pos - 1]]) --pos;
    if (pos >= take) continue;
    if (filled < take) ++filled;
    for (size_t j = filled - 1; j > pos; --j) best[j] = best[j - 1];
    best[pos] = i;
  }
  std::array<pages::PageId, kFrontierPrefetchFanout> batch;
  for (size_t i = 0; i < filled; ++i) {
    batch[i] = static_cast<pages::PageId>(scan.payloads[best[i]]);
  }
  pool->PrefetchBatch(batch.data(), filled);
}

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_FRONTIER_PREFETCH_H_
