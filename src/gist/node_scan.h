// Batched node-scan staging: one NodeScanBuffer turns a fetched node
// into the inputs of the Extension batch API (predicate spans + entry
// payloads) with zero steady-state allocation — the traversal layer
// reuses one buffer across every node of a query, and its vectors stop
// growing once the largest node has been seen.

#ifndef BLOBWORLD_GIST_NODE_SCAN_H_
#define BLOBWORLD_GIST_NODE_SCAN_H_

#include <cstdint>
#include <vector>

#include "gist/extension.h"
#include "gist/node.h"

namespace bw::gist {

/// Per-cursor (or per-query) scratch for batched node scans. The
/// predicate spans in `scratch.preds` view the node's page directly;
/// they are valid until the page's bytes are mutated (search never
/// mutates, and the buffer pools serve resident pages without copying).
struct NodeScanBuffer {
  BatchScratch scratch;
  std::vector<uint64_t> payloads;  // entry i's raw payload (child | rid).

  /// Refills from `node`, entry order preserved.
  void Load(const NodeView& node) {
    const size_t n = node.entry_count();
    scratch.preds.resize(n);
    payloads.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const EntryView e = node.entry(i);
      scratch.preds[i] = e.predicate;
      payloads[i] = e.payload;
    }
  }

  size_t count() const { return payloads.size(); }
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_NODE_SCAN_H_
