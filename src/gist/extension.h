// The GiST extension interface (Hellerstein/Naughton/Pfeffer, VLDB '95).
//
// A GiST is specialized to a particular access method by supplying a set
// of extension methods that define the bounding predicates (BPs): how a
// BP is built over leaf points or child BPs, how search decides whether a
// BP is consistent with a query, and how inserts choose and split
// subtrees. Everything the tree stores is opaque bytes; only the
// extension can interpret them.
//
// This project stores points (blob feature vectors) at the leaves and a
// per-AM predicate in internal entries, exactly as the paper's R/SS/SR/
// MAP/JB/XJB trees do.

#ifndef BLOBWORLD_GIST_EXTENSION_H_
#define BLOBWORLD_GIST_EXTENSION_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "util/random.h"

namespace bw::gist {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

/// Result of a pickSplit: entry i goes to the right node iff
/// assignment[i] is true. Both sides must be non-empty.
using SplitAssignment = std::vector<bool>;

/// Reusable scratch for batched node scans. A cursor owns one of these
/// and refills it per node, so steady-state traversal performs zero
/// allocations: the vectors grow to the largest node seen and stay
/// there.
///
/// `preds` is the input (one span per entry, viewing the node page);
/// `soa` is kernel staging in dim-major layout — plane d occupies
/// [d * count, (d + 1) * count), so the inner loop of a kernel walks
/// contiguous floats of one coordinate across all entries; `distances`
/// and `consistent` are the outputs, indexed like `preds`.
struct BatchScratch {
  std::vector<ByteSpan> preds;
  std::vector<float> soa;
  std::vector<double> soa_d;  // double staging (radii, partial bounds).
  std::vector<double> distances;
  std::vector<uint8_t> consistent;  // 0/1 per entry.

  void Clear() { preds.clear(); }
  size_t count() const { return preds.size(); }
};

/// Access-method extension: the complete per-AM behavior pluggable into
/// the GiST template algorithms. Implementations must be deterministic
/// given their construction seed (randomized heuristics such as aMAP's
/// partition sampling draw from the internal Rng).
class Extension {
 public:
  explicit Extension(size_t dim, uint64_t seed = 42)
      : dim_(dim), rng_(seed) {
    BW_CHECK_GT(dim, 0u);
  }
  virtual ~Extension() = default;

  Extension(const Extension&) = delete;
  Extension& operator=(const Extension&) = delete;

  size_t dim() const { return dim_; }

  /// Human-readable AM name ("rtree", "xjb", ...).
  virtual std::string Name() const = 0;

  /// One extension-specific tuning parameter persisted alongside the
  /// index (XJB stores its X here); 0 when the AM has none. An index
  /// file must be reopened with the parameters it was built with or its
  /// predicates would be misparsed.
  virtual uint32_t AuxParam() const { return 0; }

  // --- Leaf keys (shared across all AMs: raw float coordinates) -------

  /// Serializes a point into a leaf key (dim() little-endian floats).
  Bytes EncodePoint(const geom::Vec& point) const;
  /// Parses a leaf key back into a point.
  geom::Vec DecodePoint(ByteSpan bytes) const;
  /// Size in bytes of an encoded leaf key.
  size_t PointBytes() const { return dim_ * sizeof(float); }

  /// Distance from `query` to one leaf key without materializing a Vec;
  /// bit-identical to query.DistanceTo(DecodePoint(key)).
  double PointDistance(ByteSpan key, const geom::Vec& query) const;

  /// Batched leaf scan: fills scratch.distances[i] with
  /// PointDistance(scratch.preds[i], query) for every entry, decoding
  /// the keys once into the dim-major SoA staging. Non-virtual — the
  /// leaf key format is shared by all AMs. Bit-identical to the scalar
  /// path: per-entry accumulation runs in ascending-d order with the
  /// same double arithmetic as Vec::DistanceSquaredTo.
  void PointDistanceBatch(BatchScratch& scratch, const geom::Vec& query) const;

  // --- Bounding predicates --------------------------------------------

  /// Builds the BP covering a set of leaf points (bulk load, leaf level).
  virtual Bytes BpFromPoints(const std::vector<geom::Vec>& points) = 0;

  /// Builds the BP covering a set of child BPs (bulk load, inner levels;
  /// also used to refresh a parent entry after inserts/splits).
  virtual Bytes BpFromChildBps(const std::vector<Bytes>& children) = 0;

  /// Admissible lower bound on the distance from `query` to any point
  /// covered by the BP (0 if the query lies inside). This drives both
  /// best-first k-NN ordering and range-search pruning; it must never
  /// exceed the true minimum distance, or search would lose results.
  virtual double BpMinDistance(ByteSpan bp, const geom::Vec& query) const = 0;

  /// consistent() for an expanding-sphere / range query: may the subtree
  /// contain a point within `radius` of `query`?
  virtual bool BpConsistentRange(ByteSpan bp, const geom::Vec& query,
                                 double radius) const {
    return BpMinDistance(bp, query) <= radius;
  }

  // --- Batched node scans ----------------------------------------------
  //
  // One virtual call per node instead of per entry. The contract for
  // every override is bit-identity: scratch.distances[i] must equal
  // BpMinDistance(scratch.preds[i], query) exactly (same doubles, not
  // just close), and scratch.consistent[i] must equal
  // BpConsistentRange(preds[i], query, radius). The property test in
  // tests/batch_kernel_test.cc enforces this for every AM. Overrides
  // decode the node's predicates once into scratch.soa (dim-major) and
  // run the tight kernels in am/bp_kernels.h.

  /// Fills scratch.distances for every predicate in scratch.preds.
  /// Default: scalar loop over BpMinDistance (correct for any AM).
  virtual void BpMinDistanceBatch(BatchScratch& scratch,
                                  const geom::Vec& query) const;

  /// Fills scratch.consistent for every predicate. Only consistent[] is
  /// contractual after this call: overrides may push `radius` down into
  /// the scan and skip the exact distance for entries whose admissible
  /// lower bound already exceeds it, leaving scratch.distances partially
  /// filled with those bounds. Default derives from BpMinDistanceBatch
  /// with the same `<= radius` test as the scalar default above; an AM
  /// that overrides BpConsistentRange with different logic must override
  /// this too.
  virtual void BpConsistentRangeBatch(BatchScratch& scratch,
                                      const geom::Vec& query,
                                      double radius) const;

  /// Insertion penalty: cost of widening `bp` to absorb `point` (the
  /// R-tree uses volume enlargement). Lower is better.
  virtual double BpPenalty(ByteSpan bp, const geom::Vec& point) const = 0;

  /// A representative point of the BP (rect/sphere center), used by the
  /// STR bulk loader to spatially order upper tree levels.
  virtual geom::Vec BpCenter(ByteSpan bp) const = 0;

  /// Minimally widens `bp` so it also covers `point`. This is the
  /// classic R-tree AdjustTree step: INSERT only ever *enlarges* the
  /// predicates on its descent path (it never re-tightens them), which
  /// is exactly why insertion-loaded trees accumulate sloppy BPs —
  /// the effect the paper's Table 2 quantifies.
  virtual Bytes BpIncludePoint(ByteSpan bp, const geom::Vec& point) const = 0;

  /// Splits an over-full leaf's points into two groups.
  virtual SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) = 0;

  /// Splits an over-full internal node's child BPs into two groups.
  virtual SplitAssignment PickSplitBps(const std::vector<Bytes>& bps) = 0;

  // --- Diagnostics ------------------------------------------------------

  /// Volume enclosed by the BP (for excess-coverage diagnostics). AMs
  /// whose BPs are not volume-shaped may return an approximation.
  virtual double BpVolume(ByteSpan bp) const = 0;

  /// Debug rendering of a BP.
  virtual std::string BpToString(ByteSpan bp) const = 0;

 protected:
  Rng& rng() { return rng_; }

  // Little-endian float (de)serialization helpers shared by subclasses.
  // Defined inline: the batched node-scan kernels issue several reads
  // per entry per dimension, so an out-of-line call here dominates the
  // gather cost.
  static void AppendFloat(Bytes& out, float v) {
    uint8_t buf[sizeof(float)];
    std::memcpy(buf, &v, sizeof(float));
    out.insert(out.end(), buf, buf + sizeof(float));
  }
  static void AppendU32(Bytes& out, uint32_t v) {
    uint8_t buf[sizeof(uint32_t)];
    std::memcpy(buf, &v, sizeof(uint32_t));
    out.insert(out.end(), buf, buf + sizeof(uint32_t));
  }
  static float ReadFloat(ByteSpan bytes, size_t float_index) {
    float v;
    BW_DCHECK_LE((float_index + 1) * sizeof(float), bytes.size());
    std::memcpy(&v, bytes.data() + float_index * sizeof(float), sizeof(float));
    return v;
  }
  static uint32_t ReadU32(ByteSpan bytes, size_t offset_bytes) {
    uint32_t v;
    BW_DCHECK_LE(offset_bytes + sizeof(uint32_t), bytes.size());
    std::memcpy(&v, bytes.data() + offset_bytes, sizeof(uint32_t));
    return v;
  }

 private:
  size_t dim_;
  Rng rng_;
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_EXTENSION_H_
