// The GiST extension interface (Hellerstein/Naughton/Pfeffer, VLDB '95).
//
// A GiST is specialized to a particular access method by supplying a set
// of extension methods that define the bounding predicates (BPs): how a
// BP is built over leaf points or child BPs, how search decides whether a
// BP is consistent with a query, and how inserts choose and split
// subtrees. Everything the tree stores is opaque bytes; only the
// extension can interpret them.
//
// This project stores points (blob feature vectors) at the leaves and a
// per-AM predicate in internal entries, exactly as the paper's R/SS/SR/
// MAP/JB/XJB trees do.

#ifndef BLOBWORLD_GIST_EXTENSION_H_
#define BLOBWORLD_GIST_EXTENSION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "util/random.h"

namespace bw::gist {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

/// Result of a pickSplit: entry i goes to the right node iff
/// assignment[i] is true. Both sides must be non-empty.
using SplitAssignment = std::vector<bool>;

/// Access-method extension: the complete per-AM behavior pluggable into
/// the GiST template algorithms. Implementations must be deterministic
/// given their construction seed (randomized heuristics such as aMAP's
/// partition sampling draw from the internal Rng).
class Extension {
 public:
  explicit Extension(size_t dim, uint64_t seed = 42)
      : dim_(dim), rng_(seed) {
    BW_CHECK_GT(dim, 0u);
  }
  virtual ~Extension() = default;

  Extension(const Extension&) = delete;
  Extension& operator=(const Extension&) = delete;

  size_t dim() const { return dim_; }

  /// Human-readable AM name ("rtree", "xjb", ...).
  virtual std::string Name() const = 0;

  /// One extension-specific tuning parameter persisted alongside the
  /// index (XJB stores its X here); 0 when the AM has none. An index
  /// file must be reopened with the parameters it was built with or its
  /// predicates would be misparsed.
  virtual uint32_t AuxParam() const { return 0; }

  // --- Leaf keys (shared across all AMs: raw float coordinates) -------

  /// Serializes a point into a leaf key (dim() little-endian floats).
  Bytes EncodePoint(const geom::Vec& point) const;
  /// Parses a leaf key back into a point.
  geom::Vec DecodePoint(ByteSpan bytes) const;
  /// Size in bytes of an encoded leaf key.
  size_t PointBytes() const { return dim_ * sizeof(float); }

  // --- Bounding predicates --------------------------------------------

  /// Builds the BP covering a set of leaf points (bulk load, leaf level).
  virtual Bytes BpFromPoints(const std::vector<geom::Vec>& points) = 0;

  /// Builds the BP covering a set of child BPs (bulk load, inner levels;
  /// also used to refresh a parent entry after inserts/splits).
  virtual Bytes BpFromChildBps(const std::vector<Bytes>& children) = 0;

  /// Admissible lower bound on the distance from `query` to any point
  /// covered by the BP (0 if the query lies inside). This drives both
  /// best-first k-NN ordering and range-search pruning; it must never
  /// exceed the true minimum distance, or search would lose results.
  virtual double BpMinDistance(ByteSpan bp, const geom::Vec& query) const = 0;

  /// consistent() for an expanding-sphere / range query: may the subtree
  /// contain a point within `radius` of `query`?
  virtual bool BpConsistentRange(ByteSpan bp, const geom::Vec& query,
                                 double radius) const {
    return BpMinDistance(bp, query) <= radius;
  }

  /// Insertion penalty: cost of widening `bp` to absorb `point` (the
  /// R-tree uses volume enlargement). Lower is better.
  virtual double BpPenalty(ByteSpan bp, const geom::Vec& point) const = 0;

  /// A representative point of the BP (rect/sphere center), used by the
  /// STR bulk loader to spatially order upper tree levels.
  virtual geom::Vec BpCenter(ByteSpan bp) const = 0;

  /// Minimally widens `bp` so it also covers `point`. This is the
  /// classic R-tree AdjustTree step: INSERT only ever *enlarges* the
  /// predicates on its descent path (it never re-tightens them), which
  /// is exactly why insertion-loaded trees accumulate sloppy BPs —
  /// the effect the paper's Table 2 quantifies.
  virtual Bytes BpIncludePoint(ByteSpan bp, const geom::Vec& point) const = 0;

  /// Splits an over-full leaf's points into two groups.
  virtual SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) = 0;

  /// Splits an over-full internal node's child BPs into two groups.
  virtual SplitAssignment PickSplitBps(const std::vector<Bytes>& bps) = 0;

  // --- Diagnostics ------------------------------------------------------

  /// Volume enclosed by the BP (for excess-coverage diagnostics). AMs
  /// whose BPs are not volume-shaped may return an approximation.
  virtual double BpVolume(ByteSpan bp) const = 0;

  /// Debug rendering of a BP.
  virtual std::string BpToString(ByteSpan bp) const = 0;

 protected:
  Rng& rng() { return rng_; }

  // Little-endian float (de)serialization helpers shared by subclasses.
  static void AppendFloat(Bytes& out, float v);
  static void AppendU32(Bytes& out, uint32_t v);
  static float ReadFloat(ByteSpan bytes, size_t float_index);
  static uint32_t ReadU32(ByteSpan bytes, size_t offset_bytes);

 private:
  size_t dim_;
  Rng rng_;
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_EXTENSION_H_
