// Traversal and structure statistics collected by the GiST, consumed by
// the amdb analysis framework and the bench harnesses.

#ifndef BLOBWORLD_GIST_STATS_H_
#define BLOBWORLD_GIST_STATS_H_

#include <cstdint>
#include <vector>

#include "pages/page.h"

namespace bw::gist {

/// Page accesses of a single query, split by tree level.
struct TraversalStats {
  uint64_t internal_accesses = 0;
  uint64_t leaf_accesses = 0;
  /// Page ids of every node visited (each node at most once per query).
  std::vector<pages::PageId> accessed_leaves;
  std::vector<pages::PageId> accessed_internals;

  uint64_t TotalAccesses() const { return internal_accesses + leaf_accesses; }

  void Clear() {
    internal_accesses = 0;
    leaf_accesses = 0;
    accessed_leaves.clear();
    accessed_internals.clear();
  }
};

/// Aggregate structure of a tree (per level, index 0 = leaves).
struct TreeShape {
  int height = 0;  // number of levels; 1 = root-only leaf.
  std::vector<uint64_t> nodes_per_level;
  std::vector<uint64_t> entries_per_level;
  std::vector<double> avg_utilization_per_level;

  uint64_t TotalNodes() const {
    uint64_t total = 0;
    for (uint64_t n : nodes_per_level) total += n;
    return total;
  }
  uint64_t LeafNodes() const {
    return nodes_per_level.empty() ? 0 : nodes_per_level[0];
  }
  uint64_t LeafEntries() const {
    return entries_per_level.empty() ? 0 : entries_per_level[0];
  }
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_STATS_H_
