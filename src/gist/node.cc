#include "gist/node.h"

#include <cstring>

namespace bw::gist {

EntryView NodeView::entry(size_t i) const {
  const uint8_t* data = page_->RecordData(i);
  const size_t len = page_->RecordLength(i);
  BW_CHECK_GE(len, sizeof(uint64_t));
  EntryView out;
  out.predicate = ByteSpan(data, len - sizeof(uint64_t));
  std::memcpy(&out.payload, data + len - sizeof(uint64_t), sizeof(uint64_t));
  return out;
}

Status NodeView::Append(ByteSpan predicate, uint64_t payload) {
  Bytes record(predicate.begin(), predicate.end());
  const size_t offset = record.size();
  record.resize(offset + sizeof(uint64_t));
  std::memcpy(record.data() + offset, &payload, sizeof(uint64_t));
  auto result = page_->Insert(record.data(), record.size());
  if (!result.ok()) return result.status();
  return Status::OK();
}

Status NodeView::UpdatePredicate(size_t i, ByteSpan predicate) {
  if (i >= page_->slot_count()) {
    return Status::InvalidArgument("entry index out of range");
  }
  const uint64_t payload = entry(i).payload;
  Bytes record(predicate.begin(), predicate.end());
  const size_t offset = record.size();
  record.resize(offset + sizeof(uint64_t));
  std::memcpy(record.data() + offset, &payload, sizeof(uint64_t));
  return page_->Update(i, record.data(), record.size());
}

}  // namespace bw::gist
