#include "gist/extension.h"

#include <cstring>

namespace bw::gist {

Bytes Extension::EncodePoint(const geom::Vec& point) const {
  BW_CHECK_EQ(point.dim(), dim_);
  Bytes out;
  out.reserve(PointBytes());
  for (size_t i = 0; i < dim_; ++i) AppendFloat(out, point[i]);
  return out;
}

geom::Vec Extension::DecodePoint(ByteSpan bytes) const {
  BW_CHECK_EQ(bytes.size(), PointBytes());
  geom::Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = ReadFloat(bytes, i);
  return out;
}

void Extension::AppendFloat(Bytes& out, float v) {
  uint8_t buf[sizeof(float)];
  std::memcpy(buf, &v, sizeof(float));
  out.insert(out.end(), buf, buf + sizeof(float));
}

void Extension::AppendU32(Bytes& out, uint32_t v) {
  uint8_t buf[sizeof(uint32_t)];
  std::memcpy(buf, &v, sizeof(uint32_t));
  out.insert(out.end(), buf, buf + sizeof(uint32_t));
}

float Extension::ReadFloat(ByteSpan bytes, size_t float_index) {
  float v;
  BW_DCHECK_LE((float_index + 1) * sizeof(float), bytes.size());
  std::memcpy(&v, bytes.data() + float_index * sizeof(float), sizeof(float));
  return v;
}

uint32_t Extension::ReadU32(ByteSpan bytes, size_t offset_bytes) {
  uint32_t v;
  BW_DCHECK_LE(offset_bytes + sizeof(uint32_t), bytes.size());
  std::memcpy(&v, bytes.data() + offset_bytes, sizeof(uint32_t));
  return v;
}

}  // namespace bw::gist
