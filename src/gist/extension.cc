#include "gist/extension.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace bw::gist {

Bytes Extension::EncodePoint(const geom::Vec& point) const {
  BW_CHECK_EQ(point.dim(), dim_);
  Bytes out;
  out.reserve(PointBytes());
  for (size_t i = 0; i < dim_; ++i) AppendFloat(out, point[i]);
  return out;
}

geom::Vec Extension::DecodePoint(ByteSpan bytes) const {
  BW_CHECK_EQ(bytes.size(), PointBytes());
  geom::Vec out(dim_);
  for (size_t i = 0; i < dim_; ++i) out[i] = ReadFloat(bytes, i);
  return out;
}

double Extension::PointDistance(ByteSpan key, const geom::Vec& query) const {
  BW_DCHECK_EQ(key.size(), PointBytes());
  // Same arithmetic as query.DistanceTo(DecodePoint(key)): per-dim
  // double difference, squared, accumulated in ascending-d order.
  double acc = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    const double diff = static_cast<double>(query[d]) - ReadFloat(key, d);
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

void Extension::PointDistanceBatch(BatchScratch& scratch,
                                   const geom::Vec& query) const {
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  scratch.soa.resize(n * dim_);
  for (size_t d = 0; d < dim_; ++d) {
    float* plane = scratch.soa.data() + d * n;
    for (size_t e = 0; e < n; ++e) {
      BW_DCHECK_EQ(scratch.preds[e].size(), PointBytes());
      plane[e] = ReadFloat(scratch.preds[e], d);
    }
  }
  std::fill(scratch.distances.begin(), scratch.distances.end(), 0.0);
  // d-outer / e-inner: the inner loop is a contiguous, branch-free
  // multiply-add over one SoA plane, and each entry still accumulates
  // its dims in ascending order — bit-identical to the scalar path.
  for (size_t d = 0; d < dim_; ++d) {
    const double q = query[d];
    const float* plane = scratch.soa.data() + d * n;
    double* out = scratch.distances.data();
    for (size_t e = 0; e < n; ++e) {
      const double diff = q - plane[e];
      out[e] += diff * diff;
    }
  }
  for (size_t e = 0; e < n; ++e) {
    scratch.distances[e] = std::sqrt(scratch.distances[e]);
  }
}

void Extension::BpMinDistanceBatch(BatchScratch& scratch,
                                   const geom::Vec& query) const {
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  for (size_t e = 0; e < n; ++e) {
    scratch.distances[e] = BpMinDistance(scratch.preds[e], query);
  }
}

void Extension::BpConsistentRangeBatch(BatchScratch& scratch,
                                       const geom::Vec& query,
                                       double radius) const {
  BpMinDistanceBatch(scratch, query);
  const size_t n = scratch.count();
  scratch.consistent.resize(n);
  for (size_t e = 0; e < n; ++e) {
    scratch.consistent[e] = scratch.distances[e] <= radius ? 1 : 0;
  }
}

}  // namespace bw::gist
