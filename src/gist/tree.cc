#include "gist/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "gist/frontier_prefetch.h"
#include "gist/node_scan.h"

namespace bw::gist {

namespace {

// Priority-queue element for best-first k-NN: either a tree node or a
// candidate data entry, ordered by ascending distance bound.
struct QueueItem {
  double distance;
  bool is_data;
  pages::PageId page;  // node to expand, or leaf that held the data entry.
  Rid rid;             // valid when is_data.

  bool operator>(const QueueItem& other) const {
    if (distance != other.distance) return distance > other.distance;
    // Expand nodes before emitting data at equal distance so a data
    // candidate is only emitted once no node could beat it.
    return is_data && !other.is_data;
  }
};

// Degraded-mode skip decision for one failed node fetch: true when the
// traversal should drop the subtree at `id` and continue. Consumes one
// unit of the skip budget.
bool AbsorbFetchError(const Status& status, pages::PageId id,
                      DegradedRead* degraded) {
  if (degraded == nullptr || !IsDegradableReadError(status)) return false;
  if (degraded->skipped.size() >= degraded->budget) return false;
  degraded->skipped.push_back(id);
  return true;
}

}  // namespace

Tree::Tree(pages::PageStore* file, std::unique_ptr<Extension> extension,
           TreeOptions options)
    : file_(file), extension_(std::move(extension)), options_(options) {
  BW_CHECK(file_ != nullptr);
  BW_CHECK(extension_ != nullptr);
}

Result<pages::Page*> Tree::Fetch(pages::PageId id,
                                 pages::PageReader* pool) const {
  if (pool != nullptr) return pool->Fetch(id);
  if (pool_ != nullptr) return pool_->Fetch(id);
  return file_->Read(id);
}

void Tree::InstallBulkLoaded(pages::PageId root, int height, uint64_t size) {
  root_ = root;
  height_ = height;
  size_ = size;
}

// --------------------------------------------------------------------------
// SEARCH
// --------------------------------------------------------------------------

Result<std::vector<Neighbor>> Tree::RangeSearch(const geom::Vec& query,
                                                double radius,
                                                TraversalStats* stats,
                                                pages::PageReader* pool,
                                                DegradedRead* degraded) const {
  std::vector<Neighbor> results;
  if (empty()) return results;

  NodeScanBuffer scan;
  std::vector<pages::PageId> todo = {root_};
  while (!todo.empty()) {
    const pages::PageId id = todo.back();
    todo.pop_back();
    auto fetched = Fetch(id, pool);
    if (!fetched.ok()) {
      if (AbsorbFetchError(fetched.status(), id, degraded)) continue;
      return fetched.status();
    }
    pages::Page* page = fetched.value();
    NodeView node(page);
    if (stats != nullptr) {
      if (node.IsLeaf()) {
        ++stats->leaf_accesses;
        stats->accessed_leaves.push_back(id);
      } else {
        ++stats->internal_accesses;
        stats->accessed_internals.push_back(id);
      }
    }
    scan.Load(node);
    if (node.IsLeaf()) {
      extension_->PointDistanceBatch(scan.scratch, query);
      for (size_t i = 0; i < scan.count(); ++i) {
        const double d = scan.scratch.distances[i];
        if (d <= radius) {
          results.push_back(Neighbor{static_cast<Rid>(scan.payloads[i]), d, id});
        }
      }
    } else {
      extension_->BpConsistentRangeBatch(scan.scratch, query, radius);
      for (size_t i = 0; i < scan.count(); ++i) {
        if (scan.scratch.consistent[i]) {
          todo.push_back(static_cast<pages::PageId>(scan.payloads[i]));
        }
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance < b.distance;
            });
  return results;
}

Result<std::vector<Neighbor>> Tree::KnnSearch(const geom::Vec& query,
                                              size_t k, TraversalStats* stats,
                                              pages::PageReader* pool,
                                              DegradedRead* degraded) const {
  std::vector<Neighbor> results;
  if (empty() || k == 0) return results;

  NodeScanBuffer scan;
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      frontier;
  frontier.push(QueueItem{0.0, false, root_, 0});

  while (!frontier.empty() && results.size() < k) {
    const QueueItem item = frontier.top();
    frontier.pop();

    if (item.is_data) {
      results.push_back(Neighbor{item.rid, item.distance, item.page});
      continue;
    }

    auto fetched = Fetch(item.page, pool);
    if (!fetched.ok()) {
      if (AbsorbFetchError(fetched.status(), item.page, degraded)) continue;
      return fetched.status();
    }
    pages::Page* page = fetched.value();
    NodeView node(page);
    if (stats != nullptr) {
      if (node.IsLeaf()) {
        ++stats->leaf_accesses;
        stats->accessed_leaves.push_back(item.page);
      } else {
        ++stats->internal_accesses;
        stats->accessed_internals.push_back(item.page);
      }
    }

    scan.Load(node);
    if (node.IsLeaf()) {
      extension_->PointDistanceBatch(scan.scratch, query);
      for (size_t i = 0; i < scan.count(); ++i) {
        frontier.push(QueueItem{scan.scratch.distances[i], true, item.page,
                                static_cast<Rid>(scan.payloads[i])});
      }
    } else {
      extension_->BpMinDistanceBatch(scan.scratch, query);
      for (size_t i = 0; i < scan.count(); ++i) {
        frontier.push(QueueItem{scan.scratch.distances[i], false,
                                static_cast<pages::PageId>(scan.payloads[i]),
                                0});
      }
      // The nearest children are the frontier's likely next pops: batch
      // their cold reads now if the pool overlaps them (async engine).
      PrefetchNearestChildren(pool, scan);
    }
  }
  return results;
}

namespace {

// Bounded candidate set for DFS k-NN: a max-heap of the k best so far.
class CandidateHeap {
 public:
  explicit CandidateHeap(size_t k) : k_(k) {}

  double Bound() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().distance;
  }

  void Offer(Neighbor candidate) {
    if (heap_.size() < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), ByDistance);
      return;
    }
    if (candidate.distance >= heap_.front().distance) return;
    std::pop_heap(heap_.begin(), heap_.end(), ByDistance);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), ByDistance);
  }

  std::vector<Neighbor> Sorted() && {
    std::sort_heap(heap_.begin(), heap_.end(), ByDistance);
    return std::move(heap_);
  }

 private:
  static bool ByDistance(const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  }

  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap by distance.
};

}  // namespace

Result<std::vector<Neighbor>> Tree::KnnSearchDfs(
    const geom::Vec& query, size_t k, TraversalStats* stats,
    pages::PageReader* pool, DegradedRead* degraded) const {
  std::vector<Neighbor> results;
  if (empty() || k == 0) return results;
  NodeScanBuffer scan;
  CandidateHeap candidates(k);

  // Explicit DFS stack; children are pushed in reverse bound order so
  // the nearest child is explored first, and every frame re-checks its
  // bound on pop (the candidate bound tightens during the descent).
  struct Frame {
    double bound;
    pages::PageId page;
  };
  std::vector<Frame> stack = {{0.0, root_}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.bound > candidates.Bound()) continue;

    auto fetched = Fetch(frame.page, pool);
    if (!fetched.ok()) {
      if (AbsorbFetchError(fetched.status(), frame.page, degraded)) continue;
      return fetched.status();
    }
    pages::Page* page = fetched.value();
    NodeView node(page);
    if (stats != nullptr) {
      if (node.IsLeaf()) {
        ++stats->leaf_accesses;
        stats->accessed_leaves.push_back(frame.page);
      } else {
        ++stats->internal_accesses;
        stats->accessed_internals.push_back(frame.page);
      }
    }

    scan.Load(node);
    if (node.IsLeaf()) {
      extension_->PointDistanceBatch(scan.scratch, query);
      for (size_t i = 0; i < scan.count(); ++i) {
        candidates.Offer(Neighbor{static_cast<Rid>(scan.payloads[i]),
                                  scan.scratch.distances[i], frame.page});
      }
      continue;
    }

    // The candidate bound cannot tighten inside this loop (only leaves
    // offer candidates), so filtering after the batch call prunes the
    // same children the per-entry scalar loop would.
    extension_->BpMinDistanceBatch(scan.scratch, query);
    std::vector<Frame> children;
    children.reserve(scan.count());
    for (size_t i = 0; i < scan.count(); ++i) {
      const double bound = scan.scratch.distances[i];
      if (bound <= candidates.Bound()) {
        children.push_back(
            Frame{bound, static_cast<pages::PageId>(scan.payloads[i])});
      }
    }
    std::sort(children.begin(), children.end(),
              [](const Frame& a, const Frame& b) { return a.bound > b.bound; });
    stack.insert(stack.end(), children.begin(), children.end());
  }
  return std::move(candidates).Sorted();
}

// --------------------------------------------------------------------------
// INSERT
// --------------------------------------------------------------------------

namespace {

// Locates the entry of `parent` whose payload names `child`.
Result<size_t> FindChildEntry(const NodeView& parent, pages::PageId child) {
  for (size_t i = 0; i < parent.entry_count(); ++i) {
    if (parent.entry(i).ChildPage() == child) return i;
  }
  return Status::Corruption("child page not referenced by parent");
}

}  // namespace

Status Tree::DescendForInsert(const geom::Vec& point,
                              std::vector<PathStep>* path) const {
  path->clear();
  pages::PageId current = root_;
  for (;;) {
    path->push_back(PathStep{current, 0});
    BW_ASSIGN_OR_RETURN(pages::Page * page, Fetch(current));
    NodeView node(page);
    if (node.IsLeaf()) return Status::OK();
    if (node.entry_count() == 0) {
      return Status::Corruption("empty internal node during descent");
    }
    double best_penalty = 0.0;
    size_t best_index = 0;
    for (size_t i = 0; i < node.entry_count(); ++i) {
      const double penalty =
          extension_->BpPenalty(node.entry(i).predicate, point);
      if (i == 0 || penalty < best_penalty) {
        best_penalty = penalty;
        best_index = i;
      }
    }
    current = node.entry(best_index).ChildPage();
  }
}

Result<Bytes> Tree::ComputeNodeBp(pages::PageId page_id) {
  pages::Page* page = file_->PeekNoIo(page_id);
  NodeView node(page);
  if (node.entry_count() == 0) {
    return Status::Corruption("cannot compute BP of an empty node");
  }
  if (node.IsLeaf()) {
    std::vector<geom::Vec> points;
    points.reserve(node.entry_count());
    for (size_t i = 0; i < node.entry_count(); ++i) {
      points.push_back(extension_->DecodePoint(node.entry(i).predicate));
    }
    return extension_->BpFromPoints(points);
  }
  std::vector<Bytes> child_bps;
  child_bps.reserve(node.entry_count());
  for (size_t i = 0; i < node.entry_count(); ++i) {
    ByteSpan pred = node.entry(i).predicate;
    child_bps.emplace_back(pred.begin(), pred.end());
  }
  return extension_->BpFromChildBps(child_bps);
}

Status Tree::AdjustKeysUpward(std::vector<PathStep>& path) {
  for (size_t depth = path.size(); depth-- > 1;) {
    const pages::PageId child_id = path[depth].page;
    const pages::PageId parent_id = path[depth - 1].page;
    BW_ASSIGN_OR_RETURN(Bytes bp, ComputeNodeBp(child_id));

    BW_ASSIGN_OR_RETURN(pages::Page * parent_page, file_->Write(parent_id));
    NodeView parent(parent_page);
    BW_ASSIGN_OR_RETURN(size_t idx, FindChildEntry(parent, child_id));
    EntryView entry = parent.entry(idx);
    if (entry.predicate.size() == bp.size() &&
        std::equal(bp.begin(), bp.end(), entry.predicate.begin())) {
      // Predicate unchanged: ancestors are unchanged too.
      return Status::OK();
    }
    Status updated = parent.UpdatePredicate(idx, bp);
    if (updated.ok()) continue;
    if (updated.code() != StatusCode::kNoSpace) return updated;
    // The refreshed predicate grew past the parent's free space (possible
    // for variable-size BPs such as aMAP/JB): relocate the entry, which
    // may split the parent and already refreshes the ancestors.
    BW_RETURN_IF_ERROR(parent.Erase(idx));
    std::vector<PathStep> parent_path(path.begin(),
                                      path.begin() + static_cast<long>(depth));
    return InsertIntoNode(parent_path, bp,
                          static_cast<uint64_t>(child_id));
  }
  return Status::OK();
}

Status Tree::EnlargeUpward(const std::vector<PathStep>& path,
                           const geom::Vec& point) {
  for (size_t depth = path.size(); depth-- > 1;) {
    const pages::PageId child_id = path[depth].page;
    const pages::PageId parent_id = path[depth - 1].page;
    BW_ASSIGN_OR_RETURN(pages::Page * parent_page, file_->Write(parent_id));
    NodeView parent(parent_page);
    BW_ASSIGN_OR_RETURN(size_t idx, FindChildEntry(parent, child_id));
    EntryView entry = parent.entry(idx);
    Bytes widened = extension_->BpIncludePoint(entry.predicate, point);
    if (widened.size() == entry.predicate.size() &&
        std::equal(widened.begin(), widened.end(), entry.predicate.begin())) {
      // Unchanged at this level — but keep walking: "parent covers the
      // point" does NOT imply the grandparent does for non-convex
      // predicates (aMAP's rectangle pair, jagged bites) or recentered
      // balls, so every ancestor must be widened explicitly. Paths are a
      // handful of levels, so the full walk is cheap.
      continue;
    }
    BW_RETURN_IF_ERROR(parent.UpdatePredicate(idx, widened));
  }
  return Status::OK();
}

Status Tree::InsertIntoNode(std::vector<PathStep>& path, ByteSpan predicate,
                            uint64_t payload) {
  const pages::PageId node_id = path.back().page;
  BW_ASSIGN_OR_RETURN(pages::Page * page, file_->Write(node_id));
  NodeView node(page);
  if (node.HasRoomFor(predicate.size())) {
    BW_RETURN_IF_ERROR(node.Append(predicate, payload));
    return AdjustKeysUpward(path);
  }
  return SplitAndInsert(path, predicate, payload);
}

Status Tree::SplitAndInsert(std::vector<PathStep>& path, ByteSpan predicate,
                            uint64_t payload) {
  const pages::PageId node_id = path.back().page;
  BW_ASSIGN_OR_RETURN(pages::Page * page, file_->Write(node_id));
  NodeView node(page);
  const int level = node.level();
  const bool is_leaf = node.IsLeaf();

  // Gather all entries including the pending one (last).
  std::vector<Bytes> preds;
  std::vector<uint64_t> payloads;
  preds.reserve(node.entry_count() + 1);
  for (size_t i = 0; i < node.entry_count(); ++i) {
    EntryView e = node.entry(i);
    preds.emplace_back(e.predicate.begin(), e.predicate.end());
    payloads.push_back(e.payload);
  }
  preds.emplace_back(predicate.begin(), predicate.end());
  payloads.push_back(payload);

  SplitAssignment to_right;
  if (is_leaf) {
    std::vector<geom::Vec> points;
    points.reserve(preds.size());
    for (const Bytes& p : preds) points.push_back(extension_->DecodePoint(p));
    to_right = extension_->PickSplitPoints(points);
  } else {
    to_right = extension_->PickSplitBps(preds);
  }
  if (to_right.size() != preds.size()) {
    return Status::Internal("pickSplit returned wrong assignment size");
  }
  size_t right_count = 0;
  for (bool b : to_right) right_count += b ? 1 : 0;
  if (right_count == 0 || right_count == preds.size()) {
    return Status::Internal("pickSplit produced an empty side");
  }

  // Rewrite the original node with the left group; fill a fresh page with
  // the right group.
  const pages::PageId right_id = file_->Allocate();
  BW_ASSIGN_OR_RETURN(pages::Page * right_page, file_->Write(right_id));
  NodeView right(right_page);
  right.Format(level);
  node.Format(level);
  for (size_t i = 0; i < preds.size(); ++i) {
    NodeView& target = to_right[i] ? right : node;
    Status appended = target.Append(preds[i], payloads[i]);
    if (!appended.ok()) {
      // Defensive fallback for badly unbalanced assignments: place the
      // entry on the other side rather than failing the insert.
      NodeView& other = to_right[i] ? node : right;
      BW_RETURN_IF_ERROR(other.Append(preds[i], payloads[i]));
    }
  }
  if (node.entry_count() == 0 || right.entry_count() == 0) {
    return Status::Internal("split left an empty node");
  }

  BW_ASSIGN_OR_RETURN(Bytes left_bp, ComputeNodeBp(node_id));
  BW_ASSIGN_OR_RETURN(Bytes right_bp, ComputeNodeBp(right_id));

  if (node_id == root_) {
    const pages::PageId new_root = file_->Allocate();
    BW_ASSIGN_OR_RETURN(pages::Page * root_page, file_->Write(new_root));
    NodeView root_node(root_page);
    root_node.Format(level + 1);
    BW_RETURN_IF_ERROR(
        root_node.Append(left_bp, static_cast<uint64_t>(node_id)));
    BW_RETURN_IF_ERROR(
        root_node.Append(right_bp, static_cast<uint64_t>(right_id)));
    root_ = new_root;
    ++height_;
    return Status::OK();
  }

  // Refresh the parent's entry for the (shrunken) left node, then insert
  // the right node, which may recursively split the parent.
  std::vector<PathStep> parent_path(path.begin(), path.end() - 1);
  const pages::PageId parent_id = parent_path.back().page;
  BW_ASSIGN_OR_RETURN(pages::Page * parent_page, file_->Write(parent_id));
  NodeView parent(parent_page);
  BW_ASSIGN_OR_RETURN(size_t idx, FindChildEntry(parent, node_id));
  Status updated = parent.UpdatePredicate(idx, left_bp);
  if (!updated.ok()) {
    if (updated.code() != StatusCode::kNoSpace) return updated;
    BW_RETURN_IF_ERROR(parent.Erase(idx));
    BW_RETURN_IF_ERROR(InsertIntoNode(parent_path, left_bp,
                                      static_cast<uint64_t>(node_id)));
  }
  return InsertIntoNode(parent_path, right_bp,
                        static_cast<uint64_t>(right_id));
}

Status Tree::Insert(const geom::Vec& point, Rid rid) {
  if (point.dim() != extension_->dim()) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (empty()) {
    root_ = file_->Allocate();
    BW_ASSIGN_OR_RETURN(pages::Page * page, file_->Write(root_));
    NodeView(page).Format(/*level=*/0);
    height_ = 1;
  }

  std::vector<PathStep> path;
  BW_RETURN_IF_ERROR(DescendForInsert(point, &path));

  const Bytes key = extension_->EncodePoint(point);
  const pages::PageId leaf_id = path.back().page;
  BW_ASSIGN_OR_RETURN(pages::Page * leaf_page, file_->Write(leaf_id));
  NodeView leaf(leaf_page);
  Status appended;
  if (leaf.HasRoomFor(key.size())) {
    BW_RETURN_IF_ERROR(leaf.Append(key, rid));
    appended = EnlargeUpward(path, point);
  } else {
    appended = SplitAndInsert(path, key, rid);
  }
  if (appended.ok()) ++size_;
  return appended;
}

// --------------------------------------------------------------------------
// DELETE
// --------------------------------------------------------------------------

Status Tree::CondensePath(std::vector<PathStep>& path) {
  // path.back() is an underfull node. Collect the points stored beneath
  // it, unlink it from its parent, then reinsert the points.
  const pages::PageId victim = path.back().page;

  std::vector<std::pair<geom::Vec, Rid>> orphans;
  std::vector<pages::PageId> stack = {victim};
  std::vector<pages::PageId> freed;
  while (!stack.empty()) {
    pages::PageId id = stack.back();
    stack.pop_back();
    freed.push_back(id);
    NodeView node(file_->PeekNoIo(id));
    if (node.IsLeaf()) {
      for (size_t i = 0; i < node.entry_count(); ++i) {
        EntryView e = node.entry(i);
        orphans.emplace_back(extension_->DecodePoint(e.predicate), e.rid());
      }
    } else {
      for (size_t i = 0; i < node.entry_count(); ++i) {
        stack.push_back(node.entry(i).ChildPage());
      }
    }
  }

  // Unlink from parent.
  std::vector<PathStep> parent_path(path.begin(), path.end() - 1);
  const pages::PageId parent_id = parent_path.back().page;
  BW_ASSIGN_OR_RETURN(pages::Page * parent_page, file_->Write(parent_id));
  NodeView parent(parent_page);
  BW_ASSIGN_OR_RETURN(size_t idx, FindChildEntry(parent, victim));
  BW_RETURN_IF_ERROR(parent.Erase(idx));

  if (parent.entry_count() == 0 && parent_id != root_) {
    BW_RETURN_IF_ERROR(CondensePath(parent_path));
  } else {
    BW_RETURN_IF_ERROR(AdjustKeysUpward(parent_path));
  }

  // Shrink the root while it is an internal node with a single child.
  while (height_ > 1) {
    NodeView root_node(file_->PeekNoIo(root_));
    if (root_node.IsLeaf() || root_node.entry_count() != 1) break;
    root_ = root_node.entry(0).ChildPage();
    --height_;
  }

  for (auto& [point, rid] : orphans) {
    --size_;  // Insert re-increments.
    BW_RETURN_IF_ERROR(Insert(point, rid));
  }
  return Status::OK();
}

Status Tree::Delete(const geom::Vec& point, Rid rid) {
  if (empty()) return Status::NotFound("tree is empty");
  if (point.dim() != extension_->dim()) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }

  // DFS over all subtrees consistent with the exact point.
  std::vector<PathStep> path;
  std::vector<std::vector<PathStep>> stack;
  stack.push_back({PathStep{root_, 0}});
  while (!stack.empty()) {
    std::vector<PathStep> current = std::move(stack.back());
    stack.pop_back();
    const pages::PageId id = current.back().page;
    NodeView node(file_->PeekNoIo(id));
    if (node.IsLeaf()) {
      for (size_t i = 0; i < node.entry_count(); ++i) {
        EntryView e = node.entry(i);
        if (e.rid() != rid) continue;
        if (!(extension_->DecodePoint(e.predicate) == point)) continue;
        BW_ASSIGN_OR_RETURN(pages::Page * page, file_->Write(id));
        NodeView writable(page);
        BW_RETURN_IF_ERROR(writable.Erase(i));
        --size_;
        if (writable.entry_count() == 0 && id != root_) {
          return CondensePath(current);
        }
        if (id != root_ &&
            writable.Utilization() < options_.min_fill * 0.5) {
          return CondensePath(current);
        }
        if (writable.entry_count() > 0) {
          return AdjustKeysUpward(current);
        }
        return Status::OK();
      }
    } else {
      for (size_t i = 0; i < node.entry_count(); ++i) {
        EntryView e = node.entry(i);
        if (extension_->BpConsistentRange(e.predicate, point, 0.0)) {
          std::vector<PathStep> next = current;
          next.push_back(PathStep{e.ChildPage(), i});
          stack.push_back(std::move(next));
        }
      }
    }
  }
  return Status::NotFound("(point, rid) pair not present");
}

// --------------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------------

void Tree::ForEachNode(
    const std::function<void(pages::PageId, const NodeView&)>& fn) const {
  if (empty()) return;
  std::vector<pages::PageId> stack = {root_};
  while (!stack.empty()) {
    pages::PageId id = stack.back();
    stack.pop_back();
    NodeView node(file_->PeekNoIo(id));
    fn(id, node);
    if (!node.IsLeaf()) {
      for (size_t i = 0; i < node.entry_count(); ++i) {
        stack.push_back(node.entry(i).ChildPage());
      }
    }
  }
}

std::vector<Rid> Tree::LeafRids(pages::PageId leaf) const {
  NodeView node(file_->PeekNoIo(leaf));
  BW_CHECK(node.IsLeaf());
  std::vector<Rid> rids;
  rids.reserve(node.entry_count());
  for (size_t i = 0; i < node.entry_count(); ++i) {
    rids.push_back(node.entry(i).rid());
  }
  return rids;
}

std::vector<std::pair<geom::Vec, Rid>> Tree::LeafPoints(
    pages::PageId leaf) const {
  NodeView node(file_->PeekNoIo(leaf));
  BW_CHECK(node.IsLeaf());
  std::vector<std::pair<geom::Vec, Rid>> out;
  out.reserve(node.entry_count());
  for (size_t i = 0; i < node.entry_count(); ++i) {
    EntryView e = node.entry(i);
    out.emplace_back(extension_->DecodePoint(e.predicate), e.rid());
  }
  return out;
}

TreeShape Tree::Shape() const {
  TreeShape shape;
  if (empty()) return shape;
  shape.height = height_;
  shape.nodes_per_level.assign(static_cast<size_t>(height_), 0);
  shape.entries_per_level.assign(static_cast<size_t>(height_), 0);
  std::vector<double> util_sum(static_cast<size_t>(height_), 0.0);
  ForEachNode([&](pages::PageId, const NodeView& node) {
    const auto level = static_cast<size_t>(node.level());
    BW_CHECK_LT(level, shape.nodes_per_level.size());
    shape.nodes_per_level[level] += 1;
    shape.entries_per_level[level] += node.entry_count();
    util_sum[level] += node.Utilization();
  });
  shape.avg_utilization_per_level.resize(static_cast<size_t>(height_));
  for (size_t l = 0; l < util_sum.size(); ++l) {
    shape.avg_utilization_per_level[l] =
        shape.nodes_per_level[l] == 0
            ? 0.0
            : util_sum[l] / static_cast<double>(shape.nodes_per_level[l]);
  }
  return shape;
}

Status Tree::ValidateSubtree(pages::PageId page_id, int expected_level,
                             std::vector<ByteSpan>& ancestor_preds,
                             std::vector<Bytes>& ancestor_storage) const {
  const NodeView node(file_->PeekNoIo(page_id));
  if (!node.IsFormatted()) {
    return Status::Corruption("unformatted page reached by traversal");
  }
  if (node.level() != expected_level) {
    return Status::Corruption("tree is not height-balanced");
  }
  if (node.entry_count() == 0 && page_id != root_) {
    return Status::Corruption("empty non-root node");
  }

  if (node.IsLeaf()) {
    for (size_t i = 0; i < node.entry_count(); ++i) {
      geom::Vec point = extension_->DecodePoint(node.entry(i).predicate);
      for (ByteSpan pred : ancestor_preds) {
        const double d = extension_->BpMinDistance(pred, point);
        if (d > 1e-4) {
          return Status::Corruption(
              "stored point not covered by an ancestor predicate (dist " +
              std::to_string(d) + ")");
        }
      }
    }
    return Status::OK();
  }

  for (size_t i = 0; i < node.entry_count(); ++i) {
    EntryView e = node.entry(i);
    ancestor_storage.emplace_back(e.predicate.begin(), e.predicate.end());
    ancestor_preds.emplace_back(ancestor_storage.back());
    Status child = ValidateSubtree(e.ChildPage(), expected_level - 1,
                                   ancestor_preds, ancestor_storage);
    ancestor_preds.pop_back();
    ancestor_storage.pop_back();
    BW_RETURN_IF_ERROR(child);
  }
  return Status::OK();
}

Status Tree::Validate() const {
  if (empty()) return Status::OK();
  std::vector<ByteSpan> preds;
  std::vector<Bytes> storage;
  storage.reserve(static_cast<size_t>(height_));
  BW_RETURN_IF_ERROR(ValidateSubtree(root_, height_ - 1, preds, storage));

  // Leaf entries must partition the RID set: count them.
  uint64_t stored = 0;
  ForEachNode([&](pages::PageId, const NodeView& node) {
    if (node.IsLeaf()) stored += node.entry_count();
  });
  if (stored != size_) {
    return Status::Corruption("leaf entry count disagrees with tree size");
  }
  return Status::OK();
}

}  // namespace bw::gist
