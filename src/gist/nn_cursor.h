// Incremental nearest-neighbor cursor (Hjaltason & Samet's distance
// browsing): yields neighbors one at a time in ascending distance order
// without a fixed k. This is the search mode the Blobworld front end
// really wants — "give me images until the user stops scrolling" — and
// the one amdb drives when it replays query workloads step by step.

#ifndef BLOBWORLD_GIST_NN_CURSOR_H_
#define BLOBWORLD_GIST_NN_CURSOR_H_

#include <optional>
#include <queue>
#include <vector>

#include "gist/node_scan.h"
#include "gist/tree.h"

namespace bw::gist {

/// Streaming k-NN over a Tree. The cursor holds a reference to the tree;
/// the tree must not be modified while a cursor is open.
///
///   NnCursor cursor(tree, query);
///   while (auto n = cursor.Next()) { ... }
///
/// A non-null `pool` routes every node read of this cursor through that
/// pool instead of the tree's configured read path; concurrent cursors
/// over one shared tree must each bring their own pool (see the Tree
/// thread-safety contract). A non-null `degraded` enables degraded-mode
/// streaming: an unreadable subtree is skipped and recorded (within
/// budget) instead of failing the stream, so later Next() calls keep
/// producing the neighbors that remain reachable.
class NnCursor {
 public:
  NnCursor(const Tree& tree, geom::Vec query, TraversalStats* stats = nullptr,
           pages::PageReader* pool = nullptr,
           DegradedRead* degraded = nullptr);

  NnCursor(const NnCursor&) = delete;
  NnCursor& operator=(const NnCursor&) = delete;

  /// The next-nearest entry, or nullopt when the tree is exhausted.
  /// Distances are non-decreasing across calls.
  Result<std::optional<Neighbor>> Next();

  /// Number of results produced so far.
  size_t produced() const { return produced_; }

  /// Lower bound on the distance of everything not yet returned (the
  /// head of the frontier); infinity once exhausted. Lets callers stop
  /// early ("no more candidates within my budget radius").
  double FrontierDistance() const;

 private:
  struct Item {
    double distance;
    bool is_data;
    pages::PageId page;
    Rid rid;
    bool operator>(const Item& other) const {
      if (distance != other.distance) return distance > other.distance;
      return is_data && !other.is_data;
    }
  };

  const Tree& tree_;
  geom::Vec query_;
  TraversalStats* stats_;
  pages::PageReader* pool_;
  DegradedRead* degraded_;
  NodeScanBuffer scan_;  // reused across nodes: zero per-entry allocation.
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier_;
  size_t produced_ = 0;
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_NN_CURSOR_H_
