// Index persistence: serialize a GiST (its page file plus tree
// metadata) to a binary file and load it back. Blobworld's collection
// is static and bulk-loaded offline (Section 3.2 of the paper), so
// build-once / serve-many is the intended production deployment.
//
// The file ends with a CRC-32 trailer over every preceding byte;
// LoadIndexFile verifies it and reports silent corruption (bit rot,
// partial copies) as DataLoss rather than deserializing garbage.
// Structurally malformed input is still Corruption.

#ifndef BLOBWORLD_GIST_PERSIST_H_
#define BLOBWORLD_GIST_PERSIST_H_

#include <memory>
#include <string>

#include "gist/tree.h"
#include "pages/page_file.h"

namespace bw::gist {

/// Everything read back from an index file except the extension (which
/// the caller re-creates; predicates are meaningless without it).
struct LoadedIndex {
  std::unique_ptr<pages::PageFile> file;
  pages::PageId root = pages::kInvalidPageId;
  int height = 0;
  uint64_t size = 0;
  std::string extension_name;
  uint32_t dim = 0;
  /// Extension-specific parameter recorded at save time (XJB's X).
  uint32_t aux_param = 0;

  /// Assembles a Tree over the loaded pages with the given extension
  /// (whose Name(), dim() and AuxParam() must match what the file
  /// recorded).
  Result<std::unique_ptr<Tree>> AttachExtension(
      std::unique_ptr<Extension> extension);
};

/// Writes the tree's pages and metadata to `path` (overwrites).
Status SaveTree(const Tree& tree, const std::string& path);

/// Reads an index file; Corruption on malformed input.
Result<LoadedIndex> LoadIndexFile(const std::string& path);

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_PERSIST_H_
