#include "gist/nn_cursor.h"

#include "gist/frontier_prefetch.h"

#include <limits>

namespace bw::gist {

NnCursor::NnCursor(const Tree& tree, geom::Vec query, TraversalStats* stats,
                   pages::PageReader* pool, DegradedRead* degraded)
    : tree_(tree),
      query_(std::move(query)),
      stats_(stats),
      pool_(pool),
      degraded_(degraded) {
  if (!tree_.empty()) {
    frontier_.push(Item{0.0, false, tree_.root(), 0});
  }
}

double NnCursor::FrontierDistance() const {
  return frontier_.empty() ? std::numeric_limits<double>::infinity()
                           : frontier_.top().distance;
}

Result<std::optional<Neighbor>> NnCursor::Next() {
  const Extension& extension = tree_.extension();
  while (!frontier_.empty()) {
    const Item item = frontier_.top();
    frontier_.pop();

    if (item.is_data) {
      ++produced_;
      return std::optional<Neighbor>(
          Neighbor{item.rid, item.distance, item.page});
    }

    // Expand a node. The cursor reads through the tree's fetch path so
    // buffer pools and I/O accounting behave exactly as KnnSearch does.
    auto fetched = tree_.FetchNode(item.page, pool_);
    if (!fetched.ok()) {
      if (degraded_ != nullptr && IsDegradableReadError(fetched.status()) &&
          degraded_->skipped.size() < degraded_->budget) {
        degraded_->skipped.push_back(item.page);
        continue;  // drop the subtree; the rest of the frontier lives on.
      }
      return fetched.status();
    }
    pages::Page* page = fetched.value();
    const NodeView node(page);
    if (stats_ != nullptr) {
      if (node.IsLeaf()) {
        ++stats_->leaf_accesses;
        stats_->accessed_leaves.push_back(item.page);
      } else {
        ++stats_->internal_accesses;
        stats_->accessed_internals.push_back(item.page);
      }
    }
    // Batched node scan: stage the entries once, one virtual call for
    // the whole node, no per-entry decode allocation.
    scan_.Load(node);
    if (node.IsLeaf()) {
      extension.PointDistanceBatch(scan_.scratch, query_);
      for (size_t i = 0; i < scan_.count(); ++i) {
        frontier_.push(Item{scan_.scratch.distances[i], true, item.page,
                            static_cast<Rid>(scan_.payloads[i])});
      }
    } else {
      extension.BpMinDistanceBatch(scan_.scratch, query_);
      for (size_t i = 0; i < scan_.count(); ++i) {
        frontier_.push(Item{scan_.scratch.distances[i], false,
                            static_cast<pages::PageId>(scan_.payloads[i]), 0});
      }
      // The nearest children are the frontier's likely next pops: batch
      // their cold reads now if the pool overlaps them (async engine).
      PrefetchNearestChildren(pool_, scan_);
    }
  }
  return std::optional<Neighbor>(std::nullopt);
}

}  // namespace bw::gist
