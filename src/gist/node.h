// GiST node layout on a Page.
//
// Every record in the page is one entry: [predicate bytes | 8-byte
// payload]. At the leaf level the predicate is an encoded point and the
// payload is the RID of the data record; at internal levels the predicate
// is an AM-specific BP and the payload is the child page id.
//
// Page header words: [0] = node level (0 = leaf), [1] = magic.

#ifndef BLOBWORLD_GIST_NODE_H_
#define BLOBWORLD_GIST_NODE_H_

#include <cstdint>

#include "gist/extension.h"
#include "pages/page.h"

namespace bw::gist {

using Rid = uint64_t;

/// One decoded entry (zero-copy view into the page).
struct EntryView {
  ByteSpan predicate;
  uint64_t payload = 0;

  pages::PageId ChildPage() const {
    return static_cast<pages::PageId>(payload);
  }
  Rid rid() const { return payload; }
};

/// Typed accessor over a Page holding GiST entries. NodeView does not own
/// the page; it is a cheap cursor created around a fetched page.
class NodeView {
 public:
  explicit NodeView(pages::Page* page) : page_(page) {
    BW_CHECK(page != nullptr);
  }

  static constexpr uint32_t kMagic = 0x47695354;  // "GiST"

  /// Initializes header words on a freshly allocated page.
  void Format(int level) {
    page_->Clear();
    page_->set_header_word(0, static_cast<uint32_t>(level));
    page_->set_header_word(1, kMagic);
  }

  bool IsFormatted() const { return page_->header_word(1) == kMagic; }
  int level() const { return static_cast<int>(page_->header_word(0)); }
  bool IsLeaf() const { return level() == 0; }

  size_t entry_count() const { return page_->slot_count(); }

  EntryView entry(size_t i) const;

  /// Appends an entry; NoSpace if the page is full.
  Status Append(ByteSpan predicate, uint64_t payload);

  /// Removes entry i (later entries shift down).
  Status Erase(size_t i) { return page_->Erase(i); }

  /// Replaces the predicate of entry i, keeping its payload.
  Status UpdatePredicate(size_t i, ByteSpan predicate);

  /// Could one more entry with this predicate size fit?
  bool HasRoomFor(size_t predicate_bytes) const {
    return page_->FreeSpace() >= predicate_bytes + sizeof(uint64_t);
  }

  double Utilization() const { return page_->Utilization(); }

  pages::Page* page() { return page_; }

 private:
  pages::Page* page_;
};

}  // namespace bw::gist

#endif  // BLOBWORLD_GIST_NODE_H_
