#include "gist/persist.h"

#include <cstdio>
#include <cstring>

#include "gist/node.h"
#include "util/crc32.h"

namespace bw::gist {

namespace {

constexpr uint32_t kIndexMagic = 0x42574958;  // "BWIX"
// Version 3 added the whole-file CRC-32 trailer.
constexpr uint32_t kIndexVersion = 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using UniqueFile = std::unique_ptr<std::FILE, FileCloser>;

/// Writes while accumulating the CRC that becomes the file's trailer.
class CrcWriter {
 public:
  explicit CrcWriter(std::FILE* f) : f_(f) {}

  bool Bytes(const void* p, size_t n) {
    crc_ = Crc32Extend(crc_, p, n);
    return std::fwrite(p, 1, n, f_) == n;
  }
  bool U32(uint32_t v) { return Bytes(&v, sizeof(v)); }
  bool U64(uint64_t v) { return Bytes(&v, sizeof(v)); }

  /// Appends the accumulated CRC (itself unchecksummed).
  bool Trailer() {
    const uint32_t crc = crc_;
    return std::fwrite(&crc, sizeof(crc), 1, f_) == 1;
  }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

/// Reads while accumulating the CRC to verify against the trailer.
class CrcReader {
 public:
  explicit CrcReader(std::FILE* f) : f_(f) {}

  bool Bytes(void* p, size_t n) {
    if (std::fread(p, 1, n, f_) != n) return false;
    crc_ = Crc32Extend(crc_, p, n);
    return true;
  }
  bool U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }

  /// Consumes the trailer and verifies it; also rejects trailing bytes.
  Status VerifyTrailer() {
    uint32_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, f_) != 1) {
      return Status::Corruption("index file missing checksum trailer");
    }
    if (std::fgetc(f_) != EOF) {
      return Status::Corruption("index file has trailing bytes");
    }
    if (stored != crc_) {
      return Status::DataLoss("index file failed its checksum (stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(crc_) + ")");
    }
    return Status::OK();
  }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

}  // namespace

Status SaveTree(const Tree& tree, const std::string& path) {
  const pages::PageStore* file = tree.file();
  UniqueFile out(std::fopen(path.c_str(), "wb"));
  if (out == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  CrcWriter w(out.get());
  const std::string name = tree.extension().Name();
  if (!w.U32(kIndexMagic) || !w.U32(kIndexVersion) ||
      !w.U32(static_cast<uint32_t>(file->page_size())) ||
      !w.U32(static_cast<uint32_t>(file->page_count())) ||
      !w.U32(tree.root()) || !w.U32(static_cast<uint32_t>(tree.height())) ||
      !w.U64(tree.size()) ||
      !w.U32(static_cast<uint32_t>(tree.extension().dim())) ||
      !w.U32(tree.extension().AuxParam()) ||
      !w.U32(static_cast<uint32_t>(name.size())) ||
      !w.Bytes(name.data(), name.size())) {
    return Status::IoError("header write failed");
  }

  // Pages: header words, then each record verbatim.
  for (pages::PageId id = 0; id < file->page_count(); ++id) {
    const pages::Page* page = file->PeekNoIo(id);
    for (size_t word = 0; word < pages::Page::kHeaderWords; ++word) {
      if (!w.U32(page->header_word(word))) {
        return Status::IoError("page header write failed");
      }
    }
    if (!w.U32(static_cast<uint32_t>(page->slot_count()))) {
      return Status::IoError("slot count write failed");
    }
    for (size_t s = 0; s < page->slot_count(); ++s) {
      const uint32_t length = static_cast<uint32_t>(page->RecordLength(s));
      if (!w.U32(length) || !w.Bytes(page->RecordData(s), length)) {
        return Status::IoError("record write failed");
      }
    }
  }
  if (!w.Trailer()) return Status::IoError("checksum trailer write failed");
  return Status::OK();
}

Result<LoadedIndex> LoadIndexFile(const std::string& path) {
  UniqueFile in(std::fopen(path.c_str(), "rb"));
  if (in == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  CrcReader r(in.get());
  uint32_t magic = 0, version = 0, page_size = 0, page_count = 0;
  uint32_t root = 0, height = 0, dim = 0, aux = 0, name_len = 0;
  uint64_t size = 0;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U32(&page_size) ||
      !r.U32(&page_count) || !r.U32(&root) || !r.U32(&height) ||
      !r.U64(&size) || !r.U32(&dim) || !r.U32(&aux) || !r.U32(&name_len)) {
    return Status::Corruption("truncated index header");
  }
  if (magic != kIndexMagic) return Status::Corruption("bad index magic");
  if (version != kIndexVersion) {
    return Status::NotSupported("unsupported index version");
  }
  if (page_size < 512 || page_size > (64u << 20) || name_len > 256) {
    return Status::Corruption("implausible index header values");
  }
  LoadedIndex loaded;
  loaded.extension_name.resize(name_len);
  if (!r.Bytes(loaded.extension_name.data(), name_len)) {
    return Status::Corruption("truncated extension name");
  }
  loaded.root = root;
  loaded.aux_param = aux;
  loaded.height = static_cast<int>(height);
  loaded.size = size;
  loaded.dim = dim;
  loaded.file = std::make_unique<pages::PageFile>(page_size);

  std::vector<uint8_t> record;
  for (uint32_t id = 0; id < page_count; ++id) {
    const pages::PageId allocated = loaded.file->Allocate();
    pages::Page* page = loaded.file->PeekNoIo(allocated);
    for (size_t word = 0; word < pages::Page::kHeaderWords; ++word) {
      uint32_t value = 0;
      if (!r.U32(&value)) {
        return Status::Corruption("truncated page header");
      }
      page->set_header_word(word, value);
    }
    uint32_t slots = 0;
    if (!r.U32(&slots)) {
      return Status::Corruption("truncated slot count");
    }
    for (uint32_t s = 0; s < slots; ++s) {
      uint32_t length = 0;
      if (!r.U32(&length) || length > page_size) {
        return Status::Corruption("implausible record length");
      }
      record.resize(length);
      if (!r.Bytes(record.data(), length)) {
        return Status::Corruption("truncated record");
      }
      auto inserted = page->Insert(record.data(), record.size());
      if (!inserted.ok()) return inserted.status();
    }
  }
  BW_RETURN_IF_ERROR(r.VerifyTrailer());
  if (loaded.root != pages::kInvalidPageId &&
      loaded.root >= loaded.file->page_count()) {
    return Status::Corruption("root page out of range");
  }
  return loaded;
}

Result<std::unique_ptr<Tree>> LoadedIndex::AttachExtension(
    std::unique_ptr<Extension> extension) {
  if (extension == nullptr) {
    return Status::InvalidArgument("null extension");
  }
  if (extension->Name() != extension_name) {
    return Status::InvalidArgument("extension '" + extension->Name() +
                                   "' does not match index file ('" +
                                   extension_name + "')");
  }
  if (extension->dim() != dim) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  if (extension->AuxParam() != aux_param) {
    return Status::InvalidArgument(
        "extension parameter mismatch (index built with " +
        std::to_string(aux_param) + ", reopened with " +
        std::to_string(extension->AuxParam()) + ")");
  }
  auto tree = std::make_unique<Tree>(file.get(), std::move(extension));
  tree->InstallBulkLoaded(root, height, size);
  BW_RETURN_IF_ERROR(tree->Validate());
  return tree;
}

}  // namespace bw::gist
