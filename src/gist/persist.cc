#include "gist/persist.h"

#include <cstdio>
#include <cstring>

#include "gist/node.h"

namespace bw::gist {

namespace {

constexpr uint32_t kIndexMagic = 0x42574958;  // "BWIX"
constexpr uint32_t kIndexVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using UniqueFile = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveTree(const Tree& tree, const std::string& path) {
  const pages::PageFile* file = tree.file();
  UniqueFile out(std::fopen(path.c_str(), "wb"));
  if (out == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const std::string name = tree.extension().Name();
  if (!WriteU32(out.get(), kIndexMagic) ||
      !WriteU32(out.get(), kIndexVersion) ||
      !WriteU32(out.get(), static_cast<uint32_t>(file->page_size())) ||
      !WriteU32(out.get(), static_cast<uint32_t>(file->page_count())) ||
      !WriteU32(out.get(), tree.root()) ||
      !WriteU32(out.get(), static_cast<uint32_t>(tree.height())) ||
      !WriteU64(out.get(), tree.size()) ||
      !WriteU32(out.get(), static_cast<uint32_t>(tree.extension().dim())) ||
      !WriteU32(out.get(), tree.extension().AuxParam()) ||
      !WriteU32(out.get(), static_cast<uint32_t>(name.size())) ||
      std::fwrite(name.data(), 1, name.size(), out.get()) != name.size()) {
    return Status::IoError("header write failed");
  }

  // Pages: header words, then each record verbatim.
  for (pages::PageId id = 0; id < file->page_count(); ++id) {
    const pages::Page* page = file->PeekNoIo(id);
    for (size_t w = 0; w < pages::Page::kHeaderWords; ++w) {
      if (!WriteU32(out.get(), page->header_word(w))) {
        return Status::IoError("page header write failed");
      }
    }
    if (!WriteU32(out.get(), static_cast<uint32_t>(page->slot_count()))) {
      return Status::IoError("slot count write failed");
    }
    for (size_t s = 0; s < page->slot_count(); ++s) {
      const uint32_t length = static_cast<uint32_t>(page->RecordLength(s));
      if (!WriteU32(out.get(), length) ||
          std::fwrite(page->RecordData(s), 1, length, out.get()) != length) {
        return Status::IoError("record write failed");
      }
    }
  }
  return Status::OK();
}

Result<LoadedIndex> LoadIndexFile(const std::string& path) {
  UniqueFile in(std::fopen(path.c_str(), "rb"));
  if (in == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  uint32_t magic = 0, version = 0, page_size = 0, page_count = 0;
  uint32_t root = 0, height = 0, dim = 0, aux = 0, name_len = 0;
  uint64_t size = 0;
  if (!ReadU32(in.get(), &magic) || !ReadU32(in.get(), &version) ||
      !ReadU32(in.get(), &page_size) || !ReadU32(in.get(), &page_count) ||
      !ReadU32(in.get(), &root) || !ReadU32(in.get(), &height) ||
      !ReadU64(in.get(), &size) || !ReadU32(in.get(), &dim) ||
      !ReadU32(in.get(), &aux) || !ReadU32(in.get(), &name_len)) {
    return Status::Corruption("truncated index header");
  }
  if (magic != kIndexMagic) return Status::Corruption("bad index magic");
  if (version != kIndexVersion) {
    return Status::NotSupported("unsupported index version");
  }
  if (page_size < 512 || page_size > (64u << 20) || name_len > 256) {
    return Status::Corruption("implausible index header values");
  }
  LoadedIndex loaded;
  loaded.extension_name.resize(name_len);
  if (std::fread(loaded.extension_name.data(), 1, name_len, in.get()) !=
      name_len) {
    return Status::Corruption("truncated extension name");
  }
  loaded.root = root;
  loaded.aux_param = aux;
  loaded.height = static_cast<int>(height);
  loaded.size = size;
  loaded.dim = dim;
  loaded.file = std::make_unique<pages::PageFile>(page_size);

  std::vector<uint8_t> record;
  for (uint32_t id = 0; id < page_count; ++id) {
    const pages::PageId allocated = loaded.file->Allocate();
    pages::Page* page = loaded.file->PeekNoIo(allocated);
    for (size_t w = 0; w < pages::Page::kHeaderWords; ++w) {
      uint32_t word = 0;
      if (!ReadU32(in.get(), &word)) {
        return Status::Corruption("truncated page header");
      }
      page->set_header_word(w, word);
    }
    uint32_t slots = 0;
    if (!ReadU32(in.get(), &slots)) {
      return Status::Corruption("truncated slot count");
    }
    for (uint32_t s = 0; s < slots; ++s) {
      uint32_t length = 0;
      if (!ReadU32(in.get(), &length) || length > page_size) {
        return Status::Corruption("implausible record length");
      }
      record.resize(length);
      if (std::fread(record.data(), 1, length, in.get()) != length) {
        return Status::Corruption("truncated record");
      }
      auto inserted = page->Insert(record.data(), record.size());
      if (!inserted.ok()) return inserted.status();
    }
  }
  if (loaded.root != pages::kInvalidPageId &&
      loaded.root >= loaded.file->page_count()) {
    return Status::Corruption("root page out of range");
  }
  return loaded;
}

Result<std::unique_ptr<Tree>> LoadedIndex::AttachExtension(
    std::unique_ptr<Extension> extension) {
  if (extension == nullptr) {
    return Status::InvalidArgument("null extension");
  }
  if (extension->Name() != extension_name) {
    return Status::InvalidArgument("extension '" + extension->Name() +
                                   "' does not match index file ('" +
                                   extension_name + "')");
  }
  if (extension->dim() != dim) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  if (extension->AuxParam() != aux_param) {
    return Status::InvalidArgument(
        "extension parameter mismatch (index built with " +
        std::to_string(aux_param) + ", reopened with " +
        std::to_string(extension->AuxParam()) + ")");
  }
  auto tree = std::make_unique<Tree>(file.get(), std::move(extension));
  tree->InstallBulkLoaded(root, height, size);
  BW_RETURN_IF_ERROR(tree->Validate());
  return tree;
}

}  // namespace bw::gist
