// Append-only write-ahead log with LSN-stamped, CRC-framed records,
// fsync batching (group commit), and size-capped segment rotation. The
// durability half of the ARIES-lite protocol: every page mutation is
// logged as a full-page redo image before it may reach the base file,
// so recovery is a pure redo replay.
//
// On-disk record frame (little-endian):
//
//   [u32 magic][u32 type][u64 lsn][u32 page_id][u32 payload_len]
//   [payload_len bytes][u32 crc32 over header+payload]
//
// Segmented layout (WalOptions::segment_bytes > 0): the log is a series
// of files `<base>.NNNNNN` (decimal segment sequence number, starting
// at 000001), each opening with a 20-byte CRC'd segment header:
//
//   [u32 seg_magic][u32 version][u64 seq][u32 crc32 over the first 16 B]
//
// Appends go to the highest-numbered (active) segment; once a Sync()
// leaves it at or above segment_bytes it is *sealed* (fully synced,
// never written again) and a fresh segment is opened. Sealed segments
// are retired — archived (renamed to `<seg>.archived`) or deleted —
// only by Reset(), i.e. only after a checkpoint has made their records
// redundant, so the live log size is bounded by the checkpoint cadence,
// not the store's lifetime. With segment_bytes == 0 (the default) the
// log is a single file at `<base>`, exactly the pre-rotation format;
// replay auto-detects which layout is on disk.
//
// Replay distinguishes the failure shapes the crash-injection harness
// produces:
//  - a *truncated* trailing record (crash or torn write mid-append) in
//    the FINAL segment is benign: the scan stops at the last intact
//    record and reports tail_truncated, exactly the contract fsync
//    gives us — likewise a final segment whose header never finished
//    (crash mid-rotation);
//  - a torn record or header in a SEALED (non-final) segment is
//    DataLoss: sealing synced the segment, so a tear there means the
//    disk lost acknowledged bytes;
//  - a *complete* record whose CRC does not match (bit rot) is DataLoss
//    anywhere: the log cannot be trusted past a silent corruption;
//  - a gap in the segment sequence is DataLoss: retirement always
//    removes oldest-first, so a hole means a whole segment vanished.

#ifndef BLOBWORLD_STORAGE_WAL_H_
#define BLOBWORLD_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pages/page.h"
#include "storage/file_io.h"
#include "util/status.h"

namespace bw::storage {

enum class WalRecordType : uint32_t {
  kAlloc = 1,      // a page id came into existence (no payload).
  kPageImage = 2,  // full post-write image of page_id (page_codec bytes).
  kCommit = 3,     // batch boundary; payload = u64 application tag.
};

struct WalOptions {
  /// Group commit: buffered records are physically written and fsynced
  /// once this many have accumulated (and on explicit Sync()). 1 makes
  /// every record durable immediately; larger values trade the
  /// durability window for fewer fsyncs (see bench/wal_throughput).
  size_t sync_every_records = 1;
  /// Size cap that seals the active segment: after a Sync() that leaves
  /// it at or above this many bytes, a fresh segment is opened. 0 (the
  /// default) disables rotation — single-file log at `<base>`, the
  /// pre-rotation on-disk format.
  uint64_t segment_bytes = 0;
  /// What Reset() does with sealed segments: false deletes them, true
  /// renames them to `<segment>.archived` (an audit trail the replay
  /// path ignores; shipping them off-box is the operator's job).
  bool archive_sealed = false;
  FaultInjector* injector = nullptr;
};

/// Statistics returned by ReplayWal; also the handle Wal::Continue needs
/// to resume appending after recovery (it records where the intact
/// prefix of the final segment ends).
struct WalReplayStats {
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t last_lsn = 0;
  /// Byte length of the intact prefix of the FINAL segment (including
  /// its header in segmented mode) — where Continue truncates.
  uint64_t valid_bytes = 0;
  /// A trailing partial record (or a final segment with a torn header)
  /// was found and discarded.
  bool tail_truncated = false;
  /// Segment files with a valid header that were scanned; 0 = the log
  /// is (or would be) in legacy single-file layout.
  uint64_t segments = 0;
  /// Sequence number of the final valid segment (0 in legacy layout).
  uint64_t last_segment_seq = 0;
};

class Wal {
 public:
  /// Creates a fresh log rooted at `base`: truncates the legacy file
  /// and removes any stale `<base>.NNNNNN` segments, then (in segmented
  /// mode) opens segment 000001. LSNs start at `first_lsn`.
  static Result<std::unique_ptr<Wal>> Create(const std::string& base,
                                             WalOptions options,
                                             uint64_t first_lsn = 1);

  /// Continues appending to an existing log after recovery, using the
  /// stats ReplayWal returned: the final segment is truncated to its
  /// intact prefix (dropping any torn tail), segments past it (torn
  /// rotation leftovers) are removed, and LSNs resume from `next_lsn`.
  /// A log that replayed as legacy single-file keeps that layout even
  /// if `options.segment_bytes` asks for rotation (upgrades happen at
  /// the next Create, not mid-log).
  static Result<std::unique_ptr<Wal>> Continue(const std::string& base,
                                               WalOptions options,
                                               const WalReplayStats& replay,
                                               uint64_t next_lsn);

  /// Legacy-layout convenience overload (pre-rotation callers/tests).
  static Result<std::unique_ptr<Wal>> Continue(const std::string& base,
                                               WalOptions options,
                                               uint64_t valid_bytes,
                                               uint64_t next_lsn);

  /// Appends one record, returning its LSN. The record is buffered;
  /// it becomes durable at the next group-commit boundary or Sync().
  /// A clean ResourceExhausted failure (out of disk space, nothing
  /// persisted) discards the buffered records — the enclosing commit
  /// batch is aborted and must be re-logged in full later — but leaves
  /// the log consistent and appendable; any other failure means the
  /// underlying fd has fail-stopped.
  Result<uint64_t> Append(WalRecordType type, pages::PageId page_id,
                          const void* payload, size_t payload_len);

  /// Flushes buffered records, fsyncs, and rotates the active segment
  /// if it reached the size cap. Same failure contract as Append.
  Status Sync();

  /// Empties the log after a checkpoint has made its records redundant:
  /// sealed segments are retired (deleted or archived, oldest first)
  /// and the active segment is truncated back to its header. LSNs keep
  /// increasing across resets.
  Status Reset();

  /// LSN of the last appended record (first_lsn - 1 if none).
  uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// LSN of the last record guaranteed on disk.
  uint64_t durable_lsn() const { return durable_lsn_; }

  uint64_t appended_records() const { return appended_; }
  uint64_t sync_count() const { return syncs_; }

  /// Rotation observability (all zero in legacy single-file mode).
  uint64_t segments_created() const { return segments_created_; }
  uint64_t segments_sealed() const { return sealed_.size(); }
  uint64_t segments_retired() const { return segments_retired_; }
  uint64_t active_segment_seq() const { return active_seq_; }
  /// Bytes currently live in the log: sealed segments + active segment.
  uint64_t live_bytes() const { return sealed_bytes_ + file_->size(); }

  /// Base path of the log (what Create/Continue/ReplayWal take). In
  /// segmented mode no file exists at this exact path.
  const std::string& path() const { return base_path_; }

 private:
  struct SealedSegment {
    uint64_t seq = 0;
    std::string path;
    uint64_t bytes = 0;
  };

  Wal(std::string base_path, std::unique_ptr<File> file, WalOptions options,
      uint64_t next_lsn, bool segmented, uint64_t active_seq)
      : base_path_(std::move(base_path)), file_(std::move(file)),
        options_(options), segmented_(segmented), active_seq_(active_seq),
        next_lsn_(next_lsn), durable_lsn_(next_lsn - 1) {}

  /// Writes the buffer to the file without fsync.
  Status Flush();

  /// Seals the active segment and opens the next one (segmented mode).
  Status Rotate();

  /// Deletes or archives one retired segment (injector-crash guarded).
  Status RetireSegment(const SealedSegment& segment);

  std::string base_path_;
  std::unique_ptr<File> file_;  // the active segment (or legacy file).
  WalOptions options_;
  bool segmented_ = false;
  uint64_t active_seq_ = 0;  // 0 in legacy mode.
  std::vector<SealedSegment> sealed_;  // oldest first.
  uint64_t sealed_bytes_ = 0;
  uint64_t segments_created_ = 0;
  uint64_t segments_retired_ = 0;
  std::vector<uint8_t> buffer_;
  size_t buffered_records_ = 0;
  uint64_t next_lsn_;
  uint64_t durable_lsn_;
  uint64_t appended_ = 0;
  uint64_t syncs_ = 0;
};

/// One record surfaced during replay; `payload` points into the scan
/// buffer and is valid only for the duration of the callback.
struct WalRecordView {
  WalRecordType type = WalRecordType::kAlloc;
  uint64_t lsn = 0;
  pages::PageId page_id = pages::kInvalidPageId;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

/// Scans the log rooted at `base`, calling `fn` for every intact record
/// in order — across segment boundaries in seq order when the log is
/// segmented (a commit batch may legally span a rotation). Missing
/// file(s) = empty log. A torn tail in the final segment ends the scan
/// cleanly; a torn or corrupt record anywhere else, a bad segment
/// header (except a torn final one), or a gap in the segment sequence
/// returns DataLoss; a non-OK status from `fn` aborts the scan.
Result<WalReplayStats> ReplayWal(
    const std::string& base,
    const std::function<Status(const WalRecordView&)>& fn);

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_WAL_H_
