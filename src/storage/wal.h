// Append-only write-ahead log with LSN-stamped, CRC-framed records and
// fsync batching (group commit). The durability half of the ARIES-lite
// protocol: every page mutation is logged as a full-page redo image
// before it may reach the base file, so recovery is a pure redo replay.
//
// On-disk record frame (little-endian):
//
//   [u32 magic][u32 type][u64 lsn][u32 page_id][u32 payload_len]
//   [payload_len bytes][u32 crc32 over header+payload]
//
// Replay distinguishes the two failure shapes the crash-injection
// harness produces:
//  - a *truncated* trailing record (crash or torn write mid-append) is
//    benign: the scan stops at the last intact record and reports
//    tail_truncated, exactly the contract fsync gives us;
//  - a *complete* record whose CRC does not match (bit rot) is DataLoss:
//    the log cannot be trusted past a silent corruption.

#ifndef BLOBWORLD_STORAGE_WAL_H_
#define BLOBWORLD_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pages/page.h"
#include "storage/file_io.h"
#include "util/status.h"

namespace bw::storage {

enum class WalRecordType : uint32_t {
  kAlloc = 1,      // a page id came into existence (no payload).
  kPageImage = 2,  // full post-write image of page_id (page_codec bytes).
  kCommit = 3,     // batch boundary; payload = u64 application tag.
};

struct WalOptions {
  /// Group commit: buffered records are physically written and fsynced
  /// once this many have accumulated (and on explicit Sync()). 1 makes
  /// every record durable immediately; larger values trade the
  /// durability window for fewer fsyncs (see bench/wal_throughput).
  size_t sync_every_records = 1;
  FaultInjector* injector = nullptr;
};

class Wal {
 public:
  /// Creates (or truncates) the log at `path`; LSNs start at `first_lsn`.
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             WalOptions options,
                                             uint64_t first_lsn = 1);

  /// Continues appending to an existing log after recovery: the file is
  /// truncated to `valid_bytes` (dropping any torn tail ReplayWal
  /// stopped at) and LSNs resume from `next_lsn`.
  static Result<std::unique_ptr<Wal>> Continue(const std::string& path,
                                               WalOptions options,
                                               uint64_t valid_bytes,
                                               uint64_t next_lsn);

  /// Appends one record, returning its LSN. The record is buffered;
  /// it becomes durable at the next group-commit boundary or Sync().
  Result<uint64_t> Append(WalRecordType type, pages::PageId page_id,
                          const void* payload, size_t payload_len);

  /// Flushes buffered records and fsyncs.
  Status Sync();

  /// Empties the log after a checkpoint has made its records redundant.
  /// LSNs keep increasing across resets.
  Status Reset();

  /// LSN of the last appended record (first_lsn - 1 if none).
  uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// LSN of the last record guaranteed on disk.
  uint64_t durable_lsn() const { return durable_lsn_; }

  uint64_t appended_records() const { return appended_; }
  uint64_t sync_count() const { return syncs_; }
  const std::string& path() const { return file_->path(); }

 private:
  Wal(std::unique_ptr<File> file, WalOptions options, uint64_t next_lsn)
      : file_(std::move(file)), options_(options), next_lsn_(next_lsn),
        durable_lsn_(next_lsn - 1) {}

  /// Writes the buffer to the file without fsync.
  Status Flush();

  std::unique_ptr<File> file_;
  WalOptions options_;
  std::vector<uint8_t> buffer_;
  size_t buffered_records_ = 0;
  uint64_t next_lsn_;
  uint64_t durable_lsn_;
  uint64_t appended_ = 0;
  uint64_t syncs_ = 0;
};

/// One record surfaced during replay; `payload` points into the scan
/// buffer and is valid only for the duration of the callback.
struct WalRecordView {
  WalRecordType type = WalRecordType::kAlloc;
  uint64_t lsn = 0;
  pages::PageId page_id = pages::kInvalidPageId;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

struct WalReplayStats {
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t last_lsn = 0;
  /// Byte length of the intact record prefix (where Continue truncates).
  uint64_t valid_bytes = 0;
  /// A trailing partial record was found and discarded.
  bool tail_truncated = false;
};

/// Scans the log at `path`, calling `fn` for every intact record in
/// order. Missing file = empty log. A torn tail ends the scan cleanly;
/// a complete-but-corrupt record returns DataLoss; a non-OK status from
/// `fn` aborts the scan.
Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(const WalRecordView&)>& fn);

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_WAL_H_
