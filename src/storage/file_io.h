// Thin positional-I/O file wrapper (POSIX fd underneath) with the
// FaultInjector hook on every physical write AND read. All durable
// state in the storage engine — base page files and WALs — goes through
// this class, so a single injector can kill the entire write stream of
// a store at a chosen point, or make its read path flaky (transient
// pread failures, read-side bit flips, hung reads) on a schedule.
//
// Failure semantics on the write side (the fd's share of the write-path
// fault model, DESIGN.md §10):
//
//  - Clean ENOSPC (injected, or a real pwrite that wrote 0 bytes before
//    failing with ENOSPC) surfaces as kResourceExhausted and leaves the
//    fd usable: nothing was persisted, the caller may shed load and
//    retry the operation later on the same fd.
//  - Everything else that fails a write or an fsync makes the fd
//    FAIL-STOP: every later WriteAt/Append/Sync/Truncate on it fails
//    immediately. A failed fsync in particular must never be retried
//    and then reported clean — the kernel may have dropped the dirty
//    pages on the first failure, so a later fsync returning 0 proves
//    nothing (the "fsyncgate" lesson; see PostgreSQL's 2018 fsync
//    reliability saga). Durability on that fd is unknowable; the only
//    honest continuation is crash recovery from the last known-durable
//    state. Reads stay usable — serving degraded is the point.

#ifndef BLOBWORLD_STORAGE_FILE_IO_H_
#define BLOBWORLD_STORAGE_FILE_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/async_io.h"
#include "storage/fault_injector.h"
#include "util/status.h"

namespace bw::storage {

/// One byte range of a batched read, with its per-span outcome. The
/// ranges of one batch must not overlap (each span's buffer is written
/// by exactly one engine worker).
struct ReadSpan {
  uint64_t offset = 0;
  void* data = nullptr;
  size_t n = 0;
  /// Out: same contract as File::ReadAt — OK, Unavailable (transient,
  /// retryable), or IoError.
  Status status;
};

class File {
 public:
  /// Opens `path` read-write, creating it if missing; truncates existing
  /// contents when `truncate` is set. The injector (may be null) is
  /// consulted before every physical write and sync.
  static Result<std::unique_ptr<File>> Open(const std::string& path,
                                            bool truncate,
                                            FaultInjector* injector = nullptr);

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Writes exactly `n` bytes at `offset` (extending the file as
  /// needed). IoError if the write cannot complete — including a
  /// simulated crash, in which case a torn prefix may have been
  /// persisted. ResourceExhausted for a *clean* out-of-space failure
  /// (nothing persisted, fd still usable); any other failure fail-stops
  /// the fd (see file header).
  Status WriteAt(uint64_t offset, const void* data, size_t n);

  /// Appends exactly `n` bytes at the current end of file.
  Status Append(const void* data, size_t n);

  /// Reads exactly `n` bytes at `offset`; IoError on a short read,
  /// Unavailable on a simulated transient read fault (retryable). An
  /// armed injector may also delay the read or flip one bit of the
  /// returned buffer (the bytes on disk stay intact).
  Status ReadAt(uint64_t offset, void* data, size_t n) const;

  /// Reads every span of the batch, overlapping the physical reads on
  /// the chosen engine (see async_io.h); per-span outcomes land in
  /// spans[i].status with ReadAt's exact semantics.
  ///
  /// Fault-injection contract: the injector is consulted exactly once
  /// per span, on the calling thread, in span order, *before* any
  /// physical read is issued — so an armed ReadFaultPlan unrolls the
  /// same deterministic schedule whichever engine serves the batch, and
  /// a batch of N spans advances the schedule exactly as N sequential
  /// ReadAt calls would. Each span's decision (delay, transient
  /// failure, bit flip) is then applied by whichever worker serves that
  /// span; injected delays overlap across spans instead of summing.
  void ReadBatch(ReadSpan* spans, size_t count,
                 IoEngineKind engine = ResolveIoEngine()) const;

  uint64_t size() const { return size_; }

  /// fsync. Fails after a simulated crash. A failed fsync (simulated or
  /// real) fail-stops the fd: this and every later mutation on it keeps
  /// failing — the sync is never retried in a way that could report a
  /// lost write as durable (fsyncgate semantics).
  Status Sync();

  /// True once a failed write or fsync has fail-stopped this fd (the
  /// injected-crash state also reads as fail-stopped).
  bool fail_stopped() const;

  /// Truncates the file to `new_size` bytes.
  Status Truncate(uint64_t new_size);

  const std::string& path() const { return path_; }

 private:
  File(int fd, uint64_t size, std::string path, FaultInjector* injector)
      : fd_(fd), size_(size), path_(std::move(path)), injector_(injector) {}

  Status CheckAlive() const;

  int fd_;
  uint64_t size_;
  std::string path_;
  FaultInjector* injector_;
  /// Set by the first failed write or fsync; makes every later mutation
  /// fail (reads are unaffected).
  bool fail_stopped_ = false;
};

/// Reads the entire file at `path` into `out`. IoError if unreadable.
Status ReadFile(const std::string& path, std::vector<uint8_t>* out);

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_FILE_IO_H_
