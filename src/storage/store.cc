#include "storage/store.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "pages/page_codec.h"
#include "util/logging.h"

namespace bw::storage {

Status CheckpointManager::Checkpoint() {
  // A page quarantined since Open has no valid copy anywhere but the
  // WAL; truncating the log now would make it permanently unrepairable.
  if (!disk_->suspect_pages().empty()) {
    return Status::Unavailable(
        "checkpoint deferred: quarantined page(s) still pin WAL redo "
        "images; run RepairQuarantined first");
  }
  // Order matters (invariant 3 in store.h): the WAL must hold every
  // image we are about to flush before a frame write can tear, the
  // header may only advance once the frames it describes are synced,
  // and the log is truncated only after the header that supersedes its
  // records is durable.
  BW_RETURN_IF_ERROR(wal_->Sync());
  const std::vector<pages::PageId> dirty = disk_->TakeCheckpointDirty();
  const Status flushed = disk_->FlushPagesAndSync(dirty);
  if (!flushed.ok()) {
    // The WAL was not truncated, so every image is still replayable —
    // but the drained dirty set must go back, or the next successful
    // checkpoint would publish a header while these frames are stale
    // (or torn) on disk and then truncate their redo images away.
    disk_->RestoreCheckpointTracking(dirty);
    return flushed;
  }
  BW_RETURN_IF_ERROR(disk_->CommitHeader(wal_->durable_lsn()));
  BW_RETURN_IF_ERROR(wal_->Reset());
  ++checkpoints_;
  return Status::OK();
}

Status CheckpointManager::MaybeCheckpoint(uint64_t committed_batches) {
  if (every_commits_ == 0 || committed_batches % every_commits_ != 0) {
    return Status::OK();
  }
  if (!disk_->suspect_pages().empty()) {
    return Status::OK();  // deferred until repair frees the WAL.
  }
  return Checkpoint();
}

DurableStore::DurableStore(std::unique_ptr<DiskPageFile> disk,
                           std::unique_ptr<Wal> wal, StoreOptions options,
                           uint64_t committed_batches,
                           uint64_t last_commit_tag)
    : disk_(std::move(disk)),
      wal_(std::move(wal)),
      options_(options),
      checkpointer_(disk_.get(), wal_.get(), options.checkpoint_every_commits),
      committed_batches_(committed_batches),
      last_commit_tag_(last_commit_tag),
      checkpoint_tag_(last_commit_tag) {}

Result<std::unique_ptr<DurableStore>> DurableStore::Create(
    const std::string& base_path, const std::string& wal_path,
    StoreOptions options) {
  DiskPageFileOptions disk_options;
  disk_options.injector = options.injector;
  disk_options.read_retry = options.read_retry;
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<DiskPageFile> disk,
      DiskPageFile::Create(base_path, options.page_size, disk_options));
  WalOptions wal_options;
  wal_options.sync_every_records = options.wal_sync_every_records;
  wal_options.segment_bytes = options.wal_segment_bytes;
  wal_options.archive_sealed = options.wal_archive_sealed;
  wal_options.injector = options.injector;
  BW_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                      Wal::Create(wal_path, wal_options));
  return std::make_unique<DurableStore>(std::move(disk), std::move(wal),
                                        options, /*committed_batches=*/0);
}

Status DurableStore::AppendBatchRecords(
    const std::vector<pages::PageId>& allocs,
    const std::vector<pages::PageId>& dirty, uint64_t tag) {
  // Allocations first so replay extends the page table before any image
  // lands in it; images second; the commit record seals the batch.
  std::vector<uint8_t> image;
  for (const pages::PageId id : allocs) {
    BW_RETURN_IF_ERROR(
        wal_->Append(WalRecordType::kAlloc, id, nullptr, 0).status());
  }
  for (const pages::PageId id : dirty) {
    // PeekNoIo, not Read: logging is bookkeeping, not index I/O, and
    // must not skew the IoStats that benchmarks report.
    pages::EncodePage(*disk_->PeekNoIo(id), &image);
    BW_RETURN_IF_ERROR(
        wal_->Append(WalRecordType::kPageImage, id, image.data(), image.size())
            .status());
  }
  uint8_t tag_bytes[8];
  std::memcpy(tag_bytes, &tag, sizeof(tag));
  return wal_->Append(WalRecordType::kCommit, pages::kInvalidPageId, tag_bytes,
                      sizeof(tag_bytes))
      .status();
}

Status DurableStore::CommitBatch(uint64_t tag) {
  const std::vector<pages::PageId> allocs = disk_->TakeAllocationsSinceCommit();
  const std::vector<pages::PageId> dirty = disk_->TakeDirtySinceCommit();
  const Status appended = AppendBatchRecords(allocs, dirty, tag);
  if (appended.code() == StatusCode::kResourceExhausted) {
    // Clean out-of-space: no byte of the batch is durable (at worst a
    // committed-record-free prefix that recovery discards). Re-arm the
    // tracking so the next CommitBatch re-logs the same changes; the
    // tree's in-memory state is untouched and stays servable.
    disk_->RestoreCommitTracking(allocs, dirty);
    return appended;
  }
  BW_RETURN_IF_ERROR(appended);
  ++committed_batches_;
  last_commit_tag_.store(tag, std::memory_order_relaxed);
  const uint64_t taken = checkpointer_.checkpoints_taken();
  BW_RETURN_IF_ERROR(checkpointer_.MaybeCheckpoint(committed_batches_));
  if (checkpointer_.checkpoints_taken() != taken) {
    // The cadence checkpoint just folded everything through this batch:
    // the shipping horizon advances with it.
    checkpoint_tag_.store(tag, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DurableStore::RepairQuarantined(RepairReport* report) {
  RepairReport local;
  std::vector<pages::PageId> need_wal;
  for (const pages::PageId id : disk_->health().Quarantined()) {
    if (!disk_->memory_invalid(id)) {
      // Disk rot under a still-valid memory copy (scrub-detected, or a
      // read-path flip): rewrite the frame from memory.
      if (disk_->RepairFromMemory(id).ok()) {
        ++local.repaired_from_memory;
      } else {
        ++local.unrepaired;  // verification still failing; retry later.
      }
      continue;
    }
    // No valid memory copy. The cheap cure first: the frame may have
    // been unreadable at Open only because of a transient fault.
    if (disk_->ReloadFromDisk(id).ok()) {
      ++local.repaired_from_disk;
    } else {
      need_wal.push_back(id);
    }
  }

  if (!need_wal.empty()) {
    // Mine the preserved WAL for the newest *committed* redo image of
    // each page (uncommitted tails must not leak into served state).
    std::unordered_set<pages::PageId> wanted(need_wal.begin(),
                                             need_wal.end());
    std::unordered_map<pages::PageId, std::vector<uint8_t>> pending;
    std::unordered_map<pages::PageId, std::vector<uint8_t>> committed;
    const Status scanned =
        ReplayWal(wal_->path(), [&](const WalRecordView& record) -> Status {
          if (record.type == WalRecordType::kPageImage &&
              wanted.count(record.page_id) > 0) {
            pending[record.page_id].assign(
                record.payload, record.payload + record.payload_len);
          } else if (record.type == WalRecordType::kCommit) {
            for (auto& [id, image] : pending) {
              committed[id] = std::move(image);
            }
            pending.clear();
          }
          return Status::OK();
        }).status();
    if (!scanned.ok()) return scanned;

    for (const pages::PageId id : need_wal) {
      auto it = committed.find(id);
      if (it == committed.end() ||
          !disk_->ApplyPageImage(id, it->second.data(), it->second.size())
               .ok()) {
        ++local.unrepaired;
        continue;
      }
      // The page is servable again from memory; also rewrite its frame
      // so the heal is durable (best effort — a failure here just means
      // the next scrub/repair pass revisits the frame).
      (void)disk_->RepairFromMemory(id);
      ++local.repaired_from_wal;
    }
  }

  if (report != nullptr) *report = local;
  return Status::OK();
}

Result<std::unique_ptr<DurableStore>> RecoveryManager::Recover(
    const std::string& base_path, const std::string& wal_path,
    StoreOptions options, Summary* summary) {
  Summary local;
  Summary& out = summary != nullptr ? *summary : local;
  out = Summary();

  DiskPageFileOptions disk_options;
  disk_options.injector = options.injector;
  disk_options.read_retry = options.read_retry;
  BW_ASSIGN_OR_RETURN(std::unique_ptr<DiskPageFile> disk,
                      DiskPageFile::Open(base_path, disk_options));

  // Redo scan. Records at or below the checkpoint LSN are already
  // reflected in the base file (a crash can land between header publish
  // and WAL truncation, leaving stale records). Later records are
  // buffered per batch and applied only when the batch's kCommit record
  // proves the whole batch reached the log.
  const uint64_t checkpoint_lsn = disk->checkpoint_lsn();
  struct PendingOp {
    WalRecordType type;
    pages::PageId page_id;
    std::vector<uint8_t> payload;
  };
  std::vector<PendingOp> pending;
  uint64_t pending_records = 0;
  BW_ASSIGN_OR_RETURN(
      WalReplayStats replay,
      ReplayWal(wal_path, [&](const WalRecordView& record) -> Status {
        if (record.lsn <= checkpoint_lsn) return Status::OK();
        if (record.type == WalRecordType::kCommit) {
          if (record.payload_len != 8) {
            return Status::DataLoss("WAL commit record with malformed tag");
          }
          for (const PendingOp& op : pending) {
            if (op.type == WalRecordType::kAlloc) {
              BW_RETURN_IF_ERROR(disk->EnsureAllocated(op.page_id));
            } else {
              BW_RETURN_IF_ERROR(disk->ApplyPageImage(
                  op.page_id, op.payload.data(), op.payload.size()));
            }
          }
          out.records_applied += pending_records;
          pending.clear();
          pending_records = 0;
          ++out.committed_batches;
          std::memcpy(&out.last_commit_tag, record.payload, 8);
          return Status::OK();
        }
        PendingOp op;
        op.type = record.type;
        op.page_id = record.page_id;
        op.payload.assign(record.payload, record.payload + record.payload_len);
        pending.push_back(std::move(op));
        ++pending_records;
        return Status::OK();
      }));
  out.records_discarded = pending_records;
  out.wal_tail_truncated = replay.tail_truncated;
  out.recovered_lsn = std::max(checkpoint_lsn, replay.last_lsn);
  out.wal_segments_replayed = replay.segments;

  // Every suspect frame must have been repaired by a replayed image;
  // a survivor means the base file rotted outside any redo window.
  const std::vector<pages::PageId> suspects = disk->suspect_pages();
  if (!suspects.empty() && !options.quarantine_unrepaired) {
    std::string ids;
    for (const pages::PageId id : suspects) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(id);
    }
    return Status::DataLoss("base file page(s) [" + ids +
                            "] failed checksum verification and no WAL "
                            "redo image repairs them");
  }
  out.pages_quarantined = suspects.size();

  // Replay applied images directly; none of it is new work to re-log.
  disk->ClearCommitTracking();
  // But the next checkpoint must rewrite everything: the base frames on
  // disk may predate the replayed state (fuzzy checkpoints flush only
  // what changed, so "unchanged since replay" is not "clean on disk").
  disk->MarkAllDirtyForCheckpoint();

  WalOptions wal_options;
  wal_options.sync_every_records = options.wal_sync_every_records;
  wal_options.segment_bytes = options.wal_segment_bytes;
  wal_options.archive_sealed = options.wal_archive_sealed;
  wal_options.injector = options.injector;
  const uint64_t next_lsn = out.recovered_lsn + 1;
  BW_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                      Wal::Continue(wal_path, wal_options, replay, next_lsn));

  auto store = std::make_unique<DurableStore>(std::move(disk), std::move(wal),
                                              options, out.committed_batches,
                                              out.last_commit_tag);
  if (out.pages_quarantined > 0) {
    // Tolerant mode with survivors: skip the post-recovery checkpoint.
    // It would truncate the WAL, and the WAL is the only place a redo
    // image for a quarantined page can still turn up (a record past the
    // bad batch, or one a later RepairQuarantined pass can reach after
    // operator intervention). The store serves degraded instead.
    return store;
  }
  // Fold the replayed state into a fresh checkpoint so the store starts
  // from a clean base and an empty log; a crash during this checkpoint
  // is itself recoverable (the old header + full WAL still exist until
  // the new header is durable).
  BW_RETURN_IF_ERROR(store->Checkpoint());
  return store;
}

}  // namespace bw::storage
