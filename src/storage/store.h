// The durable storage engine's coordination layer: DurableStore ties a
// DiskPageFile (checksummed base file) to a Wal (redo log) and enforces
// the ARIES-lite protocol; CheckpointManager runs fuzzy checkpoints;
// RecoveryManager rebuilds a store from whatever bytes survived a crash.
//
// Protocol invariants (tested by the crash-injection harness):
//
//  1. WAL-first: a page's post-write image is appended to the WAL before
//     that page may be flushed to the base file (CommitBatch before
//     Checkpoint flush).
//  2. Batch atomicity: CommitBatch frames all changes since the previous
//     commit between the prior kCommit record and a new one. Recovery
//     applies only whole committed batches; a crash mid-batch rolls the
//     store back to the previous commit.
//  3. Checkpoint ordering: sync WAL -> flush dirty frames -> fsync ->
//     publish header (alternate slot, fsync) -> truncate WAL. A crash at
//     any point leaves either the old header + full WAL (redo repairs
//     torn frames) or the new header (stale WAL records are skipped by
//     their LSN filter).
//  4. Detection over trust: a checksum mismatch that redo cannot repair
//     (bit-flipped base frame with no WAL image, corrupt WAL record with
//     intact successors) surfaces as DataLoss instead of serving bytes
//     that were never written.

#ifndef BLOBWORLD_STORAGE_STORE_H_
#define BLOBWORLD_STORAGE_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "storage/disk_page_file.h"
#include "storage/wal.h"
#include "util/status.h"

namespace bw::storage {

struct StoreOptions {
  size_t page_size = pages::kDefaultPageSize;
  /// Group-commit batch size forwarded to the WAL (records per fsync).
  size_t wal_sync_every_records = 1;
  /// WAL segment rotation cap (bytes), forwarded to WalOptions. 0 (the
  /// default) keeps the single-file log; > 0 bounds the live log to
  /// roughly segment_bytes x (commits between checkpoints / rotation
  /// cadence) — sealed segments are retired at each checkpoint.
  uint64_t wal_segment_bytes = 0;
  /// Archive (rename) sealed WAL segments at checkpoint instead of
  /// deleting them. Forwarded to WalOptions::archive_sealed.
  bool wal_archive_sealed = false;
  /// Run a fuzzy checkpoint automatically every N committed batches;
  /// 0 = checkpoint only on explicit Checkpoint() calls.
  size_t checkpoint_every_commits = 0;
  FaultInjector* injector = nullptr;
  /// Transient-read retry policy forwarded to the DiskPageFile.
  ReadRetryPolicy read_retry;
  /// Recovery disposition for base pages whose frames fail their
  /// checksum and have no WAL redo image. false (default): recovery
  /// fails with DataLoss — the fail-closed contract PR 2 shipped with.
  /// true: such pages are quarantined instead, the store opens and
  /// serves degraded (traversals skip them), and the WAL is preserved —
  /// not folded into a checkpoint — so RepairQuarantined can still mine
  /// it for redo images.
  bool quarantine_unrepaired = false;
};

/// Runs the fuzzy-checkpoint protocol over a (DiskPageFile, Wal) pair.
class CheckpointManager {
 public:
  CheckpointManager(DiskPageFile* disk, Wal* wal, size_t every_commits)
      : disk_(disk), wal_(wal), every_commits_(every_commits) {}

  /// Makes everything logged so far durable in the base file and empties
  /// the WAL (protocol invariant 3 above). Unavailable while any page's
  /// memory copy is invalid (quarantined since Open, not yet repaired):
  /// truncating the WAL then would destroy the only redo images that can
  /// still heal those pages.
  Status Checkpoint();

  /// Checkpoints when the configured commit cadence is due; silently
  /// deferred while unrepaired quarantined pages pin the WAL.
  Status MaybeCheckpoint(uint64_t committed_batches);

  uint64_t checkpoints_taken() const { return checkpoints_; }

 private:
  DiskPageFile* disk_;
  Wal* wal_;
  size_t every_commits_;
  uint64_t checkpoints_ = 0;
};

/// A durable page store: the PageStore any index builds onto, plus the
/// commit/checkpoint surface that makes its state crash-recoverable.
/// Single-threaded on the mutation side, like every PageStore; the
/// concurrent read path (PeekNoIo through per-worker BufferPools) is
/// unchanged.
class DurableStore {
 public:
  /// Creates a fresh store (truncating both files).
  static Result<std::unique_ptr<DurableStore>> Create(
      const std::string& base_path, const std::string& wal_path,
      StoreOptions options);

  /// Adopts already-constructed parts; used by RecoveryManager. Prefer
  /// Create/Recover. `last_commit_tag` seeds both tag counters (after
  /// Create or a recovery the WAL starts empty-or-about-to-be-folded,
  /// so the checkpoint horizon and the newest tag coincide).
  DurableStore(std::unique_ptr<DiskPageFile> disk, std::unique_ptr<Wal> wal,
               StoreOptions options, uint64_t committed_batches,
               uint64_t last_commit_tag = 0);

  /// The substrate indexes build onto and serve from.
  pages::PageStore* pages() { return disk_.get(); }
  DiskPageFile* disk() { return disk_.get(); }
  const DiskPageFile* disk() const { return disk_.get(); }
  Wal* wal() { return wal_.get(); }
  const Wal* wal() const { return wal_.get(); }

  /// Logs everything changed since the previous commit (allocations,
  /// then full post-write page images) as one atomic WAL batch closed by
  /// a kCommit record carrying `tag`. Durability follows the WAL's
  /// group-commit cadence; a batch is recovered all-or-nothing. The tag
  /// of the newest durable batch is reported by recovery, so callers can
  /// use it to identify how much logical work survived a crash.
  /// A *clean* out-of-space failure (kResourceExhausted: no log byte
  /// landed, or only a prefix that recovery discards as an uncommitted
  /// tail) puts the drained dirty/allocation tracking back, so the same
  /// changes are re-logged by the next CommitBatch once space returns —
  /// the store stays consistent and retryable. Any other failure means
  /// the log's fd has fail-stopped and only crash recovery can continue.
  Status CommitBatch(uint64_t tag);
  Status CommitBatch() { return CommitBatch(committed_batches_ + 1); }

  /// Forces the fuzzy checkpoint protocol now.
  Status Checkpoint() {
    BW_RETURN_IF_ERROR(checkpointer_.Checkpoint());
    checkpoint_tag_.store(last_commit_tag_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return Status::OK();
  }

  /// What one RepairQuarantined() pass accomplished.
  struct RepairReport {
    /// Pages whose memory copy was valid: frame rewritten from memory.
    uint64_t repaired_from_memory = 0;
    /// Pages healed by re-reading a frame that was only transiently
    /// unreadable at Open.
    uint64_t repaired_from_disk = 0;
    /// Pages healed from the newest committed WAL redo image.
    uint64_t repaired_from_wal = 0;
    /// Pages still quarantined after the pass (no WAL image exists, or
    /// the rewrite could not be verified); later passes retry them.
    uint64_t unrepaired = 0;
  };

  /// On-demand repair: returns every quarantined page to service that
  /// can be healed, preferring the in-memory copy (disk rot under a
  /// valid page) and falling back to a WAL scan for pages quarantined at
  /// Open. Safe to run from a background thread while queries serve —
  /// it only rewrites frames of pages the health registry already gates
  /// and replaces page bytes only for pages that were never readable.
  Status RepairQuarantined(RepairReport* report = nullptr);

  uint64_t committed_batches() const { return committed_batches_; }
  const CheckpointManager& checkpointer() const { return checkpointer_; }

  // --- Catch-up surface (WAL shipping; see storage/wal_ship.h) ---------

  /// Application tag of the newest durable batch (0 before the first
  /// commit; adopted from the recovery summary after a crash). Atomic so
  /// a catch-up driver can poll position without the mutator's locks.
  uint64_t last_commit_tag() const {
    return last_commit_tag_.load(std::memory_order_relaxed);
  }

  /// Tag of the newest batch folded into the base file by a checkpoint:
  /// the WAL-shipping horizon. A target whose own tag is below this can
  /// no longer be caught up from this store's log — the batches it
  /// needs were truncated — and must take the snapshot path instead.
  uint64_t checkpoint_tag() const {
    return checkpoint_tag_.load(std::memory_order_relaxed);
  }

 private:
  /// Appends the batch's alloc/image/commit records; factored out so
  /// CommitBatch can restore the drained tracking on a clean failure.
  Status AppendBatchRecords(const std::vector<pages::PageId>& allocs,
                            const std::vector<pages::PageId>& dirty,
                            uint64_t tag);

  std::unique_ptr<DiskPageFile> disk_;
  std::unique_ptr<Wal> wal_;
  StoreOptions options_;
  CheckpointManager checkpointer_;
  uint64_t committed_batches_ = 0;
  std::atomic<uint64_t> last_commit_tag_{0};
  std::atomic<uint64_t> checkpoint_tag_{0};
};

/// ARIES-lite redo recovery: rebuilds a DurableStore from the base file
/// and WAL left behind by a crash.
class RecoveryManager {
 public:
  struct Summary {
    uint64_t committed_batches = 0;  // whole batches redone from the WAL.
    uint64_t last_commit_tag = 0;    // tag of the newest durable batch.
    uint64_t records_applied = 0;    // alloc/page-image records redone.
    uint64_t records_discarded = 0;  // records of the uncommitted tail.
    bool wal_tail_truncated = false;  // torn tail detected and dropped.
    uint64_t recovered_lsn = 0;       // durable state as of this LSN.
    uint64_t pages_quarantined = 0;   // unrepaired suspects (tolerant mode).
    uint64_t wal_segments_replayed = 0;  // 0 = legacy single-file log.
  };

  /// Replays committed WAL batches over the checkpointed base, verifies
  /// every page checksum, then re-checkpoints so the returned store
  /// starts from a clean base and an empty log. DataLoss if corruption
  /// is detected that redo cannot repair — unless
  /// StoreOptions::quarantine_unrepaired is set, in which case the store
  /// opens degraded with those pages quarantined and the WAL preserved
  /// for RepairQuarantined.
  static Result<std::unique_ptr<DurableStore>> Recover(
      const std::string& base_path, const std::string& wal_path,
      StoreOptions options, Summary* summary = nullptr);
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_STORE_H_
