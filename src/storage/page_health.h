// Per-page health registry: the source of truth for whether a page of a
// DiskPageFile is currently fit to serve. Pages enter quarantine when a
// frame fails its CRC (at Open or during a scrub/re-read) and leave it
// when repair re-materializes a verified image (from a disk re-read, the
// in-memory copy, or the newest committed WAL image). The serving path
// consults this registry — via pages::PageStore::ReadHealth — before
// trusting a memory-resident page, which is how quarantine gates query
// traffic even though serving reads never touch the disk themselves.
//
// Thread-safety: queries check health from many worker threads while
// the scrubber/repair thread mutates it. The empty case (healthy store)
// is the common one, so it is answered by a lock-free size check; the
// per-page lookup takes the mutex only when at least one page is sick.

#ifndef BLOBWORLD_STORAGE_PAGE_HEALTH_H_
#define BLOBWORLD_STORAGE_PAGE_HEALTH_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace bw::storage {

class PageHealth {
 public:
  PageHealth() = default;
  PageHealth(const PageHealth&) = delete;
  PageHealth& operator=(const PageHealth&) = delete;

  /// True if `page_id` is quarantined. Lock-free when nothing is.
  bool IsQuarantined(uint32_t page_id) const {
    if (count_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_.count(page_id) > 0;
  }

  /// Marks `page_id` unfit to serve. Returns true if it was healthy
  /// before (so callers can count distinct quarantine events).
  bool Quarantine(uint32_t page_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted = quarantined_.insert(page_id).second;
    if (inserted) {
      count_.store(quarantined_.size(), std::memory_order_release);
      ++total_quarantined_;
    }
    return inserted;
  }

  /// Returns `page_id` to service after a verified repair. Returns true
  /// if it was quarantined.
  bool Release(uint32_t page_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool erased = quarantined_.erase(page_id) > 0;
    if (erased) {
      count_.store(quarantined_.size(), std::memory_order_release);
      ++total_repaired_;
    }
    return erased;
  }

  /// Pages currently quarantined, sorted ascending (stable for tests).
  std::vector<uint32_t> Quarantined() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<uint32_t> out(quarantined_.begin(), quarantined_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  size_t quarantined_count() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Lifetime counters (monotonic): distinct quarantine entries and
  /// successful repairs since construction.
  uint64_t total_quarantined() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_quarantined_;
  }
  uint64_t total_repaired() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_repaired_;
  }

 private:
  mutable std::mutex mutex_;
  std::atomic<size_t> count_{0};
  std::unordered_set<uint32_t> quarantined_;
  uint64_t total_quarantined_ = 0;
  uint64_t total_repaired_ = 0;
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_PAGE_HEALTH_H_
