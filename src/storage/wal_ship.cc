#include "storage/wal_ship.h"

#include <algorithm>
#include <cstring>

namespace bw::storage {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

}  // namespace

Result<WalShipReadout> ReadWalBatchesAfter(const std::string& base,
                                           uint64_t after_tag,
                                           size_t max_batches,
                                           size_t max_bytes) {
  WalShipReadout out;
  ShippedBatch pending;
  size_t pending_bytes = 0;
  size_t collected_bytes = 0;
  // The full scan is fine: the live log is bounded by the checkpoint
  // cadence, and budgets only bound what is *returned* per pull.
  const Status scanned =
      ReplayWal(base, [&](const WalRecordView& record) -> Status {
        if (record.type != WalRecordType::kCommit) {
          ShippedRecord shipped;
          shipped.type = record.type;
          shipped.page_id = record.page_id;
          shipped.payload.assign(record.payload,
                                 record.payload + record.payload_len);
          pending_bytes += record.payload_len + 12;
          pending.records.push_back(std::move(shipped));
          return Status::OK();
        }
        if (record.payload_len != sizeof(uint64_t)) {
          return Status::DataLoss("WAL commit record with malformed tag");
        }
        uint64_t tag = 0;
        std::memcpy(&tag, record.payload, sizeof(tag));
        out.last_tag = tag;
        const bool wanted = tag > after_tag;
        const bool budget_left = out.batches.size() < max_batches &&
                                 (out.batches.empty() ||
                                  collected_bytes + pending_bytes <= max_bytes);
        if (wanted && budget_left) {
          pending.tag = tag;
          collected_bytes += pending_bytes;
          out.batches.push_back(std::move(pending));
        } else if (wanted) {
          out.more = true;
        }
        pending = ShippedBatch();
        pending_bytes = 0;
        return Status::OK();
      }).status();
  BW_RETURN_IF_ERROR(scanned);
  return out;
}

Result<WalReplayStats> ReplayWalFrom(
    const std::string& base, uint64_t from_lsn,
    const std::function<Status(const WalRecordView&)>& fn) {
  return ReplayWal(base, [&](const WalRecordView& record) -> Status {
    if (record.lsn < from_lsn) return Status::OK();
    return fn(record);
  });
}

size_t ShippedBatchWireSize(const ShippedBatch& batch) {
  size_t bytes = 8 + 4;
  for (const ShippedRecord& record : batch.records) {
    bytes += 12 + record.payload.size();
  }
  return bytes;
}

void EncodeShippedBatch(const ShippedBatch& batch, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(ShippedBatchWireSize(batch));
  PutU64(out, batch.tag);
  PutU32(out, static_cast<uint32_t>(batch.records.size()));
  for (const ShippedRecord& record : batch.records) {
    PutU32(out, static_cast<uint32_t>(record.type));
    PutU32(out, record.page_id);
    PutU32(out, static_cast<uint32_t>(record.payload.size()));
    out->insert(out->end(), record.payload.begin(), record.payload.end());
  }
}

bool DecodeShippedBatch(const uint8_t* data, size_t len, ShippedBatch* out) {
  *out = ShippedBatch();
  size_t at = 0;
  const auto take_u32 = [&](uint32_t* v) -> bool {
    if (len - at < sizeof(*v)) return false;
    std::memcpy(v, data + at, sizeof(*v));
    at += sizeof(*v);
    return true;
  };
  if (len < 12) return false;
  std::memcpy(&out->tag, data, sizeof(out->tag));
  at = sizeof(out->tag);
  uint32_t count = 0;
  if (!take_u32(&count)) return false;
  out->records.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t type = 0, page_id = 0, payload_len = 0;
    if (!take_u32(&type) || !take_u32(&page_id) || !take_u32(&payload_len)) {
      return false;
    }
    if (type != static_cast<uint32_t>(WalRecordType::kAlloc) &&
        type != static_cast<uint32_t>(WalRecordType::kPageImage)) {
      return false;
    }
    if (len - at < payload_len) return false;
    ShippedRecord record;
    record.type = static_cast<WalRecordType>(type);
    record.page_id = page_id;
    record.payload.assign(data + at, data + at + payload_len);
    at += payload_len;
    out->records.push_back(std::move(record));
  }
  return at == len;
}

}  // namespace bw::storage
