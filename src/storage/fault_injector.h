// Deterministic write-path fault injection, threaded through every
// physical write the storage engine performs (base file and WAL). The
// crash-recovery tests do not merely unit-test replay logic: they arm an
// injector, actually kill the write stream mid-operation at a chosen
// point, throw the in-memory state away, and then require recovery to
// reconstruct a consistent store from whatever bytes made it to disk.
//
// Faults:
//  - kCrash:     the Nth write (and everything after it) is dropped, as
//                if the process died just before the syscall.
//  - kTornWrite: the Nth write persists only a prefix (half) of its
//                buffer, then the process dies — models a torn sector
//                write during power loss.
//  - kBitFlip:   one bit of the Nth write's buffer is inverted and the
//                write otherwise succeeds — models silent media
//                corruption that only checksums can catch.

#ifndef BLOBWORLD_STORAGE_FAULT_INJECTOR_H_
#define BLOBWORLD_STORAGE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>

namespace bw::storage {

class FaultInjector {
 public:
  enum class Fault { kNone, kCrash, kTornWrite, kBitFlip };

  /// What storage::File must do with one physical write.
  struct WriteDecision {
    /// Drop the write entirely and fail (the "process" is dead).
    bool drop = false;
    /// If not SIZE_MAX: persist only this many bytes, then fail.
    size_t truncate_to = static_cast<size_t>(-1);
    /// Invert one bit of the buffer before writing (write succeeds).
    bool flip_bit = false;
  };

  /// Arms `fault` to fire on the nth_write-th subsequent physical write
  /// (1-based, counted from this call).
  void Arm(Fault fault, uint64_t nth_write) {
    fault_ = fault;
    trigger_ = nth_write;
    writes_seen_ = 0;
    crashed_ = false;
    fired_ = false;
  }

  void Disarm() {
    fault_ = Fault::kNone;
    crashed_ = false;
  }

  /// True once a kCrash/kTornWrite fault has fired: every later write
  /// and sync fails, like a dead process's would.
  bool crashed() const { return crashed_; }
  /// True once the armed fault has fired at its trigger point.
  bool fired() const { return fired_; }
  /// Physical writes observed since Arm() (a disarmed injector still
  /// counts, so a fault-free dry run measures the write schedule).
  uint64_t writes_seen() const { return writes_seen_; }

  WriteDecision OnWrite(size_t len) {
    WriteDecision decision;
    ++writes_seen_;
    if (crashed_) {
      decision.drop = true;
      return decision;
    }
    if (fault_ == Fault::kNone || writes_seen_ != trigger_) {
      return decision;
    }
    fired_ = true;
    switch (fault_) {
      case Fault::kCrash:
        crashed_ = true;
        decision.drop = true;
        break;
      case Fault::kTornWrite:
        crashed_ = true;
        decision.truncate_to = len / 2;
        break;
      case Fault::kBitFlip:
        decision.flip_bit = true;
        fault_ = Fault::kNone;  // one-shot; writes continue normally.
        break;
      case Fault::kNone:
        break;
    }
    return decision;
  }

 private:
  Fault fault_ = Fault::kNone;
  uint64_t trigger_ = 0;
  uint64_t writes_seen_ = 0;
  bool crashed_ = false;
  bool fired_ = false;
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_FAULT_INJECTOR_H_
