// Deterministic fault injection, threaded through every physical I/O
// the storage engine performs (base file and WAL). The crash-recovery
// tests do not merely unit-test replay logic: they arm an injector,
// actually kill the write stream mid-operation at a chosen point, throw
// the in-memory state away, and then require recovery to reconstruct a
// consistent store from whatever bytes made it to disk. The self-healing
// read-path tests arm the read side instead: transient pread failures,
// read-side bit flips, and hung reads, so retry/backoff, quarantine, and
// the I/O watchdog are all testable without real failing disks.
//
// Write faults (single-shot, armed via Arm):
//  - kCrash:     the Nth write (and everything after it) is dropped, as
//                if the process died just before the syscall.
//  - kTornWrite: the Nth write persists only a prefix (half) of its
//                buffer, then the process dies — models a torn sector
//                write during power loss.
//  - kBitFlip:   one bit of the Nth write's buffer is inverted and the
//                write otherwise succeeds — models silent media
//                corruption that only checksums can catch.
//
// Read faults (recurring schedule, armed via ArmReads): every
// transient_every_n-th read starts a burst of transient_burst failing
// reads (kUnavailable from File::ReadAt — the "retry me" verdict); every
// flip_every_n-th read has one bit of the returned buffer inverted
// (media rot surfacing at read time); every delay_every_n-th read stalls
// delay_us before returning (a hung I/O the watchdog must bound).
//
// Resource-exhaustion faults (recurring schedule, armed via ArmWrites):
// every enospc_every_n-th write starts a burst of enospc_burst writes
// that fail *cleanly* with ENOSPC semantics (nothing persisted — the
// kernel refused the allocation up front); every eio_every_n-th write
// fails with EIO (a hard device error: bytes in an unknown state, the
// fd must fail-stop); the sync_fail_at-th fsync fails (fsyncgate: dirty
// pages may have been dropped, the fd must fail-stop — see file_io.h).
//
// Thread-safety: the write path is single-threaded (mutation side of
// every store), but reads happen concurrently at serve time (scrubber,
// repair, open) — all injector state is therefore guarded by one mutex.

#ifndef BLOBWORLD_STORAGE_FAULT_INJECTOR_H_
#define BLOBWORLD_STORAGE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace bw::storage {

class FaultInjector {
 public:
  enum class Fault { kNone, kCrash, kTornWrite, kBitFlip };

  /// What storage::File must do with one physical write.
  struct WriteDecision {
    /// Drop the write entirely and fail (the "process" is dead).
    bool drop = false;
    /// If not SIZE_MAX: persist only this many bytes, then fail.
    size_t truncate_to = static_cast<size_t>(-1);
    /// Invert one bit of the buffer before writing (write succeeds).
    bool flip_bit = false;
    /// Fail cleanly with ENOSPC: nothing is persisted, the fd stays
    /// usable (kResourceExhausted from File::WriteAt).
    bool fail_enospc = false;
    /// Fail with EIO: bytes are in an unknown state, the fd fail-stops.
    bool fail_eio = false;
  };

  /// What storage::File must do with one physical read.
  struct ReadDecision {
    /// Fail this read with kUnavailable (a transient fault: the same
    /// read, retried, may succeed).
    bool fail_transient = false;
    /// Invert one bit of the returned buffer (the read "succeeds").
    bool flip_bit = false;
    /// Stall this long before serving the read (microseconds).
    uint32_t delay_us = 0;
  };

  /// Recurring write-side resource-exhaustion schedule; all-zero fields
  /// are disabled. Counts are independent of the single-shot Arm()
  /// schedule (both consult the same writes_seen_ counter).
  struct WriteFaultPlan {
    /// Every Nth write begins an ENOSPC burst (0 = off).
    uint64_t enospc_every_n = 0;
    /// Consecutive writes that fail per ENOSPC burst (>= 1 when armed).
    uint64_t enospc_burst = 1;
    /// Every Nth write fails with EIO (0 = off).
    uint64_t eio_every_n = 0;
    /// The Nth fsync (1-based, counted from ArmWrites) fails; 0 = off.
    /// One-shot: fsyncgate semantics make the fd fail-stop afterwards,
    /// so a recurring schedule would never observe a second sync anyway.
    uint64_t sync_fail_at = 0;
  };

  /// Recurring read-fault schedule; all-zero fields are disabled.
  struct ReadFaultPlan {
    /// Every Nth read begins a transient-failure burst (0 = off).
    uint64_t transient_every_n = 0;
    /// Consecutive reads that fail per burst (>= 1 when armed).
    uint64_t transient_burst = 1;
    /// Every Nth read gets one bit of its buffer inverted (0 = off).
    uint64_t flip_every_n = 0;
    /// Every Nth read stalls for delay_us (0 = off).
    uint64_t delay_every_n = 0;
    uint32_t delay_us = 0;
  };

  /// Arms `fault` to fire on the nth_write-th subsequent physical write
  /// (1-based, counted from this call).
  void Arm(Fault fault, uint64_t nth_write) {
    std::lock_guard<std::mutex> lock(mutex_);
    fault_ = fault;
    trigger_ = nth_write;
    writes_seen_ = 0;
    crashed_ = false;
    fired_ = false;
  }

  void Disarm() {
    std::lock_guard<std::mutex> lock(mutex_);
    fault_ = Fault::kNone;
    crashed_ = false;
  }

  /// Installs a recurring read-fault schedule (counting restarts from
  /// this call). An all-zero plan disarms the read side.
  void ArmReads(ReadFaultPlan plan) {
    std::lock_guard<std::mutex> lock(mutex_);
    read_plan_ = plan;
    reads_seen_ = 0;
    transient_remaining_ = 0;
  }

  void DisarmReads() { ArmReads(ReadFaultPlan()); }

  /// Installs a recurring write-side resource-exhaustion schedule
  /// (write/sync counts restart from this call). An all-zero plan
  /// disarms the write-side schedule (single-shot Arm() is unaffected).
  void ArmWrites(WriteFaultPlan plan) {
    std::lock_guard<std::mutex> lock(mutex_);
    write_plan_ = plan;
    plan_writes_seen_ = 0;
    syncs_seen_ = 0;
    enospc_remaining_ = 0;
  }

  void DisarmWrites() { ArmWrites(WriteFaultPlan()); }

  /// True once a kCrash/kTornWrite fault has fired: every later write
  /// and sync fails, like a dead process's would.
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return crashed_;
  }
  /// True once the armed write fault has fired at its trigger point.
  bool fired() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return fired_;
  }
  /// Physical writes observed since Arm() (a disarmed injector still
  /// counts, so a fault-free dry run measures the write schedule).
  uint64_t writes_seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return writes_seen_;
  }

  /// Physical reads observed since ArmReads().
  uint64_t reads_seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reads_seen_;
  }
  /// Read faults served so far, by kind (since ArmReads()).
  uint64_t transient_read_faults() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return transient_fired_;
  }
  uint64_t read_flips() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return flips_fired_;
  }
  uint64_t read_delays() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return delays_fired_;
  }

  /// Write-side resource-exhaustion faults served so far (since
  /// ArmWrites()).
  uint64_t enospc_faults() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return enospc_fired_;
  }
  uint64_t eio_faults() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return eio_fired_;
  }
  uint64_t sync_failures() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sync_failures_fired_;
  }

  WriteDecision OnWrite(size_t len) {
    std::lock_guard<std::mutex> lock(mutex_);
    WriteDecision decision;
    ++writes_seen_;
    ++plan_writes_seen_;
    if (crashed_) {
      decision.drop = true;
      return decision;
    }
    // Recurring resource-exhaustion schedule first: an exhausted disk
    // refuses the write before any crash scheduled for a later write.
    if (write_plan_.enospc_every_n > 0 &&
        plan_writes_seen_ % write_plan_.enospc_every_n == 0) {
      enospc_remaining_ =
          write_plan_.enospc_burst > 0 ? write_plan_.enospc_burst : 1;
    }
    if (enospc_remaining_ > 0) {
      --enospc_remaining_;
      ++enospc_fired_;
      decision.fail_enospc = true;
      return decision;  // nothing persisted; no other fault applies.
    }
    if (write_plan_.eio_every_n > 0 &&
        plan_writes_seen_ % write_plan_.eio_every_n == 0) {
      ++eio_fired_;
      decision.fail_eio = true;
      return decision;
    }
    if (fault_ == Fault::kNone || writes_seen_ != trigger_) {
      return decision;
    }
    fired_ = true;
    switch (fault_) {
      case Fault::kCrash:
        crashed_ = true;
        decision.drop = true;
        break;
      case Fault::kTornWrite:
        crashed_ = true;
        decision.truncate_to = len / 2;
        break;
      case Fault::kBitFlip:
        decision.flip_bit = true;
        fault_ = Fault::kNone;  // one-shot; writes continue normally.
        break;
      case Fault::kNone:
        break;
    }
    return decision;
  }

  /// Consulted by File::Sync before the physical fsync. True = this
  /// fsync must fail (the caller then applies fsyncgate fail-stop
  /// semantics to the fd).
  bool OnSync() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++syncs_seen_;
    if (write_plan_.sync_fail_at > 0 &&
        syncs_seen_ == write_plan_.sync_fail_at) {
      ++sync_failures_fired_;
      return true;
    }
    return false;
  }

  ReadDecision OnRead(size_t len) {
    (void)len;
    std::lock_guard<std::mutex> lock(mutex_);
    ReadDecision decision;
    ++reads_seen_;
    if (read_plan_.transient_every_n > 0 &&
        reads_seen_ % read_plan_.transient_every_n == 0) {
      transient_remaining_ =
          read_plan_.transient_burst > 0 ? read_plan_.transient_burst : 1;
    }
    if (transient_remaining_ > 0) {
      --transient_remaining_;
      ++transient_fired_;
      decision.fail_transient = true;
      return decision;  // a failed read neither flips nor delays.
    }
    if (read_plan_.flip_every_n > 0 &&
        reads_seen_ % read_plan_.flip_every_n == 0) {
      decision.flip_bit = true;
      ++flips_fired_;
    }
    if (read_plan_.delay_every_n > 0 &&
        reads_seen_ % read_plan_.delay_every_n == 0) {
      decision.delay_us = read_plan_.delay_us;
      ++delays_fired_;
    }
    return decision;
  }

 private:
  mutable std::mutex mutex_;

  Fault fault_ = Fault::kNone;
  uint64_t trigger_ = 0;
  uint64_t writes_seen_ = 0;
  bool crashed_ = false;
  bool fired_ = false;

  ReadFaultPlan read_plan_;
  uint64_t reads_seen_ = 0;
  uint64_t transient_remaining_ = 0;
  uint64_t transient_fired_ = 0;
  uint64_t flips_fired_ = 0;
  uint64_t delays_fired_ = 0;

  WriteFaultPlan write_plan_;
  uint64_t plan_writes_seen_ = 0;  // writes since ArmWrites().
  uint64_t syncs_seen_ = 0;        // fsyncs since ArmWrites().
  uint64_t enospc_remaining_ = 0;
  uint64_t enospc_fired_ = 0;
  uint64_t eio_fired_ = 0;
  uint64_t sync_failures_fired_ = 0;
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_FAULT_INJECTOR_H_
