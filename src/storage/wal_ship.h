// WAL shipping: reading committed redo batches back out of a live log
// so another replica can apply them — the storage half of the fleet's
// replica catch-up path (DESIGN.md §13).
//
// A *shipped batch* is one committed WAL batch (the alloc + page-image
// records between two kCommit boundaries) together with its commit tag.
// Because page images are absolute post-states, applying every shipped
// batch with a tag above the target's own newest tag converges the
// target byte-for-byte onto the source, regardless of how differently
// the two replicas grouped the same admitted mutations into batches —
// the tag is a cumulative mutation count, not a batch count, so equal
// tags mean equal logical state.
//
// The horizon: a checkpoint folds batches into the base file and
// truncates the log, so batches at or below the source's checkpoint tag
// can no longer be shipped — a target behind that horizon needs the
// snapshot-transfer path instead (ship every page, then continue with
// WAL batches).

#ifndef BLOBWORLD_STORAGE_WAL_SHIP_H_
#define BLOBWORLD_STORAGE_WAL_SHIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "util/status.h"

namespace bw::storage {

/// One redo record of a shipped batch (kAlloc or kPageImage; the
/// closing kCommit is implied by ShippedBatch::tag).
struct ShippedRecord {
  WalRecordType type = WalRecordType::kAlloc;
  pages::PageId page_id = pages::kInvalidPageId;
  std::vector<uint8_t> payload;  // page_codec bytes for kPageImage.
};

/// One committed batch, ready to apply on a target replica.
struct ShippedBatch {
  uint64_t tag = 0;
  std::vector<ShippedRecord> records;
};

/// What one ReadWalBatchesAfter pass found.
struct WalShipReadout {
  /// Committed batches with tag > after_tag, oldest first, up to the
  /// max_batches / max_bytes budgets.
  std::vector<ShippedBatch> batches;
  /// Budget ran out with further qualifying batches still in the log;
  /// pull again from the last returned tag.
  bool more = false;
  /// Newest committed tag present in the log (0 if the log holds none).
  uint64_t last_tag = 0;
};

/// Reads the committed batches with tag > after_tag out of the log
/// rooted at `base` (across segment rotations), stopping early once
/// max_batches batches or ~max_bytes of payload have been collected.
/// The caller must ensure no concurrent Reset()/rotation (hold the
/// owning service's commit lock); concurrent appends are harmless — an
/// uncommitted or torn tail is simply not a batch yet. Batches already
/// folded by a checkpoint are gone from the log; detecting that (the
/// snapshot horizon) is the caller's job via the store's checkpoint
/// tag.
Result<WalShipReadout> ReadWalBatchesAfter(const std::string& base,
                                           uint64_t after_tag,
                                           size_t max_batches,
                                           size_t max_bytes);

/// Like ReplayWal, but surfaces only records with lsn >= from_lsn —
/// the literal "tail from an LSN" read (kept alongside the tag-indexed
/// batch reader above, which is what catch-up consumes).
Result<WalReplayStats> ReplayWalFrom(
    const std::string& base, uint64_t from_lsn,
    const std::function<Status(const WalRecordView&)>& fn);

/// Flat little-endian wire encoding of one shipped batch:
///   [u64 tag][u32 record_count]
///   per record: [u32 type][u32 page_id][u32 payload_len][payload]
/// Used as the kWalBatch / kWalApply message body; integrity is the
/// wire frame's CRC.
void EncodeShippedBatch(const ShippedBatch& batch, std::vector<uint8_t>* out);
bool DecodeShippedBatch(const uint8_t* data, size_t len, ShippedBatch* out);

/// Bytes EncodeShippedBatch would produce (frame-budget arithmetic).
size_t ShippedBatchWireSize(const ShippedBatch& batch);

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_WAL_SHIP_H_
