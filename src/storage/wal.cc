#include "storage/wal.h"

#include <sys/stat.h>

#include <cstring>

#include "util/crc32.h"

namespace bw::storage {

namespace {

constexpr uint32_t kRecordMagic = 0x4C415742;  // "BWAL"
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr size_t kTrailerBytes = 4;  // crc
/// Sanity cap on one record's payload; anything larger is a corrupt
/// length field, not a real record.
constexpr uint32_t kMaxPayload = 64u << 20;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         WalOptions options,
                                         uint64_t first_lsn) {
  if (options.sync_every_records == 0) {
    return Status::InvalidArgument("sync_every_records must be >= 1");
  }
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/true, options.injector));
  return std::unique_ptr<Wal>(new Wal(std::move(file), options, first_lsn));
}

Result<std::unique_ptr<Wal>> Wal::Continue(const std::string& path,
                                           WalOptions options,
                                           uint64_t valid_bytes,
                                           uint64_t next_lsn) {
  if (options.sync_every_records == 0) {
    return Status::InvalidArgument("sync_every_records must be >= 1");
  }
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/false, options.injector));
  if (valid_bytes > file->size()) {
    return Status::InvalidArgument("valid_bytes beyond end of WAL");
  }
  if (valid_bytes < file->size()) {
    BW_RETURN_IF_ERROR(file->Truncate(valid_bytes));
    BW_RETURN_IF_ERROR(file->Sync());
  }
  return std::unique_ptr<Wal>(new Wal(std::move(file), options, next_lsn));
}

Result<uint64_t> Wal::Append(WalRecordType type, pages::PageId page_id,
                             const void* payload, size_t payload_len) {
  if (payload_len > kMaxPayload) {
    return Status::InvalidArgument("WAL payload too large");
  }
  const uint64_t lsn = next_lsn_++;
  const size_t frame_start = buffer_.size();
  AppendU32(&buffer_, kRecordMagic);
  AppendU32(&buffer_, static_cast<uint32_t>(type));
  AppendU64(&buffer_, lsn);
  AppendU32(&buffer_, page_id);
  AppendU32(&buffer_, static_cast<uint32_t>(payload_len));
  if (payload_len > 0) {
    const size_t at = buffer_.size();
    buffer_.resize(at + payload_len);
    std::memcpy(buffer_.data() + at, payload, payload_len);
  }
  const uint32_t crc =
      Crc32(buffer_.data() + frame_start, kHeaderBytes + payload_len);
  AppendU32(&buffer_, crc);
  ++appended_;
  ++buffered_records_;
  if (buffered_records_ >= options_.sync_every_records) {
    BW_RETURN_IF_ERROR(Sync());
  }
  return lsn;
}

Status Wal::Flush() {
  if (buffer_.empty()) return Status::OK();
  BW_RETURN_IF_ERROR(file_->Append(buffer_.data(), buffer_.size()));
  buffer_.clear();
  buffered_records_ = 0;
  return Status::OK();
}

Status Wal::Sync() {
  BW_RETURN_IF_ERROR(Flush());
  BW_RETURN_IF_ERROR(file_->Sync());
  ++syncs_;
  durable_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Status Wal::Reset() {
  BW_RETURN_IF_ERROR(Sync());
  BW_RETURN_IF_ERROR(file_->Truncate(0));
  return file_->Sync();
}

Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<Status(const WalRecordView&)>& fn) {
  WalReplayStats stats;
  if (!FileExists(path)) return stats;  // empty log.
  std::vector<uint8_t> bytes;
  BW_RETURN_IF_ERROR(ReadFile(path, &bytes));

  size_t at = 0;
  while (at < bytes.size()) {
    const size_t remaining = bytes.size() - at;
    if (remaining < kHeaderBytes) {
      stats.tail_truncated = true;  // partial header at EOF.
      break;
    }
    const uint8_t* frame = bytes.data() + at;
    const uint32_t magic = LoadU32(frame);
    const uint32_t type = LoadU32(frame + 4);
    const uint64_t lsn = LoadU64(frame + 8);
    const uint32_t page_id = LoadU32(frame + 16);
    const uint32_t payload_len = LoadU32(frame + 20);
    if (magic != kRecordMagic) {
      return Status::DataLoss("WAL record at offset " + std::to_string(at) +
                              " has bad magic");
    }
    if (payload_len > kMaxPayload) {
      return Status::DataLoss("WAL record at offset " + std::to_string(at) +
                              " has implausible payload length");
    }
    const size_t frame_bytes = kHeaderBytes + payload_len + kTrailerBytes;
    if (remaining < frame_bytes) {
      stats.tail_truncated = true;  // torn mid-payload at EOF.
      break;
    }
    const uint32_t stored_crc = LoadU32(frame + kHeaderBytes + payload_len);
    const uint32_t actual_crc = Crc32(frame, kHeaderBytes + payload_len);
    if (stored_crc != actual_crc) {
      return Status::DataLoss(
          "WAL record at offset " + std::to_string(at) +
          " failed its checksum (LSN " + std::to_string(lsn) + ")");
    }
    if (type != static_cast<uint32_t>(WalRecordType::kAlloc) &&
        type != static_cast<uint32_t>(WalRecordType::kPageImage) &&
        type != static_cast<uint32_t>(WalRecordType::kCommit)) {
      return Status::DataLoss("WAL record at offset " + std::to_string(at) +
                              " has unknown type " + std::to_string(type));
    }
    WalRecordView view;
    view.type = static_cast<WalRecordType>(type);
    view.lsn = lsn;
    view.page_id = page_id;
    view.payload = frame + kHeaderBytes;
    view.payload_len = payload_len;
    BW_RETURN_IF_ERROR(fn(view));
    ++stats.records;
    if (view.type == WalRecordType::kCommit) ++stats.commits;
    stats.last_lsn = lsn;
    at += frame_bytes;
    stats.valid_bytes = at;
  }
  return stats;
}

}  // namespace bw::storage
