#include "storage/wal.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace bw::storage {

namespace {

constexpr uint32_t kRecordMagic = 0x4C415742;   // "BWAL"
constexpr uint32_t kSegmentMagic = 0x47535742;  // "BWSG"
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr size_t kTrailerBytes = 4;  // crc
/// Segment header: [u32 magic][u32 version][u64 seq][u32 crc].
constexpr size_t kSegHeaderBytes = 4 + 4 + 8 + 4;
/// Sanity cap on one record's payload; anything larger is a corrupt
/// length field, not a real record.
constexpr uint32_t kMaxPayload = 64u << 20;

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t FileSizeOrZero(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

std::string SegmentPath(const std::string& base, uint64_t seq) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base + suffix;
}

struct SegmentFile {
  uint64_t seq = 0;
  std::string path;
};

/// Lists `<base>.NNNNNN` segment files (archived copies excluded),
/// sorted by sequence number.
Result<std::vector<SegmentFile>> ListSegments(const std::string& base) {
  const size_t slash = base.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : base.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? base : base.substr(slash + 1)) + ".";
  std::vector<SegmentFile> segments;
  DIR* dp = ::opendir(dir.c_str());
  if (dp == nullptr) {
    if (errno == ENOENT) return segments;
    return Status::IoError("opendir '" + dir + "': " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dp)) {
    const std::string name = entry->d_name;
    if (name.size() != prefix.size() + 6 || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string digits = name.substr(prefix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    SegmentFile seg;
    seg.seq = std::strtoull(digits.c_str(), nullptr, 10);
    seg.path = dir + "/" + name;
    if (seg.seq > 0) segments.push_back(std::move(seg));
  }
  ::closedir(dp);
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.seq < b.seq;
            });
  return segments;
}

Status RemoveSegmentFile(const std::string& path) {
  if (::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError("remove '" + path + "': " + std::strerror(errno));
  }
  return Status::OK();
}

/// Opens a fresh segment file and writes + syncs its header.
Result<std::unique_ptr<File>> CreateSegment(const std::string& base,
                                            uint64_t seq,
                                            FaultInjector* injector) {
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<File> file,
      File::Open(SegmentPath(base, seq), /*truncate=*/true, injector));
  std::vector<uint8_t> header;
  AppendU32(&header, kSegmentMagic);
  AppendU32(&header, kSegmentVersion);
  AppendU64(&header, seq);
  AppendU32(&header, Crc32(header.data(), header.size()));
  BW_RETURN_IF_ERROR(file->Append(header.data(), header.size()));
  BW_RETURN_IF_ERROR(file->Sync());
  return file;
}

/// Scans one buffer of record frames starting at `at`. On a torn tail:
/// stops and reports it via `*torn` when `allow_torn_tail`, else
/// DataLoss. `*end` receives the offset one past the last intact record.
Status ScanRecords(const std::vector<uint8_t>& bytes, size_t at,
                   bool allow_torn_tail, const std::string& label,
                   const std::function<Status(const WalRecordView&)>& fn,
                   WalReplayStats* stats, size_t* end, bool* torn) {
  *torn = false;
  *end = at;
  while (at < bytes.size()) {
    const size_t remaining = bytes.size() - at;
    if (remaining < kHeaderBytes) {
      if (!allow_torn_tail) {
        return Status::DataLoss("torn record header at offset " +
                                std::to_string(at) + " in " + label);
      }
      *torn = true;  // partial header at EOF.
      break;
    }
    const uint8_t* frame = bytes.data() + at;
    const uint32_t magic = LoadU32(frame);
    const uint32_t type = LoadU32(frame + 4);
    const uint64_t lsn = LoadU64(frame + 8);
    const uint32_t page_id = LoadU32(frame + 16);
    const uint32_t payload_len = LoadU32(frame + 20);
    if (magic != kRecordMagic) {
      return Status::DataLoss("record at offset " + std::to_string(at) +
                              " in " + label + " has bad magic");
    }
    if (payload_len > kMaxPayload) {
      return Status::DataLoss("record at offset " + std::to_string(at) +
                              " in " + label +
                              " has implausible payload length");
    }
    const size_t frame_bytes = kHeaderBytes + payload_len + kTrailerBytes;
    if (remaining < frame_bytes) {
      if (!allow_torn_tail) {
        return Status::DataLoss("torn record at offset " + std::to_string(at) +
                                " in " + label);
      }
      *torn = true;  // torn mid-payload at EOF.
      break;
    }
    const uint32_t stored_crc = LoadU32(frame + kHeaderBytes + payload_len);
    const uint32_t actual_crc = Crc32(frame, kHeaderBytes + payload_len);
    if (stored_crc != actual_crc) {
      return Status::DataLoss("record at offset " + std::to_string(at) +
                              " in " + label + " failed its checksum (LSN " +
                              std::to_string(lsn) + ")");
    }
    if (type != static_cast<uint32_t>(WalRecordType::kAlloc) &&
        type != static_cast<uint32_t>(WalRecordType::kPageImage) &&
        type != static_cast<uint32_t>(WalRecordType::kCommit)) {
      return Status::DataLoss("record at offset " + std::to_string(at) +
                              " in " + label + " has unknown type " +
                              std::to_string(type));
    }
    WalRecordView view;
    view.type = static_cast<WalRecordType>(type);
    view.lsn = lsn;
    view.page_id = page_id;
    view.payload = frame + kHeaderBytes;
    view.payload_len = payload_len;
    BW_RETURN_IF_ERROR(fn(view));
    ++stats->records;
    if (view.type == WalRecordType::kCommit) ++stats->commits;
    stats->last_lsn = lsn;
    at += frame_bytes;
    *end = at;
  }
  return Status::OK();
}

Status ValidateOptions(const WalOptions& options) {
  if (options.sync_every_records == 0) {
    return Status::InvalidArgument("sync_every_records must be >= 1");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& base,
                                         WalOptions options,
                                         uint64_t first_lsn) {
  BW_RETURN_IF_ERROR(ValidateOptions(options));
  // A fresh log must not leave bytes from an earlier incarnation behind
  // in EITHER layout: a stale legacy file or stale segments would make
  // the next replay resurrect dead records.
  BW_ASSIGN_OR_RETURN(std::vector<SegmentFile> stale, ListSegments(base));
  for (const SegmentFile& segment : stale) {
    BW_RETURN_IF_ERROR(RemoveSegmentFile(segment.path));
  }
  if (options.segment_bytes == 0) {
    BW_ASSIGN_OR_RETURN(
        std::unique_ptr<File> file,
        File::Open(base, /*truncate=*/true, options.injector));
    return std::unique_ptr<Wal>(new Wal(base, std::move(file), options,
                                        first_lsn, /*segmented=*/false,
                                        /*active_seq=*/0));
  }
  BW_RETURN_IF_ERROR(RemoveSegmentFile(base));
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      CreateSegment(base, 1, options.injector));
  auto wal = std::unique_ptr<Wal>(new Wal(base, std::move(file), options,
                                          first_lsn, /*segmented=*/true,
                                          /*active_seq=*/1));
  wal->segments_created_ = 1;
  return wal;
}

Result<std::unique_ptr<Wal>> Wal::Continue(const std::string& base,
                                           WalOptions options,
                                           const WalReplayStats& replay,
                                           uint64_t next_lsn) {
  BW_RETURN_IF_ERROR(ValidateOptions(options));
  const bool legacy_on_disk = FileExists(base);
  if (replay.last_segment_seq == 0 && legacy_on_disk) {
    // Keep the single-file layout the replay found, even if the options
    // now ask for rotation: a mid-log format switch would force replay
    // to stitch layouts. The upgrade happens at the next Create.
    return Continue(base, options, replay.valid_bytes, next_lsn);
  }
  if (replay.last_segment_seq == 0 && options.segment_bytes == 0) {
    return Continue(base, options, replay.valid_bytes, next_lsn);
  }

  // Segmented (or empty-and-rotation-requested) log. Drop segments past
  // the last valid one: a torn rotation can leave a successor whose
  // header never became durable, and replay already refused to read it.
  BW_ASSIGN_OR_RETURN(std::vector<SegmentFile> on_disk, ListSegments(base));
  for (const SegmentFile& segment : on_disk) {
    if (segment.seq > replay.last_segment_seq) {
      BW_RETURN_IF_ERROR(RemoveSegmentFile(segment.path));
    }
  }

  if (replay.last_segment_seq == 0) {
    // Nothing valid on disk: same as a fresh segmented create.
    BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                        CreateSegment(base, 1, options.injector));
    auto wal = std::unique_ptr<Wal>(new Wal(base, std::move(file), options,
                                            next_lsn, /*segmented=*/true,
                                            /*active_seq=*/1));
    wal->segments_created_ = 1;
    return wal;
  }

  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<File> file,
      File::Open(SegmentPath(base, replay.last_segment_seq),
                 /*truncate=*/false, options.injector));
  if (replay.valid_bytes > file->size()) {
    return Status::InvalidArgument("valid_bytes beyond end of WAL segment");
  }
  if (replay.valid_bytes < file->size()) {
    BW_RETURN_IF_ERROR(file->Truncate(replay.valid_bytes));
    BW_RETURN_IF_ERROR(file->Sync());
  }
  auto wal = std::unique_ptr<Wal>(
      new Wal(base, std::move(file), options, next_lsn, /*segmented=*/true,
              /*active_seq=*/replay.last_segment_seq));
  for (const SegmentFile& segment : on_disk) {
    if (segment.seq >= replay.last_segment_seq) continue;
    SealedSegment sealed;
    sealed.seq = segment.seq;
    sealed.path = segment.path;
    sealed.bytes = FileSizeOrZero(segment.path);
    wal->sealed_bytes_ += sealed.bytes;
    wal->sealed_.push_back(std::move(sealed));
  }
  return wal;
}

Result<std::unique_ptr<Wal>> Wal::Continue(const std::string& base,
                                           WalOptions options,
                                           uint64_t valid_bytes,
                                           uint64_t next_lsn) {
  BW_RETURN_IF_ERROR(ValidateOptions(options));
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(base, /*truncate=*/false, options.injector));
  if (valid_bytes > file->size()) {
    return Status::InvalidArgument("valid_bytes beyond end of WAL");
  }
  if (valid_bytes < file->size()) {
    BW_RETURN_IF_ERROR(file->Truncate(valid_bytes));
    BW_RETURN_IF_ERROR(file->Sync());
  }
  return std::unique_ptr<Wal>(new Wal(base, std::move(file), options,
                                      next_lsn, /*segmented=*/false,
                                      /*active_seq=*/0));
}

Result<uint64_t> Wal::Append(WalRecordType type, pages::PageId page_id,
                             const void* payload, size_t payload_len) {
  if (payload_len > kMaxPayload) {
    return Status::InvalidArgument("WAL payload too large");
  }
  const uint64_t lsn = next_lsn_++;
  const size_t frame_start = buffer_.size();
  AppendU32(&buffer_, kRecordMagic);
  AppendU32(&buffer_, static_cast<uint32_t>(type));
  AppendU64(&buffer_, lsn);
  AppendU32(&buffer_, page_id);
  AppendU32(&buffer_, static_cast<uint32_t>(payload_len));
  if (payload_len > 0) {
    const size_t at = buffer_.size();
    buffer_.resize(at + payload_len);
    std::memcpy(buffer_.data() + at, payload, payload_len);
  }
  const uint32_t crc =
      Crc32(buffer_.data() + frame_start, kHeaderBytes + payload_len);
  AppendU32(&buffer_, crc);
  ++appended_;
  ++buffered_records_;
  if (buffered_records_ >= options_.sync_every_records) {
    BW_RETURN_IF_ERROR(Sync());
  }
  return lsn;
}

Status Wal::Flush() {
  if (buffer_.empty()) return Status::OK();
  const Status status = file_->Append(buffer_.data(), buffer_.size());
  if (status.code() == StatusCode::kResourceExhausted) {
    // Clean out-of-space: nothing landed, so dropping the buffered
    // records keeps the on-disk log exactly the durable prefix. The
    // enclosing commit batch aborts and re-logs in full once space
    // returns (their LSNs are simply skipped; replay tolerates gaps).
    buffer_.clear();
    buffered_records_ = 0;
  }
  BW_RETURN_IF_ERROR(status);
  buffer_.clear();
  buffered_records_ = 0;
  return Status::OK();
}

Status Wal::Sync() {
  BW_RETURN_IF_ERROR(Flush());
  BW_RETURN_IF_ERROR(file_->Sync());
  ++syncs_;
  durable_lsn_ = next_lsn_ - 1;
  if (segmented_ && options_.segment_bytes > 0 &&
      file_->size() >= options_.segment_bytes) {
    BW_RETURN_IF_ERROR(Rotate());
  }
  return Status::OK();
}

Status Wal::Rotate() {
  SealedSegment sealed;
  sealed.seq = active_seq_;
  sealed.path = SegmentPath(base_path_, active_seq_);
  sealed.bytes = file_->size();
  // The outgoing segment was just synced; the new one's header is
  // synced by CreateSegment before any record lands in it, so a crash
  // between the two leaves either no successor or a torn header —
  // both shapes replay treats as a clean end of log.
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> next,
                      CreateSegment(base_path_, active_seq_ + 1,
                                    options_.injector));
  file_ = std::move(next);
  ++active_seq_;
  ++segments_created_;
  sealed_bytes_ += sealed.bytes;
  sealed_.push_back(std::move(sealed));
  return Status::OK();
}

Status Wal::RetireSegment(const SealedSegment& segment) {
  // Retirement bypasses File (it is unlink/rename, not fd I/O), so the
  // injected-crash state must be checked explicitly: a "dead" process
  // cannot keep deleting files, and stopping here leaves a contiguous
  // suffix of sealed segments for replay.
  if (options_.injector != nullptr && options_.injector->crashed()) {
    return Status::IoError("simulated crash: segment retirement halted");
  }
  if (options_.archive_sealed) {
    const std::string archived = segment.path + ".archived";
    if (::rename(segment.path.c_str(), archived.c_str()) != 0) {
      return Status::IoError("rename '" + segment.path + "': " +
                             std::strerror(errno));
    }
    return Status::OK();
  }
  return RemoveSegmentFile(segment.path);
}

Status Wal::Reset() {
  BW_RETURN_IF_ERROR(Sync());
  // Oldest-first so a failure partway leaves a contiguous suffix
  // ending at the active segment — a shape replay accepts.
  while (!sealed_.empty()) {
    BW_RETURN_IF_ERROR(RetireSegment(sealed_.front()));
    sealed_bytes_ -= sealed_.front().bytes;
    ++segments_retired_;
    sealed_.erase(sealed_.begin());
  }
  BW_RETURN_IF_ERROR(file_->Truncate(segmented_ ? kSegHeaderBytes : 0));
  return file_->Sync();
}

Result<WalReplayStats> ReplayWal(
    const std::string& base,
    const std::function<Status(const WalRecordView&)>& fn) {
  WalReplayStats stats;
  if (FileExists(base)) {
    // Legacy single-file layout.
    std::vector<uint8_t> bytes;
    BW_RETURN_IF_ERROR(ReadFile(base, &bytes));
    size_t end = 0;
    bool torn = false;
    BW_RETURN_IF_ERROR(ScanRecords(bytes, 0, /*allow_torn_tail=*/true,
                                   "WAL '" + base + "'", fn, &stats, &end,
                                   &torn));
    stats.valid_bytes = end;
    stats.tail_truncated = torn;
    return stats;
  }

  BW_ASSIGN_OR_RETURN(std::vector<SegmentFile> segments, ListSegments(base));
  if (segments.empty()) return stats;  // empty log.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].seq != segments[i].seq + 1) {
      return Status::DataLoss(
          "WAL segment sequence gap: " + std::to_string(segments[i].seq) +
          " -> " + std::to_string(segments[i + 1].seq) +
          " (a whole segment vanished)");
    }
  }

  for (size_t i = 0; i < segments.size(); ++i) {
    const SegmentFile& segment = segments[i];
    const bool last = i + 1 == segments.size();
    const std::string label = "WAL segment '" + segment.path + "'";
    std::vector<uint8_t> bytes;
    BW_RETURN_IF_ERROR(ReadFile(segment.path, &bytes));
    if (bytes.size() < kSegHeaderBytes) {
      if (last) {
        // Crash mid-rotation: the successor's header never finished.
        // The previous segment's clean end is the end of the log.
        stats.tail_truncated = true;
        break;
      }
      return Status::DataLoss(label + " has a torn header");
    }
    const uint32_t magic = LoadU32(bytes.data());
    const uint32_t version = LoadU32(bytes.data() + 4);
    const uint64_t header_seq = LoadU64(bytes.data() + 8);
    const uint32_t stored_crc = LoadU32(bytes.data() + 16);
    if (magic != kSegmentMagic || version != kSegmentVersion ||
        stored_crc != Crc32(bytes.data(), 16)) {
      return Status::DataLoss(label + " has a corrupt header");
    }
    if (header_seq != segment.seq) {
      return Status::DataLoss(label + " header seq " +
                              std::to_string(header_seq) +
                              " does not match its filename");
    }
    size_t end = 0;
    bool torn = false;
    BW_RETURN_IF_ERROR(ScanRecords(bytes, kSegHeaderBytes,
                                   /*allow_torn_tail=*/last, label, fn,
                                   &stats, &end, &torn));
    ++stats.segments;
    stats.last_segment_seq = segment.seq;
    stats.valid_bytes = end;
    if (torn) {
      stats.tail_truncated = true;
      break;
    }
  }
  return stats;
}

}  // namespace bw::storage
