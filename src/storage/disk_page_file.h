// The durable PageStore: file-backed pages with per-frame CRC32
// checksums. Pages stay resident in memory (the read path is identical
// to pages::PageFile, including the audited concurrent PeekNoIo
// contract), but every page has a home frame in a base file, mutations
// are tracked for WAL logging, and checkpoints/recovery move state
// between memory and disk.
//
// Base file layout:
//
//   [header slot A: 64 B][header slot B: 64 B][frame 0][frame 1]...
//
// Headers are written alternately (ping-pong) with a monotonically
// increasing epoch and a CRC, so a crash mid-header-write can never
// brick the store: the other slot still holds the previous durable
// header. Each page frame is `page_size + 32` bytes:
//
//   [u32 encoded_len][page_codec image][u32 crc32 over len+image][pad]
//
// DiskPageFile does not log or checkpoint by itself — that is the job of
// storage::DurableStore / CheckpointManager / RecoveryManager, which
// drive the dirty-page tracking exposed here. Opening a base file never
// fails on a checksum mismatch alone: bad frames are parked in
// suspect_pages() so recovery can repair them from WAL redo images, and
// only an unrepaired suspect page is an error (see RecoveryManager).

#ifndef BLOBWORLD_STORAGE_DISK_PAGE_FILE_H_
#define BLOBWORLD_STORAGE_DISK_PAGE_FILE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "pages/page_store.h"
#include "storage/file_io.h"
#include "util/status.h"

namespace bw::storage {

struct DiskPageFileOptions {
  FaultInjector* injector = nullptr;
};

class DiskPageFile final : public pages::PageStore {
 public:
  /// Creates a fresh, empty store at `path` (truncating any existing
  /// file) and makes its header durable.
  static Result<std::unique_ptr<DiskPageFile>> Create(
      const std::string& path, size_t page_size,
      DiskPageFileOptions options = DiskPageFileOptions());

  /// Opens an existing store and loads every page frame, verifying
  /// checksums. Frames that fail verification become empty pages listed
  /// in suspect_pages(); DataLoss only if no valid header survives.
  static Result<std::unique_ptr<DiskPageFile>> Open(
      const std::string& path,
      DiskPageFileOptions options = DiskPageFileOptions());

  // --- PageStore surface (same accounting semantics as PageFile) -------

  size_t page_size() const override { return page_size_; }
  size_t page_count() const override { return pages_.size(); }
  pages::PageId Allocate() override;
  Result<pages::Page*> Read(pages::PageId id) override;
  Result<pages::Page*> Write(pages::PageId id) override;
  pages::Page* PeekNoIo(pages::PageId id) override;
  const pages::Page* PeekNoIo(pages::PageId id) const override;
  const pages::IoStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_.Reset();
    last_read_ = pages::kInvalidPageId;
  }

  // --- Durability surface (driven by DurableStore and recovery) --------

  /// LSN recorded by the last durable checkpoint header.
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }

  /// Drains the pages dirtied / ids allocated since the last drain
  /// (sorted). CommitBatch turns these into WAL records.
  std::vector<pages::PageId> TakeDirtySinceCommit();
  std::vector<pages::PageId> TakeAllocationsSinceCommit();

  /// Drains the set a fuzzy checkpoint must flush: every page dirtied or
  /// allocated since the previous checkpoint.
  std::vector<pages::PageId> TakeCheckpointDirty();

  /// Marks every page dirty-for-checkpoint (recovery uses this to
  /// re-establish a clean base from replayed state).
  void MarkAllDirtyForCheckpoint();

  /// Forgets pending commit tracking (recovery's replay applies images
  /// directly; they must not be re-logged).
  void ClearCommitTracking();

  /// Writes the frames of `ids` to the base file and fsyncs.
  Status FlushPagesAndSync(const std::vector<pages::PageId>& ids);

  /// Publishes a new durable header (page count + `checkpoint_lsn`) via
  /// the alternate slot and fsyncs.
  Status CommitHeader(uint64_t checkpoint_lsn);

  /// Redo hooks: extends the page table to include `id` / replaces the
  /// in-memory page from a WAL image (clearing its suspect mark).
  Status EnsureAllocated(pages::PageId id);
  Status ApplyPageImage(pages::PageId id, const uint8_t* image, size_t len);

  /// Pages whose base frames failed their checksum on Open and have not
  /// been repaired by ApplyPageImage (sorted).
  std::vector<pages::PageId> suspect_pages() const;

  const std::string& path() const { return file_->path(); }

 private:
  DiskPageFile(std::unique_ptr<File> file, size_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  size_t frame_bytes() const;
  uint64_t FrameOffset(pages::PageId id) const;
  Status CheckId(pages::PageId id) const;

  std::unique_ptr<File> file_;
  size_t page_size_;
  std::vector<std::unique_ptr<pages::Page>> pages_;
  pages::IoStats stats_;
  pages::PageId last_read_ = pages::kInvalidPageId;

  std::unordered_set<pages::PageId> dirty_commit_;
  std::vector<pages::PageId> alloc_commit_;
  std::unordered_set<pages::PageId> dirty_checkpoint_;
  std::unordered_set<pages::PageId> suspect_;

  uint64_t checkpoint_lsn_ = 0;
  uint64_t header_epoch_ = 0;
  int active_header_slot_ = 0;
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_DISK_PAGE_FILE_H_
