// The durable PageStore: file-backed pages with per-frame CRC32
// checksums. Pages stay resident in memory (the read path is identical
// to pages::PageFile, including the audited concurrent PeekNoIo
// contract), but every page has a home frame in a base file, mutations
// are tracked for WAL logging, and checkpoints/recovery move state
// between memory and disk.
//
// Base file layout:
//
//   [header slot A: 64 B][header slot B: 64 B][frame 0][frame 1]...
//
// Headers are written alternately (ping-pong) with a monotonically
// increasing epoch and a CRC, so a crash mid-header-write can never
// brick the store: the other slot still holds the previous durable
// header. Each page frame is `page_size + 32` bytes:
//
//   [u32 encoded_len][page_codec image][u32 crc32 over len+image][pad]
//
// DiskPageFile does not log or checkpoint by itself — that is the job of
// storage::DurableStore / CheckpointManager / RecoveryManager, which
// drive the dirty-page tracking exposed here. Opening a base file never
// fails on a checksum mismatch alone: bad frames are parked in
// suspect_pages() so recovery can repair them from WAL redo images, and
// only an unrepaired suspect page is an error (see RecoveryManager).
//
// Self-healing read path (this layer's share of it):
//  - Every disk read goes through a bounded retry loop (exponential
//    backoff, deterministic jitter) so transient faults (kUnavailable
//    from File::ReadAt) are absorbed; only exhaustion or a permanent
//    verdict surfaces to the caller.
//  - A PageHealth registry tracks pages unfit to serve. Two ways in:
//    a frame that fails its CRC at Open (memory copy is also invalid —
//    only a WAL redo image can repair it), and a frame that fails
//    verification during Scrub() (disk rot under a still-valid memory
//    copy — RepairFromMemory rewrites the frame and releases the page).
//  - ReadHealth(id) is the serving path's gate: pages::BufferPool asks
//    it before trusting the memory-resident page, so quarantine turns
//    into degraded (partial-but-flagged) query answers upstream.

#ifndef BLOBWORLD_STORAGE_DISK_PAGE_FILE_H_
#define BLOBWORLD_STORAGE_DISK_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "pages/page_store.h"
#include "storage/file_io.h"
#include "storage/page_health.h"
#include "util/status.h"

namespace bw::storage {

/// Bounded retry for transient (kUnavailable) disk-read faults. Backoff
/// doubles per attempt up to max_backoff_us, plus a deterministic jitter
/// derived from (seed, page id, attempt) so concurrent retriers do not
/// march in lockstep yet every test run sleeps the same schedule.
struct ReadRetryPolicy {
  /// Total attempts per read, including the first (1 = no retry).
  int max_attempts = 4;
  /// Backoff before attempt k (k >= 2) is backoff_us << (k - 2), capped.
  uint32_t backoff_us = 100;
  uint32_t max_backoff_us = 5000;
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

struct DiskPageFileOptions {
  FaultInjector* injector = nullptr;
  ReadRetryPolicy read_retry;
  /// Engine for batched frame reads (Open's full-file load, Scrub's
  /// sweep): kAuto defers to BW_IO_ENGINE / the build default. The
  /// engine changes only scheduling, never results or fault accounting
  /// (see File::ReadBatch).
  IoEngineChoice engine = IoEngineChoice::kAuto;
};

/// What one Scrub() pass over the base file found and did.
struct ScrubReport {
  uint64_t frames_checked = 0;
  /// Frames newly quarantined this pass (CRC/decode failure on disk).
  uint64_t frames_quarantined = 0;
  /// Frames that could not be checked (transient faults outlasted the
  /// retry budget); not quarantined — the next pass will retry them.
  uint64_t frames_unreadable = 0;
};

class DiskPageFile final : public pages::PageStore {
 public:
  /// Creates a fresh, empty store at `path` (truncating any existing
  /// file) and makes its header durable.
  static Result<std::unique_ptr<DiskPageFile>> Create(
      const std::string& path, size_t page_size,
      DiskPageFileOptions options = DiskPageFileOptions());

  /// Opens an existing store and loads every page frame, verifying
  /// checksums. Frames that fail verification become empty pages listed
  /// in suspect_pages(); DataLoss only if no valid header survives.
  static Result<std::unique_ptr<DiskPageFile>> Open(
      const std::string& path,
      DiskPageFileOptions options = DiskPageFileOptions());

  // --- PageStore surface (same accounting semantics as PageFile) -------

  size_t page_size() const override { return page_size_; }
  size_t page_count() const override { return pages_.size(); }
  pages::PageId Allocate() override;
  Result<pages::Page*> Read(pages::PageId id) override;
  Result<pages::Page*> Write(pages::PageId id) override;
  pages::Page* PeekNoIo(pages::PageId id) override;
  const pages::Page* PeekNoIo(pages::PageId id) const override;
  const pages::IoStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_.Reset();
    last_read_ = pages::kInvalidPageId;
  }

  /// Serving-path gate: OK for a healthy page, Unavailable while the
  /// page is quarantined pending repair. Thread-safe (lock-free when no
  /// page is quarantined).
  Status ReadHealth(pages::PageId id) const override;

  // --- Durability surface (driven by DurableStore and recovery) --------

  /// LSN recorded by the last durable checkpoint header.
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }

  /// Drains the pages dirtied / ids allocated since the last drain
  /// (sorted). CommitBatch turns these into WAL records.
  std::vector<pages::PageId> TakeDirtySinceCommit();
  std::vector<pages::PageId> TakeAllocationsSinceCommit();

  /// Drains the set a fuzzy checkpoint must flush: every page dirtied or
  /// allocated since the previous checkpoint.
  std::vector<pages::PageId> TakeCheckpointDirty();

  /// Marks every page dirty-for-checkpoint (recovery uses this to
  /// re-establish a clean base from replayed state).
  void MarkAllDirtyForCheckpoint();

  /// Forgets pending commit tracking (recovery's replay applies images
  /// directly; they must not be re-logged).
  void ClearCommitTracking();

  /// Puts back ids drained by TakeAllocationsSinceCommit /
  /// TakeDirtySinceCommit after a commit that failed *cleanly* (out of
  /// disk space before any log byte landed). Without this the next
  /// successful commit would silently skip those pages and the WAL
  /// would no longer describe the tree it claims to.
  void RestoreCommitTracking(const std::vector<pages::PageId>& allocs,
                             const std::vector<pages::PageId>& dirty);

  /// Puts back ids drained by TakeCheckpointDirty after a checkpoint
  /// whose flush failed before the header advanced: those frames are
  /// stale (or torn) on disk and must be rewritten by the next attempt.
  void RestoreCheckpointTracking(const std::vector<pages::PageId>& ids);

  /// Writes the frames of `ids` to the base file and fsyncs.
  Status FlushPagesAndSync(const std::vector<pages::PageId>& ids);

  /// Publishes a new durable header (page count + `checkpoint_lsn`) via
  /// the alternate slot and fsyncs.
  Status CommitHeader(uint64_t checkpoint_lsn);

  /// Redo hooks: extends the page table to include `id` / replaces the
  /// in-memory page from a WAL image (clearing its suspect mark).
  Status EnsureAllocated(pages::PageId id);
  Status ApplyPageImage(pages::PageId id, const uint8_t* image, size_t len);

  /// Pages whose base frames failed their checksum on Open and have not
  /// been repaired by ApplyPageImage (sorted). These pages' in-memory
  /// copies are invalid (Clear()ed) — only a WAL redo image heals them.
  std::vector<pages::PageId> suspect_pages() const;

  // --- Self-healing surface --------------------------------------------

  /// Re-verifies every frame on disk (with the retry policy), newly
  /// quarantining frames whose stored bytes no longer check out. Safe to
  /// run from a background thread while queries serve from memory.
  Status Scrub(ScrubReport* report = nullptr);

  /// Reads and fully verifies one frame from disk (retrying transient
  /// faults): OK, DataLoss (CRC/decode failure — permanent until
  /// rewritten), or Unavailable (transient faults outlasted the budget).
  Status VerifyFrame(pages::PageId id);

  /// Repairs a quarantined page whose in-memory copy is still valid by
  /// rewriting its frame from memory, re-verifying it, and releasing the
  /// quarantine. InvalidArgument if the memory copy is itself invalid
  /// (suspect from Open — use ReloadFromDisk or the WAL path in
  /// DurableStore instead).
  Status RepairFromMemory(pages::PageId id);

  /// Repairs a page whose in-memory copy is invalid by re-reading its
  /// frame from disk (with retries) — the cure when the frame was
  /// unreadable at Open only because of a transient fault. On a verified
  /// read the memory copy is replaced and the quarantine released;
  /// DataLoss if the frame really is rotten.
  Status ReloadFromDisk(pages::PageId id);

  /// Quarantine registry (shared with callers for metrics).
  const PageHealth& health() const { return health_; }
  PageHealth& health() { return health_; }

  /// True if the in-memory copy of `id` is invalid (frame was bad at
  /// Open and no WAL image has been applied yet).
  bool memory_invalid(pages::PageId id) const {
    return suspect_.count(id) > 0;
  }

  /// Transient read faults absorbed by the retry loop so far.
  uint64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }

  /// The engine actually serving this store's batched frame reads.
  IoEngineKind io_engine() const { return engine_; }

  const std::string& path() const { return file_->path(); }

 private:
  DiskPageFile(std::unique_ptr<File> file, size_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  size_t frame_bytes() const;
  uint64_t FrameOffset(pages::PageId id) const;
  Status CheckId(pages::PageId id) const;

  /// File::ReadAt wrapped in the bounded retry loop: kUnavailable
  /// results are retried with backoff+jitter; anything else (or
  /// exhaustion) is returned as-is.
  Status ReadWithRetry(uint64_t offset, void* data, size_t n,
                       uint64_t jitter_stream) const;

  /// Batched ReadWithRetry over whole frames: reads the frame of
  /// ids[i] into frames + i * frame_bytes() with per-frame outcomes in
  /// statuses[i] (same result contract as ReadWithRetry). The first
  /// attempt for every frame rides one overlapped File::ReadBatch;
  /// frames that fail transiently are then retried one at a time with
  /// ReadWithRetry's exact backoff/jitter/accounting schedule —
  /// per-frame consecutive attempts ride out a fault burst, where
  /// re-batched retries would let other frames' attempts eat a frame's
  /// budget inside the burst window.
  void ReadFramesBatch(const pages::PageId* ids, size_t count,
                       uint8_t* frames, Status* statuses) const;

  /// CRC-checks and decodes one raw frame into `scratch`; OK iff the
  /// frame holds a valid image.
  Status CheckFrame(const uint8_t* frame, size_t frame_len,
                    pages::Page* scratch) const;

  ReadRetryPolicy retry_;
  IoEngineKind engine_ = IoEngineKind::kSync;
  mutable std::atomic<uint64_t> read_retries_{0};
  PageHealth health_;

  std::unique_ptr<File> file_;
  size_t page_size_;
  std::vector<std::unique_ptr<pages::Page>> pages_;
  pages::IoStats stats_;
  pages::PageId last_read_ = pages::kInvalidPageId;

  std::unordered_set<pages::PageId> dirty_commit_;
  std::vector<pages::PageId> alloc_commit_;
  std::unordered_set<pages::PageId> dirty_checkpoint_;
  std::unordered_set<pages::PageId> suspect_;

  uint64_t checkpoint_lsn_ = 0;
  uint64_t header_epoch_ = 0;
  int active_header_slot_ = 0;
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_DISK_PAGE_FILE_H_
