#include "storage/async_io.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace bw::storage {

namespace {

IoEngineKind BuildDefault() {
#if defined(BW_HAVE_LIBURING)
  return IoEngineKind::kIoUring;
#else
  return IoEngineKind::kThreadPool;
#endif
}

}  // namespace

IoEngineKind ResolveIoEngine(IoEngineChoice choice) {
  IoEngineKind kind;
  switch (choice) {
    case IoEngineChoice::kSync:
      return IoEngineKind::kSync;
    case IoEngineChoice::kThreadPool:
      return IoEngineKind::kThreadPool;
    case IoEngineChoice::kIoUring:
      kind = IoEngineKind::kIoUring;
      break;
    case IoEngineChoice::kAuto:
    default: {
      const char* env = std::getenv("BW_IO_ENGINE");
      if (env != nullptr && std::strcmp(env, "sync") == 0) {
        return IoEngineKind::kSync;
      }
      if (env != nullptr && std::strcmp(env, "threads") == 0) {
        return IoEngineKind::kThreadPool;
      }
      if (env != nullptr && std::strcmp(env, "uring") == 0) {
        kind = IoEngineKind::kIoUring;
        break;
      }
      // Unset (or unrecognized, which is ignored): the build default.
      kind = BuildDefault();
      break;
    }
  }
#if !defined(BW_HAVE_LIBURING)
  // io_uring requested but not compiled in: fall back, never fail —
  // engine choice must not change observable behavior.
  if (kind == IoEngineKind::kIoUring) kind = IoEngineKind::kThreadPool;
#endif
  return kind;
}

const char* IoEngineName(IoEngineKind kind) {
  switch (kind) {
    case IoEngineKind::kSync:
      return "sync";
    case IoEngineKind::kThreadPool:
      return "threads";
    case IoEngineKind::kIoUring:
      return "uring";
  }
  return "unknown";
}

/// One shared FIFO of batches: each RunBatch enqueues its batch and
/// helps drain it, so concurrent batches (a scrubber pass racing an
/// Open, say) share the workers fairly. Span indices are claimed under
/// the pool mutex; a batch leaves the queue the moment its last index
/// is claimed, and the submitter removes it itself if it claims that
/// last index — so no worker can ever observe a batch pointer after its
/// RunBatch frame has been torn down (spans still executing keep
/// `remaining` nonzero, which keeps the submitter blocked).
struct ReadThreadPool::Impl {
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t next = 0;   // next span index to claim; guarded by pool mutex.
    size_t count = 0;
    std::atomic<size_t> remaining{0};  // spans not yet finished.
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Batch*> queue;  // batches with unclaimed spans.
  bool stop = false;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv.wait(lock, [&] { return stop || !queue.empty(); });
      if (stop) return;
      Batch* batch = queue.front();  // workers always claim from front.
      const size_t i = batch->next++;
      if (batch->next >= batch->count) queue.pop_front();
      lock.unlock();
      Run(batch, i);
      lock.lock();
    }
  }

  static void Run(Batch* batch, size_t i) {
    (*batch->fn)(i);
    if (batch->remaining.fetch_sub(1) == 1) {
      // Last span: wake the submitter. The lock makes the wake visible
      // even if the submitter is between its predicate check and wait.
      std::lock_guard<std::mutex> lock(batch->done_mutex);
      batch->done_cv.notify_all();
    }
  }
};

ReadThreadPool& ReadThreadPool::Instance() {
  static ReadThreadPool pool;
  return pool;
}

ReadThreadPool::ReadThreadPool() : impl_(new Impl) {
  size_t n = std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  if (n > 8) n = 8;  // disk parallelism saturates long before CPU count.
  worker_count_ = n;
  impl_->workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ReadThreadPool::~ReadThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ReadThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to overlap; skip the queue round-trip.
    fn(0);
    return;
  }
  Impl::Batch batch;
  batch.fn = &fn;
  batch.count = n;
  batch.remaining.store(n);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(&batch);
  }
  impl_->cv.notify_all();
  // The submitter helps drain its own batch instead of idling: claim
  // spans alongside the workers until all are taken. The batch may sit
  // anywhere in the FIFO (workers only serve the front), so when this
  // claim takes the last index the batch is removed by value.
  for (;;) {
    size_t i;
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      if (batch.next >= batch.count) break;
      i = batch.next++;
      if (batch.next >= batch.count) {
        for (auto it = impl_->queue.begin(); it != impl_->queue.end(); ++it) {
          if (*it == &batch) {
            impl_->queue.erase(it);
            break;
          }
        }
      }
    }
    Impl::Run(&batch, i);
  }
  std::unique_lock<std::mutex> lock(batch.done_mutex);
  batch.done_cv.wait(lock, [&] { return batch.remaining.load() == 0; });
}

}  // namespace bw::storage
