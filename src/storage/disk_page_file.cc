#include "storage/disk_page_file.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "pages/page_codec.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace bw::storage {

namespace {

/// Deterministic jitter in [0, cap): a splitmix-style hash of
/// (seed, stream, attempt), so the backoff schedule is reproducible per
/// seed yet decorrelated across pages and attempts.
uint32_t DeterministicJitter(uint64_t seed, uint64_t stream, int attempt,
                             uint32_t cap) {
  if (cap == 0) return 0;
  uint64_t x = seed ^ (stream * 0xbf58476d1ce4e5b9ull) ^
               (static_cast<uint64_t>(attempt) * 0x94d049bb133111ebull);
  x ^= x >> 31;
  x *= 0xd6e8feb86659fd93ull;
  x ^= x >> 27;
  return static_cast<uint32_t>(x % cap);
}

constexpr uint32_t kBaseMagic = 0x46505742;  // "BWPF"
constexpr uint32_t kBaseVersion = 1;
constexpr size_t kHeaderSlotBytes = 64;
constexpr size_t kPageFramesOffset = 2 * kHeaderSlotBytes;
/// Frame overhead: u32 encoded_len + u32 crc, rounded up generously so
/// the page_codec image (page_size + 20 worst case) always fits.
constexpr size_t kFrameOverhead = 32;

/// Frames per ReadFramesBatch call in Open and Scrub: large enough to
/// keep every async worker busy, small enough to bound the transient
/// scratch buffer (256 × ~page_size bytes).
constexpr uint32_t kLoadBatchFrames = 256;

struct HeaderImage {
  uint32_t magic = kBaseMagic;
  uint32_t version = kBaseVersion;
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  uint64_t checkpoint_lsn = 0;
  uint64_t epoch = 0;
};

void EncodeHeader(const HeaderImage& h, uint8_t out[kHeaderSlotBytes]) {
  std::memset(out, 0, kHeaderSlotBytes);
  std::memcpy(out + 0, &h.magic, 4);
  std::memcpy(out + 4, &h.version, 4);
  std::memcpy(out + 8, &h.page_size, 4);
  std::memcpy(out + 12, &h.page_count, 4);
  std::memcpy(out + 16, &h.checkpoint_lsn, 8);
  std::memcpy(out + 24, &h.epoch, 8);
  const uint32_t crc = bw::Crc32(out, kHeaderSlotBytes - 4);
  std::memcpy(out + kHeaderSlotBytes - 4, &crc, 4);
}

bool DecodeHeader(const uint8_t in[kHeaderSlotBytes], HeaderImage* h) {
  uint32_t stored_crc;
  std::memcpy(&stored_crc, in + kHeaderSlotBytes - 4, 4);
  if (stored_crc != bw::Crc32(in, kHeaderSlotBytes - 4)) return false;
  std::memcpy(&h->magic, in + 0, 4);
  std::memcpy(&h->version, in + 4, 4);
  std::memcpy(&h->page_size, in + 8, 4);
  std::memcpy(&h->page_count, in + 12, 4);
  std::memcpy(&h->checkpoint_lsn, in + 16, 8);
  std::memcpy(&h->epoch, in + 24, 8);
  if (h->magic != kBaseMagic || h->version != kBaseVersion) return false;
  if (h->page_size < 512 || h->page_size > (64u << 20)) return false;
  return true;
}

}  // namespace

size_t DiskPageFile::frame_bytes() const { return page_size_ + kFrameOverhead; }

uint64_t DiskPageFile::FrameOffset(pages::PageId id) const {
  return kPageFramesOffset + static_cast<uint64_t>(id) * frame_bytes();
}

Status DiskPageFile::ReadWithRetry(uint64_t offset, void* data, size_t n,
                                   uint64_t jitter_stream) const {
  const int attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      uint64_t backoff = static_cast<uint64_t>(retry_.backoff_us)
                         << (attempt - 2);
      if (backoff > retry_.max_backoff_us) backoff = retry_.max_backoff_us;
      backoff += DeterministicJitter(retry_.jitter_seed, jitter_stream,
                                     attempt,
                                     static_cast<uint32_t>(backoff / 2 + 1));
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      read_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    last = file_->ReadAt(offset, data, n);
    if (!IsRetryable(last)) return last;
  }
  return last;  // kUnavailable: transient faults outlasted the budget.
}

void DiskPageFile::ReadFramesBatch(const pages::PageId* ids, size_t count,
                                   uint8_t* frames, Status* statuses) const {
  const size_t fb = frame_bytes();
  std::vector<ReadSpan> spans(count);
  for (size_t i = 0; i < count; ++i) {
    spans[i].offset = FrameOffset(ids[i]);
    spans[i].data = frames + i * fb;
    spans[i].n = fb;
  }
  // Attempt 1 for every frame rides one overlapped batch; the injector
  // ticks once per frame in id order regardless of engine.
  file_->ReadBatch(spans.data(), count, engine_);
  // Retries are per-frame and sequential, with ReadWithRetry's exact
  // backoff/jitter/accounting schedule. Deliberately NOT re-batched:
  // transient faults arrive in bursts of consecutive reads, and a
  // frame's best way through a burst is consecutive attempts of its
  // own — interleaving other frames' retries into the burst window can
  // starve a frame out of its whole budget.
  const int attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  for (size_t i = 0; i < count; ++i) {
    statuses[i] = spans[i].status;
    for (int attempt = 2; attempt <= attempts && IsRetryable(statuses[i]);
         ++attempt) {
      uint64_t backoff = static_cast<uint64_t>(retry_.backoff_us)
                         << (attempt - 2);
      if (backoff > retry_.max_backoff_us) backoff = retry_.max_backoff_us;
      backoff += DeterministicJitter(retry_.jitter_seed, ids[i], attempt,
                                     static_cast<uint32_t>(backoff / 2 + 1));
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      statuses[i] = file_->ReadAt(spans[i].offset, spans[i].data, fb);
    }
  }
}

Status DiskPageFile::CheckFrame(const uint8_t* frame, size_t frame_len,
                                pages::Page* scratch) const {
  uint32_t encoded_len;
  std::memcpy(&encoded_len, frame, 4);
  if (encoded_len > frame_len - 8) {
    return Status::DataLoss("frame length field out of range");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, frame + 4 + encoded_len, 4);
  if (stored_crc != bw::Crc32(frame, 4 + encoded_len)) {
    return Status::DataLoss("frame checksum mismatch");
  }
  BW_RETURN_IF_ERROR(pages::DecodePage(frame + 4, encoded_len, scratch));
  return Status::OK();
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::Create(
    const std::string& path, size_t page_size, DiskPageFileOptions options) {
  if (page_size < 512) {
    return Status::InvalidArgument("page_size must be >= 512");
  }
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/true, options.injector));
  std::unique_ptr<DiskPageFile> store(
      new DiskPageFile(std::move(file), page_size));
  store->retry_ = options.read_retry;
  store->engine_ = ResolveIoEngine(options.engine);
  BW_RETURN_IF_ERROR(store->CommitHeader(/*checkpoint_lsn=*/0));
  return store;
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::Open(
    const std::string& path, DiskPageFileOptions options) {
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/false, options.injector));

  // Pick the valid header slot with the highest epoch; a torn header
  // write leaves the other slot intact.
  HeaderImage header;
  int slot_found = -1;
  for (int slot = 0; slot < 2; ++slot) {
    uint8_t raw[kHeaderSlotBytes];
    if (!file->ReadAt(slot * kHeaderSlotBytes, raw, sizeof(raw)).ok()) {
      continue;  // file too short for this slot.
    }
    HeaderImage candidate;
    if (!DecodeHeader(raw, &candidate)) continue;
    if (slot_found < 0 || candidate.epoch > header.epoch) {
      header = candidate;
      slot_found = slot;
    }
  }
  if (slot_found < 0) {
    return Status::DataLoss("'" + path +
                            "' has no valid header slot (both corrupt)");
  }

  std::unique_ptr<DiskPageFile> store(
      new DiskPageFile(std::move(file), header.page_size));
  store->retry_ = options.read_retry;
  store->engine_ = ResolveIoEngine(options.engine);
  store->checkpoint_lsn_ = header.checkpoint_lsn;
  store->header_epoch_ = header.epoch;
  store->active_header_slot_ = slot_found;

  // Load all frames as batched reads (kLoadBatchFrames per batch keeps
  // scratch memory bounded): an async engine overlaps the cold reads,
  // and the injector is ticked once per frame in id order regardless of
  // engine, so a chaos plan armed over Open unrolls identically on
  // sync, thread-pool, and io_uring paths.
  const size_t fb = store->frame_bytes();
  const uint32_t page_count = header.page_count;
  std::vector<uint8_t> frames;
  std::vector<Status> statuses;
  std::vector<pages::PageId> ids;
  for (uint32_t base = 0; base < page_count; base += kLoadBatchFrames) {
    const uint32_t n = std::min<uint32_t>(kLoadBatchFrames, page_count - base);
    frames.resize(static_cast<size_t>(n) * fb);
    statuses.assign(n, Status::OK());
    ids.resize(n);
    for (uint32_t j = 0; j < n; ++j) ids[j] = base + j;
    store->ReadFramesBatch(ids.data(), n, frames.data(), statuses.data());
    for (uint32_t j = 0; j < n; ++j) {
      const pages::PageId id = base + j;
      auto page = std::make_unique<pages::Page>(header.page_size);
      const bool intact =
          statuses[j].ok() &&
          store->CheckFrame(frames.data() + static_cast<size_t>(j) * fb, fb,
                            page.get())
              .ok();
      if (!intact) {
        page->Clear();
        store->suspect_.insert(id);
        store->health_.Quarantine(id);
      }
      store->pages_.push_back(std::move(page));
    }
  }
  return store;
}

pages::PageId DiskPageFile::Allocate() {
  pages_.push_back(std::make_unique<pages::Page>(page_size_));
  const auto id = static_cast<pages::PageId>(pages_.size() - 1);
  alloc_commit_.push_back(id);
  dirty_checkpoint_.insert(id);
  return id;
}

Status DiskPageFile::CheckId(pages::PageId id) const {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("page id out of range");
  }
  return Status::OK();
}

Result<pages::Page*> DiskPageFile::Read(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.reads;
  if (last_read_ != pages::kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_ = id;
  return pages_[id].get();
}

Result<pages::Page*> DiskPageFile::Write(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.writes;
  dirty_commit_.insert(id);
  dirty_checkpoint_.insert(id);
  return pages_[id].get();
}

pages::Page* DiskPageFile::PeekNoIo(pages::PageId id) {
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

const pages::Page* DiskPageFile::PeekNoIo(pages::PageId id) const {
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

std::vector<pages::PageId> DiskPageFile::TakeDirtySinceCommit() {
  std::vector<pages::PageId> ids(dirty_commit_.begin(), dirty_commit_.end());
  dirty_commit_.clear();
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<pages::PageId> DiskPageFile::TakeAllocationsSinceCommit() {
  std::vector<pages::PageId> ids = std::move(alloc_commit_);
  alloc_commit_.clear();
  return ids;
}

std::vector<pages::PageId> DiskPageFile::TakeCheckpointDirty() {
  std::vector<pages::PageId> ids(dirty_checkpoint_.begin(),
                                 dirty_checkpoint_.end());
  dirty_checkpoint_.clear();
  std::sort(ids.begin(), ids.end());
  return ids;
}

void DiskPageFile::MarkAllDirtyForCheckpoint() {
  for (pages::PageId id = 0; id < pages_.size(); ++id) {
    dirty_checkpoint_.insert(id);
  }
}

void DiskPageFile::ClearCommitTracking() {
  dirty_commit_.clear();
  alloc_commit_.clear();
}

void DiskPageFile::RestoreCommitTracking(
    const std::vector<pages::PageId>& allocs,
    const std::vector<pages::PageId>& dirty) {
  // Restored allocations go in front: replay must see a page exist
  // before anything (including a later allocation's split traffic)
  // references it.
  alloc_commit_.insert(alloc_commit_.begin(), allocs.begin(), allocs.end());
  dirty_commit_.insert(dirty.begin(), dirty.end());
}

void DiskPageFile::RestoreCheckpointTracking(
    const std::vector<pages::PageId>& ids) {
  dirty_checkpoint_.insert(ids.begin(), ids.end());
}

Status DiskPageFile::FlushPagesAndSync(
    const std::vector<pages::PageId>& ids) {
  std::vector<uint8_t> image;
  std::vector<uint8_t> frame(frame_bytes());
  for (const pages::PageId id : ids) {
    BW_RETURN_IF_ERROR(CheckId(id));
    if (suspect_.count(id) > 0) {
      // The memory copy is Clear()ed garbage (frame was bad at Open and
      // no WAL image has repaired it yet). Writing it out would
      // overwrite the rotted-but-maybe-repairable frame with a "valid"
      // empty page — a silent data loss. Keep the page dirty so a later
      // checkpoint flushes it once repair lands.
      dirty_checkpoint_.insert(id);
      continue;
    }
    pages::EncodePage(*pages_[id], &image);
    BW_CHECK_LE(image.size(), frame.size() - 8);
    std::fill(frame.begin(), frame.end(), 0);
    const auto encoded_len = static_cast<uint32_t>(image.size());
    std::memcpy(frame.data(), &encoded_len, 4);
    std::memcpy(frame.data() + 4, image.data(), image.size());
    const uint32_t crc = bw::Crc32(frame.data(), 4 + image.size());
    std::memcpy(frame.data() + 4 + image.size(), &crc, 4);
    BW_RETURN_IF_ERROR(file_->WriteAt(FrameOffset(id), frame.data(),
                                      frame.size()));
  }
  return file_->Sync();
}

Status DiskPageFile::CommitHeader(uint64_t checkpoint_lsn) {
  HeaderImage header;
  header.page_size = static_cast<uint32_t>(page_size_);
  header.page_count = static_cast<uint32_t>(pages_.size());
  header.checkpoint_lsn = checkpoint_lsn;
  header.epoch = header_epoch_ + 1;
  uint8_t raw[kHeaderSlotBytes];
  EncodeHeader(header, raw);
  const int slot = 1 - active_header_slot_;
  BW_RETURN_IF_ERROR(
      file_->WriteAt(slot * kHeaderSlotBytes, raw, sizeof(raw)));
  BW_RETURN_IF_ERROR(file_->Sync());
  // The new header is durable; only now may in-memory state adopt it.
  active_header_slot_ = slot;
  header_epoch_ = header.epoch;
  checkpoint_lsn_ = checkpoint_lsn;
  return Status::OK();
}

Status DiskPageFile::EnsureAllocated(pages::PageId id) {
  if (id == pages::kInvalidPageId) {
    return Status::Corruption("WAL alloc record for invalid page id");
  }
  while (pages_.size() <= id) {
    pages_.push_back(std::make_unique<pages::Page>(page_size_));
    dirty_checkpoint_.insert(static_cast<pages::PageId>(pages_.size() - 1));
  }
  return Status::OK();
}

Status DiskPageFile::ApplyPageImage(pages::PageId id, const uint8_t* image,
                                    size_t len) {
  BW_RETURN_IF_ERROR(EnsureAllocated(id));
  BW_RETURN_IF_ERROR(pages::DecodePage(image, len, pages_[id].get()));
  suspect_.erase(id);
  health_.Release(id);
  dirty_checkpoint_.insert(id);
  return Status::OK();
}

std::vector<pages::PageId> DiskPageFile::suspect_pages() const {
  std::vector<pages::PageId> ids(suspect_.begin(), suspect_.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status DiskPageFile::ReadHealth(pages::PageId id) const {
  BW_RETURN_IF_ERROR(CheckId(id));
  if (health_.IsQuarantined(id)) {
    return Status::Unavailable("page " + std::to_string(id) +
                               " quarantined pending repair");
  }
  return Status::OK();
}

Status DiskPageFile::VerifyFrame(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  std::vector<uint8_t> frame(frame_bytes());
  BW_RETURN_IF_ERROR(
      ReadWithRetry(FrameOffset(id), frame.data(), frame.size(),
                    /*jitter_stream=*/id));
  pages::Page scratch(page_size_);
  Status check = CheckFrame(frame.data(), frame.size(), &scratch);
  if (!check.ok()) {
    return Status::DataLoss("page " + std::to_string(id) + " frame in '" +
                            file_->path() + "': " + check.message());
  }
  return Status::OK();
}

Status DiskPageFile::Scrub(ScrubReport* report) {
  ScrubReport local;
  std::vector<pages::PageId> ids;
  for (pages::PageId id = 0; id < pages_.size(); ++id) {
    ++local.frames_checked;
    if (health_.IsQuarantined(id)) continue;  // already awaiting repair.
    ids.push_back(id);
  }
  // Same batched read path as Open: the verdict per frame (quarantine
  // on DataLoss, unreadable on an outlasted transient) is identical to
  // the sequential VerifyFrame loop — only the read scheduling differs.
  const size_t fb = frame_bytes();
  std::vector<uint8_t> frames;
  std::vector<Status> statuses;
  pages::Page scratch(page_size_);
  for (size_t base = 0; base < ids.size(); base += kLoadBatchFrames) {
    const size_t n = std::min<size_t>(kLoadBatchFrames, ids.size() - base);
    frames.resize(n * fb);
    statuses.assign(n, Status::OK());
    ReadFramesBatch(ids.data() + base, n, frames.data(), statuses.data());
    for (size_t j = 0; j < n; ++j) {
      Status status = statuses[j];
      if (status.ok()) {
        status = CheckFrame(frames.data() + j * fb, fb, &scratch);
      }
      if (status.ok()) continue;
      if (status.code() == StatusCode::kDataLoss) {
        health_.Quarantine(ids[base + j]);
        ++local.frames_quarantined;
      } else {
        ++local.frames_unreadable;  // transient; next pass retries.
      }
    }
  }
  if (report != nullptr) *report = local;
  return Status::OK();
}

Status DiskPageFile::ReloadFromDisk(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  std::vector<uint8_t> frame(frame_bytes());
  BW_RETURN_IF_ERROR(
      ReadWithRetry(FrameOffset(id), frame.data(), frame.size(),
                    /*jitter_stream=*/id));
  // Decode into a scratch page first: the live page must not hold a
  // half-decoded image if the frame turns out to be rotten, and while
  // the page is quarantined readers are gated off it, so the final
  // assignment races with no one.
  pages::Page scratch(page_size_);
  Status check = CheckFrame(frame.data(), frame.size(), &scratch);
  if (!check.ok()) {
    return Status::DataLoss("page " + std::to_string(id) + " frame in '" +
                            file_->path() + "': " + check.message());
  }
  *pages_[id] = scratch;
  suspect_.erase(id);
  health_.Release(id);
  return Status::OK();
}

Status DiskPageFile::RepairFromMemory(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  if (suspect_.count(id) > 0) {
    return Status::InvalidArgument(
        "page " + std::to_string(id) +
        " has no valid memory copy; repair it from the WAL instead");
  }
  BW_RETURN_IF_ERROR(FlushPagesAndSync({id}));
  BW_RETURN_IF_ERROR(VerifyFrame(id));
  health_.Release(id);
  return Status::OK();
}

}  // namespace bw::storage
