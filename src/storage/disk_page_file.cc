#include "storage/disk_page_file.h"

#include <algorithm>
#include <cstring>

#include "pages/page_codec.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace bw::storage {

namespace {

constexpr uint32_t kBaseMagic = 0x46505742;  // "BWPF"
constexpr uint32_t kBaseVersion = 1;
constexpr size_t kHeaderSlotBytes = 64;
constexpr size_t kPageFramesOffset = 2 * kHeaderSlotBytes;
/// Frame overhead: u32 encoded_len + u32 crc, rounded up generously so
/// the page_codec image (page_size + 20 worst case) always fits.
constexpr size_t kFrameOverhead = 32;

struct HeaderImage {
  uint32_t magic = kBaseMagic;
  uint32_t version = kBaseVersion;
  uint32_t page_size = 0;
  uint32_t page_count = 0;
  uint64_t checkpoint_lsn = 0;
  uint64_t epoch = 0;
};

void EncodeHeader(const HeaderImage& h, uint8_t out[kHeaderSlotBytes]) {
  std::memset(out, 0, kHeaderSlotBytes);
  std::memcpy(out + 0, &h.magic, 4);
  std::memcpy(out + 4, &h.version, 4);
  std::memcpy(out + 8, &h.page_size, 4);
  std::memcpy(out + 12, &h.page_count, 4);
  std::memcpy(out + 16, &h.checkpoint_lsn, 8);
  std::memcpy(out + 24, &h.epoch, 8);
  const uint32_t crc = bw::Crc32(out, kHeaderSlotBytes - 4);
  std::memcpy(out + kHeaderSlotBytes - 4, &crc, 4);
}

bool DecodeHeader(const uint8_t in[kHeaderSlotBytes], HeaderImage* h) {
  uint32_t stored_crc;
  std::memcpy(&stored_crc, in + kHeaderSlotBytes - 4, 4);
  if (stored_crc != bw::Crc32(in, kHeaderSlotBytes - 4)) return false;
  std::memcpy(&h->magic, in + 0, 4);
  std::memcpy(&h->version, in + 4, 4);
  std::memcpy(&h->page_size, in + 8, 4);
  std::memcpy(&h->page_count, in + 12, 4);
  std::memcpy(&h->checkpoint_lsn, in + 16, 8);
  std::memcpy(&h->epoch, in + 24, 8);
  if (h->magic != kBaseMagic || h->version != kBaseVersion) return false;
  if (h->page_size < 512 || h->page_size > (64u << 20)) return false;
  return true;
}

}  // namespace

size_t DiskPageFile::frame_bytes() const { return page_size_ + kFrameOverhead; }

uint64_t DiskPageFile::FrameOffset(pages::PageId id) const {
  return kPageFramesOffset + static_cast<uint64_t>(id) * frame_bytes();
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::Create(
    const std::string& path, size_t page_size, DiskPageFileOptions options) {
  if (page_size < 512) {
    return Status::InvalidArgument("page_size must be >= 512");
  }
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/true, options.injector));
  std::unique_ptr<DiskPageFile> store(
      new DiskPageFile(std::move(file), page_size));
  BW_RETURN_IF_ERROR(store->CommitHeader(/*checkpoint_lsn=*/0));
  return store;
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::Open(
    const std::string& path, DiskPageFileOptions options) {
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/false, options.injector));

  // Pick the valid header slot with the highest epoch; a torn header
  // write leaves the other slot intact.
  HeaderImage header;
  int slot_found = -1;
  for (int slot = 0; slot < 2; ++slot) {
    uint8_t raw[kHeaderSlotBytes];
    if (!file->ReadAt(slot * kHeaderSlotBytes, raw, sizeof(raw)).ok()) {
      continue;  // file too short for this slot.
    }
    HeaderImage candidate;
    if (!DecodeHeader(raw, &candidate)) continue;
    if (slot_found < 0 || candidate.epoch > header.epoch) {
      header = candidate;
      slot_found = slot;
    }
  }
  if (slot_found < 0) {
    return Status::DataLoss("'" + path +
                            "' has no valid header slot (both corrupt)");
  }

  std::unique_ptr<DiskPageFile> store(
      new DiskPageFile(std::move(file), header.page_size));
  store->checkpoint_lsn_ = header.checkpoint_lsn;
  store->header_epoch_ = header.epoch;
  store->active_header_slot_ = slot_found;

  std::vector<uint8_t> frame(store->frame_bytes());
  for (uint32_t id = 0; id < header.page_count; ++id) {
    auto page = std::make_unique<pages::Page>(header.page_size);
    bool intact = false;
    if (store->file_->ReadAt(store->FrameOffset(id), frame.data(),
                             frame.size())
            .ok()) {
      uint32_t encoded_len;
      std::memcpy(&encoded_len, frame.data(), 4);
      if (encoded_len <= frame.size() - 8) {
        uint32_t stored_crc;
        std::memcpy(&stored_crc, frame.data() + 4 + encoded_len, 4);
        if (stored_crc == bw::Crc32(frame.data(), 4 + encoded_len) &&
            pages::DecodePage(frame.data() + 4, encoded_len, page.get())
                .ok()) {
          intact = true;
        }
      }
    }
    if (!intact) {
      page->Clear();
      store->suspect_.insert(id);
    }
    store->pages_.push_back(std::move(page));
  }
  return store;
}

pages::PageId DiskPageFile::Allocate() {
  pages_.push_back(std::make_unique<pages::Page>(page_size_));
  const auto id = static_cast<pages::PageId>(pages_.size() - 1);
  alloc_commit_.push_back(id);
  dirty_checkpoint_.insert(id);
  return id;
}

Status DiskPageFile::CheckId(pages::PageId id) const {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("page id out of range");
  }
  return Status::OK();
}

Result<pages::Page*> DiskPageFile::Read(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.reads;
  if (last_read_ != pages::kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_ = id;
  return pages_[id].get();
}

Result<pages::Page*> DiskPageFile::Write(pages::PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.writes;
  dirty_commit_.insert(id);
  dirty_checkpoint_.insert(id);
  return pages_[id].get();
}

pages::Page* DiskPageFile::PeekNoIo(pages::PageId id) {
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

const pages::Page* DiskPageFile::PeekNoIo(pages::PageId id) const {
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

std::vector<pages::PageId> DiskPageFile::TakeDirtySinceCommit() {
  std::vector<pages::PageId> ids(dirty_commit_.begin(), dirty_commit_.end());
  dirty_commit_.clear();
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<pages::PageId> DiskPageFile::TakeAllocationsSinceCommit() {
  std::vector<pages::PageId> ids = std::move(alloc_commit_);
  alloc_commit_.clear();
  return ids;
}

std::vector<pages::PageId> DiskPageFile::TakeCheckpointDirty() {
  std::vector<pages::PageId> ids(dirty_checkpoint_.begin(),
                                 dirty_checkpoint_.end());
  dirty_checkpoint_.clear();
  std::sort(ids.begin(), ids.end());
  return ids;
}

void DiskPageFile::MarkAllDirtyForCheckpoint() {
  for (pages::PageId id = 0; id < pages_.size(); ++id) {
    dirty_checkpoint_.insert(id);
  }
}

void DiskPageFile::ClearCommitTracking() {
  dirty_commit_.clear();
  alloc_commit_.clear();
}

Status DiskPageFile::FlushPagesAndSync(
    const std::vector<pages::PageId>& ids) {
  std::vector<uint8_t> image;
  std::vector<uint8_t> frame(frame_bytes());
  for (const pages::PageId id : ids) {
    BW_RETURN_IF_ERROR(CheckId(id));
    pages::EncodePage(*pages_[id], &image);
    BW_CHECK_LE(image.size(), frame.size() - 8);
    std::fill(frame.begin(), frame.end(), 0);
    const auto encoded_len = static_cast<uint32_t>(image.size());
    std::memcpy(frame.data(), &encoded_len, 4);
    std::memcpy(frame.data() + 4, image.data(), image.size());
    const uint32_t crc = bw::Crc32(frame.data(), 4 + image.size());
    std::memcpy(frame.data() + 4 + image.size(), &crc, 4);
    BW_RETURN_IF_ERROR(file_->WriteAt(FrameOffset(id), frame.data(),
                                      frame.size()));
  }
  return file_->Sync();
}

Status DiskPageFile::CommitHeader(uint64_t checkpoint_lsn) {
  HeaderImage header;
  header.page_size = static_cast<uint32_t>(page_size_);
  header.page_count = static_cast<uint32_t>(pages_.size());
  header.checkpoint_lsn = checkpoint_lsn;
  header.epoch = header_epoch_ + 1;
  uint8_t raw[kHeaderSlotBytes];
  EncodeHeader(header, raw);
  const int slot = 1 - active_header_slot_;
  BW_RETURN_IF_ERROR(
      file_->WriteAt(slot * kHeaderSlotBytes, raw, sizeof(raw)));
  BW_RETURN_IF_ERROR(file_->Sync());
  // The new header is durable; only now may in-memory state adopt it.
  active_header_slot_ = slot;
  header_epoch_ = header.epoch;
  checkpoint_lsn_ = checkpoint_lsn;
  return Status::OK();
}

Status DiskPageFile::EnsureAllocated(pages::PageId id) {
  if (id == pages::kInvalidPageId) {
    return Status::Corruption("WAL alloc record for invalid page id");
  }
  while (pages_.size() <= id) {
    pages_.push_back(std::make_unique<pages::Page>(page_size_));
    dirty_checkpoint_.insert(static_cast<pages::PageId>(pages_.size() - 1));
  }
  return Status::OK();
}

Status DiskPageFile::ApplyPageImage(pages::PageId id, const uint8_t* image,
                                    size_t len) {
  BW_RETURN_IF_ERROR(EnsureAllocated(id));
  BW_RETURN_IF_ERROR(pages::DecodePage(image, len, pages_[id].get()));
  suspect_.erase(id);
  dirty_checkpoint_.insert(id);
  return Status::OK();
}

std::vector<pages::PageId> DiskPageFile::suspect_pages() const {
  std::vector<pages::PageId> ids(suspect_.begin(), suspect_.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace bw::storage
