#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace bw::storage {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         bool truncate,
                                         FaultInjector* injector) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<File>(
      new File(fd, static_cast<uint64_t>(st.st_size), path, injector));
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Status File::CheckAlive() const {
  if (injector_ != nullptr && injector_->crashed()) {
    return Status::IoError("simulated crash: '" + path_ + "' is dead");
  }
  if (fail_stopped_) {
    return Status::IoError("fd fail-stopped after a write/fsync failure: '" +
                           path_ + "' sheds all mutations (fsyncgate)");
  }
  return Status::OK();
}

bool File::fail_stopped() const {
  return fail_stopped_ || (injector_ != nullptr && injector_->crashed());
}

Status File::WriteAt(uint64_t offset, const void* data, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> mutated;  // only used when the injector mutates.
  size_t to_write = n;
  bool fail_after = false;
  FaultInjector::WriteDecision decision;
  if (injector_ != nullptr) {
    // Consult the injector before any alive check so every attempted
    // write is counted — fault-free dry runs measure write schedules
    // this way, and post-crash attempts must stay on the same clock.
    decision = injector_->OnWrite(n);
    if (decision.drop) {
      return Status::IoError("simulated crash: write to '" + path_ +
                             "' dropped");
    }
  }
  if (fail_stopped_) {
    return Status::IoError("fd fail-stopped after a write/fsync failure: '" +
                           path_ + "' sheds all mutations (fsyncgate)");
  }
  if (injector_ != nullptr) {
    if (decision.fail_enospc) {
      // Clean refusal: the kernel rejected the allocation before any
      // byte moved, so the fd stays usable and the caller may retry
      // once space frees up.
      return Status::ResourceExhausted("simulated ENOSPC: write to '" +
                                       path_ + "' refused");
    }
    if (decision.fail_eio) {
      // A hard device error leaves the byte range in an unknown state:
      // fail-stop so no later write can land beyond a possible tear.
      fail_stopped_ = true;
      return Status::IoError("simulated EIO: write to '" + path_ +
                             "' failed; fd fail-stopped");
    }
    if (decision.flip_bit && n > 0) {
      mutated.assign(bytes, bytes + n);
      mutated[n / 2] ^= 0x10;
      bytes = mutated.data();
    }
    if (decision.truncate_to != static_cast<size_t>(-1)) {
      to_write = decision.truncate_to < n ? decision.truncate_to : n;
      fail_after = true;
    }
  }
  size_t done = 0;
  while (done < to_write) {
    const ssize_t wrote = ::pwrite(fd_, bytes + done, to_write - done,
                                   static_cast<off_t>(offset + done));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC && done == 0) {
        // Clean out-of-space: nothing of this write landed, the fd is
        // still coherent. Shed the operation, keep the fd.
        return Status::ResourceExhausted(
            "pwrite '" + path_ + "': " + std::strerror(ENOSPC));
      }
      // Partial or hard failure: the range may be torn — fail-stop.
      fail_stopped_ = true;
      return Errno("pwrite", path_);
    }
    done += static_cast<size_t>(wrote);
  }
  if (offset + done > size_) size_ = offset + done;
  if (fail_after) {
    return Status::IoError("simulated crash: torn write to '" + path_ + "'");
  }
  return Status::OK();
}

Status File::Append(const void* data, size_t n) {
  return WriteAt(size_, data, n);
}

Status File::ReadAt(uint64_t offset, void* data, size_t n) const {
  uint8_t* bytes = static_cast<uint8_t*>(data);
  bool flip_bit = false;
  if (injector_ != nullptr) {
    FaultInjector::ReadDecision decision = injector_->OnRead(n);
    if (decision.delay_us > 0) {
      // A hung I/O: the caller's watchdog, not this loop, bounds it.
      std::this_thread::sleep_for(std::chrono::microseconds(decision.delay_us));
    }
    if (decision.fail_transient) {
      return Status::Unavailable("simulated transient read fault on '" +
                                 path_ + "' at offset " +
                                 std::to_string(offset));
    }
    flip_bit = decision.flip_bit && n > 0;
  }
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, bytes + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (got == 0) {
      return Status::IoError("short read from '" + path_ + "' at offset " +
                             std::to_string(offset));
    }
    done += static_cast<size_t>(got);
  }
  // Flip after the pread so the on-disk bytes stay intact: this models
  // rot on the read path (bad cable, flaky DMA) that a retry can clear.
  if (flip_bit) bytes[n / 2] ^= 0x10;
  return Status::OK();
}

Status File::Sync() {
  BW_RETURN_IF_ERROR(CheckAlive());
  if (injector_ != nullptr && injector_->OnSync()) {
    // Fsyncgate: after a failed fsync the kernel may already have
    // dropped the dirty pages, so retrying the sync and reporting clean
    // would acknowledge writes that never reached the platter. The only
    // safe continuation is fail-stop.
    fail_stopped_ = true;
    return Status::IoError("simulated fsync failure on '" + path_ +
                           "'; fd fail-stopped");
  }
  if (::fsync(fd_) != 0) {
    fail_stopped_ = true;
    return Errno("fsync", path_);
  }
  return Status::OK();
}

Status File::Truncate(uint64_t new_size) {
  BW_RETURN_IF_ERROR(CheckAlive());
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = new_size;
  return Status::OK();
}

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/false));
  out->resize(file->size());
  if (out->empty()) return Status::OK();
  return file->ReadAt(0, out->data(), out->size());
}

}  // namespace bw::storage
