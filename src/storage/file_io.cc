#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#if defined(BW_HAVE_LIBURING)
#include <liburing.h>
#endif

namespace bw::storage {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

/// The positional read loop shared by ReadAt and the batch engines:
/// exactly `n` bytes or an error (EINTR restarted, EOF = short read).
Status PreadExact(int fd, const std::string& path, uint64_t offset,
                  void* data, size_t n) {
  uint8_t* bytes = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd, bytes + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path);
    }
    if (got == 0) {
      return Status::IoError("short read from '" + path + "' at offset " +
                             std::to_string(offset));
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

#if defined(BW_HAVE_LIBURING)
/// Serves the spans at `idx` through one io_uring: all reads submitted
/// up front, completions reaped in any order, short reads resubmitted
/// for their remainder. Ring setup failure (a locked-down container)
/// degrades to synchronous preads — engine choice must never change
/// results.
void UringReadSpans(int fd, const std::string& path, ReadSpan* spans,
                    const std::vector<size_t>& idx) {
  struct io_uring ring;
  if (io_uring_queue_init(static_cast<unsigned>(idx.size()), &ring, 0) != 0) {
    for (const size_t i : idx) {
      spans[i].status =
          PreadExact(fd, path, spans[i].offset, spans[i].data, spans[i].n);
    }
    return;
  }
  std::vector<size_t> done(idx.size(), 0);
  size_t completed = 0;
  auto submit_one = [&](size_t j) {
    struct io_uring_sqe* sqe = io_uring_get_sqe(&ring);
    ReadSpan& s = spans[idx[j]];
    io_uring_prep_read(sqe, fd, static_cast<uint8_t*>(s.data) + done[j],
                       static_cast<unsigned>(s.n - done[j]),
                       s.offset + done[j]);
    io_uring_sqe_set_data(sqe, reinterpret_cast<void*>(j));
  };
  for (size_t j = 0; j < idx.size(); ++j) submit_one(j);
  io_uring_submit(&ring);
  while (completed < idx.size()) {
    struct io_uring_cqe* cqe = nullptr;
    if (io_uring_wait_cqe(&ring, &cqe) != 0) continue;
    const size_t j = reinterpret_cast<uintptr_t>(io_uring_cqe_get_data(cqe));
    const int res = cqe->res;
    io_uring_cqe_seen(&ring, cqe);
    ReadSpan& s = spans[idx[j]];
    if (res == -EINTR || res == -EAGAIN) {
      submit_one(j);
      io_uring_submit(&ring);
      continue;
    }
    if (res < 0) {
      s.status = Status::IoError("io_uring read '" + path +
                                 "': " + std::strerror(-res));
      ++completed;
      continue;
    }
    if (res == 0) {
      s.status = Status::IoError("short read from '" + path + "' at offset " +
                                 std::to_string(s.offset));
      ++completed;
      continue;
    }
    done[j] += static_cast<size_t>(res);
    if (done[j] < s.n) {  // short read: resubmit the remainder.
      submit_one(j);
      io_uring_submit(&ring);
      continue;
    }
    s.status = Status::OK();
    ++completed;
  }
  io_uring_queue_exit(&ring);
}
#endif  // BW_HAVE_LIBURING

}  // namespace

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         bool truncate,
                                         FaultInjector* injector) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<File>(
      new File(fd, static_cast<uint64_t>(st.st_size), path, injector));
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Status File::CheckAlive() const {
  if (injector_ != nullptr && injector_->crashed()) {
    return Status::IoError("simulated crash: '" + path_ + "' is dead");
  }
  if (fail_stopped_) {
    return Status::IoError("fd fail-stopped after a write/fsync failure: '" +
                           path_ + "' sheds all mutations (fsyncgate)");
  }
  return Status::OK();
}

bool File::fail_stopped() const {
  return fail_stopped_ || (injector_ != nullptr && injector_->crashed());
}

Status File::WriteAt(uint64_t offset, const void* data, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> mutated;  // only used when the injector mutates.
  size_t to_write = n;
  bool fail_after = false;
  FaultInjector::WriteDecision decision;
  if (injector_ != nullptr) {
    // Consult the injector before any alive check so every attempted
    // write is counted — fault-free dry runs measure write schedules
    // this way, and post-crash attempts must stay on the same clock.
    decision = injector_->OnWrite(n);
    if (decision.drop) {
      return Status::IoError("simulated crash: write to '" + path_ +
                             "' dropped");
    }
  }
  if (fail_stopped_) {
    return Status::IoError("fd fail-stopped after a write/fsync failure: '" +
                           path_ + "' sheds all mutations (fsyncgate)");
  }
  if (injector_ != nullptr) {
    if (decision.fail_enospc) {
      // Clean refusal: the kernel rejected the allocation before any
      // byte moved, so the fd stays usable and the caller may retry
      // once space frees up.
      return Status::ResourceExhausted("simulated ENOSPC: write to '" +
                                       path_ + "' refused");
    }
    if (decision.fail_eio) {
      // A hard device error leaves the byte range in an unknown state:
      // fail-stop so no later write can land beyond a possible tear.
      fail_stopped_ = true;
      return Status::IoError("simulated EIO: write to '" + path_ +
                             "' failed; fd fail-stopped");
    }
    if (decision.flip_bit && n > 0) {
      mutated.assign(bytes, bytes + n);
      mutated[n / 2] ^= 0x10;
      bytes = mutated.data();
    }
    if (decision.truncate_to != static_cast<size_t>(-1)) {
      to_write = decision.truncate_to < n ? decision.truncate_to : n;
      fail_after = true;
    }
  }
  size_t done = 0;
  while (done < to_write) {
    const ssize_t wrote = ::pwrite(fd_, bytes + done, to_write - done,
                                   static_cast<off_t>(offset + done));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC && done == 0) {
        // Clean out-of-space: nothing of this write landed, the fd is
        // still coherent. Shed the operation, keep the fd.
        return Status::ResourceExhausted(
            "pwrite '" + path_ + "': " + std::strerror(ENOSPC));
      }
      // Partial or hard failure: the range may be torn — fail-stop.
      fail_stopped_ = true;
      return Errno("pwrite", path_);
    }
    done += static_cast<size_t>(wrote);
  }
  if (offset + done > size_) size_ = offset + done;
  if (fail_after) {
    return Status::IoError("simulated crash: torn write to '" + path_ + "'");
  }
  return Status::OK();
}

Status File::Append(const void* data, size_t n) {
  return WriteAt(size_, data, n);
}

Status File::ReadAt(uint64_t offset, void* data, size_t n) const {
  uint8_t* bytes = static_cast<uint8_t*>(data);
  bool flip_bit = false;
  if (injector_ != nullptr) {
    FaultInjector::ReadDecision decision = injector_->OnRead(n);
    if (decision.delay_us > 0) {
      // A hung I/O: the caller's watchdog, not this loop, bounds it.
      std::this_thread::sleep_for(std::chrono::microseconds(decision.delay_us));
    }
    if (decision.fail_transient) {
      return Status::Unavailable("simulated transient read fault on '" +
                                 path_ + "' at offset " +
                                 std::to_string(offset));
    }
    flip_bit = decision.flip_bit && n > 0;
  }
  BW_RETURN_IF_ERROR(PreadExact(fd_, path_, offset, bytes, n));
  // Flip after the pread so the on-disk bytes stay intact: this models
  // rot on the read path (bad cable, flaky DMA) that a retry can clear.
  if (flip_bit) bytes[n / 2] ^= 0x10;
  return Status::OK();
}

void File::ReadBatch(ReadSpan* spans, size_t count,
                     IoEngineKind engine) const {
  // One OnRead tick per span, on the calling thread, in span order and
  // before any physical read: the fault schedule is a function of the
  // batch alone, never of engine scheduling, so chaos plans unroll
  // identically on every engine.
  std::vector<FaultInjector::ReadDecision> decisions;
  if (injector_ != nullptr) {
    decisions.resize(count);
    for (size_t i = 0; i < count; ++i) {
      decisions[i] = injector_->OnRead(spans[i].n);
    }
  }
  const auto serve = [&](size_t i) {
    ReadSpan& span = spans[i];
    bool flip_bit = false;
    if (!decisions.empty()) {
      const FaultInjector::ReadDecision& decision = decisions[i];
      if (decision.delay_us > 0) {
        // A hung I/O: slept on whichever worker serves this span, so
        // batched hangs overlap instead of summing; the caller's
        // watchdog, not this loop, bounds the total.
        std::this_thread::sleep_for(
            std::chrono::microseconds(decision.delay_us));
      }
      if (decision.fail_transient) {
        span.status = Status::Unavailable(
            "simulated transient read fault on '" + path_ + "' at offset " +
            std::to_string(span.offset));
        return;
      }
      flip_bit = decision.flip_bit && span.n > 0;
    }
    span.status = PreadExact(fd_, path_, span.offset, span.data, span.n);
    if (span.status.ok() && flip_bit) {
      static_cast<uint8_t*>(span.data)[span.n / 2] ^= 0x10;
    }
  };
  switch (engine) {
    case IoEngineKind::kSync:
      for (size_t i = 0; i < count; ++i) serve(i);
      return;
    case IoEngineKind::kThreadPool:
      ReadThreadPool::Instance().RunBatch(count, serve);
      return;
    case IoEngineKind::kIoUring: {
#if defined(BW_HAVE_LIBURING)
      // Injected faults first (decisions were charged above): delays
      // sleep on the submitting thread, transient failures never reach
      // the ring; the remaining spans ride one SQE batch.
      std::vector<size_t> physical;
      physical.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        if (!decisions.empty()) {
          const FaultInjector::ReadDecision& decision = decisions[i];
          if (decision.delay_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(decision.delay_us));
          }
          if (decision.fail_transient) {
            spans[i].status = Status::Unavailable(
                "simulated transient read fault on '" + path_ +
                "' at offset " + std::to_string(spans[i].offset));
            continue;
          }
        }
        physical.push_back(i);
      }
      UringReadSpans(fd_, path_, spans, physical);
      for (const size_t i : physical) {
        if (spans[i].status.ok() && !decisions.empty() &&
            decisions[i].flip_bit && spans[i].n > 0) {
          static_cast<uint8_t*>(spans[i].data)[spans[i].n / 2] ^= 0x10;
        }
      }
#else
      // Unreachable: ResolveIoEngine never yields kIoUring without
      // BW_HAVE_LIBURING. Serve sanely anyway.
      ReadThreadPool::Instance().RunBatch(count, serve);
#endif
      return;
    }
  }
}

Status File::Sync() {
  BW_RETURN_IF_ERROR(CheckAlive());
  if (injector_ != nullptr && injector_->OnSync()) {
    // Fsyncgate: after a failed fsync the kernel may already have
    // dropped the dirty pages, so retrying the sync and reporting clean
    // would acknowledge writes that never reached the platter. The only
    // safe continuation is fail-stop.
    fail_stopped_ = true;
    return Status::IoError("simulated fsync failure on '" + path_ +
                           "'; fd fail-stopped");
  }
  if (::fsync(fd_) != 0) {
    fail_stopped_ = true;
    return Errno("fsync", path_);
  }
  return Status::OK();
}

Status File::Truncate(uint64_t new_size) {
  BW_RETURN_IF_ERROR(CheckAlive());
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = new_size;
  return Status::OK();
}

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  BW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      File::Open(path, /*truncate=*/false));
  out->resize(file->size());
  if (out->empty()) return Status::OK();
  return file->ReadAt(0, out->data(), out->size());
}

}  // namespace bw::storage
