// Read-engine selection and the worker pool behind File::ReadBatch.
//
// A batched read ("give me these N byte ranges") can be served three
// ways, all with identical results and identical fault-injection
// accounting (see File::ReadBatch for the one-tick-per-span contract):
//
//  - kSync:       the spans are read inline on the submitting thread, in
//                 submit order — the reference engine, also the only one
//                 a single-threaded sanitizer run needs to reason about.
//  - kThreadPool: the spans are fanned out over a small process-wide
//                 pool of preadv workers and the submitter blocks until
//                 the whole batch completes. Wall-clock for N cold spans
//                 approaches max(span latency) instead of the sum.
//  - kIoUring:    compiled only when the configure-time probe found
//                 liburing (BW_HAVE_LIBURING); the batch is submitted as
//                 one SQE ring and reaped in completion order.
//
// Resolution order for the engine actually used: the caller's explicit
// choice (DiskPageFileOptions::engine), then the BW_IO_ENGINE
// environment variable ("sync", "threads", "uring"), then the build
// default (io_uring when liburing was detected, the thread pool
// otherwise). Asking for "uring" in a build without liburing falls back
// to the thread pool rather than failing — engine choice must never
// change observable results, only scheduling.

#ifndef BLOBWORLD_STORAGE_ASYNC_IO_H_
#define BLOBWORLD_STORAGE_ASYNC_IO_H_

#include <cstddef>
#include <functional>

namespace bw::storage {

enum class IoEngineKind {
  kSync,
  kThreadPool,
  kIoUring,
};

/// How a caller picks an engine: kAuto defers to BW_IO_ENGINE and the
/// build default; the rest force a specific engine (subject to the
/// liburing fallback above).
enum class IoEngineChoice {
  kAuto,
  kSync,
  kThreadPool,
  kIoUring,
};

/// Resolves a choice to the engine that will actually serve the batch.
IoEngineKind ResolveIoEngine(IoEngineChoice choice = IoEngineChoice::kAuto);

const char* IoEngineName(IoEngineKind kind);

/// The process-wide worker pool behind IoEngineKind::kThreadPool.
/// Workers are started lazily on the first batch and joined at process
/// exit. Submitting is thread-safe; jobs from concurrent batches
/// interleave freely (each batch waits only on its own spans).
class ReadThreadPool {
 public:
  static ReadThreadPool& Instance();

  /// Runs fn(0) .. fn(n-1) across the workers and blocks until every
  /// call has returned. fn must be safe to invoke concurrently for
  /// distinct indices. Must not be called from inside a pool worker
  /// (jobs never submit nested batches).
  void RunBatch(size_t n, const std::function<void(size_t)>& fn);

  size_t worker_count() const { return worker_count_; }

 private:
  ReadThreadPool();
  ~ReadThreadPool();

  struct Impl;
  Impl* impl_;
  size_t worker_count_;
};

}  // namespace bw::storage

#endif  // BLOBWORLD_STORAGE_ASYNC_IO_H_
