// Process-wide sharded buffer pool for the concurrent read path.
//
// The query service used to give every worker a private LRU pool, which
// duplicates the hot upper tree levels once per thread and shrinks the
// effective cache to capacity/num_workers. This pool is shared by all
// workers: the page-id space is hash-partitioned across N independently
// locked shards, each running CLOCK (second-chance) eviction over its
// slice of the capacity, so concurrent queries share hot internal pages
// while lock acquisitions spread across shards instead of serializing on
// one mutex.
//
// Like the service's private pools, the shared pool is a residency model
// over a PageStore whose pages are memory-resident: a hit or miss only
// decides the accounting (and the simulated miss latency); the bytes are
// always served through the const, thread-safe PeekNoIo path, and the
// store is never written. The PR 3 self-healing hooks are preserved:
// every fetch consults PageStore::ReadHealth (quarantined pages fail
// with Unavailable even on a "hit"), and each Session carries its own
// I/O watchdog so a stream deadline bounds time stuck inside a
// simulated storage read.
//
// Thread-safety: any number of Sessions may fetch concurrently, provided
// no thread is inside PageStore::Allocate/Write/Read meanwhile (the same
// audited serving contract as the per-worker pools). Shard mutexes only
// guard the shard's residency map; the simulated miss latency is slept
// outside the lock.

#ifndef BLOBWORLD_PAGES_SHARDED_BUFFER_POOL_H_
#define BLOBWORLD_PAGES_SHARDED_BUFFER_POOL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pages/page_reader.h"
#include "pages/page_store.h"

namespace bw::pages {

/// Point-in-time counters of one lock shard.
struct ShardStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t contention = 0;  // try_lock failures (waited for the shard).
  size_t resident = 0;      // frames currently occupied.
  size_t capacity = 0;      // frames this shard owns.
};

/// Tuning knobs for a ShardedBufferPool.
struct ShardedPoolOptions {
  /// Number of lock shards; rounded up to a power of two. 0 = auto:
  /// the smallest power of two >= 2 * hardware threads, clamped to
  /// [4, 64] (see DESIGN.md §9 for the rationale).
  size_t shards = 0;
  /// Simulated random-read latency per miss, in microseconds (slept
  /// outside the shard lock, sliced against the session watchdog).
  uint32_t miss_delay_us = 0;
  /// When true, Session::PrefetchBatch admits cold pages as one
  /// overlapped batch (one miss_delay_us per batch; same accounting
  /// rationale as BufferPoolOptions::prefetch). Off by default.
  bool prefetch = false;
};

/// A shared page cache over one PageStore. Fetches go through per-thread
/// Session handles (below), which implement PageReader and carry the
/// session-local stats and watchdog the query service needs per query.
class ShardedBufferPool {
 public:
  /// `capacity` = total resident pages across all shards; 0 caches
  /// nothing (every fetch is a miss, accounting still works).
  ShardedBufferPool(PageStore* store, size_t capacity,
                    ShardedPoolOptions options = ShardedPoolOptions());

  ShardedBufferPool(const ShardedBufferPool&) = delete;
  ShardedBufferPool& operator=(const ShardedBufferPool&) = delete;

  /// One thread's handle onto the shared pool. Fetches update both the
  /// owning shard's counters (shared, under the shard lock) and the
  /// session-local BufferStats (private, lock-free), so per-query deltas
  /// cost nothing extra. A Session is single-threaded; make one per
  /// worker. The pool must outlive its sessions.
  class Session : public PageReader {
   public:
    explicit Session(ShardedBufferPool* pool) : pool_(pool) {}

    Result<Page*> Fetch(PageId id) override;

    /// Admits the batch's cold pages into their shards (each counted as
    /// this session's miss, exactly as its Fetch would have) and sleeps
    /// the simulated miss latency once for the whole batch. Pure hint:
    /// quarantined / out-of-range ids are skipped and errors swallowed.
    void PrefetchBatch(const PageId* ids, size_t n) override;

    bool wants_prefetch() const override {
      return pool_->options_.prefetch && pool_->capacity_ > 0;
    }

    void ArmWatchdog(std::chrono::steady_clock::time_point deadline) override {
      watchdog_deadline_ = deadline;
      watchdog_armed_ = true;
    }
    void DisarmWatchdog() override { watchdog_armed_ = false; }
    uint64_t watchdog_expirations() const override {
      return watchdog_expirations_;
    }

    /// Counters for this session's fetches only (evictions = evictions
    /// this session's misses caused; shard_contention = shard locks this
    /// session had to wait for).
    const BufferStats& stats() const override { return stats_; }

   private:
    friend class ShardedBufferPool;

    ShardedBufferPool* pool_;
    bool watchdog_armed_ = false;
    std::chrono::steady_clock::time_point watchdog_deadline_{};
    uint64_t watchdog_expirations_ = 0;
    BufferStats stats_;
  };

  /// Creates a session handle (thread-safe).
  std::unique_ptr<Session> MakeSession() { return std::make_unique<Session>(this); }

  size_t shard_count() const { return shards_.size(); }
  size_t capacity() const { return capacity_; }

  /// Aggregate counters summed over all shards (locks each shard once).
  BufferStats TotalStats() const;
  /// Per-shard counters, index = shard number.
  std::vector<ShardStats> PerShardStats() const;

  /// Drops all cached pages (counters are kept). Safe concurrently with
  /// fetches: each shard is cleared under its lock.
  void Clear();

 private:
  /// One CLOCK ring + residency map under one mutex.
  struct Shard {
    std::mutex mutex;
    struct Frame {
      PageId id = kInvalidPageId;
      uint8_t referenced = 0;
    };
    std::vector<Frame> frames;  // grows up to `capacity`.
    std::unordered_map<PageId, size_t> where;  // id -> frame index.
    size_t hand = 0;      // CLOCK hand.
    size_t capacity = 0;  // this shard's slice of the pool capacity.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t contention = 0;
  };

  Result<Page*> Fetch(PageId id, Session& session);
  void PrefetchBatch(const PageId* ids, size_t n, Session& session);
  /// Marks `id` resident in its shard (referenced if already there),
  /// with Fetch's exact miss/eviction/contention accounting against
  /// `session`. Returns true if the page was cold (newly admitted).
  bool AdmitForPrefetch(PageId id, Session& session);
  size_t ShardIndex(PageId id) const {
    // Multiplicative hash so tree-layout strides cannot alias one shard.
    return static_cast<size_t>((id * UINT64_C(0x9E3779B97F4A7C15)) >> 32) &
           (shards_.size() - 1);
  }
  /// Sleeps the miss latency in slices, honoring the session watchdog.
  Status MissDelay(Session& session) const;

  PageStore* store_;
  size_t capacity_;
  ShardedPoolOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_SHARDED_BUFFER_POOL_H_
