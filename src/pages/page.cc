#include "pages/page.h"

#include <algorithm>

namespace bw::pages {

Page::Page(size_t size) : data_(size, 0) {
  BW_CHECK_GE(size, 512u);
}

size_t Page::FreeSpace() const {
  const size_t dir = SlotDirBytes(slots_.size() + 1);
  const size_t used = record_tail_;
  if (used + dir >= data_.size()) return 0;
  return data_.size() - used - dir;
}

size_t Page::UsedBytes() const {
  return live_bytes_ + SlotDirBytes(slots_.size());
}

Result<size_t> Page::Insert(const void* bytes, size_t length) {
  if (length > FreeSpace()) {
    // A hole left by Erase/Update may still make room.
    if (live_bytes_ + SlotDirBytes(slots_.size() + 1) + length <=
        data_.size()) {
      Compact();
    }
    if (length > FreeSpace()) {
      return Status::NoSpace("record does not fit in page");
    }
  }
  Slot slot;
  slot.offset = static_cast<uint32_t>(record_tail_);
  slot.length = static_cast<uint32_t>(length);
  std::memcpy(data_.data() + record_tail_, bytes, length);
  record_tail_ += length;
  live_bytes_ += length;
  slots_.push_back(slot);
  return slots_.size() - 1;
}

Status Page::Erase(size_t slot) {
  if (slot >= slots_.size()) {
    return Status::InvalidArgument("slot out of range");
  }
  live_bytes_ -= slots_[slot].length;
  slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(slot));
  return Status::OK();
}

Status Page::Update(size_t slot, const void* bytes, size_t length) {
  if (slot >= slots_.size()) {
    return Status::InvalidArgument("slot out of range");
  }
  Slot& s = slots_[slot];
  if (length <= s.length) {
    std::memcpy(data_.data() + s.offset, bytes, length);
    live_bytes_ -= s.length - length;
    s.length = static_cast<uint32_t>(length);
    return Status::OK();
  }
  // Need a fresh extent: logically erase, then re-insert at same index.
  const size_t needed = length - s.length;
  const size_t dir = SlotDirBytes(slots_.size());
  if (live_bytes_ + needed + dir > data_.size()) {
    return Status::NoSpace("updated record does not fit in page");
  }
  live_bytes_ -= s.length;
  s.length = 0;
  if (record_tail_ + length + dir > data_.size()) Compact();
  s.offset = static_cast<uint32_t>(record_tail_);
  s.length = static_cast<uint32_t>(length);
  std::memcpy(data_.data() + record_tail_, bytes, length);
  record_tail_ += length;
  live_bytes_ += length;
  return Status::OK();
}

const uint8_t* Page::RecordData(size_t slot) const {
  BW_CHECK_LT(slot, slots_.size());
  return data_.data() + slots_[slot].offset;
}

size_t Page::RecordLength(size_t slot) const {
  BW_CHECK_LT(slot, slots_.size());
  return slots_[slot].length;
}

void Page::Clear() {
  slots_.clear();
  record_tail_ = 0;
  live_bytes_ = 0;
}

void Page::Compact() {
  std::vector<uint8_t> fresh(data_.size(), 0);
  size_t tail = 0;
  for (Slot& s : slots_) {
    std::memcpy(fresh.data() + tail, data_.data() + s.offset, s.length);
    s.offset = static_cast<uint32_t>(tail);
    tail += s.length;
  }
  data_ = std::move(fresh);
  record_tail_ = tail;
}

}  // namespace bw::pages
