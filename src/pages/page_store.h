// The abstract page-store surface every index substrate implements.
//
// The GiST layer (gist::Tree), the bulk loaders, and the buffer pool all
// talk to storage through this interface, so the same tree code runs
// over the purely in-memory pages::PageFile (the bench/experiment
// substrate) and the durable storage::DiskPageFile (file-backed pages
// with checksums and a write-ahead log underneath).
//
// Contract shared by all implementations:
//  - Pages are handed out as raw pointers; the store retains ownership
//    and pointers stay valid until the store is destroyed (pages are
//    allocated individually and never relocated).
//  - Read()/Write()/Allocate() are the accounted, possibly-mutating
//    build-path operations and are single-threaded.
//  - PeekNoIo() is a pure read, safe from any number of threads provided
//    no thread is inside Allocate()/Write()/Read() meanwhile (see the
//    audited serving contract in page_file.h and service/).

#ifndef BLOBWORLD_PAGES_PAGE_STORE_H_
#define BLOBWORLD_PAGES_PAGE_STORE_H_

#include "pages/page.h"
#include "util/status.h"

namespace bw::pages {

/// I/O counters accumulated by a page store.
struct IoStats {
  uint64_t reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t writes = 0;

  void Reset() { *this = IoStats(); }
};

/// A growable array of Pages with read/write accounting.
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual size_t page_size() const = 0;
  virtual size_t page_count() const = 0;

  /// Allocates a fresh page and returns its id.
  virtual PageId Allocate() = 0;

  /// Fetches a page for reading, counting one read I/O.
  virtual Result<Page*> Read(PageId id) = 0;

  /// Fetches a page for writing, counting one write I/O. All intended
  /// page mutations go through this call, so implementations may use it
  /// to track dirty pages.
  virtual Result<Page*> Write(PageId id) = 0;

  /// Access without I/O accounting (validation, analysis, and the
  /// concurrent read path, which must not perturb shared counters).
  virtual Page* PeekNoIo(PageId id) = 0;
  virtual const Page* PeekNoIo(PageId id) const = 0;

  /// Serving-path health gate, consulted before trusting PeekNoIo:
  /// OK when the page is fit to serve, Unavailable while it is
  /// quarantined pending repair. Must be thread-safe under the same
  /// conditions as PeekNoIo. Stores without a failure mode (the
  /// in-memory PageFile) are always healthy.
  virtual Status ReadHealth(PageId /*id*/) const { return Status::OK(); }

  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_PAGE_STORE_H_
