// Fixed-size page with a slotted record layout. GiST nodes serialize
// their entries into pages so that fanout, utilization and I/O counts in
// the experiments reflect real byte budgets, exactly as in the paper.

#ifndef BLOBWORLD_PAGES_PAGE_H_
#define BLOBWORLD_PAGES_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace bw::pages {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size, matching the paper's 8 KB transfer unit.
inline constexpr size_t kDefaultPageSize = 8192;

/// A page with a slot directory growing from the end and record payloads
/// growing from the front:
///
///   [record0][record1]...      free space      ...[slotN]..[slot1][slot0]
///
/// Slots are (offset, length) pairs. Deleting a slot compacts the slot
/// directory (slot indices shift down), mirroring the behavior of the
/// original GiST page layout where entries are dense.
class Page {
 public:
  explicit Page(size_t size = kDefaultPageSize);

  size_t size() const { return data_.size(); }
  size_t slot_count() const { return slots_.size(); }

  /// Bytes available for one more record (accounts for the new slot).
  size_t FreeSpace() const;

  /// Total bytes consumed by records + slot directory; used for the
  /// utilization metrics.
  size_t UsedBytes() const;

  /// Fraction of the record area in use, in [0, 1].
  double Utilization() const {
    return static_cast<double>(UsedBytes()) / static_cast<double>(size());
  }

  /// Appends a record; returns its slot index or NoSpace.
  Result<size_t> Insert(const void* bytes, size_t length);

  /// Removes the record in `slot`; later slots shift down by one.
  Status Erase(size_t slot);

  /// Replaces the record in `slot` (may grow or shrink). Returns NoSpace
  /// if the new payload does not fit.
  Status Update(size_t slot, const void* bytes, size_t length);

  /// Read-only view of the record in `slot`.
  const uint8_t* RecordData(size_t slot) const;
  size_t RecordLength(size_t slot) const;

  /// Drops all records.
  void Clear();

  /// Page-type tag and auxiliary header word, free for the client (GiST
  /// stores node level and entry-count cross-checks here).
  uint32_t header_word(size_t i) const {
    BW_DCHECK_LT(i, kHeaderWords);
    return header_[i];
  }
  void set_header_word(size_t i, uint32_t v) {
    BW_DCHECK_LT(i, kHeaderWords);
    header_[i] = v;
  }

  static constexpr size_t kHeaderWords = 4;

 private:
  struct Slot {
    uint32_t offset;
    uint32_t length;
  };

  /// Compacts the record area, squeezing out holes left by Erase/Update.
  void Compact();

  size_t SlotDirBytes(size_t slot_count) const {
    return slot_count * sizeof(Slot);
  }

  std::vector<uint8_t> data_;
  std::vector<Slot> slots_;
  size_t record_tail_ = 0;   // one past the last used record byte.
  size_t live_bytes_ = 0;    // record bytes excluding holes.
  uint32_t header_[kHeaderWords] = {0, 0, 0, 0};
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_PAGE_H_
