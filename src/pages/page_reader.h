// The read-path page access interface shared by every serving cache: the
// single-threaded LRU BufferPool (private per worker or per bench run)
// and a process-wide ShardedBufferPool session. gist::Tree and the
// cursors take a PageReader*, so the traversal layer costs one virtual
// call per *node*, not per entry, regardless of which cache serves it.

#ifndef BLOBWORLD_PAGES_PAGE_READER_H_
#define BLOBWORLD_PAGES_PAGE_READER_H_

#include <chrono>
#include <cstdint>

#include "pages/page.h"
#include "util/status.h"

namespace bw::pages {

/// Buffer-cache counters. For a private BufferPool these cover the whole
/// pool; for a ShardedBufferPool session they cover only the fetches made
/// through that session (which is what per-query metrics need).
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Times a fetch found its lock shard already held by another thread
  /// and had to wait. Always 0 for the lock-free private BufferPool.
  uint64_t shard_contention = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  void Reset() { *this = BufferStats(); }
};

/// A cached page-read path with an I/O watchdog.
///
/// Failure modes surfaced to the traversal layer by every implementation:
///  - Unavailable: the store quarantined this page (ReadHealth gate);
///    degraded-mode traversal may skip the subtree and flag it.
///  - Aborted: the armed I/O watchdog expired while this fetch was stuck
///    in (simulated) storage-read latency; never skipped, always ends
///    the query.
class PageReader {
 public:
  virtual ~PageReader() = default;

  /// Fetches a page through the cache.
  virtual Result<Page*> Fetch(PageId id) = 0;

  /// Hint: the caller expects to Fetch these ids soon (a cursor's next
  /// search-frontier level, say). An implementation may load the cold
  /// ones as one overlapped batch — charging each cold page's miss and
  /// file I/O exactly as its eventual Fetch would have, but paying the
  /// simulated miss latency once for the whole batch instead of once
  /// per page. A pure hint: errors are swallowed (the later Fetch
  /// surfaces them) and the default does nothing.
  virtual void PrefetchBatch(const PageId* ids, size_t n) {
    (void)ids;
    (void)n;
  }

  /// True when PrefetchBatch can actually help (prefetching enabled and
  /// backed by a real cache) — lets the traversal skip assembling a
  /// batch that would be thrown away.
  virtual bool wants_prefetch() const { return false; }

  /// Arms an I/O watchdog: any Fetch at or past `deadline` — including
  /// one that crosses it mid-miss-latency — fails with Aborted instead
  /// of sleeping on. This is how a query deadline covers time stuck
  /// inside storage reads, not just the gaps between pages.
  virtual void ArmWatchdog(std::chrono::steady_clock::time_point deadline) = 0;
  virtual void DisarmWatchdog() = 0;

  /// Times the watchdog fired since construction.
  virtual uint64_t watchdog_expirations() const = 0;

  /// Counters for the fetches made through this reader.
  virtual const BufferStats& stats() const = 0;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_PAGE_READER_H_
