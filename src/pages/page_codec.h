// Page <-> byte-image codec shared by the durable storage engine: the
// same encoding is used for page frames in a DiskPageFile base file and
// for full-page redo images in WAL records, so recovery can splat a WAL
// image over a base page without a separate format.

#ifndef BLOBWORLD_PAGES_PAGE_CODEC_H_
#define BLOBWORLD_PAGES_PAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "pages/page.h"
#include "util/status.h"

namespace bw::pages {

/// Upper bound on EncodePage output for a page of `page_size` bytes.
/// Encoding stores 4 bytes of length per record where the page's slot
/// directory spends 8, so the image never exceeds the page itself plus
/// the fixed header.
size_t MaxEncodedPageBytes(size_t page_size);

/// Serializes `page` (header words + records in slot order) into `out`,
/// replacing its contents. Holes left by Erase/Update are squeezed out;
/// decoding reproduces the same records in the same slot order.
void EncodePage(const Page& page, std::vector<uint8_t>* out);

/// Rebuilds `page` from an image produced by EncodePage. The page is
/// cleared first and must have been constructed with the original page
/// size. Returns Corruption on a malformed image.
Status DecodePage(const uint8_t* data, size_t size, Page* page);

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_PAGE_CODEC_H_
