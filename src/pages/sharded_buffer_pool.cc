#include "pages/sharded_buffer_pool.h"

#include <thread>

#include "util/logging.h"

namespace bw::pages {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t ResolveShardCount(size_t requested) {
  if (requested > 0) return RoundUpPow2(requested);
  // Auto: 2x the hardware threads keeps the expected load per shard
  // below one concurrent fetch, so try_lock almost always succeeds.
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  size_t shards = RoundUpPow2(2 * hw);
  if (shards < 4) shards = 4;
  if (shards > 64) shards = 64;
  return shards;
}

}  // namespace

ShardedBufferPool::ShardedBufferPool(PageStore* store, size_t capacity,
                                     ShardedPoolOptions options)
    : store_(store), capacity_(capacity), options_(options) {
  BW_CHECK(store != nullptr);
  const size_t n = ResolveShardCount(options.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    // Spread the capacity across shards, round-robin for the remainder
    // so small capacities are not silently rounded to zero everywhere.
    shard->capacity = capacity / n + (i < capacity % n ? 1 : 0);
    shard->frames.reserve(shard->capacity);
    shards_.push_back(std::move(shard));
  }
}

Result<Page*> ShardedBufferPool::Session::Fetch(PageId id) {
  return pool_->Fetch(id, *this);
}

void ShardedBufferPool::Session::PrefetchBatch(const PageId* ids, size_t n) {
  pool_->PrefetchBatch(ids, n, *this);
}

bool ShardedBufferPool::AdmitForPrefetch(PageId id, Session& session) {
  Shard& shard = *shards_[ShardIndex(id)];
  if (shard.capacity == 0) return false;  // its Fetch stays a plain miss.
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    ++session.stats_.shard_contention;
    lock.lock();
    ++shard.contention;
  }
  auto it = shard.where.find(id);
  if (it != shard.where.end()) {
    // Already resident: protect it until the Fetch (which counts the
    // hit) instead of letting this batch's admissions evict it.
    shard.frames[it->second].referenced = 1;
    return false;
  }
  ++shard.misses;
  ++session.stats_.misses;
  if (shard.frames.size() < shard.capacity) {
    shard.where[id] = shard.frames.size();
    shard.frames.push_back({id, 1});
    return true;
  }
  // CLOCK, same sweep as Fetch's miss path.
  for (;;) {
    Shard::Frame& f = shard.frames[shard.hand];
    if (f.referenced) {
      f.referenced = 0;
      shard.hand = (shard.hand + 1) % shard.frames.size();
      continue;
    }
    shard.where.erase(f.id);
    ++shard.evictions;
    ++session.stats_.evictions;
    f.id = id;
    f.referenced = 1;
    shard.where[id] = shard.hand;
    shard.hand = (shard.hand + 1) % shard.frames.size();
    return true;
  }
}

void ShardedBufferPool::PrefetchBatch(const PageId* ids, size_t n,
                                      Session& session) {
  if (!options_.prefetch || capacity_ == 0 || n == 0) return;
  if (session.watchdog_armed_ &&
      std::chrono::steady_clock::now() >= session.watchdog_deadline_) {
    return;  // a hint: let the next Fetch charge the expiration.
  }
  bool any_cold = false;
  for (size_t i = 0; i < n; ++i) {
    const PageId id = ids[i];
    if (id >= store_->page_count()) continue;
    if (!store_->ReadHealth(id).ok()) continue;  // Fetch surfaces it.
    any_cold |= AdmitForPrefetch(id, session);
  }
  // One overlapped simulated read for the whole cold set, slept after
  // admission — mirroring Fetch's own insert-then-delay order, so on a
  // watchdog expiry the pages stay resident exactly as an aborted
  // Fetch's page would.
  if (any_cold) (void)MissDelay(session);
}

Status ShardedBufferPool::MissDelay(Session& session) const {
  if (options_.miss_delay_us == 0) return Status::OK();
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(options_.miss_delay_us);
  // Sliced so the watchdog bounds a long simulated read instead of
  // waiting it out (same contract as BufferPool::MissDelay).
  constexpr auto kSlice = std::chrono::microseconds(100);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (session.watchdog_armed_ && now >= session.watchdog_deadline_) {
      ++session.watchdog_expirations_;
      return Status::Aborted("i/o watchdog: deadline expired mid-read");
    }
    if (now >= end) return Status::OK();
    std::this_thread::sleep_for(end - now < kSlice ? end - now : kSlice);
  }
}

Result<Page*> ShardedBufferPool::Fetch(PageId id, Session& session) {
  if (session.watchdog_armed_ &&
      std::chrono::steady_clock::now() >= session.watchdog_deadline_) {
    ++session.watchdog_expirations_;
    return Status::Aborted("i/o watchdog: deadline expired");
  }
  // Quarantine gate: a sick page is unfit to serve even on a cache hit.
  BW_RETURN_IF_ERROR(store_->ReadHealth(id));
  if (id >= store_->page_count()) {
    return Status::InvalidArgument("page id out of range");
  }

  Shard& shard = *shards_[ShardIndex(id)];
  bool hit = false;
  bool evicted = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      ++session.stats_.shard_contention;
      lock.lock();
      ++shard.contention;
    }
    auto it = shard.where.find(id);
    if (it != shard.where.end()) {
      hit = true;
      ++shard.hits;
      shard.frames[it->second].referenced = 1;
    } else {
      ++shard.misses;
      if (shard.capacity > 0) {
        if (shard.frames.size() < shard.capacity) {
          shard.where[id] = shard.frames.size();
          shard.frames.push_back({id, 1});
        } else {
          // CLOCK: advance the hand past referenced frames (clearing the
          // bit) until an unreferenced victim turns up. Bounded: after
          // one full sweep every bit is clear.
          for (;;) {
            Shard::Frame& f = shard.frames[shard.hand];
            if (f.referenced) {
              f.referenced = 0;
              shard.hand = (shard.hand + 1) % shard.frames.size();
              continue;
            }
            shard.where.erase(f.id);
            ++shard.evictions;
            evicted = true;
            f.id = id;
            f.referenced = 1;
            shard.where[id] = shard.hand;
            shard.hand = (shard.hand + 1) % shard.frames.size();
            break;
          }
        }
      }
    }
  }

  if (hit) {
    ++session.stats_.hits;
  } else {
    ++session.stats_.misses;
    if (evicted) ++session.stats_.evictions;
    // The simulated storage-read latency happens outside the shard lock:
    // a real cache would release the latch and wait on the frame's I/O.
    BW_RETURN_IF_ERROR(MissDelay(session));
  }
  return store_->PeekNoIo(id);
}

BufferStats ShardedBufferPool::TotalStats() const {
  BufferStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.shard_contention += shard->contention;
  }
  return total;
}

std::vector<ShardStats> ShardedBufferPool::PerShardStats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    ShardStats s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.evictions = shard->evictions;
    s.contention = shard->contention;
    s.resident = shard->frames.size();
    s.capacity = shard->capacity;
    out.push_back(s);
  }
  return out;
}

void ShardedBufferPool::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->frames.clear();
    shard->where.clear();
    shard->hand = 0;
  }
}

}  // namespace bw::pages
