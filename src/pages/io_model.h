// Disk cost model reproducing the paper's Section 3.2 / footnote 4
// arithmetic: on a late-90s Seagate Barracuda, one random 8 KB I/O costs
// about as much as ~14-15 sequential 8 KB transfers, so an access method
// must touch fewer than ~1/15 of the leaf pages to beat a flat-file scan.

#ifndef BLOBWORLD_PAGES_IO_MODEL_H_
#define BLOBWORLD_PAGES_IO_MODEL_H_

#include <cstdint>

namespace bw::pages {

/// Parameters of a rotating disk, defaulted to the drive the paper cites
/// (Seagate Barracuda ultra-wide SCSI-2: 9 MB/s throughput, 7.1 ms seek,
/// 4.17 ms rotational delay, 8 KB transfers).
struct DiskParameters {
  double seek_ms = 7.1;
  double rotational_delay_ms = 4.17;
  double throughput_mb_per_s = 9.0;
  uint32_t page_bytes = 8192;
};

/// Analytic disk cost model.
class IoModel {
 public:
  explicit IoModel(DiskParameters params = DiskParameters())
      : params_(params) {}

  const DiskParameters& params() const { return params_; }

  /// Time to transfer one page off the platter (no positioning).
  double TransferMs() const;

  /// Cost of one sequential page read (pure transfer).
  double SequentialReadMs() const { return TransferMs(); }

  /// Cost of one random page read (seek + rotate + transfer).
  double RandomReadMs() const;

  /// RandomReadMs / SequentialReadMs: the paper's ~15x factor.
  double RandomToSequentialRatio() const;

  /// Total time for a mixed workload of counted I/Os.
  double WorkloadMs(uint64_t random_reads, uint64_t sequential_reads) const;

  /// Largest fraction of pages an index may touch (randomly) and still
  /// beat a full sequential scan of all pages: 1 / ratio.
  double BreakEvenPageFraction() const {
    return 1.0 / RandomToSequentialRatio();
  }

 private:
  DiskParameters params_;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_IO_MODEL_H_
