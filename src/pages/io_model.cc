#include "pages/io_model.h"

namespace bw::pages {

double IoModel::TransferMs() const {
  const double bytes_per_ms = params_.throughput_mb_per_s * 1e6 / 1e3;
  return static_cast<double>(params_.page_bytes) / bytes_per_ms;
}

double IoModel::RandomReadMs() const {
  return params_.seek_ms + params_.rotational_delay_ms + TransferMs();
}

double IoModel::RandomToSequentialRatio() const {
  return RandomReadMs() / SequentialReadMs();
}

double IoModel::WorkloadMs(uint64_t random_reads,
                           uint64_t sequential_reads) const {
  return static_cast<double>(random_reads) * RandomReadMs() +
         static_cast<double>(sequential_reads) * SequentialReadMs();
}

}  // namespace bw::pages
