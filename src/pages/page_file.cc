#include "pages/page_file.h"

namespace bw::pages {

#ifndef NDEBUG
namespace {

// RAII occupancy markers for the documented thread contract. A mutator
// (Read/Write/Allocate) must be alone: no concurrent mutator, no
// in-flight PeekNoIo. Any number of peekers may overlap each other.
// The counters are a best-effort race detector — a violating schedule
// is aborted when the overlap is observed, which is exactly when it
// would have raced on the non-atomic stats/page-table state.
struct MutatorScope {
  MutatorScope(std::atomic<int>& mutators, const std::atomic<int>& peekers)
      : mutators_(mutators) {
    const int prior = mutators_.fetch_add(1, std::memory_order_acq_rel);
    BW_CHECK_MSG(prior == 0,
                 "PageFile contract violation: concurrent Read/Write/"
                 "Allocate calls");
    BW_CHECK_MSG(peekers.load(std::memory_order_acquire) == 0,
                 "PageFile contract violation: Read/Write/Allocate while "
                 "PeekNoIo readers are in flight");
  }
  ~MutatorScope() { mutators_.fetch_sub(1, std::memory_order_acq_rel); }
  std::atomic<int>& mutators_;
};

struct PeekerScope {
  PeekerScope(const std::atomic<int>& mutators, std::atomic<int>& peekers)
      : peekers_(peekers) {
    peekers_.fetch_add(1, std::memory_order_acq_rel);
    BW_CHECK_MSG(mutators.load(std::memory_order_acquire) == 0,
                 "PageFile contract violation: PeekNoIo while a Read/"
                 "Write/Allocate call is in flight");
  }
  ~PeekerScope() { peekers_.fetch_sub(1, std::memory_order_acq_rel); }
  std::atomic<int>& peekers_;
};

}  // namespace
#define BW_PAGEFILE_MUTATOR_SCOPE() \
  MutatorScope _contract_scope(active_mutators_, active_peekers_)
#define BW_PAGEFILE_PEEKER_SCOPE() \
  PeekerScope _contract_scope(active_mutators_, active_peekers_)
#else
#define BW_PAGEFILE_MUTATOR_SCOPE() \
  do {                              \
  } while (0)
#define BW_PAGEFILE_PEEKER_SCOPE() \
  do {                             \
  } while (0)
#endif

PageId PageFile::Allocate() {
  BW_PAGEFILE_MUTATOR_SCOPE();
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Status PageFile::CheckId(PageId id) const {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("page id out of range");
  }
  return Status::OK();
}

Result<Page*> PageFile::Read(PageId id) {
  BW_PAGEFILE_MUTATOR_SCOPE();
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.reads;
  if (last_read_ != kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_ = id;
  return pages_[id].get();
}

Result<Page*> PageFile::Write(PageId id) {
  BW_PAGEFILE_MUTATOR_SCOPE();
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.writes;
  return pages_[id].get();
}

Page* PageFile::PeekNoIo(PageId id) {
  BW_PAGEFILE_PEEKER_SCOPE();
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

const Page* PageFile::PeekNoIo(PageId id) const {
  BW_PAGEFILE_PEEKER_SCOPE();
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

}  // namespace bw::pages
