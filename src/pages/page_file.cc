#include "pages/page_file.h"

namespace bw::pages {

PageId PageFile::Allocate() {
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Status PageFile::CheckId(PageId id) const {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("page id out of range");
  }
  return Status::OK();
}

Result<Page*> PageFile::Read(PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.reads;
  if (last_read_ != kInvalidPageId && id == last_read_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_ = id;
  return pages_[id].get();
}

Result<Page*> PageFile::Write(PageId id) {
  BW_RETURN_IF_ERROR(CheckId(id));
  ++stats_.writes;
  return pages_[id].get();
}

Page* PageFile::PeekNoIo(PageId id) {
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

const Page* PageFile::PeekNoIo(PageId id) const {
  BW_CHECK_LT(id, pages_.size());
  return pages_[id].get();
}

}  // namespace bw::pages
