#include "pages/page_codec.h"

#include <cstring>

namespace bw::pages {

namespace {

// Image layout (little-endian u32 fields, as written by memcpy on the
// platforms this project targets):
//   [header_word 0..3][slot_count][len_0][bytes_0]...[len_n-1][bytes_n-1]
constexpr size_t kFixedBytes = (Page::kHeaderWords + 1) * sizeof(uint32_t);

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

bool ConsumeU32(const uint8_t** data, size_t* remaining, uint32_t* v) {
  if (*remaining < sizeof(*v)) return false;
  std::memcpy(v, *data, sizeof(*v));
  *data += sizeof(*v);
  *remaining -= sizeof(*v);
  return true;
}

}  // namespace

size_t MaxEncodedPageBytes(size_t page_size) {
  return page_size + kFixedBytes;
}

void EncodePage(const Page& page, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(kFixedBytes + page.UsedBytes());
  for (size_t w = 0; w < Page::kHeaderWords; ++w) {
    AppendU32(out, page.header_word(w));
  }
  AppendU32(out, static_cast<uint32_t>(page.slot_count()));
  for (size_t s = 0; s < page.slot_count(); ++s) {
    const size_t length = page.RecordLength(s);
    AppendU32(out, static_cast<uint32_t>(length));
    const size_t at = out->size();
    out->resize(at + length);
    std::memcpy(out->data() + at, page.RecordData(s), length);
  }
}

Status DecodePage(const uint8_t* data, size_t size, Page* page) {
  page->Clear();
  size_t remaining = size;
  for (size_t w = 0; w < Page::kHeaderWords; ++w) {
    uint32_t word = 0;
    if (!ConsumeU32(&data, &remaining, &word)) {
      return Status::Corruption("page image truncated in header");
    }
    page->set_header_word(w, word);
  }
  uint32_t slots = 0;
  if (!ConsumeU32(&data, &remaining, &slots)) {
    return Status::Corruption("page image truncated at slot count");
  }
  for (uint32_t s = 0; s < slots; ++s) {
    uint32_t length = 0;
    if (!ConsumeU32(&data, &remaining, &length) || length > remaining) {
      return Status::Corruption("page image truncated in record " +
                                std::to_string(s));
    }
    auto inserted = page->Insert(data, length);
    if (!inserted.ok()) return inserted.status();
    data += length;
    remaining -= length;
  }
  if (remaining != 0) {
    return Status::Corruption("page image has trailing bytes");
  }
  return Status::OK();
}

}  // namespace bw::pages
