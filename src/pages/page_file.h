// In-memory "disk" of pages with I/O accounting. Every page read is
// classified as sequential (page id == previous id + 1) or random, so the
// scan-vs-index break-even analysis of Section 3.2 can be computed from
// measured counters rather than assumed.

#ifndef BLOBWORLD_PAGES_PAGE_FILE_H_
#define BLOBWORLD_PAGES_PAGE_FILE_H_

#include <memory>
#include <vector>

#include "pages/page.h"
#include "util/status.h"

namespace bw::pages {

/// I/O counters accumulated by a PageFile.
struct IoStats {
  uint64_t reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t writes = 0;

  void Reset() { *this = IoStats(); }
};

/// A growable array of Pages owned by the file, with read accounting.
/// Pages are handed out as raw pointers; the file retains ownership and
/// pointers stay valid until the file is destroyed (pages are allocated
/// individually, never relocated).
///
/// Thread-safety contract (audited for the concurrent query service):
///  - Read() and Write() mutate the shared IoStats counters and the
///    sequential-read tracker, so they are single-threaded — they belong
///    to the build/bench path, never to concurrent query execution.
///  - PeekNoIo() is a pure read and safe from any number of threads,
///    provided no thread calls Allocate() concurrently (Allocate may
///    grow the page table; page contents themselves never move).
///  - Concurrent readers therefore go through per-worker BufferPools
///    constructed with charge_file_io=false, whose misses resolve via
///    PeekNoIo; per-query I/O is accounted in each pool's BufferStats.
class PageFile {
 public:
  explicit PageFile(size_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_size() const { return page_size_; }
  size_t page_count() const { return pages_.size(); }

  /// Allocates a fresh page and returns its id.
  PageId Allocate();

  /// Fetches a page for reading, counting one read I/O.
  Result<Page*> Read(PageId id);

  /// Fetches a page for writing, counting one write I/O.
  Result<Page*> Write(PageId id);

  /// Access without I/O accounting (for validation and debugging tools
  /// that must not perturb the measured workload).
  Page* PeekNoIo(PageId id);
  const Page* PeekNoIo(PageId id) const;

  const IoStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset();
    last_read_ = kInvalidPageId;
  }

 private:
  Status CheckId(PageId id) const;

  size_t page_size_;
  std::vector<std::unique_ptr<Page>> pages_;
  IoStats stats_;
  PageId last_read_ = kInvalidPageId;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_PAGE_FILE_H_
