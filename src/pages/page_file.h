// In-memory "disk" of pages with I/O accounting. Every page read is
// classified as sequential (page id == previous id + 1) or random, so the
// scan-vs-index break-even analysis of Section 3.2 can be computed from
// measured counters rather than assumed.

#ifndef BLOBWORLD_PAGES_PAGE_FILE_H_
#define BLOBWORLD_PAGES_PAGE_FILE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "pages/page.h"
#include "pages/page_store.h"
#include "util/status.h"

namespace bw::pages {

/// The in-memory PageStore: a growable array of Pages owned by the file,
/// with read accounting. This is the experiment/bench substrate; the
/// durable, file-backed implementation is storage::DiskPageFile.
///
/// Thread-safety contract (audited for the concurrent query service):
///  - Read() and Write() mutate the shared IoStats counters and the
///    sequential-read tracker, so they are single-threaded — they belong
///    to the build/bench path, never to concurrent query execution.
///  - PeekNoIo() is a pure read and safe from any number of threads,
///    provided no thread calls Allocate() concurrently (Allocate may
///    grow the page table; page contents themselves never move).
///  - Concurrent readers therefore go through per-worker BufferPools
///    constructed with charge_file_io=false, whose misses resolve via
///    PeekNoIo; per-query I/O is accounted in each pool's BufferStats.
///
/// Debug builds enforce the contract with atomic occupancy counters:
/// a mutating call (Read/Write/Allocate) overlapping another mutating
/// call or an in-flight PeekNoIo aborts with a CHECK failure instead of
/// silently racing. The counters compile out under NDEBUG, keeping the
/// serving hot path free of shared writes.
class PageFile final : public PageStore {
 public:
  explicit PageFile(size_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_size() const override { return page_size_; }
  size_t page_count() const override { return pages_.size(); }

  PageId Allocate() override;
  Result<Page*> Read(PageId id) override;
  Result<Page*> Write(PageId id) override;

  /// Access without I/O accounting (for validation, debugging tools, and
  /// the concurrent read path, which must not perturb the measured
  /// workload).
  Page* PeekNoIo(PageId id) override;
  const Page* PeekNoIo(PageId id) const override;

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_.Reset();
    last_read_ = kInvalidPageId;
  }

 private:
  Status CheckId(PageId id) const;

#ifndef NDEBUG
  /// Occupancy counters for the debug-mode contract check: number of
  /// threads currently inside a mutating call / inside PeekNoIo.
  mutable std::atomic<int> active_mutators_{0};
  mutable std::atomic<int> active_peekers_{0};
#endif

  size_t page_size_;
  std::vector<std::unique_ptr<Page>> pages_;
  IoStats stats_;
  PageId last_read_ = kInvalidPageId;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_PAGE_FILE_H_
