// LRU buffer pool over a PageFile. Section 6 of the paper argues that
// XJB beats JB once inner nodes must fit in a memory budget; the buffer
// pool makes that argument measurable: hits are free, misses are charged
// to the underlying file's I/O counters.

#ifndef BLOBWORLD_PAGES_BUFFER_POOL_H_
#define BLOBWORLD_PAGES_BUFFER_POOL_H_

#include <list>
#include <unordered_map>

#include "pages/page_file.h"

namespace bw::pages {

/// Buffer pool counters.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  void Reset() { *this = BufferStats(); }
};

/// Simple LRU cache of page ids. The pool does not copy page contents
/// (the PageFile is already in memory); it only models which pages would
/// be resident, which is all the experiments need.
class BufferPool {
 public:
  /// `capacity` = number of resident pages; 0 means "cache nothing".
  BufferPool(PageFile* file, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }

  /// Fetches a page through the cache: a hit costs no file I/O, a miss
  /// reads through to the file (incrementing its IoStats).
  Result<Page*> Fetch(PageId id);

  /// Pre-loads a page without counting a miss (used to model "inner
  /// nodes are pinned in memory" scenarios).
  void Prime(PageId id);

  /// Drops all cached pages.
  void Clear();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  void Touch(PageId id);
  void InsertResident(PageId id);

  PageFile* file_;
  size_t capacity_;
  std::list<PageId> lru_;  // front = most recent.
  std::unordered_map<PageId, std::list<PageId>::iterator> resident_;
  BufferStats stats_;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_BUFFER_POOL_H_
