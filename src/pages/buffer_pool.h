// LRU buffer pool over a PageStore. Section 6 of the paper argues that
// XJB beats JB once inner nodes must fit in a memory budget; the buffer
// pool makes that argument measurable: hits are free, misses are charged
// to the underlying file's I/O counters.

#ifndef BLOBWORLD_PAGES_BUFFER_POOL_H_
#define BLOBWORLD_PAGES_BUFFER_POOL_H_

#include <chrono>
#include <list>
#include <unordered_map>

#include "pages/page_reader.h"
#include "pages/page_store.h"

namespace bw::pages {

/// Behavioral knobs for a BufferPool.
struct BufferPoolOptions {
  /// When true (default), a miss reads through PageStore::Read and is
  /// charged to the file's shared IoStats. When false, a miss resolves
  /// via the const, accounting-free PeekNoIo path and is counted only in
  /// this pool's BufferStats — the mode the concurrent query service
  /// uses so per-worker pools never mutate the shared page store.
  bool charge_file_io = true;
  /// Simulated random-read latency per miss, in microseconds (the pool
  /// sleeps this long before returning). 0 = no simulation. Lets the
  /// service benches model the paper's disk (IoModel::RandomReadMs) on
  /// wall-clock time, so overlapping I/O across workers is measurable.
  uint32_t miss_delay_us = 0;
  /// When true, PrefetchBatch loads cold pages as one overlapped batch
  /// (one miss_delay_us for the batch, the async-read model) and
  /// wants_prefetch() invites the traversal to send frontier batches.
  /// Off by default: prefetching changes hit/miss accounting (a
  /// prefetched page's later Fetch is a hit), so existing single-read
  /// experiments keep their numbers.
  bool prefetch = false;
};

/// Simple LRU cache of page ids. The pool does not copy page contents
/// (every PageStore keeps its pages resident); it only models which pages would
/// be resident, which is all the experiments need.
///
/// Thread-safety: a BufferPool is single-threaded — the query service
/// gives each worker its own pool. With charge_file_io=false, Fetch
/// touches no shared mutable state (only const PageStore reads), so any
/// number of pools may serve the same store concurrently provided no one
/// calls PageStore::Allocate/Write/Read meanwhile.
class BufferPool : public PageReader {
 public:
  /// `capacity` = number of resident pages; 0 means "cache nothing".
  BufferPool(PageStore* file, size_t capacity,
             BufferPoolOptions options = BufferPoolOptions());

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }

  /// Fetches a page through the cache: a hit costs no file I/O, a miss
  /// reads through to the file (incrementing its IoStats). Failure modes
  /// are the PageReader contract (Unavailable on quarantine, Aborted on
  /// watchdog expiry).
  Result<Page*> Fetch(PageId id) override;

  /// Loads the cold pages of the batch, charging each one's miss and
  /// file I/O as Fetch would but sleeping the simulated miss latency
  /// once for the whole batch (overlapped reads). Resident, quarantined
  /// and out-of-range ids are skipped; a watchdog expiry mid-delay
  /// leaves the batch non-resident (the later Fetch ends the query).
  void PrefetchBatch(const PageId* ids, size_t n) override;

  bool wants_prefetch() const override {
    return options_.prefetch && capacity_ > 0;
  }

  void ArmWatchdog(std::chrono::steady_clock::time_point deadline) override {
    watchdog_deadline_ = deadline;
    watchdog_armed_ = true;
  }
  void DisarmWatchdog() override { watchdog_armed_ = false; }

  uint64_t watchdog_expirations() const override {
    return watchdog_expirations_;
  }

  /// Pre-loads a page without counting a miss (used to model "inner
  /// nodes are pinned in memory" scenarios).
  void Prime(PageId id);

  /// Drops all cached pages.
  void Clear();

  const BufferStats& stats() const override { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  void Touch(PageId id);
  void InsertResident(PageId id);

  /// Sleeps the configured miss latency in slices, returning Aborted as
  /// soon as the armed watchdog deadline passes.
  Status MissDelay();

  PageStore* file_;
  size_t capacity_;
  BufferPoolOptions options_;
  bool watchdog_armed_ = false;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
  uint64_t watchdog_expirations_ = 0;
  std::list<PageId> lru_;  // front = most recent.
  std::unordered_map<PageId, std::list<PageId>::iterator> resident_;
  BufferStats stats_;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_BUFFER_POOL_H_
