// LRU buffer pool over a PageStore. Section 6 of the paper argues that
// XJB beats JB once inner nodes must fit in a memory budget; the buffer
// pool makes that argument measurable: hits are free, misses are charged
// to the underlying file's I/O counters.

#ifndef BLOBWORLD_PAGES_BUFFER_POOL_H_
#define BLOBWORLD_PAGES_BUFFER_POOL_H_

#include <chrono>
#include <list>
#include <unordered_map>

#include "pages/page_store.h"

namespace bw::pages {

/// Buffer pool counters.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  void Reset() { *this = BufferStats(); }
};

/// Behavioral knobs for a BufferPool.
struct BufferPoolOptions {
  /// When true (default), a miss reads through PageStore::Read and is
  /// charged to the file's shared IoStats. When false, a miss resolves
  /// via the const, accounting-free PeekNoIo path and is counted only in
  /// this pool's BufferStats — the mode the concurrent query service
  /// uses so per-worker pools never mutate the shared page store.
  bool charge_file_io = true;
  /// Simulated random-read latency per miss, in microseconds (the pool
  /// sleeps this long before returning). 0 = no simulation. Lets the
  /// service benches model the paper's disk (IoModel::RandomReadMs) on
  /// wall-clock time, so overlapping I/O across workers is measurable.
  uint32_t miss_delay_us = 0;
};

/// Simple LRU cache of page ids. The pool does not copy page contents
/// (every PageStore keeps its pages resident); it only models which pages would
/// be resident, which is all the experiments need.
///
/// Thread-safety: a BufferPool is single-threaded — the query service
/// gives each worker its own pool. With charge_file_io=false, Fetch
/// touches no shared mutable state (only const PageStore reads), so any
/// number of pools may serve the same store concurrently provided no one
/// calls PageStore::Allocate/Write/Read meanwhile.
class BufferPool {
 public:
  /// `capacity` = number of resident pages; 0 means "cache nothing".
  BufferPool(PageStore* file, size_t capacity,
             BufferPoolOptions options = BufferPoolOptions());

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }

  /// Fetches a page through the cache: a hit costs no file I/O, a miss
  /// reads through to the file (incrementing its IoStats).
  ///
  /// Failure modes surfaced to the traversal layer:
  ///  - Unavailable: the store quarantined this page (ReadHealth gate);
  ///    degraded-mode traversal may skip the subtree and flag it.
  ///  - Aborted: the armed I/O watchdog expired while this fetch was
  ///    stuck in (simulated) storage-read latency; never skipped, always
  ///    ends the query.
  Result<Page*> Fetch(PageId id);

  /// Arms an I/O watchdog: any Fetch at or past `deadline` — including
  /// one that crosses it mid-miss-latency — fails with Aborted instead
  /// of sleeping on. This is how a query deadline covers time stuck
  /// inside storage reads, not just the gaps between pages.
  void ArmWatchdog(std::chrono::steady_clock::time_point deadline) {
    watchdog_deadline_ = deadline;
    watchdog_armed_ = true;
  }
  void DisarmWatchdog() { watchdog_armed_ = false; }

  /// Times the watchdog fired since construction.
  uint64_t watchdog_expirations() const { return watchdog_expirations_; }

  /// Pre-loads a page without counting a miss (used to model "inner
  /// nodes are pinned in memory" scenarios).
  void Prime(PageId id);

  /// Drops all cached pages.
  void Clear();

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  void Touch(PageId id);
  void InsertResident(PageId id);

  /// Sleeps the configured miss latency in slices, returning Aborted as
  /// soon as the armed watchdog deadline passes.
  Status MissDelay();

  PageStore* file_;
  size_t capacity_;
  BufferPoolOptions options_;
  bool watchdog_armed_ = false;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
  uint64_t watchdog_expirations_ = 0;
  std::list<PageId> lru_;  // front = most recent.
  std::unordered_map<PageId, std::list<PageId>::iterator> resident_;
  BufferStats stats_;
};

}  // namespace bw::pages

#endif  // BLOBWORLD_PAGES_BUFFER_POOL_H_
