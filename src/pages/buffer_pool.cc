#include "pages/buffer_pool.h"

#include "util/logging.h"

#include <chrono>
#include <thread>

namespace bw::pages {

BufferPool::BufferPool(PageStore* file, size_t capacity,
                       BufferPoolOptions options)
    : file_(file), capacity_(capacity), options_(options) {
  BW_CHECK(file != nullptr);
}

Result<Page*> BufferPool::Fetch(PageId id) {
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    ++stats_.hits;
    Touch(id);
    return file_->PeekNoIo(id);
  }
  ++stats_.misses;
  Page* page = nullptr;
  if (options_.charge_file_io) {
    BW_ASSIGN_OR_RETURN(page, file_->Read(id));
  } else {
    if (id >= file_->page_count()) {
      return Status::InvalidArgument("page id out of range");
    }
    page = file_->PeekNoIo(id);
  }
  if (options_.miss_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.miss_delay_us));
  }
  if (capacity_ > 0) InsertResident(id);
  return page;
}

void BufferPool::Prime(PageId id) {
  if (capacity_ == 0) return;
  if (resident_.count(id)) {
    Touch(id);
    return;
  }
  InsertResident(id);
}

void BufferPool::Clear() {
  lru_.clear();
  resident_.clear();
}

void BufferPool::Touch(PageId id) {
  auto it = resident_.find(id);
  BW_DCHECK(it != resident_.end());
  lru_.erase(it->second);
  lru_.push_front(id);
  it->second = lru_.begin();
}

void BufferPool::InsertResident(PageId id) {
  if (resident_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(id);
  resident_[id] = lru_.begin();
}

}  // namespace bw::pages
