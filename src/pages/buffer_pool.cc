#include "pages/buffer_pool.h"

#include "util/logging.h"

#include <chrono>
#include <thread>

namespace bw::pages {

BufferPool::BufferPool(PageStore* file, size_t capacity,
                       BufferPoolOptions options)
    : file_(file), capacity_(capacity), options_(options) {
  BW_CHECK(file != nullptr);
}

Status BufferPool::MissDelay() {
  if (options_.miss_delay_us == 0) return Status::OK();
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(options_.miss_delay_us);
  // Sliced so the watchdog bounds a long simulated read instead of
  // waiting it out.
  constexpr auto kSlice = std::chrono::microseconds(100);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (watchdog_armed_ && now >= watchdog_deadline_) {
      ++watchdog_expirations_;
      return Status::Aborted("i/o watchdog: deadline expired mid-read");
    }
    if (now >= end) return Status::OK();
    std::this_thread::sleep_for(end - now < kSlice ? end - now : kSlice);
  }
}

Result<Page*> BufferPool::Fetch(PageId id) {
  if (watchdog_armed_ &&
      std::chrono::steady_clock::now() >= watchdog_deadline_) {
    ++watchdog_expirations_;
    return Status::Aborted("i/o watchdog: deadline expired");
  }
  // Quarantine gate: a sick page is unfit to serve even on a cache hit.
  BW_RETURN_IF_ERROR(file_->ReadHealth(id));
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    ++stats_.hits;
    Touch(id);
    return file_->PeekNoIo(id);
  }
  ++stats_.misses;
  Page* page = nullptr;
  if (options_.charge_file_io) {
    BW_ASSIGN_OR_RETURN(page, file_->Read(id));
  } else {
    if (id >= file_->page_count()) {
      return Status::InvalidArgument("page id out of range");
    }
    page = file_->PeekNoIo(id);
  }
  BW_RETURN_IF_ERROR(MissDelay());
  if (capacity_ > 0) InsertResident(id);
  return page;
}

void BufferPool::PrefetchBatch(const PageId* ids, size_t n) {
  if (!wants_prefetch() || n == 0) return;
  if (watchdog_armed_ &&
      std::chrono::steady_clock::now() >= watchdog_deadline_) {
    return;  // a hint: let the next Fetch charge the expiration.
  }
  // Charge every cold, healthy page exactly as its Fetch would have...
  bool any_cold = false;
  for (size_t i = 0; i < n; ++i) {
    const PageId id = ids[i];
    if (id >= file_->page_count()) continue;  // skipped, not an error.
    if (resident_.count(id) > 0) continue;
    if (!file_->ReadHealth(id).ok()) continue;  // Fetch will surface it.
    ++stats_.misses;
    if (options_.charge_file_io && !file_->Read(id).ok()) continue;
    any_cold = true;
  }
  if (!any_cold) return;
  // ...but sleep the simulated read latency once for the whole batch:
  // the async engine issues the frontier's reads together, so their
  // (simulated) seek+transfer overlaps instead of summing.
  if (!MissDelay().ok()) return;  // expired: nothing becomes resident.
  for (size_t i = 0; i < n; ++i) {
    const PageId id = ids[i];
    if (resident_.count(id) > 0) continue;
    if (id >= file_->page_count()) continue;
    if (!file_->ReadHealth(id).ok()) continue;
    InsertResident(id);
  }
}

void BufferPool::Prime(PageId id) {
  if (capacity_ == 0) return;
  if (resident_.count(id)) {
    Touch(id);
    return;
  }
  InsertResident(id);
}

void BufferPool::Clear() {
  lru_.clear();
  resident_.clear();
}

void BufferPool::Touch(PageId id) {
  auto it = resident_.find(id);
  BW_DCHECK(it != resident_.end());
  lru_.erase(it->second);
  lru_.push_front(id);
  it->second = lru_.begin();
}

void BufferPool::InsertResident(PageId id) {
  if (resident_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(id);
  resident_[id] = lru_.begin();
}

}  // namespace bw::pages
