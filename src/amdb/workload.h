// Workloads and traced execution for the amdb analysis framework
// (Kornacker/Shah/Hellerstein). A workload is a set of queries; tracing
// records, per query, every node the access method touched and the
// result set, which is all the loss metrics need.

#ifndef BLOBWORLD_AMDB_WORKLOAD_H_
#define BLOBWORLD_AMDB_WORKLOAD_H_

#include <vector>

#include "gist/tree.h"
#include "util/status.h"

namespace bw::amdb {

/// One nearest-neighbor query.
struct NnQuery {
  geom::Vec center;
  size_t k = 200;
};

/// A workload: the paper's is 5531 200-NN queries whose centers are
/// randomly chosen data blobs.
struct Workload {
  std::vector<NnQuery> queries;

  /// Builds the paper-style workload: `count` queries centered on the
  /// data vectors indexed by `foci`, each retrieving `k` neighbors.
  static Workload NnOverFoci(const std::vector<geom::Vec>& data,
                             const std::vector<uint32_t>& foci, size_t k);
};

/// Trace of one executed query.
struct QueryTrace {
  std::vector<pages::PageId> accessed_leaves;
  std::vector<pages::PageId> accessed_internals;
  std::vector<gist::Rid> results;
};

/// Runs every query of `workload` against `tree`, collecting traces.
Result<std::vector<QueryTrace>> ExecuteWorkload(const gist::Tree& tree,
                                                const Workload& workload);

}  // namespace bw::amdb

#endif  // BLOBWORLD_AMDB_WORKLOAD_H_
