#include "amdb/workload.h"

namespace bw::amdb {

Workload Workload::NnOverFoci(const std::vector<geom::Vec>& data,
                              const std::vector<uint32_t>& foci, size_t k) {
  Workload workload;
  workload.queries.reserve(foci.size());
  for (uint32_t f : foci) {
    BW_CHECK_LT(f, data.size());
    workload.queries.push_back(NnQuery{data[f], k});
  }
  return workload;
}

Result<std::vector<QueryTrace>> ExecuteWorkload(const gist::Tree& tree,
                                                const Workload& workload) {
  std::vector<QueryTrace> traces;
  traces.reserve(workload.queries.size());
  for (const NnQuery& query : workload.queries) {
    gist::TraversalStats stats;
    BW_ASSIGN_OR_RETURN(std::vector<gist::Neighbor> neighbors,
                        tree.KnnSearch(query.center, query.k, &stats));
    QueryTrace trace;
    trace.accessed_leaves = std::move(stats.accessed_leaves);
    trace.accessed_internals = std::move(stats.accessed_internals);
    trace.results.reserve(neighbors.size());
    for (const auto& n : neighbors) trace.results.push_back(n.rid);
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace bw::amdb
