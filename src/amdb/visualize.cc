#include "amdb/visualize.h"

#include <cstdio>
#include <sstream>

#include "am/rtree.h"
#include "am/srtree.h"
#include "am/sstree.h"
#include "core/jagged.h"
#include "core/map_tree.h"

namespace bw::amdb {

namespace {

// Qualitative palette (re-used cyclically per leaf).
constexpr const char* kPalette[] = {
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
    "#aa3377", "#bbbbbb", "#e07b39", "#44aa99", "#882255"};
constexpr size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

struct Mapper {
  double x0, y0, sx, sy;
  int height_px;

  double X(double world_x) const { return (world_x - x0) * sx + 10; }
  // SVG y grows downward; flip so the plot reads like a plot.
  double Y(double world_y) const {
    return height_px - ((world_y - y0) * sy + 10);
  }
};

void EmitRect(std::ostringstream& svg, const Mapper& map,
              const geom::Rect& rect, const char* color, double stroke,
              const char* fill, double fill_opacity) {
  const double x = map.X(rect.lo()[0]);
  const double y = map.Y(rect.hi()[1]);
  const double w = map.X(rect.hi()[0]) - map.X(rect.lo()[0]);
  const double h = map.Y(rect.lo()[1]) - map.Y(rect.hi()[1]);
  svg << "<rect x='" << x << "' y='" << y << "' width='" << w
      << "' height='" << h << "' stroke='" << color << "' stroke-width='"
      << stroke << "' fill='" << fill << "' fill-opacity='" << fill_opacity
      << "'/>\n";
}

void EmitCircle(std::ostringstream& svg, const Mapper& map, double cx,
                double cy, double world_r, const char* color) {
  // Radius scaled by the x axis (isotropic enough for inspection).
  svg << "<circle cx='" << map.X(cx) << "' cy='" << map.Y(cy) << "' r='"
      << world_r * map.sx << "' stroke='" << color
      << "' stroke-width='1' fill='none'/>\n";
}

void EmitPoint(std::ostringstream& svg, const Mapper& map,
               const geom::Vec& p, const char* color) {
  svg << "<circle cx='" << map.X(p[0]) << "' cy='" << map.Y(p[1])
      << "' r='1.6' fill='" << color << "'/>\n";
}

// The axis-aligned box a bite removes from its MBR corner.
geom::Rect BiteBox(const geom::Rect& mbr, const core::Bite& bite) {
  geom::Vec lo(2);
  geom::Vec hi(2);
  for (size_t d = 0; d < 2; ++d) {
    const float corner = ((bite.corner >> d) & 1u) ? mbr.hi()[d] : mbr.lo()[d];
    lo[d] = std::min(corner, bite.inner[d]);
    hi[d] = std::max(corner, bite.inner[d]);
  }
  return geom::Rect(std::move(lo), std::move(hi));
}

}  // namespace

Result<std::string> RenderLeavesSvg(const gist::Tree& tree,
                                    const VisualizeOptions& options) {
  if (tree.extension().dim() != 2) {
    return Status::InvalidArgument(
        "visualization requires a 2-D tree (the paper's Figure 10 uses 2-D "
        "R-trees because 5-D data cannot be drawn)");
  }
  if (tree.empty()) return Status::InvalidArgument("tree is empty");

  // Collect leaves with their stored predicates (from the parents); a
  // root-only tree has no stored leaf predicate.
  struct LeafInfo {
    pages::PageId page;
    gist::Bytes predicate;  // may be empty.
  };
  std::vector<LeafInfo> leaves;
  if (tree.height() == 1) {
    leaves.push_back(LeafInfo{tree.root(), {}});
  } else {
    tree.ForEachNode([&](pages::PageId, const gist::NodeView& node) {
      if (node.IsLeaf() || node.level() != 1) return;
      for (size_t i = 0; i < node.entry_count(); ++i) {
        gist::EntryView e = node.entry(i);
        leaves.push_back(LeafInfo{
            e.ChildPage(),
            gist::Bytes(e.predicate.begin(), e.predicate.end())});
      }
    });
  }
  if (options.max_leaves > 0 && leaves.size() > options.max_leaves) {
    leaves.resize(options.max_leaves);
  }

  // World bounding box over the rendered leaves.
  geom::Rect world;
  for (const LeafInfo& leaf : leaves) {
    for (const auto& [point, rid] : tree.LeafPoints(leaf.page)) {
      (void)rid;
      world.ExpandToInclude(point);
    }
  }
  Mapper map;
  map.x0 = world.lo()[0];
  map.y0 = world.lo()[1];
  map.sx = (options.width_px - 20) / std::max(world.Extent(0), 1e-9);
  map.sy = (options.height_px - 20) / std::max(world.Extent(1), 1e-9);
  map.height_px = options.height_px;

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << options.width_px << "' height='" << options.height_px << "'>\n"
      << "<rect width='100%' height='100%' fill='white'/>\n";

  const gist::Extension& ext = tree.extension();
  const auto* rtree = dynamic_cast<const am::RtreeExtension*>(&ext);
  const auto* sstree = dynamic_cast<const am::SsTreeExtension*>(&ext);
  const auto* srtree = dynamic_cast<const am::SrTreeExtension*>(&ext);
  const auto* amap = dynamic_cast<const core::MapExtension*>(&ext);
  const auto* jagged = dynamic_cast<const core::JaggedExtension*>(&ext);

  for (size_t i = 0; i < leaves.size(); ++i) {
    const LeafInfo& leaf = leaves[i];
    const char* color = kPalette[i % kPaletteSize];
    const auto points = tree.LeafPoints(leaf.page);

    if (options.draw_predicates && !leaf.predicate.empty()) {
      const gist::ByteSpan pred(leaf.predicate);
      if (jagged != nullptr) {
        const core::JaggedBp bp = jagged->Decode(pred);
        EmitRect(svg, map, bp.mbr, color, 1.5, "none", 0.0);
        for (const core::Bite& bite : bp.bites) {
          if (bite.IsEmpty(bp.mbr)) continue;
          EmitRect(svg, map, BiteBox(bp.mbr, bite), color, 0.5, color, 0.18);
        }
      } else if (amap != nullptr) {
        auto [a, b] = amap->DecodePair(pred);
        EmitRect(svg, map, a, color, 1.5, "none", 0.0);
        EmitRect(svg, map, b, color, 1.5, "none", 0.0);
      } else if (srtree != nullptr) {
        EmitRect(svg, map, srtree->DecodeRect(pred), color, 1.5, "none", 0.0);
        const geom::Sphere ball = srtree->DecodeSphere(pred);
        EmitCircle(svg, map, ball.center()[0], ball.center()[1],
                   ball.radius(), color);
      } else if (sstree != nullptr) {
        const geom::Sphere ball = sstree->DecodeSphere(pred);
        EmitCircle(svg, map, ball.center()[0], ball.center()[1],
                   ball.radius(), color);
      } else if (rtree != nullptr) {
        EmitRect(svg, map, rtree->DecodeRect(pred), color, 1.5, "none", 0.0);
      }
    } else if (options.draw_predicates) {
      // Root-only tree: draw the tight MBR of the points.
      std::vector<geom::Vec> pts;
      for (const auto& [p, rid] : points) {
        (void)rid;
        pts.push_back(p);
      }
      if (!pts.empty()) {
        EmitRect(svg, map, geom::Rect::BoundingBox(pts), color, 1.5, "none",
                 0.0);
      }
    }

    if (options.draw_points) {
      for (const auto& [point, rid] : points) {
        (void)rid;
        EmitPoint(svg, map, point, color);
      }
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

Status WriteLeavesSvg(const gist::Tree& tree, const std::string& path,
                      const VisualizeOptions& options) {
  BW_ASSIGN_OR_RETURN(std::string svg, RenderLeavesSvg(tree, options));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(svg.data(), 1, svg.size(), f);
  std::fclose(f);
  if (written != svg.size()) return Status::IoError("short write");
  return Status::OK();
}

}  // namespace bw::amdb
