// The amdb loss metrics (Table 1 of the paper): excess coverage loss,
// utilization loss and clustering loss, computed from traced workload
// execution against an optimal-clustering baseline.
//
// Decomposition per query q (leaf level):
//   accessed(q) = optimal(q) + clustering_loss(q) + utilization_loss(q)
//                 + excess_coverage_loss(q)
// where
//   excess_coverage_loss = accessed leaves holding no result of q,
//   utilization_loss     = useful leaves minus the leaves needed to hold
//                          the same entries at target utilization,
//   optimal(q)           = parts of the workload-optimal partition
//                          (hypergraph partitioning) spanning q's results,
//   clustering_loss      = the remainder (clamped at 0; a negative
//                          remainder is reported as clustering gain).
// Inner-node excess coverage counts accessed internal nodes whose
// subtree contributed no result.

#ifndef BLOBWORLD_AMDB_ANALYSIS_H_
#define BLOBWORLD_AMDB_ANALYSIS_H_

#include <string>
#include <vector>

#include "amdb/partitioning.h"
#include "amdb/workload.h"
#include "gist/stats.h"
#include "gist/tree.h"

namespace bw::amdb {

/// Analysis configuration.
struct AnalysisOptions {
  /// Target node utilization (the bulk-load fill fraction).
  double target_utilization = 0.85;
  /// FM refinement passes for the optimal-clustering heuristic.
  size_t refinement_passes = 4;
};

/// Aggregate loss report over a workload.
struct AnalysisReport {
  size_t num_queries = 0;

  // Leaf level (the paper's primary metric; Figures 7/8/14/15).
  uint64_t leaf_accesses = 0;
  uint64_t leaf_excess_coverage_loss = 0;
  uint64_t leaf_utilization_loss = 0;
  uint64_t leaf_clustering_loss = 0;
  uint64_t leaf_optimal_accesses = 0;
  /// Queries where the real tree beat the heuristic optimal (amount).
  uint64_t leaf_clustering_gain = 0;

  // Inner nodes (Figure 16 adds these to leaf accesses).
  uint64_t internal_accesses = 0;
  uint64_t internal_excess_coverage_loss = 0;

  gist::TreeShape shape;

  uint64_t TotalAccesses() const { return leaf_accesses + internal_accesses; }
  double LeafExcessFraction() const {
    return leaf_accesses == 0
               ? 0.0
               : double(leaf_excess_coverage_loss) / double(leaf_accesses);
  }
  double LeafUtilizationFraction() const {
    return leaf_accesses == 0
               ? 0.0
               : double(leaf_utilization_loss) / double(leaf_accesses);
  }
  double LeafClusteringFraction() const {
    return leaf_accesses == 0
               ? 0.0
               : double(leaf_clustering_loss) / double(leaf_accesses);
  }
  double MeanLeafAccessesPerQuery() const {
    return num_queries == 0 ? 0.0
                            : double(leaf_accesses) / double(num_queries);
  }

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Runs `workload` against `tree` and computes the loss report.
Result<AnalysisReport> AnalyzeWorkload(const gist::Tree& tree,
                                       const Workload& workload,
                                       const AnalysisOptions& options =
                                           AnalysisOptions());

/// Variant reusing pre-executed traces (lets callers analyze the same
/// trace under several target utilizations without re-running queries).
Result<AnalysisReport> AnalyzeTraces(const gist::Tree& tree,
                                     const std::vector<QueryTrace>& traces,
                                     const AnalysisOptions& options);

}  // namespace bw::amdb

#endif  // BLOBWORLD_AMDB_ANALYSIS_H_
