// amdb's visualization capability: renders the leaves of a 2-D tree —
// data points, MBRs, and for the custom access methods the actual
// bounding-predicate shapes (MAP rectangle pairs, JB/XJB corner bites) —
// as an SVG image. This reproduces the pictures behind the paper's
// Figures 10 (R-tree leaf MBRs with empty corners), 11 (a MAP BP) and
// 12 (a JB BP).

#ifndef BLOBWORLD_AMDB_VISUALIZE_H_
#define BLOBWORLD_AMDB_VISUALIZE_H_

#include <string>

#include "gist/tree.h"

namespace bw::amdb {

/// Rendering options.
struct VisualizeOptions {
  int width_px = 900;
  int height_px = 900;
  /// Render at most this many leaves (0 = all).
  size_t max_leaves = 0;
  /// Draw the data points.
  bool draw_points = true;
  /// Draw the AM's true predicate shape (bites / rectangle pairs) when
  /// the extension supports it; otherwise only MBRs are drawn.
  bool draw_predicates = true;
};

/// Renders the leaf level of `tree` (whose extension must be 2-D) to an
/// SVG document. InvalidArgument for non-2-D trees.
Result<std::string> RenderLeavesSvg(const gist::Tree& tree,
                                    const VisualizeOptions& options =
                                        VisualizeOptions());

/// Convenience: render and write to a file.
Status WriteLeavesSvg(const gist::Tree& tree, const std::string& path,
                      const VisualizeOptions& options = VisualizeOptions());

}  // namespace bw::amdb

#endif  // BLOBWORLD_AMDB_VISUALIZE_H_
