// Per-node loss attribution: amdb's node-level debugging view. The
// aggregate metrics say *how much* performance is lost; this report says
// *where* — which leaves draw false hits, how full they are, and how
// much of the workload they serve — so the AM designer can look at the
// worst offenders (the workflow behind the paper's Figure 10).

#ifndef BLOBWORLD_AMDB_NODE_REPORT_H_
#define BLOBWORLD_AMDB_NODE_REPORT_H_

#include <string>
#include <vector>

#include "amdb/workload.h"
#include "gist/tree.h"

namespace bw::amdb {

/// Per-leaf accounting over a traced workload.
struct NodeLosses {
  pages::PageId page = pages::kInvalidPageId;
  size_t entries = 0;
  double utilization = 0.0;
  uint64_t accesses = 0;         // queries that read this leaf.
  uint64_t useful_accesses = 0;  // ... and got at least one result from it.
  uint64_t results_served = 0;   // result tuples delivered by this leaf.

  uint64_t ExcessAccesses() const { return accesses - useful_accesses; }
  double ExcessFraction() const {
    return accesses == 0 ? 0.0
                         : double(ExcessAccesses()) / double(accesses);
  }
};

/// Computes per-leaf losses from executed traces. Output is sorted by
/// excess accesses, worst first — the nodes whose BPs most need work.
std::vector<NodeLosses> AttributeNodeLosses(
    const gist::Tree& tree, const std::vector<QueryTrace>& traces);

/// Renders the top `n` offenders as an aligned table.
std::string RenderWorstNodes(const std::vector<NodeLosses>& nodes, size_t n);

}  // namespace bw::amdb

#endif  // BLOBWORLD_AMDB_NODE_REPORT_H_
