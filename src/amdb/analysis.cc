#include "amdb/analysis.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace bw::amdb {

Result<AnalysisReport> AnalyzeWorkload(const gist::Tree& tree,
                                       const Workload& workload,
                                       const AnalysisOptions& options) {
  BW_ASSIGN_OR_RETURN(std::vector<QueryTrace> traces,
                      ExecuteWorkload(tree, workload));
  return AnalyzeTraces(tree, traces, options);
}

Result<AnalysisReport> AnalyzeTraces(const gist::Tree& tree,
                                     const std::vector<QueryTrace>& traces,
                                     const AnalysisOptions& options) {
  AnalysisReport report;
  report.num_queries = traces.size();
  report.shape = tree.Shape();

  // ---- Static maps over the tree. ----
  std::unordered_map<gist::Rid, pages::PageId> leaf_of_rid;
  std::unordered_map<pages::PageId, size_t> entries_of_leaf;
  size_t num_items = 0;
  tree.ForEachNode([&](pages::PageId id, const gist::NodeView& node) {
    if (!node.IsLeaf()) return;
    entries_of_leaf[id] = node.entry_count();
    for (gist::Rid rid : tree.LeafRids(id)) {
      leaf_of_rid[rid] = id;
      num_items = std::max(num_items, static_cast<size_t>(rid) + 1);
    }
  });

  // Parent links for inner-node usefulness.
  std::unordered_map<pages::PageId, pages::PageId> parent_of;
  tree.ForEachNode([&](pages::PageId id, const gist::NodeView& node) {
    if (node.IsLeaf()) return;
    for (size_t i = 0; i < node.entry_count(); ++i) {
      parent_of[node.entry(i).ChildPage()] = id;
    }
  });

  // ---- Leaf capacity at target utilization. ----
  const size_t entry_bytes = tree.extension().PointBytes() +
                             sizeof(uint64_t) + 2 * sizeof(uint32_t);
  const size_t leaf_capacity =
      std::max<size_t>(1, tree.file()->page_size() / entry_bytes);
  const size_t packed_capacity = std::max<size_t>(
      1, static_cast<size_t>(options.target_utilization *
                             static_cast<double>(leaf_capacity)));

  // ---- Optimal clustering over the workload's result sets. ----
  std::vector<std::vector<uint64_t>> edges;
  edges.reserve(traces.size());
  for (const auto& trace : traces) {
    edges.emplace_back(trace.results.begin(), trace.results.end());
  }
  PartitionOptions part_options;
  part_options.part_capacity = packed_capacity;
  part_options.refinement_passes = options.refinement_passes;
  BW_ASSIGN_OR_RETURN(Partition partition,
                      PartitionHypergraph(num_items, edges, part_options));

  // ---- Per-query loss decomposition. ----
  for (size_t q = 0; q < traces.size(); ++q) {
    const QueryTrace& trace = traces[q];
    report.leaf_accesses += trace.accessed_leaves.size();
    report.internal_accesses += trace.accessed_internals.size();

    // Useful leaves: those holding at least one result.
    std::unordered_set<pages::PageId> useful_leaves;
    for (gist::Rid rid : trace.results) {
      auto it = leaf_of_rid.find(rid);
      if (it != leaf_of_rid.end()) useful_leaves.insert(it->second);
    }
    size_t useful_accessed = 0;
    size_t useful_entry_total = 0;
    for (pages::PageId leaf : trace.accessed_leaves) {
      if (useful_leaves.count(leaf)) {
        ++useful_accessed;
        useful_entry_total += entries_of_leaf[leaf];
      }
    }
    const size_t excess = trace.accessed_leaves.size() - useful_accessed;
    report.leaf_excess_coverage_loss += excess;

    // Utilization loss: useful leaves vs. the same entries repacked at
    // target utilization.
    const size_t packed =
        useful_accessed == 0
            ? 0
            : (useful_entry_total + packed_capacity - 1) / packed_capacity;
    const size_t util_loss =
        useful_accessed > packed ? useful_accessed - packed : 0;
    report.leaf_utilization_loss += util_loss;

    // Clustering loss vs. the optimal partition.
    const size_t optimal = partition.PartsSpanned(edges[q]);
    report.leaf_optimal_accesses += optimal;
    if (packed > optimal) {
      report.leaf_clustering_loss += packed - optimal;
    } else {
      report.leaf_clustering_gain += optimal - packed;
    }

    // Inner-node excess: accessed internals with no useful leaf beneath.
    std::unordered_set<pages::PageId> useful_internals;
    for (pages::PageId leaf : useful_leaves) {
      pages::PageId cursor = leaf;
      auto it = parent_of.find(cursor);
      while (it != parent_of.end()) {
        if (!useful_internals.insert(it->second).second) break;
        cursor = it->second;
        it = parent_of.find(cursor);
      }
    }
    for (pages::PageId node : trace.accessed_internals) {
      if (!useful_internals.count(node)) {
        ++report.internal_excess_coverage_loss;
      }
    }
  }
  return report;
}

std::string AnalysisReport::ToString() const {
  std::ostringstream oss;
  oss << "queries: " << num_queries << "\n"
      << "tree height: " << shape.height
      << ", nodes: " << shape.TotalNodes()
      << " (leaves: " << shape.LeafNodes() << ")\n"
      << "leaf accesses:        " << leaf_accesses << " ("
      << MeanLeafAccessesPerQuery() << " per query)\n"
      << "  excess coverage:    " << leaf_excess_coverage_loss << " ("
      << LeafExcessFraction() * 100.0 << "%)\n"
      << "  utilization loss:   " << leaf_utilization_loss << " ("
      << LeafUtilizationFraction() * 100.0 << "%)\n"
      << "  clustering loss:    " << leaf_clustering_loss << " ("
      << LeafClusteringFraction() * 100.0 << "%)\n"
      << "  optimal accesses:   " << leaf_optimal_accesses << "\n"
      << "  clustering gain:    " << leaf_clustering_gain << "\n"
      << "internal accesses:    " << internal_accesses << " (excess "
      << internal_excess_coverage_loss << ")\n"
      << "total accesses:       " << TotalAccesses() << "\n";
  return oss.str();
}

}  // namespace bw::amdb
