// Workload-optimal clustering via hypergraph partitioning.
//
// Amdb's performance baseline is the clustering of data items into
// leaf-sized parts that minimizes the number of parts each query's
// result set spans (its "connectivity"). Items are hypergraph vertices;
// each query's result set is a hyperedge. Truly optimal clustering is
// NP-hard; like the original amdb (which used hMETIS), we use a
// heuristic: greedy query-driven aggregation seeding followed by
// Fiduccia–Mattheyses-style refinement passes under a part-capacity
// constraint.

#ifndef BLOBWORLD_AMDB_PARTITIONING_H_
#define BLOBWORLD_AMDB_PARTITIONING_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace bw::amdb {

/// A partition of items 0..n-1 into capacity-bounded parts.
struct Partition {
  std::vector<uint32_t> part_of_item;  // item -> part id.
  size_t num_parts = 0;

  /// Number of distinct parts the given item set touches (the
  /// connectivity of one hyperedge).
  size_t PartsSpanned(const std::vector<uint64_t>& items) const;
};

/// Partitioner configuration.
struct PartitionOptions {
  /// Maximum items per part (= target_utilization * leaf capacity).
  size_t part_capacity = 100;
  /// FM refinement sweeps over all items.
  size_t refinement_passes = 4;
};

/// Computes a capacity-bounded partition of `num_items` items minimizing
/// total hyperedge connectivity. `edges[q]` lists the item ids of query
/// q's result set.
Result<Partition> PartitionHypergraph(
    size_t num_items, const std::vector<std::vector<uint64_t>>& edges,
    const PartitionOptions& options);

/// Total connectivity objective: sum over edges of PartsSpanned.
uint64_t TotalConnectivity(const Partition& partition,
                           const std::vector<std::vector<uint64_t>>& edges);

}  // namespace bw::amdb

#endif  // BLOBWORLD_AMDB_PARTITIONING_H_
