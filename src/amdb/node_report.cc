#include "amdb/node_report.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/table_printer.h"

namespace bw::amdb {

std::vector<NodeLosses> AttributeNodeLosses(
    const gist::Tree& tree, const std::vector<QueryTrace>& traces) {
  std::unordered_map<pages::PageId, NodeLosses> by_page;
  std::unordered_map<gist::Rid, pages::PageId> leaf_of_rid;
  tree.ForEachNode([&](pages::PageId id, const gist::NodeView& node) {
    if (!node.IsLeaf()) return;
    NodeLosses losses;
    losses.page = id;
    losses.entries = node.entry_count();
    losses.utilization = node.Utilization();
    by_page.emplace(id, losses);
    for (gist::Rid rid : tree.LeafRids(id)) leaf_of_rid[rid] = id;
  });

  for (const QueryTrace& trace : traces) {
    // Results served per leaf for this query.
    std::unordered_map<pages::PageId, uint64_t> served;
    for (gist::Rid rid : trace.results) {
      auto it = leaf_of_rid.find(rid);
      if (it != leaf_of_rid.end()) ++served[it->second];
    }
    for (pages::PageId leaf : trace.accessed_leaves) {
      auto it = by_page.find(leaf);
      if (it == by_page.end()) continue;  // tree changed under the trace.
      NodeLosses& losses = it->second;
      ++losses.accesses;
      auto hit = served.find(leaf);
      if (hit != served.end()) {
        ++losses.useful_accesses;
        losses.results_served += hit->second;
      }
    }
  }

  std::vector<NodeLosses> out;
  out.reserve(by_page.size());
  for (auto& [page, losses] : by_page) out.push_back(losses);
  std::sort(out.begin(), out.end(), [](const NodeLosses& a,
                                       const NodeLosses& b) {
    if (a.ExcessAccesses() != b.ExcessAccesses()) {
      return a.ExcessAccesses() > b.ExcessAccesses();
    }
    return a.page < b.page;
  });
  return out;
}

std::string RenderWorstNodes(const std::vector<NodeLosses>& nodes, size_t n) {
  TablePrinter table({"leaf page", "entries", "util", "accesses",
                      "useful", "excess", "results served"});
  for (size_t i = 0; i < std::min(n, nodes.size()); ++i) {
    const NodeLosses& node = nodes[i];
    table.AddRow({TablePrinter::Count(node.page),
                  TablePrinter::Count((long long)node.entries),
                  TablePrinter::Num(node.utilization, 2),
                  TablePrinter::Count((long long)node.accesses),
                  TablePrinter::Count((long long)node.useful_accesses),
                  TablePrinter::Count((long long)node.ExcessAccesses()),
                  TablePrinter::Count((long long)node.results_served)});
  }
  return table.ToString();
}

}  // namespace bw::amdb
