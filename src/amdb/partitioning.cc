#include "amdb/partitioning.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace bw::amdb {

size_t Partition::PartsSpanned(const std::vector<uint64_t>& items) const {
  std::unordered_set<uint32_t> parts;
  for (uint64_t item : items) {
    BW_DCHECK_LT(item, part_of_item.size());
    parts.insert(part_of_item[item]);
  }
  return parts.size();
}

uint64_t TotalConnectivity(const Partition& partition,
                           const std::vector<std::vector<uint64_t>>& edges) {
  uint64_t total = 0;
  for (const auto& edge : edges) total += partition.PartsSpanned(edge);
  return total;
}

Result<Partition> PartitionHypergraph(
    size_t num_items, const std::vector<std::vector<uint64_t>>& edges,
    const PartitionOptions& options) {
  if (options.part_capacity == 0) {
    return Status::InvalidArgument("part_capacity must be positive");
  }
  constexpr uint32_t kUnassigned = 0xFFFFFFFFu;
  Partition partition;
  partition.part_of_item.assign(num_items, kUnassigned);
  std::vector<uint32_t> part_size;

  auto open_part = [&]() {
    part_size.push_back(0);
    return static_cast<uint32_t>(part_size.size() - 1);
  };
  auto place = [&](uint64_t item, uint32_t part) {
    partition.part_of_item[item] = part;
    ++part_size[part];
  };

  // ---- Greedy query-driven seeding: keep each query's results together
  // as far as capacity allows. ----
  for (const auto& edge : edges) {
    // Parts already touched by this edge, by member count.
    std::unordered_map<uint32_t, uint32_t> touched;
    std::vector<uint64_t> pending;
    for (uint64_t item : edge) {
      if (item >= num_items) {
        return Status::InvalidArgument("edge references item out of range");
      }
      const uint32_t part = partition.part_of_item[item];
      if (part == kUnassigned) {
        pending.push_back(item);
      } else {
        ++touched[part];
      }
    }
    if (pending.empty()) continue;
    // Candidate parts, most-members first, then any with room.
    std::vector<std::pair<uint32_t, uint32_t>> candidates(touched.begin(),
                                                          touched.end());
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    size_t next = 0;
    uint32_t current = kUnassigned;
    for (uint64_t item : pending) {
      while (current == kUnassigned ||
             part_size[current] >= options.part_capacity) {
        if (next < candidates.size()) {
          current = candidates[next++].first;
        } else {
          current = open_part();
        }
      }
      place(item, current);
    }
  }

  // ---- Fill-in for items no query ever touches. ----
  uint32_t fill_part = kUnassigned;
  for (uint64_t item = 0; item < num_items; ++item) {
    if (partition.part_of_item[item] != kUnassigned) continue;
    if (fill_part == kUnassigned ||
        part_size[fill_part] >= options.part_capacity) {
      fill_part = open_part();
    }
    place(item, fill_part);
  }

  // ---- FM-style refinement under the capacity constraint. ----
  std::vector<std::vector<uint32_t>> item_edges(num_items);
  for (uint32_t e = 0; e < edges.size(); ++e) {
    for (uint64_t item : edges[e]) {
      item_edges[item].push_back(e);
    }
  }
  // Per-edge membership count per part.
  std::vector<std::unordered_map<uint32_t, uint32_t>> edge_parts(edges.size());
  for (uint32_t e = 0; e < edges.size(); ++e) {
    for (uint64_t item : edges[e]) {
      ++edge_parts[e][partition.part_of_item[item]];
    }
  }

  for (size_t pass = 0; pass < options.refinement_passes; ++pass) {
    size_t moves = 0;
    for (uint64_t item = 0; item < num_items; ++item) {
      const auto& my_edges = item_edges[item];
      if (my_edges.empty()) continue;
      const uint32_t from = partition.part_of_item[item];

      // Candidate destinations: parts co-touched by this item's edges.
      std::unordered_map<uint32_t, int> gain;
      for (uint32_t e : my_edges) {
        for (const auto& [part, count] : edge_parts[e]) {
          (void)count;
          if (part != from) gain.emplace(part, 0);
        }
      }
      if (gain.empty()) continue;
      // Gain of moving item from `from` to `to`: edges where item is the
      // last member in `from` lose a part (+1 gain); edges with no
      // member yet in `to` gain a part (-1).
      for (auto& [to, g] : gain) {
        for (uint32_t e : my_edges) {
          const auto& parts = edge_parts[e];
          if (parts.at(from) == 1) ++g;
          if (parts.find(to) == parts.end()) --g;
        }
      }
      uint32_t best_to = from;
      int best_gain = 0;
      for (const auto& [to, g] : gain) {
        if (g > best_gain && part_size[to] < options.part_capacity) {
          best_gain = g;
          best_to = to;
        }
      }
      if (best_to == from) continue;

      // Apply the move.
      partition.part_of_item[item] = best_to;
      --part_size[from];
      ++part_size[best_to];
      for (uint32_t e : my_edges) {
        auto& parts = edge_parts[e];
        if (--parts[from] == 0) parts.erase(from);
        ++parts[best_to];
      }
      ++moves;
    }
    if (moves == 0) break;
  }

  partition.num_parts = part_size.size();
  return partition;
}

}  // namespace bw::amdb
