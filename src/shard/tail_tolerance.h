// Tail-tolerance primitives for the scatter-gather router: a
// per-backend circuit breaker fed by a streaming latency tracker, and
// the deadline-budget arithmetic that splits a query's remaining time
// across retry/hedge attempts. DESIGN.md §15 describes the policies;
// this header is deliberately router-agnostic so the pieces can be
// unit-tested with synthetic clocks.
//
// The breaker's job is to stop a *sick-but-alive* replica from being
// timed out on every query. The existing replica state machine only
// knows fail-stop (kDead via probe/open/stream errors); a browned-out
// replica answers probes fine and still serves every stream — just
// 200ms per frame. The breaker watches both error and latency-outlier
// signals and takes the replica out of the preference order:
//
//   kClosed    serving normally; consecutive errors or latency
//              outliers ("slow" = above max(outlier_floor_us,
//              outlier_factor × running p50)) trip it kOpen.
//   kOpen      routed around; after cooldown_us the next Allow()
//              admits exactly one trial and moves kHalfOpen.
//   kHalfOpen  one in-flight trial decides: a fast success closes the
//              breaker, an error or another outlier re-opens it (a
//              fresh cooldown starts).
//
// Breakers are advisory, never authoritative: the router consults them
// when *choosing among* replicas but will still use a breaker-open
// replica when it is the only one left. A breaker can therefore never
// manufacture unavailability — worst case it costs nothing.

#ifndef BLOBWORLD_SHARD_TAIL_TOLERANCE_H_
#define BLOBWORLD_SHARD_TAIL_TOLERANCE_H_

#include <cstdint>
#include <mutex>

#include "util/histogram.h"

namespace bw::shard {

struct BreakerOptions {
  /// Master switch; a disabled breaker reports kClosed forever.
  bool enabled = true;
  /// Consecutive transport errors that trip kClosed -> kOpen. Errors
  /// also mark the replica kDead through the existing state machine;
  /// the breaker matters for errors the probe immediately "cures"
  /// (flapping) and as the common trip path with slow outliers.
  uint32_t error_threshold = 3;
  /// Consecutive latency outliers that trip kClosed -> kOpen.
  uint32_t slow_threshold = 5;
  /// An operation is an outlier only above this floor, whatever the
  /// median says — micro-second jitter on an in-process replica is not
  /// a brownout.
  uint64_t outlier_floor_us = 10'000;
  /// ... and above outlier_factor × the tracker's running p50.
  double outlier_factor = 4.0;
  /// Outlier detection arms only after this many recorded samples, so
  /// a cold tracker's meaningless p50 cannot trip the breaker.
  uint64_t min_samples = 16;
  /// Successes faster than this are buffered replays, not wire
  /// evidence: a remote frontier hands out an already-pulled batch in
  /// microseconds, so between two browned wire pulls sit dozens of
  /// "fast" results that say nothing about the backend. They still
  /// feed the latency histogram but neither extend nor reset the
  /// outlier streak (without this, a browned remote replica could
  /// never accumulate slow_threshold consecutive outliers).
  uint64_t streak_floor_us = 100;
  /// kOpen -> kHalfOpen trial delay.
  uint64_t cooldown_us = 1'000'000;
};

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

/// Returns "closed"/"open"/"half-open".
const char* BreakerStateName(BreakerState state);

/// One backend's breaker + streaming latency tracker. Thread-safe; all
/// time is caller-provided steady microseconds so tests drive the
/// state machine with a synthetic clock.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options) : options_(options) {}

  /// Records a completed operation (open or pull) against this
  /// backend and advances the state machine.
  void OnResult(bool ok, uint64_t latency_us, uint64_t now_us);

  /// Whether a normal (non-last-resort) attempt should use this
  /// backend. Transitions kOpen -> kHalfOpen (admitting exactly one
  /// trial) once the cooldown has passed.
  bool Allow(uint64_t now_us);

  BreakerState state() const;

  /// The hedge delay for this backend: its recent latency quantile,
  /// clamped to [floor, cap]; `fallback_us` until min_samples exist.
  uint64_t HedgeDelayUs(double quantile, uint64_t floor_us, uint64_t cap_us,
                        uint64_t fallback_us) const;

  /// Lifetime transition counters (for RouterStats aggregation).
  uint64_t opens() const;
  uint64_t half_opens() const;
  uint64_t closes() const;

  const LatencyHistogram& latency() const { return latency_; }

 private:
  /// Trip kClosed/kHalfOpen -> kOpen; caller holds mutex_.
  void TripLocked(uint64_t now_us);

  const BreakerOptions options_;
  LatencyHistogram latency_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t consecutive_errors_ = 0;
  uint32_t consecutive_slow_ = 0;
  uint64_t opened_at_us_ = 0;
  bool trial_inflight_ = false;
  uint64_t opens_ = 0;
  uint64_t half_opens_ = 0;
  uint64_t closes_ = 0;
};

/// A query's remaining-time ledger. The router used to re-send the
/// *full* client deadline with every failover re-open, so a query with
/// a 100ms deadline could burn 100ms per attempt across replicas and
/// come back long after the client gave up. DeadlineBudget instead
/// splits what is actually left across the attempts that may still
/// run: attempt i of n gets remaining / n (never below floor_us while
/// any time remains), and when the budget cannot cover another
/// re-scatter the caller abandons the shard into the existing
/// fault-budget machinery — a degraded partial answer now instead of a
/// complete answer after the deadline.
class DeadlineBudget {
 public:
  /// total_us <= 0 means no deadline: every slice is "unlimited" (0 on
  /// the wire) and the budget never exhausts — old behavior exactly.
  DeadlineBudget(double total_us, uint64_t now_us)
      : total_us_(total_us > 0 ? static_cast<uint64_t>(total_us) : 0),
        start_us_(now_us) {}

  bool unlimited() const { return total_us_ == 0; }

  uint64_t remaining_us(uint64_t now_us) const {
    if (unlimited()) return 0;
    const uint64_t elapsed = now_us - start_us_;
    return elapsed >= total_us_ ? 0 : total_us_ - elapsed;
  }

  /// True when the budget cannot cover another attempt of at least
  /// floor_us — the caller should degrade rather than re-scatter.
  bool Exhausted(uint64_t now_us, uint64_t floor_us) const {
    if (unlimited()) return false;
    return remaining_us(now_us) < floor_us;
  }

  /// Deadline (us) to hand the next attempt when `attempts_left`
  /// eligible replicas could still be tried: remaining / attempts_left,
  /// floored so the last slices are not starved into uselessness.
  /// 0 (= no deadline) when the budget itself is unlimited.
  uint64_t SliceUs(uint64_t now_us, size_t attempts_left,
                   uint64_t floor_us) const {
    if (unlimited()) return 0;
    const uint64_t remaining = remaining_us(now_us);
    if (remaining == 0) return floor_us;
    if (attempts_left == 0) attempts_left = 1;
    uint64_t slice = remaining / attempts_left;
    if (slice < floor_us) slice = floor_us;
    return slice;
  }

 private:
  uint64_t total_us_;
  uint64_t start_us_;
};

}  // namespace bw::shard

#endif  // BLOBWORLD_SHARD_TAIL_TOLERANCE_H_
