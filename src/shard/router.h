// The scatter-gather shard router: a net::Backend that answers k-NN,
// range, and mutation requests over a fleet of STR-partitioned shards,
// each with one or more bit-identical replicas.
//
// k-NN is a budgeted best-first merge (DESIGN.md §12). The router keeps
// a global min-heap whose entries are either an *unopened* shard keyed
// by its root bound (ShardMap::RootBound — the Euclidean point-to-box
// lower bound on everything the shard stores) or an *open* shard keyed
// by its frontier head's exact distance. Popping the heap therefore
// always yields the globally smallest candidate; results come out in
// non-decreasing distance order, exactly like a single index's NN
// cursor. Shards are opened lazily: an unopened shard is only dialed
// when its root bound reaches the top of the heap, and the query
// terminates the moment k results exist — every remaining heap key
// (bound or head) is then >= the k-th distance, so unopened shards are
// provably irrelevant and are counted as pruned, never visited.
//
// Replica failover (the state machine in DESIGN.md §12): a replica that
// fails a probe, an open, or a mid-stream Next is marked kDead; the
// query re-opens the same stream on the next live replica and skips the
// results it already consumed *by count* — replicas are bit-identical
// (same slice, same build, mutations applied to all), so result N on
// one replica is result N on another. kDead replicas return via a
// successful health probe. A replica that fails a mutation which
// another replica of the same shard acked is marked kStale instead:
// its contents have diverged and count-skip is no longer sound. The
// catch-up driver (CatchupNow / the catchup_interval thread) cures
// kStale without an operator: it streams the missed WAL suffix from a
// healthy sibling (or a full-store snapshot when the suffix was
// retired past a checkpoint), verifies bit-identity with a
// checksum-over-tree handshake, and only then flips the replica
// kStale -> kCatchingUp -> kHealthy, back into rotation. See
// DESIGN.md §13.
//
// When every replica of a shard is dead the shard itself is dead for
// this query. RouterOptions::fault_budget says how many dead shards a
// query tolerates: within budget the query completes with
// Completeness::kDegraded (every returned neighbor genuine, some may be
// missing — the same contract as the storage tier's degraded reads);
// beyond it the query fails kUnavailable. Per-shard degraded
// accounting (pages_skipped, degraded, truncated) is summed into the
// merged response's metrics.

#ifndef BLOBWORLD_SHARD_ROUTER_H_
#define BLOBWORLD_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.h"
#include "shard/partitioner.h"
#include "shard/shard_backend.h"
#include "shard/tail_tolerance.h"
#include "util/histogram.h"
#include "util/random.h"

namespace bw::shard {

struct RouterOptions {
  /// Dead shards one query may tolerate before failing kUnavailable.
  /// 0 is fail-closed: the first shard with no live replica fails the
  /// query (mirrors ServiceOptions::fault_budget's default).
  size_t fault_budget = 0;
  /// Background health-probe period; zero disables the probe thread
  /// (tests drive ProbeNow() by hand instead).
  std::chrono::milliseconds probe_interval{0};
  /// After consecutive probe failures a replica's next probes are
  /// skipped for 1, 2, 4, ... sweeps (capped here, jittered by ±1): a
  /// down replica stops eating a probe per sweep, and a fleet of
  /// routers doesn't stampede it the instant it restarts.
  uint32_t probe_backoff_max = 8;
  /// Background catch-up period for kStale replicas; zero disables the
  /// thread (tests and bwadmin drive CatchupNow() by hand).
  std::chrono::milliseconds catchup_interval{0};
  /// WAL-shipping transfer shape per catch-up round.
  size_t catchup_max_batches = 64;
  size_t catchup_max_bytes = 1u << 20;
  /// Bound on rounds one CatchupNow pass spends per replica before
  /// giving up (a replica that cannot converge — e.g. under continuous
  /// writes — goes back to kStale and is retried next pass).
  size_t catchup_max_rounds = 64;
  /// Seed for probe-backoff and hedge-delay jitter (deterministic
  /// tests pin it; each jitter consumer draws from its own
  /// JitterStream derived from this seed).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;

  // --- Tail tolerance (DESIGN.md §15) ------------------------------------

  /// Hedged replica reads: when a streaming pull has stalled past the
  /// serving backend's hedge delay — that backend's recent latency
  /// quantile, clamped to [floor, cap] — the same stream is opened on
  /// a sibling replica (count-skip replay, sound because replicas are
  /// bit-identical) and the first responder wins; the loser is
  /// cancelled. Only engages when a shard has >= 2 replicas.
  bool hedge = true;
  double hedge_quantile = 0.99;
  uint64_t hedge_delay_floor_us = 1'000;
  uint64_t hedge_delay_cap_us = 200'000;
  /// Hedge delay used until a backend has recorded enough samples for
  /// its quantile to mean anything.
  uint64_t hedge_delay_fallback_us = 50'000;

  /// Per-backend circuit breakers (advisory: they reorder replica
  /// preference, never manufacture unavailability — see
  /// tail_tolerance.h).
  BreakerOptions breaker;

  /// Smallest per-attempt deadline slice worth sending. When a query's
  /// remaining deadline budget drops below this, the router stops
  /// re-scattering (the shard degrades under the fault budget) rather
  /// than burn time on an attempt that cannot finish.
  uint64_t budget_floor_us = 500;
};

/// Replica lifecycle (see the failover state machine above).
enum class ReplicaState : uint8_t {
  kHealthy,     // serving; preferred in replica order.
  kDead,        // failed a probe/open/stream; probe can resurrect it.
  kStale,       // diverged on a write; waiting for WAL catch-up.
  kCatchingUp,  // catch-up driver is streaming the missed suffix.
};

/// Router counters, all lifetime totals.
struct RouterStats {
  uint64_t queries = 0;          // k-NN + range fan-outs executed.
  uint64_t shards_visited = 0;   // frontiers actually opened.
  uint64_t shards_pruned = 0;    // shards never opened (bound beat k-th).
  uint64_t failovers = 0;        // replica handoffs mid-query.
  uint64_t degraded_queries = 0; // completed under the fault budget.
  uint64_t probes = 0;           // individual replica probes issued.
  uint64_t mutations = 0;        // inserts + removes routed.
  uint64_t catchups = 0;         // replicas readmitted kHealthy.
  uint64_t wal_batches_shipped = 0;   // batches applied to targets.
  uint64_t snapshots_shipped = 0;     // full-store transfers completed.
  uint64_t hedges_attempted = 0;      // sibling streams raced.
  uint64_t hedges_won = 0;            // races the sibling answered first.
  uint64_t breaker_opens = 0;         // kClosed/kHalfOpen -> kOpen trips.
  uint64_t breaker_half_opens = 0;    // cooldown trials admitted.
  uint64_t breaker_closes = 0;        // trials that re-closed a breaker.
  uint64_t budget_exhausted = 0;      // re-scatters abandoned for time.
};

class Router : public net::Backend {
 public:
  /// One shard: its replicas in preference order (all bit-identical).
  struct Shard {
    std::vector<std::unique_ptr<ShardBackend>> replicas;
  };

  Router(ShardMap map, std::vector<Shard> shards, RouterOptions options);
  ~Router() override;

  // --- net::Backend ------------------------------------------------------

  size_t dim() const override { return map_.dim(); }
  uint32_t features() const override {
    return net::kFeatureStreaming | net::kFeatureWrites | net::kFeatureRouter;
  }
  std::string peer_name() const override { return "bwrouter"; }

  /// Scatter-gather best-first k-NN (the merge described above).
  Result<service::QueryResponse> Knn(
      const geom::Vec& query, const service::StreamOptions& stream) override;

  /// Consistent-range fan-out to every shard whose root bound is within
  /// the radius; merged results sorted by (distance, rid).
  Result<service::QueryResponse> Range(const geom::Vec& query, double radius,
                                       uint32_t deadline_us) override;

  /// Routed to every live replica of OwnerOf(point); the owning shard's
  /// box is enlarged afterward so RootBound stays admissible.
  Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                          uint64_t rid) override;
  /// Broadcast to all shards (boxes overlap after enlargement, so the
  /// pair's home cannot be inferred from the map alone); succeeds if
  /// any shard held the pair.
  Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                          uint64_t rid) override;

  std::vector<std::pair<std::string, double>> StatsFields() const override;
  net::HealthReply Health() const override;

  // --- Fleet introspection / control -------------------------------------

  size_t num_shards() const { return shards_.size(); }
  RouterStats stats() const;
  ReplicaState replica_state(size_t shard, size_t replica) const;
  BreakerState breaker_state(size_t shard, size_t replica) const;

  /// One synchronous probe sweep over every non-stale replica: dead
  /// replicas that answer come back kHealthy, healthy ones that fail
  /// go kDead. Replicas amid catch-up are skipped (the driver owns
  /// them), and repeatedly failing replicas are probed with jittered
  /// exponential backoff (RouterOptions::probe_backoff_max). The probe
  /// thread calls exactly this.
  void ProbeNow();

  /// One synchronous catch-up sweep: every kStale replica with a
  /// healthy sibling is streamed the WAL suffix (or a snapshot) it
  /// missed, checksum-verified, and readmitted kHealthy. Returns the
  /// number of replicas readmitted. The catchup_interval thread calls
  /// exactly this; bwadmin's `catchup` drives it remotely via probes +
  /// this loop on the router process.
  size_t CatchupNow();

 private:
  struct OpenShard;  // one shard's in-flight frontier state (router.cc).
  struct HedgeRace;  // shared state of one primary-vs-sibling race.

  /// Steady clock in microseconds (the time base every tail-tolerance
  /// decision uses).
  static uint64_t NowUs();

  /// Opens the shard's stream on one specific replica and replays the
  /// count skip; records the open latency against the replica's
  /// breaker and marks it kDead on failure. Returns nullptr on
  /// failure; a frontier that exhausted during the skip (shorter
  /// degraded replica) is still returned so the caller observes the
  /// exhaustion.
  std::unique_ptr<ShardFrontier> OpenOnReplica(
      size_t shard, size_t replica, size_t consumed, const geom::Vec& query,
      const service::StreamOptions& limits, const DeadlineBudget& budget,
      size_t attempts_left);

  /// Opens the shard's stream on its first eligible live replica
  /// (skipping open->consumed results — the count-based failover
  /// skip); returns false when every replica is dead/stale or the
  /// deadline budget cannot cover another attempt. Pass one respects
  /// circuit breakers; a second pass ignores them so a breaker can
  /// never manufacture unavailability.
  bool AcquireFrontier(OpenShard* open, const geom::Vec& query,
                       const service::StreamOptions& limits,
                       const DeadlineBudget& budget);
  /// Next result from an open stream, failing over (re-open + count
  /// skip) as needed; false when the shard died mid-query. nullopt in
  /// *out means the shard's stream is cleanly exhausted (accounting
  /// already folded).
  bool PullNext(OpenShard* open, const geom::Vec& query,
                const service::StreamOptions& limits,
                const DeadlineBudget& budget,
                std::optional<gist::Neighbor>* out);
  /// One pull with hedging: the primary's Next() runs on the hedge
  /// executor; if it stalls past the backend's hedge delay, the same
  /// stream is opened on a sibling (count-skip) and the first usable
  /// answer wins. On a hedge win the winning frontier replaces
  /// open->frontier / open->replica and the abandoned primary is
  /// cancelled when its pull returns (its frontier dies with the race
  /// state, which closes a remote connection mid-stream).
  Result<std::optional<gist::Neighbor>> HedgedNext(
      OpenShard* open, const geom::Vec& query,
      const service::StreamOptions& limits, const DeadlineBudget& budget);
  /// Finishes the stream and folds its degraded accounting into the
  /// OpenShard; returns false when the terminal verdict was an error
  /// (the caller treats that as a replica failure).
  bool CloseStream(OpenShard* open);

  void SetReplicaState(size_t shard, size_t replica, ReplicaState state);
  ReplicaState GetReplicaState(size_t shard, size_t replica) const;
  /// Compare-and-set under state_mutex_; the only way a replica leaves
  /// kStale/kCatchingUp (so a concurrent missed-write demotion to
  /// kStale is never overwritten by a stale readmission).
  bool TransitionReplica(size_t shard, size_t replica, ReplicaState from,
                         ReplicaState to);

  /// Drives one replica kStale -> kCatchingUp -> kHealthy against the
  /// first healthy sibling; returns false (replica back to kStale) when
  /// no source exists, the rounds budget runs out, or verification
  /// keeps failing.
  bool CatchupReplica(size_t shard, size_t replica);
  /// Full-store transfer: streams every page of `source` into `target`
  /// chunk by chunk, restarting (bounded) when the source commits
  /// mid-transfer.
  Status ShipSnapshot(ShardBackend* source, ShardBackend* target);
  /// Checksum-over-tree handshake: OK iff both ends answer and agree
  /// on (tag, page_count, crc).
  Status VerifyBitIdentity(ShardBackend* source, ShardBackend* target);

  void ProbeLoop();
  void CatchupLoop();

  /// Hedge executor: a grow-on-demand worker pool the hedged pulls run
  /// on (a pull blocked in a browned-out backend must not pin the
  /// dispatch thread, or the hedge could never start). Joined before
  /// the backends are destroyed.
  void PostHedgeTask(std::function<void()> task);
  void HedgeWorker();
  void StopHedgeExecutor();

  ShardMap map_;
  std::vector<Shard> shards_;
  RouterOptions options_;

  /// Guards map_ bounds: queries snapshot root bounds under the shared
  /// side; EnlargeForInsert takes the exclusive side.
  mutable std::shared_mutex map_mutex_;

  /// Guards states_ (coarse: reads are per-open/per-probe, not per-row).
  mutable std::mutex state_mutex_;
  std::vector<std::vector<ReplicaState>> states_;
  /// Probe backoff bookkeeping, guarded by state_mutex_: consecutive
  /// failures and sweeps left to skip, per replica.
  std::vector<std::vector<uint32_t>> probe_failures_;
  std::vector<std::vector<uint32_t>> probe_skip_;
  /// Per-component jitter streams, both derived from options_.
  /// jitter_seed with distinct salts (see JitterStream).
  JitterStream probe_jitter_;
  JitterStream hedge_jitter_;

  /// One breaker (with its latency tracker) per replica; immutable
  /// layout after construction, internally synchronized.
  std::vector<std::vector<std::unique_ptr<CircuitBreaker>>> breakers_;

  /// Router-level query latency (merged k-NN / range fan-outs).
  LatencyHistogram query_latency_;

  /// One mutex per shard, serializing routed mutations against that
  /// shard: every replica applies writes in the same admission order,
  /// which is what keeps replicas bit-identical under concurrency (and
  /// what the catch-up checksum handshake verifies).
  std::vector<std::unique_ptr<std::mutex>> write_locks_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> shards_visited_{0};
  std::atomic<uint64_t> shards_pruned_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> degraded_queries_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> catchups_{0};
  std::atomic<uint64_t> wal_batches_shipped_{0};
  std::atomic<uint64_t> snapshots_shipped_{0};
  std::atomic<uint64_t> hedges_attempted_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> budget_exhausted_{0};

  /// Hedge executor state (see PostHedgeTask).
  std::mutex hedge_mutex_;
  std::condition_variable hedge_cv_;
  std::deque<std::function<void()>> hedge_tasks_;
  std::vector<std::thread> hedge_threads_;
  size_t hedge_idle_ = 0;
  bool hedge_stop_ = false;

  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::thread probe_thread_;
  std::thread catchup_thread_;

  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace bw::shard

#endif  // BLOBWORLD_SHARD_ROUTER_H_
