#include "shard/fleet.h"

#include <algorithm>
#include <utility>

namespace bw::shard {

Result<std::unique_ptr<ShardFleet>> ShardFleet::Build(
    const std::vector<geom::Vec>& corpus, const std::string& dir,
    const FleetOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("fleet needs a non-empty corpus");
  }
  if (options.replicas_per_shard == 0) {
    return Status::InvalidArgument("fleet needs at least one replica");
  }
  const size_t num_shards =
      std::min(options.num_shards == 0 ? 1 : options.num_shards,
               corpus.size());

  Partition partition = PartitionByStr(corpus, num_shards);

  std::unique_ptr<ShardFleet> fleet(new ShardFleet());
  fleet->map_ = ShardMap(corpus[0].dim(), partition.bounds);
  fleet->indexes_.resize(num_shards);
  fleet->services_.resize(num_shards);
  fleet->backends_.resize(num_shards);

  std::vector<Router::Shard> shards(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t r = 0; r < options.replicas_per_shard; ++r) {
      const std::string stem =
          dir + "/shard" + std::to_string(s) + "_r" + std::to_string(r);
      BW_ASSIGN_OR_RETURN(
          std::unique_ptr<core::DurableIndex> index,
          BuildShardIndex(partition.points[s], partition.rids[s],
                          options.build, stem + ".idx", stem + ".wal"));
      auto service = std::make_unique<service::QueryService>(index.get(),
                                                             options.service);
      auto backend = std::make_unique<LocalShardBackend>(
          service.get(),
          "local:" + std::to_string(s) + "/" + std::to_string(r));
      fleet->backends_[s].push_back(backend.get());
      shards[s].replicas.push_back(std::move(backend));
      fleet->services_[s].push_back(std::move(service));
      fleet->indexes_[s].push_back(std::move(index));
    }
  }
  fleet->router_ = std::make_unique<Router>(fleet->map_, std::move(shards),
                                            options.router);
  return fleet;
}

}  // namespace bw::shard
