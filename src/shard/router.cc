#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <queue>
#include <tuple>
#include <utility>

namespace bw::shard {

/// One shard's in-flight state during a scatter-gather query.
struct Router::OpenShard {
  size_t shard = 0;
  size_t replica = 0;  // replica currently serving the stream.
  std::unique_ptr<ShardFrontier> frontier;
  /// Results successfully pulled so far — the count-based skip a
  /// failover replays on the successor replica (replicas are
  /// bit-identical, so result N here is result N there).
  size_t consumed = 0;
  gist::Neighbor head{};  // pulled but not yet emitted.
  // Folded at stream close:
  bool degraded = false;
  bool truncated = false;
  uint64_t pages_skipped = 0;
};

Router::Router(ShardMap map, std::vector<Shard> shards, RouterOptions options)
    : map_(std::move(map)),
      shards_(std::move(shards)),
      options_(options),
      start_time_(std::chrono::steady_clock::now()) {
  states_.resize(shards_.size());
  probe_failures_.resize(shards_.size());
  probe_skip_.resize(shards_.size());
  write_locks_.reserve(shards_.size());
  breakers_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    states_[s].assign(shards_[s].replicas.size(), ReplicaState::kHealthy);
    probe_failures_[s].assign(shards_[s].replicas.size(), 0);
    probe_skip_[s].assign(shards_[s].replicas.size(), 0);
    write_locks_.push_back(std::make_unique<std::mutex>());
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      breakers_[s].push_back(
          std::make_unique<CircuitBreaker>(options_.breaker));
    }
  }
  probe_jitter_.Reseed(options_.jitter_seed);
  // A distinct salt so probe and hedge schedules decorrelate even
  // though both pin to the same policy seed.
  hedge_jitter_.Reseed(options_.jitter_seed ^ 0x6865646765ull);
  if (options_.probe_interval.count() > 0) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
  if (options_.catchup_interval.count() > 0) {
    catchup_thread_ = std::thread([this] { CatchupLoop(); });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  if (catchup_thread_.joinable()) catchup_thread_.join();
  // Joined after the query surface quiesced but before the backends
  // (members) are destroyed: an abandoned hedge loser may still be
  // blocked in a backend pull.
  StopHedgeExecutor();
}

uint64_t Router::NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Hedge executor: grow-on-demand workers for pulls that must not pin
// the caller's thread. Threads are created only when every existing
// worker is busy (so an unhedged fleet never pays for one) and live
// until the router does.
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kMaxHedgeThreads = 32;
}  // namespace

void Router::PostHedgeTask(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(hedge_mutex_);
  hedge_tasks_.push_back(std::move(task));
  if (hedge_idle_ == 0 && hedge_threads_.size() < kMaxHedgeThreads) {
    hedge_threads_.emplace_back([this] { HedgeWorker(); });
  }
  hedge_cv_.notify_one();
}

void Router::HedgeWorker() {
  std::unique_lock<std::mutex> lock(hedge_mutex_);
  for (;;) {
    ++hedge_idle_;
    hedge_cv_.wait(lock,
                   [this] { return hedge_stop_ || !hedge_tasks_.empty(); });
    --hedge_idle_;
    if (hedge_tasks_.empty()) {
      if (hedge_stop_) return;
      continue;
    }
    std::function<void()> task = std::move(hedge_tasks_.front());
    hedge_tasks_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void Router::StopHedgeExecutor() {
  {
    std::lock_guard<std::mutex> lock(hedge_mutex_);
    hedge_stop_ = true;
  }
  hedge_cv_.notify_all();
  for (std::thread& t : hedge_threads_) {
    if (t.joinable()) t.join();
  }
  hedge_threads_.clear();
}

void Router::SetReplicaState(size_t shard, size_t replica,
                             ReplicaState state) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ReplicaState& current = states_[shard][replica];
  switch (state) {
    case ReplicaState::kStale:
      // Divergence dominates everything, including an in-flight
      // catch-up (whose readmission CAS will then fail and retry).
      current = ReplicaState::kStale;
      return;
    case ReplicaState::kDead:
    case ReplicaState::kHealthy:
      // Probes and failovers never clobber divergence bookkeeping:
      // only the catch-up driver's CAS moves a replica out of
      // kStale / kCatchingUp.
      if (current == ReplicaState::kStale ||
          current == ReplicaState::kCatchingUp) {
        return;
      }
      current = state;
      return;
    case ReplicaState::kCatchingUp:
      // Entered exclusively via TransitionReplica's CAS.
      return;
  }
}

bool Router::TransitionReplica(size_t shard, size_t replica,
                               ReplicaState from, ReplicaState to) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (states_[shard][replica] != from) return false;
  states_[shard][replica] = to;
  return true;
}

ReplicaState Router::GetReplicaState(size_t shard, size_t replica) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return states_[shard][replica];
}

ReplicaState Router::replica_state(size_t shard, size_t replica) const {
  return GetReplicaState(shard, replica);
}

BreakerState Router::breaker_state(size_t shard, size_t replica) const {
  return breakers_[shard][replica]->state();
}

// ---------------------------------------------------------------------------
// Frontier lifecycle with failover
// ---------------------------------------------------------------------------

std::unique_ptr<ShardFrontier> Router::OpenOnReplica(
    size_t shard, size_t replica, size_t consumed, const geom::Vec& query,
    const service::StreamOptions& limits, const DeadlineBudget& budget,
    size_t attempts_left) {
  // Split the remaining deadline across the attempts that could still
  // run instead of re-sending the client's full deadline per attempt
  // (DESIGN.md §15's budget arithmetic). An unlimited budget slices to
  // 0 = no deadline, the pre-budget behavior.
  service::StreamOptions sliced = limits;
  sliced.deadline_us = static_cast<double>(
      budget.SliceUs(NowUs(), attempts_left, options_.budget_floor_us));
  CircuitBreaker* breaker = breakers_[shard][replica].get();
  const uint64_t t0 = NowUs();
  Result<std::unique_ptr<ShardFrontier>> frontier =
      shards_[shard].replicas[replica]->OpenFrontier(query, sliced);
  if (!frontier.ok()) {
    breaker->OnResult(false, NowUs() - t0, NowUs());
    SetReplicaState(shard, replica, ReplicaState::kDead);
    return nullptr;
  }
  // Replay the skip: drop the results this query already consumed.
  for (size_t i = 0; i < consumed; ++i) {
    Result<std::optional<gist::Neighbor>> n = (*frontier)->Next();
    if (!n.ok()) {
      breaker->OnResult(false, NowUs() - t0, NowUs());
      SetReplicaState(shard, replica, ReplicaState::kDead);
      return nullptr;
    }
    if (!n->has_value()) break;  // shorter (degraded) replica: let the
                                 // caller observe the exhaustion.
  }
  breaker->OnResult(true, NowUs() - t0, NowUs());
  return std::move(*frontier);
}

bool Router::AcquireFrontier(OpenShard* open, const geom::Vec& query,
                             const service::StreamOptions& limits,
                             const DeadlineBudget& budget) {
  if (budget.Exhausted(NowUs(), options_.budget_floor_us)) {
    budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const size_t replica_count = shards_[open->shard].replicas.size();
  // Pass 0 respects breakers; pass 1 retries the replicas pass 0
  // skipped for an open breaker — a breaker is advice about *ordering*,
  // and when the breaker-open replica is the last one standing, asking
  // it is strictly better than failing the shard.
  std::vector<size_t> deferred;
  for (size_t r = 0; r < replica_count; ++r) {
    if (GetReplicaState(open->shard, r) != ReplicaState::kHealthy) continue;
    if (!breakers_[open->shard][r]->Allow(NowUs())) {
      deferred.push_back(r);
      continue;
    }
    std::unique_ptr<ShardFrontier> frontier =
        OpenOnReplica(open->shard, r, open->consumed, query, limits, budget,
                      replica_count - r);
    if (frontier == nullptr) continue;
    open->frontier = std::move(frontier);
    open->replica = r;
    return true;
  }
  for (size_t i = 0; i < deferred.size(); ++i) {
    const size_t r = deferred[i];
    if (GetReplicaState(open->shard, r) != ReplicaState::kHealthy) continue;
    std::unique_ptr<ShardFrontier> frontier =
        OpenOnReplica(open->shard, r, open->consumed, query, limits, budget,
                      deferred.size() - i);
    if (frontier == nullptr) continue;
    open->frontier = std::move(frontier);
    open->replica = r;
    return true;
  }
  return false;
}

bool Router::CloseStream(OpenShard* open) {
  if (open->frontier == nullptr) return true;
  Status verdict = open->frontier->Finish();
  if (verdict.ok()) {
    open->degraded |= open->frontier->degraded();
    open->truncated |= open->frontier->truncated();
    open->pages_skipped += open->frontier->pages_skipped();
  }
  open->frontier.reset();
  return verdict.ok();
}

/// Shared state of one primary-vs-sibling hedge race. The primary's
/// pull runs on the hedge executor and publishes here; the caller
/// either takes the result (reinstalling the frontier) or abandons the
/// race after a hedge win. The frontier lives in the race so the last
/// shared_ptr holder destroys it: for an abandoned remote frontier
/// that closes the connection mid-stream — the cancellation.
struct Router::HedgeRace {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<Result<std::optional<gist::Neighbor>>> result;
  std::unique_ptr<ShardFrontier> frontier;
};

Result<std::optional<gist::Neighbor>> Router::HedgedNext(
    OpenShard* open, const geom::Vec& query,
    const service::StreamOptions& limits, const DeadlineBudget& budget) {
  const size_t shard = open->shard;
  CircuitBreaker* breaker = breakers_[shard][open->replica].get();
  if (!options_.hedge || shards_[shard].replicas.size() < 2) {
    const uint64_t t0 = NowUs();
    Result<std::optional<gist::Neighbor>> next = open->frontier->Next();
    breaker->OnResult(next.ok(), NowUs() - t0, NowUs());
    return next;
  }

  auto race = std::make_shared<HedgeRace>();
  race->frontier = std::move(open->frontier);
  PostHedgeTask([race, breaker] {
    const uint64_t t0 = NowUs();
    Result<std::optional<gist::Neighbor>> next = race->frontier->Next();
    const uint64_t now = NowUs();
    breaker->OnResult(next.ok(), now - t0, now);
    std::lock_guard<std::mutex> lock(race->mu);
    race->result.emplace(std::move(next));
    race->done = true;
    race->cv.notify_all();
  });

  // The hedge delay is the serving backend's own recent latency
  // quantile (clamped), plus up to +25% jitter so a fleet's hedges
  // against one browning server don't fire in lockstep.
  uint64_t delay_us = breaker->HedgeDelayUs(
      options_.hedge_quantile, options_.hedge_delay_floor_us,
      options_.hedge_delay_cap_us, options_.hedge_delay_fallback_us);
  delay_us += hedge_jitter_.NextBelow(delay_us / 4 + 1);

  std::unique_lock<std::mutex> lock(race->mu);
  if (race->cv.wait_for(lock, std::chrono::microseconds(delay_us),
                        [&] { return race->done; })) {
    open->frontier = std::move(race->frontier);
    return std::move(*race->result);
  }
  lock.unlock();

  // The primary is stalling: race a sibling, if time and breakers
  // permit. The sibling opens the same stream and count-skips to the
  // same position — sound because replicas are bit-identical, so its
  // next result is byte-for-byte the one the primary owes us.
  if (!budget.Exhausted(NowUs(), options_.budget_floor_us)) {
    for (size_t r = 0; r < shards_[shard].replicas.size(); ++r) {
      if (r == open->replica) continue;
      if (GetReplicaState(shard, r) != ReplicaState::kHealthy) continue;
      if (!breakers_[shard][r]->Allow(NowUs())) continue;
      hedges_attempted_.fetch_add(1, std::memory_order_relaxed);
      std::unique_ptr<ShardFrontier> sibling =
          OpenOnReplica(shard, r, open->consumed, query, limits, budget, 1);
      if (sibling == nullptr) continue;  // marked dead; try another.
      const uint64_t t0 = NowUs();
      Result<std::optional<gist::Neighbor>> hedged = sibling->Next();
      breakers_[shard][r]->OnResult(hedged.ok(), NowUs() - t0, NowUs());
      if (hedged.ok()) {
        bool primary_had_finished;
        {
          std::lock_guard<std::mutex> inner(race->mu);
          primary_had_finished = race->done;
        }
        if (!primary_had_finished) {
          hedges_won_.fetch_add(1, std::memory_order_relaxed);
        }
        // The sibling takes over the stream; the abandoned primary is
        // cancelled when its in-flight pull returns and the race state
        // (sole owner of its frontier) is destroyed.
        open->frontier = std::move(sibling);
        open->replica = r;
        return hedged;
      }
      SetReplicaState(shard, r, ReplicaState::kDead);
    }
  }

  // No sibling could take over: wait the primary out after all.
  lock.lock();
  race->cv.wait(lock, [&] { return race->done; });
  open->frontier = std::move(race->frontier);
  return std::move(*race->result);
}

bool Router::PullNext(OpenShard* open, const geom::Vec& query,
                      const service::StreamOptions& limits,
                      const DeadlineBudget& budget,
                      std::optional<gist::Neighbor>* out) {
  while (true) {
    if (open->frontier == nullptr) {
      if (!AcquireFrontier(open, query, limits, budget)) return false;
    }
    Result<std::optional<gist::Neighbor>> next =
        HedgedNext(open, query, limits, budget);
    if (next.ok()) {
      if (next->has_value()) {
        ++open->consumed;
        *out = **next;
        return true;
      }
      if (CloseStream(open)) {
        out->reset();
        return true;
      }
      // The terminal verdict was an error (shed, quota, transport):
      // this replica failed the query even though the stream "ended".
    }
    SetReplicaState(open->shard, open->replica, ReplicaState::kDead);
    open->frontier.reset();
    if (!AcquireFrontier(open, query, limits, budget)) return false;
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Scatter-gather k-NN
// ---------------------------------------------------------------------------

Result<service::QueryResponse> Router::Knn(
    const geom::Vec& query, const service::StreamOptions& stream) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const size_t k = stream.max_results;
  const uint64_t query_start_us = NowUs();
  // The query's remaining-time ledger: every open/retry/hedge below
  // draws a slice from it instead of re-sending the client's full
  // deadline (DESIGN.md §15).
  const DeadlineBudget budget(stream.deadline_us, query_start_us);

  // Snapshot every shard's root bound once, under the shared side of
  // the map lock: concurrent inserts may enlarge boxes mid-query, but a
  // bound taken now is still admissible for everything the shard held
  // when its frontier opens (boxes only grow).
  std::vector<double> bound(shards_.size());
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      bound[s] = map_.RootBound(s, query);
    }
  }

  // Global merge heap: min by key, then by shard index (deterministic).
  // Unopened shards are keyed by their root bound (a lower bound on
  // anything they can stream); open shards by their head's exact
  // distance. The top is therefore always <= every result any shard
  // can still produce.
  struct HeapEntry {
    double key;
    size_t shard;
    bool opened;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return std::tie(a.key, a.shard) > std::tie(b.key, b.shard);
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap;
  for (size_t s = 0; s < shards_.size(); ++s) {
    // An infinite bound means an empty shard: nothing to fetch, ever.
    if (bound[s] < std::numeric_limits<double>::infinity()) {
      heap.push(HeapEntry{bound[s], s, false});
    }
  }

  std::vector<std::unique_ptr<OpenShard>> open(shards_.size());
  service::QueryResponse response;
  size_t dead_shards = 0;
  bool fleet_degraded = false;
  size_t visited = 0;

  // A shard with no live replica left: charge the fault budget (the
  // response becomes a flagged, genuine subset) or fail the query.
  auto shard_died = [&](size_t s) -> Status {
    ++dead_shards;
    if (dead_shards > options_.fault_budget) {
      return Status::Unavailable(
          "shard " + std::to_string(s) +
          " has no live replica and the fault budget (" +
          std::to_string(options_.fault_budget) + ") is exhausted");
    }
    fleet_degraded = true;
    return Status::OK();
  };

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    // Termination: results are emitted in non-decreasing order, so once
    // k exist, every remaining heap key — root bounds of shards never
    // opened included — is >= the k-th distance. Those shards are
    // provably irrelevant; they are counted pruned below.
    if (k > 0 && response.neighbors.size() >= k) break;
    if (top.key > stream.budget_radius) break;
    heap.pop();

    if (!top.opened) {
      auto os = std::make_unique<OpenShard>();
      os->shard = top.shard;
      if (!AcquireFrontier(os.get(), query, stream, budget)) {
        BW_RETURN_IF_ERROR(shard_died(top.shard));
        continue;
      }
      ++visited;
      std::optional<gist::Neighbor> head;
      if (!PullNext(os.get(), query, stream, budget, &head)) {
        open[top.shard] = std::move(os);  // keep accounting folded so far.
        BW_RETURN_IF_ERROR(shard_died(top.shard));
        continue;
      }
      if (head.has_value()) {
        os->head = *head;
        heap.push(HeapEntry{head->distance, top.shard, true});
      }
      open[top.shard] = std::move(os);
    } else {
      OpenShard* os = open[top.shard].get();
      response.neighbors.push_back(os->head);
      std::optional<gist::Neighbor> head;
      if (!PullNext(os, query, stream, budget, &head)) {
        BW_RETURN_IF_ERROR(shard_died(top.shard));
        continue;
      }
      if (head.has_value()) {
        os->head = *head;
        heap.push(HeapEntry{head->distance, top.shard, true});
      }
    }
  }

  // Whatever is still unopened in the heap was pruned by the bound.
  size_t pruned = 0;
  while (!heap.empty()) {
    if (!heap.top().opened) ++pruned;
    heap.pop();
  }

  // Close streams cut short by early termination. The results already
  // merged are exact regardless of the close verdict (each was the
  // global minimum when emitted), so a close failure here only loses
  // that shard's tail accounting.
  for (std::unique_ptr<OpenShard>& os : open) {
    if (os != nullptr) CloseStream(os.get());
  }
  for (const std::unique_ptr<OpenShard>& os : open) {
    if (os == nullptr) continue;
    response.metrics.pages_skipped += os->pages_skipped;
    response.metrics.truncated |= os->truncated;
    if (os->degraded) fleet_degraded = true;
  }
  if (fleet_degraded) {
    response.completeness = service::Completeness::kDegraded;
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  shards_visited_.fetch_add(visited, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  query_latency_.Record(NowUs() - query_start_us);
  return response;
}

// ---------------------------------------------------------------------------
// Range fan-out
// ---------------------------------------------------------------------------

Result<service::QueryResponse> Router::Range(const geom::Vec& query,
                                             double radius,
                                             uint32_t deadline_us) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t query_start_us = NowUs();
  std::vector<double> bound(shards_.size());
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      bound[s] = map_.RootBound(s, query);
    }
  }

  service::QueryResponse response;
  size_t dead_shards = 0;
  bool fleet_degraded = false;
  size_t visited = 0;
  size_t pruned = 0;

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (bound[s] > radius) {
      // Nothing in the shard can be within the radius.
      if (bound[s] < std::numeric_limits<double>::infinity()) ++pruned;
      continue;
    }
    bool answered = false;
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      if (GetReplicaState(s, r) != ReplicaState::kHealthy) continue;
      Result<service::QueryResponse> part =
          shards_[s].replicas[r]->Range(query, radius, deadline_us);
      if (!part.ok()) {
        SetReplicaState(s, r, ReplicaState::kDead);
        failovers_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ++visited;
      response.neighbors.insert(response.neighbors.end(),
                                part->neighbors.begin(),
                                part->neighbors.end());
      response.metrics.pages_skipped += part->metrics.pages_skipped;
      response.metrics.truncated |= part->metrics.truncated;
      if (part->degraded()) fleet_degraded = true;
      answered = true;
      break;
    }
    if (!answered) {
      ++dead_shards;
      if (dead_shards > options_.fault_budget) {
        return Status::Unavailable(
            "shard " + std::to_string(s) +
            " has no live replica and the fault budget (" +
            std::to_string(options_.fault_budget) + ") is exhausted");
      }
      fleet_degraded = true;
    }
  }

  std::sort(response.neighbors.begin(), response.neighbors.end(),
            [](const gist::Neighbor& a, const gist::Neighbor& b) {
              return std::tie(a.distance, a.rid) < std::tie(b.distance, b.rid);
            });
  if (fleet_degraded) {
    response.completeness = service::Completeness::kDegraded;
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  shards_visited_.fetch_add(visited, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  query_latency_.Record(NowUs() - query_start_us);
  return response;
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

Result<service::MutationOutcome> Router::Insert(const geom::Vec& point,
                                                uint64_t rid) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  size_t owner;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    owner = map_.OwnerOf(point);
  }

  // Apply to every live replica of the owner, under the shard's write
  // lock: replicas stay bit-identical only if every one of them applies
  // the same mutations in the same order, and two routed writes racing
  // here could interleave differently on different replicas. A replica
  // that misses the write while a sibling acks it has diverged:
  // count-based failover skip is no longer sound against it, so it goes
  // kStale — out of rotation until the catch-up driver streams it the
  // suffix it missed and verifies bit-identity.
  std::lock_guard<std::mutex> write_lock(*write_locks_[owner]);
  std::optional<service::MutationOutcome> acked;
  Status last_error = Status::Unavailable("no live replica");
  std::vector<size_t> missed;
  for (size_t r = 0; r < shards_[owner].replicas.size(); ++r) {
    const ReplicaState state = GetReplicaState(owner, r);
    if (state == ReplicaState::kStale) continue;
    if (state == ReplicaState::kDead ||
        state == ReplicaState::kCatchingUp) {
      // A catching-up replica missing a live write re-diverges: demote
      // it back to kStale below so the driver restarts from the new
      // position instead of readmitting a replica that missed this ack.
      missed.push_back(r);
      continue;
    }
    Result<service::MutationOutcome> outcome =
        shards_[owner].replicas[r]->Insert(point, rid);
    if (outcome.ok()) {
      if (!acked.has_value()) acked = *outcome;
    } else {
      last_error = outcome.status();
      missed.push_back(r);
    }
  }
  if (!acked.has_value()) return last_error;  // nobody acked: no divergence.
  for (size_t r : missed) SetReplicaState(owner, r, ReplicaState::kStale);
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    map_.EnlargeForInsert(owner, point);
  }
  return *acked;
}

Result<service::MutationOutcome> Router::Remove(const geom::Vec& point,
                                                uint64_t rid) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  // Boxes overlap once enlarged, so the pair's home shard cannot be
  // recovered from the map: broadcast. NotFound from a shard is a
  // consistent "not here" — only transport/apply errors diverge.
  std::optional<service::MutationOutcome> found;
  Status last_error = Status::NotFound("rid not present on any shard");
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Same per-shard write serialization as Insert (see there).
    std::lock_guard<std::mutex> write_lock(*write_locks_[s]);
    std::optional<service::MutationOutcome> acked;
    bool found_here = false;
    std::vector<size_t> missed;
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      const ReplicaState state = GetReplicaState(s, r);
      if (state == ReplicaState::kStale) continue;
      if (state == ReplicaState::kDead ||
          state == ReplicaState::kCatchingUp) {
        missed.push_back(r);
        continue;
      }
      Result<service::MutationOutcome> outcome =
          shards_[s].replicas[r]->Remove(point, rid);
      if (outcome.ok()) {
        if (!acked.has_value()) acked = *outcome;
        found_here = true;
      } else if (outcome.status().code() == StatusCode::kNotFound) {
        // Consistent absence; the delete "applied" as a no-op.
        if (!acked.has_value()) acked = service::MutationOutcome{};
      } else {
        last_error = outcome.status();
        missed.push_back(r);
      }
    }
    if (acked.has_value()) {
      for (size_t r : missed) SetReplicaState(s, r, ReplicaState::kStale);
    }
    if (found_here && !found.has_value()) found = acked;
  }
  if (found.has_value()) return *found;
  return last_error;
}

// ---------------------------------------------------------------------------
// Stats / health / probes
// ---------------------------------------------------------------------------

RouterStats Router::stats() const {
  RouterStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.shards_visited = shards_visited_.load(std::memory_order_relaxed);
  out.shards_pruned = shards_pruned_.load(std::memory_order_relaxed);
  out.failovers = failovers_.load(std::memory_order_relaxed);
  out.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  out.probes = probes_.load(std::memory_order_relaxed);
  out.mutations = mutations_.load(std::memory_order_relaxed);
  out.catchups = catchups_.load(std::memory_order_relaxed);
  out.wal_batches_shipped =
      wal_batches_shipped_.load(std::memory_order_relaxed);
  out.snapshots_shipped = snapshots_shipped_.load(std::memory_order_relaxed);
  out.hedges_attempted = hedges_attempted_.load(std::memory_order_relaxed);
  out.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  out.budget_exhausted = budget_exhausted_.load(std::memory_order_relaxed);
  for (const std::vector<std::unique_ptr<CircuitBreaker>>& shard : breakers_) {
    for (const std::unique_ptr<CircuitBreaker>& breaker : shard) {
      out.breaker_opens += breaker->opens();
      out.breaker_half_opens += breaker->half_opens();
      out.breaker_closes += breaker->closes();
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> Router::StatsFields() const {
  const RouterStats s = stats();
  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("router.shards", static_cast<double>(shards_.size()));
  fields.emplace_back("router.queries", static_cast<double>(s.queries));
  fields.emplace_back("router.shards_visited",
                      static_cast<double>(s.shards_visited));
  fields.emplace_back("router.shards_pruned",
                      static_cast<double>(s.shards_pruned));
  fields.emplace_back("router.failovers", static_cast<double>(s.failovers));
  fields.emplace_back("router.degraded_queries",
                      static_cast<double>(s.degraded_queries));
  fields.emplace_back("router.probes", static_cast<double>(s.probes));
  fields.emplace_back("router.mutations", static_cast<double>(s.mutations));
  fields.emplace_back("router.catchups", static_cast<double>(s.catchups));
  fields.emplace_back("router.wal_batches_shipped",
                      static_cast<double>(s.wal_batches_shipped));
  fields.emplace_back("router.snapshots_shipped",
                      static_cast<double>(s.snapshots_shipped));
  fields.emplace_back("router.hedges_attempted",
                      static_cast<double>(s.hedges_attempted));
  fields.emplace_back("router.hedges_won",
                      static_cast<double>(s.hedges_won));
  fields.emplace_back("router.breaker_opens",
                      static_cast<double>(s.breaker_opens));
  fields.emplace_back("router.breaker_half_opens",
                      static_cast<double>(s.breaker_half_opens));
  fields.emplace_back("router.breaker_closes",
                      static_cast<double>(s.breaker_closes));
  fields.emplace_back("router.budget_exhausted",
                      static_cast<double>(s.budget_exhausted));
  const LatencyHistogram::Snapshot latency = query_latency_.TakeSnapshot();
  fields.emplace_back("router.p50_latency_us",
                      static_cast<double>(latency.p50));
  fields.emplace_back("router.p99_latency_us",
                      static_cast<double>(latency.p99));
  fields.emplace_back("router.p999_latency_us",
                      static_cast<double>(latency.p999));
  // Per-backend breaker state (0 closed, 1 open, 2 half-open): the
  // rows bwadmin health/stats use to show which replica is being
  // routed around.
  for (size_t sh = 0; sh < breakers_.size(); ++sh) {
    for (size_t r = 0; r < breakers_[sh].size(); ++r) {
      fields.emplace_back(
          "router.shard" + std::to_string(sh) + ".replica" +
              std::to_string(r) + ".breaker",
          static_cast<double>(breakers_[sh][r]->state()));
    }
  }
  size_t dead = 0, stale = 0, catching = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (size_t sh = 0; sh < states_.size(); ++sh) {
      size_t live = 0;
      for (ReplicaState state : states_[sh]) {
        if (state == ReplicaState::kHealthy) ++live;
        if (state == ReplicaState::kDead) ++dead;
        if (state == ReplicaState::kStale) ++stale;
        if (state == ReplicaState::kCatchingUp) ++catching;
      }
      fields.emplace_back("router.shard" + std::to_string(sh) +
                              ".live_replicas",
                          static_cast<double>(live));
    }
  }
  fields.emplace_back("router.dead_replicas", static_cast<double>(dead));
  fields.emplace_back("router.stale_replicas", static_cast<double>(stale));
  fields.emplace_back("router.catching_up", static_cast<double>(catching));
  return fields;
}

net::HealthReply Router::Health() const {
  net::HealthReply reply;
  reply.writes_enabled = true;
  reply.completed = queries_.load(std::memory_order_relaxed);
  size_t unhealthy = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (const std::vector<ReplicaState>& shard : states_) {
      for (ReplicaState state : shard) {
        if (state != ReplicaState::kHealthy) ++unhealthy;
      }
    }
  }
  // The fleet analogue of "degraded but answering": some replica is out.
  reply.write_degraded = unhealthy > 0;
  reply.pages_quarantined = unhealthy;
  return reply;
}

void Router::ProbeNow() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const ReplicaState state = states_[s][r];
        // Stale/catching-up replicas belong to the catch-up driver; a
        // probe answering OK says nothing about divergence.
        if (state == ReplicaState::kStale ||
            state == ReplicaState::kCatchingUp) {
          continue;
        }
        if (probe_skip_[s][r] > 0) {
          --probe_skip_[s][r];
          continue;
        }
      }
      probes_.fetch_add(1, std::memory_order_relaxed);
      const Status verdict = shards_[s].replicas[r]->Probe();
      std::lock_guard<std::mutex> lock(state_mutex_);
      const ReplicaState state = states_[s][r];
      if (state == ReplicaState::kStale ||
          state == ReplicaState::kCatchingUp) {
        continue;  // demoted while the probe was in flight.
      }
      if (verdict.ok()) {
        states_[s][r] = ReplicaState::kHealthy;
        probe_failures_[s][r] = 0;
        probe_skip_[s][r] = 0;
      } else {
        states_[s][r] = ReplicaState::kDead;
        // Jittered exponential backoff: 1, 2, 4, ... sweeps skipped
        // (capped), +0/1 from the seeded probe jitter stream so
        // several routers probing one dead server drift apart.
        const uint32_t failures = ++probe_failures_[s][r];
        uint32_t skip = failures >= 32 ? options_.probe_backoff_max
                                       : (1u << (failures - 1));
        if (skip > options_.probe_backoff_max) {
          skip = options_.probe_backoff_max;
        }
        probe_skip_[s][r] =
            skip + static_cast<uint32_t>(probe_jitter_.NextBelow(2));
      }
    }
  }
}

void Router::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mutex_);
  while (!probe_stop_) {
    if (probe_cv_.wait_for(lock, options_.probe_interval,
                           [this] { return probe_stop_; })) {
      return;
    }
    lock.unlock();
    ProbeNow();
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Replica catch-up (kStale -> kCatchingUp -> kHealthy; DESIGN.md §13)
// ---------------------------------------------------------------------------

size_t Router::CatchupNow() {
  size_t readmitted = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      if (GetReplicaState(s, r) != ReplicaState::kStale) continue;
      if (CatchupReplica(s, r)) ++readmitted;
    }
  }
  return readmitted;
}

Status Router::VerifyBitIdentity(ShardBackend* source, ShardBackend* target) {
  Result<service::TreeSum> source_sum = source->TreeChecksum();
  if (!source_sum.ok()) return source_sum.status();
  Result<service::TreeSum> target_sum = target->TreeChecksum();
  if (!target_sum.ok()) return target_sum.status();
  if (source_sum->tag != target_sum->tag ||
      source_sum->page_count != target_sum->page_count ||
      source_sum->crc != target_sum->crc) {
    return Status::DataLoss(
        "replica diverges from its sibling after catch-up (tag " +
        std::to_string(target_sum->tag) + "/" +
        std::to_string(source_sum->tag) + ", crc mismatch)");
  }
  return Status::OK();
}

Status Router::ShipSnapshot(ShardBackend* source, ShardBackend* target) {
  // A commit on the source mid-transfer changes pages already shipped:
  // restart from page 0 (the tag tells us), bounded so continuous
  // writes cannot pin the driver here forever.
  for (int restart = 0; restart < 4; ++restart) {
    uint64_t tag = 0;
    uint32_t start_page = 0;
    bool first = true;
    bool restarted = false;
    for (;;) {
      Result<service::SnapshotChunk> chunk =
          source->ReadSnapshotChunk(start_page, options_.catchup_max_bytes);
      if (!chunk.ok()) return chunk.status();
      if (chunk->pages.empty()) {
        return Status::Internal("snapshot chunk with no pages");
      }
      if (first) {
        tag = chunk->tag;
      } else if (chunk->tag != tag) {
        restarted = true;
        break;
      }
      const bool last =
          start_page + chunk->pages.size() >= chunk->total_pages;
      BW_RETURN_IF_ERROR(target->ApplySnapshotChunk(*chunk, first, last));
      first = false;
      start_page += static_cast<uint32_t>(chunk->pages.size());
      if (last) return Status::OK();
    }
    if (!restarted) break;
  }
  return Status::Unavailable(
      "snapshot transfer kept restarting under concurrent commits");
}

bool Router::CatchupReplica(size_t shard, size_t replica) {
  if (!TransitionReplica(shard, replica, ReplicaState::kStale,
                         ReplicaState::kCatchingUp)) {
    return false;
  }
  ShardBackend* target = shards_[shard].replicas[replica].get();
  const auto demote = [&] {
    SetReplicaState(shard, replica, ReplicaState::kStale);
    return false;
  };

  ShardBackend* source = nullptr;
  for (size_t r = 0; r < shards_[shard].replicas.size(); ++r) {
    if (r == replica) continue;
    if (GetReplicaState(shard, r) == ReplicaState::kHealthy) {
      source = shards_[shard].replicas[r].get();
      break;
    }
  }
  if (source == nullptr) return demote();  // nobody to catch up from.

  bool force_snapshot = false;
  for (size_t round = 0; round < options_.catchup_max_rounds; ++round) {
    Result<service::CatchupPosition> target_pos = target->CatchupPosition();
    if (!target_pos.ok()) return demote();
    Result<service::CatchupPosition> source_pos = source->CatchupPosition();
    if (!source_pos.ok()) return demote();

    if (!force_snapshot && target_pos->last_tag == source_pos->last_tag) {
      // Positions agree: readmit iff the trees are bit-identical.
      // Same tag with different bytes means genuinely diverged
      // histories — only a full resync cures that.
      if (VerifyBitIdentity(source, target).ok()) {
        if (TransitionReplica(shard, replica, ReplicaState::kCatchingUp,
                              ReplicaState::kHealthy)) {
          catchups_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        return demote();  // a missed write demoted us mid-verification.
      }
      force_snapshot = true;
      continue;
    }

    if (force_snapshot || target_pos->last_tag > source_pos->last_tag) {
      // Target "ahead" of the source means its history diverged (tags
      // are mutation counts, and the source acked writes the target
      // missed): resync from scratch.
      if (!ShipSnapshot(source, target).ok()) return demote();
      snapshots_shipped_.fetch_add(1, std::memory_order_relaxed);
      force_snapshot = false;
      continue;
    }

    Result<service::WalTail> tail = source->ReadWalTail(
        target_pos->last_tag, options_.catchup_max_batches,
        options_.catchup_max_bytes);
    if (!tail.ok()) return demote();
    if (tail->snapshot_needed) {
      // The suffix the target needs was retired past a checkpoint.
      force_snapshot = true;
      continue;
    }
    bool apply_failed = false;
    for (const storage::ShippedBatch& batch : tail->batches) {
      if (!target->ApplyWalBatch(batch).ok()) {
        apply_failed = true;
        break;
      }
      wal_batches_shipped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (apply_failed) {
      // A half-applied suffix leaves the target's pages torn; the
      // snapshot path re-images everything, so escalate rather than
      // retry the batch blind.
      force_snapshot = true;
      continue;
    }
  }
  return demote();  // rounds budget exhausted (e.g. continuous writes).
}

void Router::CatchupLoop() {
  std::unique_lock<std::mutex> lock(probe_mutex_);
  while (!probe_stop_) {
    if (probe_cv_.wait_for(lock, options_.catchup_interval,
                           [this] { return probe_stop_; })) {
      return;
    }
    lock.unlock();
    CatchupNow();
    lock.lock();
  }
}

}  // namespace bw::shard
