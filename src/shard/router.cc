#include "shard/router.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>
#include <tuple>
#include <utility>

namespace bw::shard {

/// One shard's in-flight state during a scatter-gather query.
struct Router::OpenShard {
  size_t shard = 0;
  size_t replica = 0;  // replica currently serving the stream.
  std::unique_ptr<ShardFrontier> frontier;
  /// Results successfully pulled so far — the count-based skip a
  /// failover replays on the successor replica (replicas are
  /// bit-identical, so result N here is result N there).
  size_t consumed = 0;
  gist::Neighbor head{};  // pulled but not yet emitted.
  // Folded at stream close:
  bool degraded = false;
  bool truncated = false;
  uint64_t pages_skipped = 0;
};

Router::Router(ShardMap map, std::vector<Shard> shards, RouterOptions options)
    : map_(std::move(map)),
      shards_(std::move(shards)),
      options_(options),
      start_time_(std::chrono::steady_clock::now()) {
  states_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    states_[s].assign(shards_[s].replicas.size(), ReplicaState::kHealthy);
  }
  if (options_.probe_interval.count() > 0) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void Router::SetReplicaState(size_t shard, size_t replica,
                             ReplicaState state) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  // kStale is terminal: divergence is not cured by answering a probe.
  if (states_[shard][replica] == ReplicaState::kStale) return;
  states_[shard][replica] = state;
}

ReplicaState Router::GetReplicaState(size_t shard, size_t replica) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return states_[shard][replica];
}

ReplicaState Router::replica_state(size_t shard, size_t replica) const {
  return GetReplicaState(shard, replica);
}

// ---------------------------------------------------------------------------
// Frontier lifecycle with failover
// ---------------------------------------------------------------------------

bool Router::AcquireFrontier(OpenShard* open, const geom::Vec& query,
                             const service::StreamOptions& limits) {
  const std::vector<std::unique_ptr<ShardBackend>>& replicas =
      shards_[open->shard].replicas;
  for (size_t r = 0; r < replicas.size(); ++r) {
    if (GetReplicaState(open->shard, r) != ReplicaState::kHealthy) continue;
    Result<std::unique_ptr<ShardFrontier>> frontier =
        replicas[r]->OpenFrontier(query, limits);
    if (!frontier.ok()) {
      SetReplicaState(open->shard, r, ReplicaState::kDead);
      continue;
    }
    // Replay the skip: drop the results this query already consumed.
    bool replica_dead = false;
    for (size_t i = 0; i < open->consumed; ++i) {
      Result<std::optional<gist::Neighbor>> n = (*frontier)->Next();
      if (!n.ok()) {
        SetReplicaState(open->shard, r, ReplicaState::kDead);
        replica_dead = true;
        break;
      }
      if (!n->has_value()) break;  // shorter (degraded) replica: let the
                                   // caller observe the exhaustion.
    }
    if (replica_dead) continue;
    open->frontier = std::move(*frontier);
    open->replica = r;
    return true;
  }
  return false;
}

bool Router::CloseStream(OpenShard* open) {
  if (open->frontier == nullptr) return true;
  Status verdict = open->frontier->Finish();
  if (verdict.ok()) {
    open->degraded |= open->frontier->degraded();
    open->truncated |= open->frontier->truncated();
    open->pages_skipped += open->frontier->pages_skipped();
  }
  open->frontier.reset();
  return verdict.ok();
}

bool Router::PullNext(OpenShard* open, const geom::Vec& query,
                      const service::StreamOptions& limits,
                      std::optional<gist::Neighbor>* out) {
  while (true) {
    if (open->frontier == nullptr) {
      if (!AcquireFrontier(open, query, limits)) return false;
    }
    Result<std::optional<gist::Neighbor>> next = open->frontier->Next();
    if (next.ok()) {
      if (next->has_value()) {
        ++open->consumed;
        *out = **next;
        return true;
      }
      if (CloseStream(open)) {
        out->reset();
        return true;
      }
      // The terminal verdict was an error (shed, quota, transport):
      // this replica failed the query even though the stream "ended".
    }
    SetReplicaState(open->shard, open->replica, ReplicaState::kDead);
    open->frontier.reset();
    if (!AcquireFrontier(open, query, limits)) return false;
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Scatter-gather k-NN
// ---------------------------------------------------------------------------

Result<service::QueryResponse> Router::Knn(
    const geom::Vec& query, const service::StreamOptions& stream) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const size_t k = stream.max_results;

  // Snapshot every shard's root bound once, under the shared side of
  // the map lock: concurrent inserts may enlarge boxes mid-query, but a
  // bound taken now is still admissible for everything the shard held
  // when its frontier opens (boxes only grow).
  std::vector<double> bound(shards_.size());
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      bound[s] = map_.RootBound(s, query);
    }
  }

  // Global merge heap: min by key, then by shard index (deterministic).
  // Unopened shards are keyed by their root bound (a lower bound on
  // anything they can stream); open shards by their head's exact
  // distance. The top is therefore always <= every result any shard
  // can still produce.
  struct HeapEntry {
    double key;
    size_t shard;
    bool opened;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return std::tie(a.key, a.shard) > std::tie(b.key, b.shard);
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap;
  for (size_t s = 0; s < shards_.size(); ++s) {
    // An infinite bound means an empty shard: nothing to fetch, ever.
    if (bound[s] < std::numeric_limits<double>::infinity()) {
      heap.push(HeapEntry{bound[s], s, false});
    }
  }

  std::vector<std::unique_ptr<OpenShard>> open(shards_.size());
  service::QueryResponse response;
  size_t dead_shards = 0;
  bool fleet_degraded = false;
  size_t visited = 0;

  // A shard with no live replica left: charge the fault budget (the
  // response becomes a flagged, genuine subset) or fail the query.
  auto shard_died = [&](size_t s) -> Status {
    ++dead_shards;
    if (dead_shards > options_.fault_budget) {
      return Status::Unavailable(
          "shard " + std::to_string(s) +
          " has no live replica and the fault budget (" +
          std::to_string(options_.fault_budget) + ") is exhausted");
    }
    fleet_degraded = true;
    return Status::OK();
  };

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    // Termination: results are emitted in non-decreasing order, so once
    // k exist, every remaining heap key — root bounds of shards never
    // opened included — is >= the k-th distance. Those shards are
    // provably irrelevant; they are counted pruned below.
    if (k > 0 && response.neighbors.size() >= k) break;
    if (top.key > stream.budget_radius) break;
    heap.pop();

    if (!top.opened) {
      auto os = std::make_unique<OpenShard>();
      os->shard = top.shard;
      if (!AcquireFrontier(os.get(), query, stream)) {
        BW_RETURN_IF_ERROR(shard_died(top.shard));
        continue;
      }
      ++visited;
      std::optional<gist::Neighbor> head;
      if (!PullNext(os.get(), query, stream, &head)) {
        open[top.shard] = std::move(os);  // keep accounting folded so far.
        BW_RETURN_IF_ERROR(shard_died(top.shard));
        continue;
      }
      if (head.has_value()) {
        os->head = *head;
        heap.push(HeapEntry{head->distance, top.shard, true});
      }
      open[top.shard] = std::move(os);
    } else {
      OpenShard* os = open[top.shard].get();
      response.neighbors.push_back(os->head);
      std::optional<gist::Neighbor> head;
      if (!PullNext(os, query, stream, &head)) {
        BW_RETURN_IF_ERROR(shard_died(top.shard));
        continue;
      }
      if (head.has_value()) {
        os->head = *head;
        heap.push(HeapEntry{head->distance, top.shard, true});
      }
    }
  }

  // Whatever is still unopened in the heap was pruned by the bound.
  size_t pruned = 0;
  while (!heap.empty()) {
    if (!heap.top().opened) ++pruned;
    heap.pop();
  }

  // Close streams cut short by early termination. The results already
  // merged are exact regardless of the close verdict (each was the
  // global minimum when emitted), so a close failure here only loses
  // that shard's tail accounting.
  for (std::unique_ptr<OpenShard>& os : open) {
    if (os != nullptr) CloseStream(os.get());
  }
  for (const std::unique_ptr<OpenShard>& os : open) {
    if (os == nullptr) continue;
    response.metrics.pages_skipped += os->pages_skipped;
    response.metrics.truncated |= os->truncated;
    if (os->degraded) fleet_degraded = true;
  }
  if (fleet_degraded) {
    response.completeness = service::Completeness::kDegraded;
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  shards_visited_.fetch_add(visited, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  return response;
}

// ---------------------------------------------------------------------------
// Range fan-out
// ---------------------------------------------------------------------------

Result<service::QueryResponse> Router::Range(const geom::Vec& query,
                                             double radius,
                                             uint32_t deadline_us) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::vector<double> bound(shards_.size());
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      bound[s] = map_.RootBound(s, query);
    }
  }

  service::QueryResponse response;
  size_t dead_shards = 0;
  bool fleet_degraded = false;
  size_t visited = 0;
  size_t pruned = 0;

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (bound[s] > radius) {
      // Nothing in the shard can be within the radius.
      if (bound[s] < std::numeric_limits<double>::infinity()) ++pruned;
      continue;
    }
    bool answered = false;
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      if (GetReplicaState(s, r) != ReplicaState::kHealthy) continue;
      Result<service::QueryResponse> part =
          shards_[s].replicas[r]->Range(query, radius, deadline_us);
      if (!part.ok()) {
        SetReplicaState(s, r, ReplicaState::kDead);
        failovers_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ++visited;
      response.neighbors.insert(response.neighbors.end(),
                                part->neighbors.begin(),
                                part->neighbors.end());
      response.metrics.pages_skipped += part->metrics.pages_skipped;
      response.metrics.truncated |= part->metrics.truncated;
      if (part->degraded()) fleet_degraded = true;
      answered = true;
      break;
    }
    if (!answered) {
      ++dead_shards;
      if (dead_shards > options_.fault_budget) {
        return Status::Unavailable(
            "shard " + std::to_string(s) +
            " has no live replica and the fault budget (" +
            std::to_string(options_.fault_budget) + ") is exhausted");
      }
      fleet_degraded = true;
    }
  }

  std::sort(response.neighbors.begin(), response.neighbors.end(),
            [](const gist::Neighbor& a, const gist::Neighbor& b) {
              return std::tie(a.distance, a.rid) < std::tie(b.distance, b.rid);
            });
  if (fleet_degraded) {
    response.completeness = service::Completeness::kDegraded;
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  shards_visited_.fetch_add(visited, std::memory_order_relaxed);
  shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  return response;
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

Result<service::MutationOutcome> Router::Insert(const geom::Vec& point,
                                                uint64_t rid) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  size_t owner;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    owner = map_.OwnerOf(point);
  }

  // Apply to every live replica of the owner. A replica that misses the
  // write while a sibling acks it has diverged: count-based failover
  // skip is no longer sound against it, so it goes kStale — permanently
  // out of rotation (only a rebuild brings it back).
  std::optional<service::MutationOutcome> acked;
  Status last_error = Status::Unavailable("no live replica");
  std::vector<size_t> missed;
  for (size_t r = 0; r < shards_[owner].replicas.size(); ++r) {
    const ReplicaState state = GetReplicaState(owner, r);
    if (state == ReplicaState::kStale) continue;
    if (state == ReplicaState::kDead) {
      missed.push_back(r);
      continue;
    }
    Result<service::MutationOutcome> outcome =
        shards_[owner].replicas[r]->Insert(point, rid);
    if (outcome.ok()) {
      if (!acked.has_value()) acked = *outcome;
    } else {
      last_error = outcome.status();
      missed.push_back(r);
    }
  }
  if (!acked.has_value()) return last_error;  // nobody acked: no divergence.
  for (size_t r : missed) SetReplicaState(owner, r, ReplicaState::kStale);
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    map_.EnlargeForInsert(owner, point);
  }
  return *acked;
}

Result<service::MutationOutcome> Router::Remove(const geom::Vec& point,
                                                uint64_t rid) {
  mutations_.fetch_add(1, std::memory_order_relaxed);
  // Boxes overlap once enlarged, so the pair's home shard cannot be
  // recovered from the map: broadcast. NotFound from a shard is a
  // consistent "not here" — only transport/apply errors diverge.
  std::optional<service::MutationOutcome> found;
  Status last_error = Status::NotFound("rid not present on any shard");
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::optional<service::MutationOutcome> acked;
    bool found_here = false;
    std::vector<size_t> missed;
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      const ReplicaState state = GetReplicaState(s, r);
      if (state == ReplicaState::kStale) continue;
      if (state == ReplicaState::kDead) {
        missed.push_back(r);
        continue;
      }
      Result<service::MutationOutcome> outcome =
          shards_[s].replicas[r]->Remove(point, rid);
      if (outcome.ok()) {
        if (!acked.has_value()) acked = *outcome;
        found_here = true;
      } else if (outcome.status().code() == StatusCode::kNotFound) {
        // Consistent absence; the delete "applied" as a no-op.
        if (!acked.has_value()) acked = service::MutationOutcome{};
      } else {
        last_error = outcome.status();
        missed.push_back(r);
      }
    }
    if (acked.has_value()) {
      for (size_t r : missed) SetReplicaState(s, r, ReplicaState::kStale);
    }
    if (found_here && !found.has_value()) found = acked;
  }
  if (found.has_value()) return *found;
  return last_error;
}

// ---------------------------------------------------------------------------
// Stats / health / probes
// ---------------------------------------------------------------------------

RouterStats Router::stats() const {
  RouterStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.shards_visited = shards_visited_.load(std::memory_order_relaxed);
  out.shards_pruned = shards_pruned_.load(std::memory_order_relaxed);
  out.failovers = failovers_.load(std::memory_order_relaxed);
  out.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  out.probes = probes_.load(std::memory_order_relaxed);
  out.mutations = mutations_.load(std::memory_order_relaxed);
  return out;
}

std::vector<std::pair<std::string, double>> Router::StatsFields() const {
  const RouterStats s = stats();
  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("router.shards", static_cast<double>(shards_.size()));
  fields.emplace_back("router.queries", static_cast<double>(s.queries));
  fields.emplace_back("router.shards_visited",
                      static_cast<double>(s.shards_visited));
  fields.emplace_back("router.shards_pruned",
                      static_cast<double>(s.shards_pruned));
  fields.emplace_back("router.failovers", static_cast<double>(s.failovers));
  fields.emplace_back("router.degraded_queries",
                      static_cast<double>(s.degraded_queries));
  fields.emplace_back("router.probes", static_cast<double>(s.probes));
  fields.emplace_back("router.mutations", static_cast<double>(s.mutations));
  size_t dead = 0, stale = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (size_t sh = 0; sh < states_.size(); ++sh) {
      size_t live = 0;
      for (ReplicaState state : states_[sh]) {
        if (state == ReplicaState::kHealthy) ++live;
        if (state == ReplicaState::kDead) ++dead;
        if (state == ReplicaState::kStale) ++stale;
      }
      fields.emplace_back("router.shard" + std::to_string(sh) +
                              ".live_replicas",
                          static_cast<double>(live));
    }
  }
  fields.emplace_back("router.dead_replicas", static_cast<double>(dead));
  fields.emplace_back("router.stale_replicas", static_cast<double>(stale));
  return fields;
}

net::HealthReply Router::Health() const {
  net::HealthReply reply;
  reply.writes_enabled = true;
  reply.completed = queries_.load(std::memory_order_relaxed);
  size_t unhealthy = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (const std::vector<ReplicaState>& shard : states_) {
      for (ReplicaState state : shard) {
        if (state != ReplicaState::kHealthy) ++unhealthy;
      }
    }
  }
  // The fleet analogue of "degraded but answering": some replica is out.
  reply.write_degraded = unhealthy > 0;
  reply.pages_quarantined = unhealthy;
  return reply;
}

void Router::ProbeNow() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t r = 0; r < shards_[s].replicas.size(); ++r) {
      if (GetReplicaState(s, r) == ReplicaState::kStale) continue;
      probes_.fetch_add(1, std::memory_order_relaxed);
      const Status verdict = shards_[s].replicas[r]->Probe();
      SetReplicaState(
          s, r, verdict.ok() ? ReplicaState::kHealthy : ReplicaState::kDead);
    }
  }
}

void Router::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mutex_);
  while (!probe_stop_) {
    if (probe_cv_.wait_for(lock, options_.probe_interval,
                           [this] { return probe_stop_; })) {
      return;
    }
    lock.unlock();
    ProbeNow();
    lock.lock();
  }
}

}  // namespace bw::shard
