#include "shard/shard_backend.h"

#include <chrono>
#include <thread>
#include <utility>

namespace bw::shard {

namespace {

/// Uniform status extraction so WithRetries can wrap ops returning
/// either Status or Result<T> (Result::status() is kOk when ok).
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

}  // namespace

namespace {

// ---------------------------------------------------------------------------
// LocalFrontier: a QueryService::StreamCursor, plus a fault-injection
// hook so failover tests can fail-stop an in-process replica
// mid-stream without sockets.
// ---------------------------------------------------------------------------

class LocalFrontier : public ShardFrontier {
 public:
  LocalFrontier(std::unique_ptr<service::QueryService::StreamCursor> cursor,
                std::shared_ptr<std::atomic<bool>> failed,
                std::shared_ptr<std::atomic<uint64_t>> delay_us)
      : cursor_(std::move(cursor)),
        failed_(std::move(failed)),
        delay_us_(std::move(delay_us)) {}

  Result<std::optional<gist::Neighbor>> Next() override {
    if (failed_->load(std::memory_order_relaxed)) {
      return Status::Unavailable("replica fail-stopped (injected)");
    }
    // Injected brownout: alive and correct, just slow (per frame).
    const uint64_t delay = delay_us_->load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
    return cursor_->Next();
  }

  Status Finish() override { return Status::OK(); }

  bool degraded() const override { return cursor_->degraded(); }
  uint64_t pages_skipped() const override { return cursor_->pages_skipped(); }
  bool truncated() const override { return cursor_->truncated(); }

 private:
  std::unique_ptr<service::QueryService::StreamCursor> cursor_;
  std::shared_ptr<std::atomic<bool>> failed_;
  std::shared_ptr<std::atomic<uint64_t>> delay_us_;
};

}  // namespace

// ---------------------------------------------------------------------------
// RemoteFrontier: one in-flight streamed k-NN on a pooled connection.
// (Namespace scope, not anonymous: it is a friend of RemoteShardBackend.)
// ---------------------------------------------------------------------------

class RemoteFrontier : public ShardFrontier {
 public:
  RemoteFrontier(RemoteShardBackend* owner, std::unique_ptr<net::Client> client,
                 uint64_t request_id)
      : owner_(owner), client_(std::move(client)), request_id_(request_id) {}

  ~RemoteFrontier() override {
    // An unfinished or poisoned stream leaves the connection non-idle;
    // Release closes it instead of pooling it.
    if (client_ != nullptr) owner_->Release(std::move(client_));
  }

  Result<std::optional<gist::Neighbor>> Next() override {
    return client_->NextResult(request_id_);
  }

  Status Finish() override {
    if (finished_) return final_status_;
    finished_ = true;
    Result<net::QueryReply> reply = client_->FinishQuery(request_id_);
    if (!reply.ok()) {
      final_status_ = reply.status();
      return final_status_;
    }
    degraded_ = reply->degraded;
    truncated_ = reply->truncated;
    pages_skipped_ = reply->pages_skipped;
    final_status_ = reply->status;  // wire verdict (quota, shed, ...).
    owner_->Release(std::move(client_));
    return final_status_;
  }

  bool degraded() const override { return degraded_; }
  uint64_t pages_skipped() const override { return pages_skipped_; }
  bool truncated() const override { return truncated_; }

 private:
  RemoteShardBackend* owner_;
  std::unique_ptr<net::Client> client_;
  uint64_t request_id_;
  bool finished_ = false;
  Status final_status_;
  bool degraded_ = false;
  bool truncated_ = false;
  uint64_t pages_skipped_ = 0;
};

// ---------------------------------------------------------------------------
// LocalShardBackend
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ShardFrontier>> LocalShardBackend::OpenFrontier(
    const geom::Vec& query, const service::StreamOptions& limits) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  // The router holds cursors on several shards at once while each
  // shard's writer takes the same generation lock exclusively, so an
  // unbounded open here is a textbook lock-order inversion across
  // services. Bound it: past the timeout the open fails kUnavailable
  // and the router's existing failover / fault-budget machinery takes
  // over (a write-stalled replica looks briefly dead; the next health
  // probe resurrects it).
  service::StreamOptions bounded = limits;
  if (bounded.open_timeout_us <= 0) {
    bounded.open_timeout_us = kDefaultOpenTimeoutUs;
  }
  std::unique_ptr<service::QueryService::StreamCursor> cursor =
      service_->OpenCursor(query, bounded);
  if (cursor == nullptr) {
    return Status::Unavailable(
        "shard write-stalled: cursor open timed out");
  }
  return std::unique_ptr<ShardFrontier>(
      new LocalFrontier(std::move(cursor), failed_, delay_us_));
}

Result<service::QueryResponse> LocalShardBackend::Range(const geom::Vec& query,
                                                        double radius,
                                                        uint32_t deadline_us) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  if (deadline_us > 0) {
    service::StreamOptions stream;
    stream.budget_radius = radius;
    stream.deadline_us = static_cast<double>(deadline_us);
    BW_ASSIGN_OR_RETURN(service::QueryService::ResponseFuture future,
                        service_->SubmitStream(query, stream));
    return future.get();
  }
  BW_ASSIGN_OR_RETURN(service::QueryService::ResponseFuture future,
                      service_->SubmitRange(query, radius));
  return future.get();
}

Result<service::MutationOutcome> LocalShardBackend::Insert(
    const geom::Vec& point, uint64_t rid) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  BW_ASSIGN_OR_RETURN(service::QueryService::MutationFuture future,
                      service_->SubmitInsert(point, rid));
  return future.get();
}

Result<service::MutationOutcome> LocalShardBackend::Remove(
    const geom::Vec& point, uint64_t rid) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  BW_ASSIGN_OR_RETURN(service::QueryService::MutationFuture future,
                      service_->SubmitDelete(point, rid));
  return future.get();
}

Status LocalShardBackend::Probe() {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return Status::OK();
}

// A fail-stopped replica serves no catch-up either: the injected fault
// models a dead process, and a dead process cannot ship or apply WAL.

Result<service::CatchupPosition> LocalShardBackend::CatchupPosition() {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return service_->Position();
}

Result<service::WalTail> LocalShardBackend::ReadWalTail(uint64_t after_tag,
                                                        size_t max_batches,
                                                        size_t max_bytes) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return service_->ReadWalTail(after_tag, max_batches, max_bytes);
}

Status LocalShardBackend::ApplyWalBatch(const storage::ShippedBatch& batch) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return service_->ApplyWalBatch(batch);
}

Result<service::SnapshotChunk> LocalShardBackend::ReadSnapshotChunk(
    uint32_t start_page, size_t max_bytes) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return service_->ReadSnapshotChunk(start_page, max_bytes);
}

Status LocalShardBackend::ApplySnapshotChunk(
    const service::SnapshotChunk& chunk, bool first, bool last) {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return service_->ApplySnapshotChunk(chunk, first, last);
}

Result<service::TreeSum> LocalShardBackend::TreeChecksum() {
  if (failed_->load(std::memory_order_relaxed)) {
    return Status::Unavailable("replica fail-stopped (injected)");
  }
  return service_->TreeChecksum();
}

// ---------------------------------------------------------------------------
// RemoteShardBackend
// ---------------------------------------------------------------------------

RemoteShardBackend::RemoteShardBackend(std::string host, uint16_t port,
                                       net::ClientOptions client_options,
                                       size_t max_idle_connections)
    : host_(std::move(host)),
      port_(port),
      client_options_(client_options),
      max_idle_connections_(max_idle_connections) {
  jitter_.Reseed(retry_.jitter_seed ^ EndpointSalt());
}

uint64_t RemoteShardBackend::EndpointSalt() const {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  const std::string endpoint = DebugName();
  for (const char c : endpoint) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string RemoteShardBackend::DebugName() const {
  return host_ + ":" + std::to_string(port_);
}

Result<std::unique_ptr<net::Client>> RemoteShardBackend::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<net::Client> client = std::move(idle_.back());
      idle_.pop_back();
      return client;
    }
  }
  return net::Client::Connect(host_, port_, client_options_);
}

void RemoteShardBackend::Release(std::unique_ptr<net::Client> client) {
  if (client == nullptr || !client->idle()) return;  // poisoned/mid-stream.
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.size() < max_idle_connections_) idle_.push_back(std::move(client));
}

// ---------------------------------------------------------------------------
// Retry machinery (idempotent calls only; see RetryPolicy)
// ---------------------------------------------------------------------------

bool RemoteShardBackend::Retryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:            // transport loss / timeout.
    case StatusCode::kUnavailable:        // shed / draining / write-stalled.
    case StatusCode::kResourceExhausted:  // dispatch queue or quota: back off.
      return true;
    default:
      return false;
  }
}

bool RemoteShardBackend::BackoffOrGiveUp(size_t attempt, uint64_t elapsed_us,
                                         uint64_t deadline_us) {
  if (attempt + 1 >= retry_.max_attempts) return false;
  uint64_t backoff = retry_.backoff_us;
  for (size_t i = 0; i < attempt && backoff < retry_.max_backoff_us; ++i) {
    backoff *= 2;
  }
  if (backoff > retry_.max_backoff_us) backoff = retry_.max_backoff_us;
  // Deterministic jitter from the backend's seeded JitterStream
  // (policy seed ⊕ endpoint salt): up to +50%, so a fleet of routers
  // hammering one recovering server desynchronizes without any global
  // clock — and a chaos test pins the whole schedule from the seed.
  backoff += jitter_.NextBelow(backoff / 2 + 1);
  if (deadline_us > 0 && elapsed_us + backoff >= deadline_us) return false;
  std::this_thread::sleep_for(std::chrono::microseconds(backoff));
  return true;
}

template <typename Op>
auto RemoteShardBackend::WithRetries(uint64_t deadline_us, Op&& op)
    -> decltype(op(std::declval<net::Client&>())) {
  using R = decltype(op(std::declval<net::Client&>()));
  const auto start = std::chrono::steady_clock::now();
  for (size_t attempt = 0;; ++attempt) {
    Result<std::unique_ptr<net::Client>> client = Acquire();
    R result = client.ok() ? op(**client) : R(client.status());
    if (StatusOf(result).ok()) {
      Release(std::move(*client));
      return result;
    }
    if (!Retryable(StatusOf(result))) return result;
    const uint64_t elapsed = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (!BackoffOrGiveUp(attempt, elapsed, deadline_us)) return result;
  }
}

Result<std::unique_ptr<ShardFrontier>> RemoteShardBackend::OpenFrontier(
    const geom::Vec& query, const service::StreamOptions& limits) {
  // Only the *open* (dial + submit) retries: once a stream exists, a
  // mid-stream failure is the router's count-skip failover to handle.
  const auto start = std::chrono::steady_clock::now();
  for (size_t attempt = 0;; ++attempt) {
    Result<std::unique_ptr<net::Client>> client = Acquire();
    Status verdict = client.status();
    if (client.ok()) {
      net::QueryLimits wire_limits;
      wire_limits.deadline_us = static_cast<uint32_t>(limits.deadline_us);
      wire_limits.budget_radius = limits.budget_radius;
      wire_limits.batch_size = frontier_batch_size_;
      Result<uint64_t> id =
          (*client)->SubmitKnn(query, limits.max_results, wire_limits);
      if (id.ok()) {
        return std::unique_ptr<ShardFrontier>(
            new RemoteFrontier(this, std::move(*client), *id));
      }
      verdict = id.status();
    }
    if (!Retryable(verdict)) return verdict;
    const uint64_t elapsed = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (!BackoffOrGiveUp(attempt, elapsed,
                         static_cast<uint64_t>(limits.deadline_us))) {
      return verdict;
    }
  }
}

Result<service::QueryResponse> RemoteShardBackend::Range(
    const geom::Vec& query, double radius, uint32_t deadline_us) {
  return WithRetries(
      deadline_us,
      [&](net::Client& client) -> Result<service::QueryResponse> {
        Result<net::QueryReply> reply = client.Range(query, radius,
                                                     deadline_us);
        if (!reply.ok()) return reply.status();
        if (!reply->ok()) return reply->status;
        service::QueryResponse response;
        response.neighbors = std::move(reply->neighbors);
        response.metrics.pages_skipped = reply->pages_skipped;
        response.metrics.truncated = reply->truncated;
        response.metrics.latency_us = reply->server_latency_us;
        response.completeness = reply->degraded
                                    ? service::Completeness::kDegraded
                                    : service::Completeness::kComplete;
        return response;
      });
}

Result<service::MutationOutcome> RemoteShardBackend::Insert(
    const geom::Vec& point, uint64_t rid) {
  BW_ASSIGN_OR_RETURN(std::unique_ptr<net::Client> client, Acquire());
  Result<net::MutateReply> reply = client->Insert(point, rid);
  if (!reply.ok()) return reply.status();
  Release(std::move(client));
  if (!reply->ok()) return reply->status;
  service::MutationOutcome outcome;
  outcome.tag = reply->tag;
  return outcome;
}

Result<service::MutationOutcome> RemoteShardBackend::Remove(
    const geom::Vec& point, uint64_t rid) {
  BW_ASSIGN_OR_RETURN(std::unique_ptr<net::Client> client, Acquire());
  Result<net::MutateReply> reply = client->Remove(point, rid);
  if (!reply.ok()) return reply.status();
  Release(std::move(client));
  if (!reply->ok()) return reply->status;
  service::MutationOutcome outcome;
  outcome.tag = reply->tag;
  return outcome;
}

Status RemoteShardBackend::Probe() {
  Result<net::HealthReply> health = WithRetries(
      0, [](net::Client& client) { return client.Health(); });
  return health.status();
}

// Catch-up calls all ride the retry schedule: the reads are pure, and
// ApplyWalBatch / ApplySnapshotChunk are idempotent on the target (the
// tag check skips an already-applied batch; a re-written page image is
// the same bytes), so replaying a lost ack is safe.

Result<service::CatchupPosition> RemoteShardBackend::CatchupPosition() {
  return WithRetries(0,
                     [](net::Client& client) { return client.CatchupPos(); });
}

Result<service::WalTail> RemoteShardBackend::ReadWalTail(uint64_t after_tag,
                                                         size_t max_batches,
                                                         size_t max_bytes) {
  return WithRetries(0, [&](net::Client& client) {
    return client.PullWal(after_tag, static_cast<uint32_t>(max_batches),
                          static_cast<uint32_t>(max_bytes));
  });
}

Status RemoteShardBackend::ApplyWalBatch(const storage::ShippedBatch& batch) {
  Result<net::CatchupAck> ack = WithRetries(
      0, [&](net::Client& client) { return client.ApplyWal(batch); });
  return ack.status();
}

Result<service::SnapshotChunk> RemoteShardBackend::ReadSnapshotChunk(
    uint32_t start_page, size_t max_bytes) {
  return WithRetries(0, [&](net::Client& client) {
    return client.PullSnapshot(start_page, static_cast<uint32_t>(max_bytes));
  });
}

Status RemoteShardBackend::ApplySnapshotChunk(
    const service::SnapshotChunk& chunk, bool first, bool last) {
  Result<net::CatchupAck> ack = WithRetries(0, [&](net::Client& client) {
    return client.ApplySnapshot(chunk, first, last);
  });
  return ack.status();
}

Result<service::TreeSum> RemoteShardBackend::TreeChecksum() {
  return WithRetries(0,
                     [](net::Client& client) { return client.TreeSum(); });
}

}  // namespace bw::shard
