#include "shard/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "am/bulk_load.h"

namespace bw::shard {

void ShardBounds::Enlarge(const geom::Vec& p) {
  if (empty()) {
    lo = p;
    hi = p;
    return;
  }
  for (size_t d = 0; d < lo.dim(); ++d) {
    lo[d] = std::min(lo[d], p[d]);
    hi[d] = std::max(hi[d], p[d]);
  }
}

double ShardBounds::MinDistance(const geom::Vec& q) const {
  if (empty()) return std::numeric_limits<double>::infinity();
  double sum = 0;
  for (size_t d = 0; d < lo.dim(); ++d) {
    const double v = q[d];
    double gap = 0;
    if (v < lo[d]) {
      gap = static_cast<double>(lo[d]) - v;
    } else if (v > hi[d]) {
      gap = v - static_cast<double>(hi[d]);
    }
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

Partition PartitionByStr(const std::vector<geom::Vec>& corpus,
                         size_t num_shards) {
  Partition out;
  if (num_shards == 0) num_shards = 1;
  out.points.resize(num_shards);
  out.rids.resize(num_shards);
  out.bounds.resize(num_shards);
  if (corpus.empty()) return out;

  // ceil so the last run is the short one, matching the STR tiling.
  const size_t per_shard = (corpus.size() + num_shards - 1) / num_shards;
  const std::vector<size_t> order = am::StrOrder(corpus, per_shard);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const size_t shard = std::min(pos / per_shard, num_shards - 1);
    const size_t src = order[pos];
    out.points[shard].push_back(corpus[src]);
    out.rids[shard].push_back(static_cast<gist::Rid>(src));
    out.bounds[shard].Enlarge(corpus[src]);
  }
  return out;
}

Result<std::unique_ptr<core::DurableIndex>> BuildShardIndex(
    const std::vector<geom::Vec>& points, const std::vector<gist::Rid>& rids,
    const core::IndexBuildOptions& options, const std::string& base_path,
    const std::string& wal_path, storage::StoreOptions store_options) {
  if (points.empty()) {
    return Status::InvalidArgument("cannot build an empty shard");
  }
  if (points.size() != rids.size()) {
    return Status::InvalidArgument("shard points/rids size mismatch");
  }
  BW_ASSIGN_OR_RETURN(
      std::unique_ptr<core::DurableIndex> index,
      core::CreateDurableIndex(base_path, wal_path, points[0].dim(), options,
                               store_options));
  if (options.bulk_load) {
    am::BulkLoadOptions load;
    load.fill_fraction = options.fill_fraction;
    BW_RETURN_IF_ERROR(am::StrBulkLoad(&index->tree(), points, rids, load));
  } else {
    BW_RETURN_IF_ERROR(am::InsertionLoad(&index->tree(), points, rids));
  }
  BW_RETURN_IF_ERROR(index->Commit(/*tag=*/points.size()));
  BW_RETURN_IF_ERROR(index->Checkpoint());
  index->store().pages()->ResetStats();
  return index;
}

size_t ShardMap::OwnerOf(const geom::Vec& p) const {
  size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < bounds_.size(); ++s) {
    const double distance = bounds_[s].MinDistance(p);
    if (distance < best_distance) {
      best = s;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace bw::shard
