// ShardFleet: one-call construction of an in-process sharded
// deployment — partition a corpus by STR order, build every shard ×
// replica as its own DurableIndex + QueryService, wrap them in
// LocalShardBackends, and stand a Router over the lot. This is the
// fixture the randomized router-vs-single-index tests, the failover
// tests, and the scatter-gather bench all share; bwrouter composes the
// same pieces with RemoteShardBackends instead.

#ifndef BLOBWORLD_SHARD_FLEET_H_
#define BLOBWORLD_SHARD_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/durable_index.h"
#include "service/query_service.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/shard_backend.h"

namespace bw::shard {

struct FleetOptions {
  size_t num_shards = 3;
  size_t replicas_per_shard = 1;
  core::IndexBuildOptions build;
  /// Per-shard service configuration. Enable service.write for routed
  /// mutations; fault_budget here is the *within-shard* page-fault
  /// budget, RouterOptions::fault_budget the cross-shard one.
  service::ServiceOptions service;
  RouterOptions router;
};

/// Owns every layer of an in-process sharded deployment, destruction in
/// dependency order (router, then services, then indexes).
class ShardFleet {
 public:
  /// Builds the fleet under `dir` (one index file pair per shard ×
  /// replica). The corpus's RID for vector i is i, globally — exactly
  /// the numbering an unsharded BuildIndex over the same corpus uses,
  /// which is what makes router answers comparable bit-for-bit.
  static Result<std::unique_ptr<ShardFleet>> Build(
      const std::vector<geom::Vec>& corpus, const std::string& dir,
      const FleetOptions& options);

  Router* router() { return router_.get(); }
  const ShardMap& map() const { return map_; }
  size_t num_shards() const { return services_.size(); }

  service::QueryService* service(size_t shard, size_t replica) {
    return services_[shard][replica].get();
  }
  /// The replica's store, for page-level fault injection (quarantine).
  core::DurableIndex* index(size_t shard, size_t replica) {
    return indexes_[shard][replica].get();
  }
  /// The fault-injection surface: backend(s, r)->set_failed(true) is an
  /// in-process SIGKILL for that replica.
  LocalShardBackend* backend(size_t shard, size_t replica) {
    return backends_[shard][replica];
  }

 private:
  ShardFleet() : map_(0, {}) {}

  ShardMap map_;
  std::vector<std::vector<std::unique_ptr<core::DurableIndex>>> indexes_;
  std::vector<std::vector<std::unique_ptr<service::QueryService>>> services_;
  std::vector<std::vector<LocalShardBackend*>> backends_;  // owned by router_.
  std::unique_ptr<Router> router_;
};

}  // namespace bw::shard

#endif  // BLOBWORLD_SHARD_FLEET_H_
