// One replica of one shard, as the router sees it: a handle that can
// open streaming best-first frontiers, execute range queries and
// mutations, and answer a cheap health probe. Two implementations:
//
//   LocalShardBackend  — an in-process QueryService (tests, bench, and
//                        single-binary fleets). Frontiers are
//                        QueryService::StreamCursor sessions.
//   RemoteShardBackend — a bwserver endpoint over net::Client.
//                        Frontiers consume streamed kResultBatch
//                        frames incrementally (Client::NextResult);
//                        connections are pooled and reused only when a
//                        stream was drained cleanly.
//
// Thread-safety: the router calls these from every server dispatch
// thread concurrently. LocalShardBackend is safe because QueryService
// is; RemoteShardBackend hands each caller its own pooled connection
// (net::Client itself is single-threaded by contract).

#ifndef BLOBWORLD_SHARD_SHARD_BACKEND_H_
#define BLOBWORLD_SHARD_SHARD_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec.h"
#include "gist/tree.h"
#include "net/client.h"
#include "service/query_service.h"
#include "util/random.h"
#include "util/status.h"

namespace bw::shard {

/// A shard's best-first result stream: non-decreasing distances, one
/// result per Next(), nullopt at the end. Degraded accounting is valid
/// once the stream ended (for remote frontiers it arrives with the
/// terminal frame, fetched by Finish()).
class ShardFrontier {
 public:
  virtual ~ShardFrontier() = default;

  /// Next neighbor, nullopt when the stream is finished. An error
  /// means the replica failed mid-stream (transport loss, fail-stop):
  /// the caller fails over; this frontier is dead.
  virtual Result<std::optional<gist::Neighbor>> Next() = 0;

  /// Completes the stream's accounting (drains remaining frames for a
  /// remote frontier). Call once, after Next() returned nullopt or the
  /// caller decided to stop consuming. Idempotent via the caller's
  /// discipline; degraded()/pages_skipped()/truncated() are valid
  /// afterward.
  virtual Status Finish() = 0;

  virtual bool degraded() const = 0;
  virtual uint64_t pages_skipped() const = 0;
  virtual bool truncated() const = 0;
};

/// One replica's full request surface.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  virtual Result<std::unique_ptr<ShardFrontier>> OpenFrontier(
      const geom::Vec& query, const service::StreamOptions& limits) = 0;

  virtual Result<service::QueryResponse> Range(const geom::Vec& query,
                                               double radius,
                                               uint32_t deadline_us) = 0;

  virtual Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                                  uint64_t rid) = 0;
  virtual Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                                  uint64_t rid) = 0;

  /// Cheap liveness probe (the health-probe thread's primitive).
  virtual Status Probe() = 0;

  /// Human-readable replica identity ("local:0/1", "10.0.0.2:7070").
  virtual std::string DebugName() const = 0;

  // --- Replica catch-up ---------------------------------------------------
  // The router's catch-up driver speaks these against both ends: reads
  // (position, WAL tail, snapshot chunk, checksum) against the healthy
  // source, writes (apply WAL batch / snapshot chunk) against the
  // lagging target. Defaults refuse so a backend without a durable
  // store degrades to "operator rebuild", never to silent divergence.

  virtual Result<service::CatchupPosition> CatchupPosition() {
    return Status::NotSupported("replica does not serve catch-up");
  }
  virtual Result<service::WalTail> ReadWalTail(uint64_t after_tag,
                                               size_t max_batches,
                                               size_t max_bytes) {
    (void)after_tag;
    (void)max_batches;
    (void)max_bytes;
    return Status::NotSupported("replica does not serve catch-up");
  }
  virtual Status ApplyWalBatch(const storage::ShippedBatch& batch) {
    (void)batch;
    return Status::NotSupported("replica does not serve catch-up");
  }
  virtual Result<service::SnapshotChunk> ReadSnapshotChunk(
      uint32_t start_page, size_t max_bytes) {
    (void)start_page;
    (void)max_bytes;
    return Status::NotSupported("replica does not serve catch-up");
  }
  virtual Status ApplySnapshotChunk(const service::SnapshotChunk& chunk,
                                    bool first, bool last) {
    (void)chunk;
    (void)first;
    (void)last;
    return Status::NotSupported("replica does not serve catch-up");
  }
  virtual Result<service::TreeSum> TreeChecksum() {
    return Status::NotSupported("replica does not serve catch-up");
  }
};

// ---------------------------------------------------------------------------
// In-process replica
// ---------------------------------------------------------------------------

class LocalShardBackend : public ShardBackend {
 public:
  /// Bound on waiting for a shard's generation lock at cursor open
  /// (see OpenFrontier): far above any writer batch, far below forever.
  static constexpr double kDefaultOpenTimeoutUs = 2'000'000;

  /// The service must outlive the backend.
  explicit LocalShardBackend(service::QueryService* service,
                             std::string name = "local")
      : service_(service), name_(std::move(name)) {}

  Result<std::unique_ptr<ShardFrontier>> OpenFrontier(
      const geom::Vec& query, const service::StreamOptions& limits) override;
  Result<service::QueryResponse> Range(const geom::Vec& query, double radius,
                                       uint32_t deadline_us) override;
  Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                          uint64_t rid) override;
  Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                          uint64_t rid) override;
  Status Probe() override;
  std::string DebugName() const override { return name_; }

  Result<service::CatchupPosition> CatchupPosition() override;
  Result<service::WalTail> ReadWalTail(uint64_t after_tag, size_t max_batches,
                                       size_t max_bytes) override;
  Status ApplyWalBatch(const storage::ShippedBatch& batch) override;
  Result<service::SnapshotChunk> ReadSnapshotChunk(uint32_t start_page,
                                                   size_t max_bytes) override;
  Status ApplySnapshotChunk(const service::SnapshotChunk& chunk, bool first,
                            bool last) override;
  Result<service::TreeSum> TreeChecksum() override;

  /// Fault injection: while set, every call (and every open frontier's
  /// Next) fails with Unavailable — an in-process fail-stop for the
  /// failover tests and the chaos harness, no sockets needed.
  void set_failed(bool failed) {
    failed_->store(failed, std::memory_order_relaxed);
  }

  /// Brownout injection: while nonzero, every open frontier's Next
  /// sleeps this long before answering — the replica stays alive and
  /// correct, just slow, which is exactly the failure mode probes
  /// cannot see and the hedge/breaker machinery exists for. Applies to
  /// frontiers opened before or after the call (the delay is shared).
  void set_delay_us(uint64_t delay_us) {
    delay_us_->store(delay_us, std::memory_order_relaxed);
  }

 private:
  service::QueryService* service_;
  std::string name_;
  std::shared_ptr<std::atomic<bool>> failed_ =
      std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<uint64_t>> delay_us_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

// ---------------------------------------------------------------------------
// Remote replica (a bwserver endpoint)
// ---------------------------------------------------------------------------

/// Bounded, deadline-aware retries for *idempotent* remote calls:
/// probes, reads, catch-up pulls, and WAL-batch applies (idempotent via
/// the target's tag check) — never Insert/Remove, whose replay could
/// double-apply. Attempt n sleeps backoff_us * 2^n, capped at
/// max_backoff_us, plus a deterministic jitter drawn from a
/// JitterStream seeded by jitter_seed mixed with the backend's
/// endpoint (so two backends under the same policy draw distinct but
/// pinned schedules), and gives up early rather than sleep past the
/// caller's deadline.
/// Retries fire only on transport-shaped failures (IoError,
/// Unavailable, ResourceExhausted): a semantic verdict (NotFound,
/// InvalidArgument, NotSupported) is the answer, not a flaky link.
struct RetryPolicy {
  size_t max_attempts = 4;  // 1 = no retries.
  uint64_t backoff_us = 100;
  uint64_t max_backoff_us = 5000;
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

class RemoteShardBackend : public ShardBackend {
 public:
  RemoteShardBackend(std::string host, uint16_t port,
                     net::ClientOptions client_options = net::ClientOptions(),
                     size_t max_idle_connections = 4);

  Result<std::unique_ptr<ShardFrontier>> OpenFrontier(
      const geom::Vec& query, const service::StreamOptions& limits) override;
  Result<service::QueryResponse> Range(const geom::Vec& query, double radius,
                                       uint32_t deadline_us) override;
  Result<service::MutationOutcome> Insert(const geom::Vec& point,
                                          uint64_t rid) override;
  Result<service::MutationOutcome> Remove(const geom::Vec& point,
                                          uint64_t rid) override;
  Status Probe() override;
  std::string DebugName() const override;

  Result<service::CatchupPosition> CatchupPosition() override;
  Result<service::WalTail> ReadWalTail(uint64_t after_tag, size_t max_batches,
                                       size_t max_bytes) override;
  Status ApplyWalBatch(const storage::ShippedBatch& batch) override;
  Result<service::SnapshotChunk> ReadSnapshotChunk(uint32_t start_page,
                                                   size_t max_bytes) override;
  Status ApplySnapshotChunk(const service::SnapshotChunk& chunk, bool first,
                            bool last) override;
  Result<service::TreeSum> TreeChecksum() override;

  /// Results per streamed batch frame frontiers ask the server for.
  void set_frontier_batch_size(uint32_t n) { frontier_batch_size_ = n; }

  /// Retry schedule for idempotent calls (see RetryPolicy). Set before
  /// handing the backend to the router.
  void set_retry_policy(RetryPolicy policy) {
    retry_ = policy;
    jitter_.Reseed(policy.jitter_seed ^ EndpointSalt());
  }

 private:
  friend class RemoteFrontier;

  /// Pops an idle pooled connection or dials a fresh one.
  Result<std::unique_ptr<net::Client>> Acquire();
  /// Returns a connection to the pool — only if it is idle (stream
  /// fully drained, not poisoned); otherwise it just closes.
  void Release(std::unique_ptr<net::Client> client);

  /// True for status codes worth another attempt (transport-shaped).
  static bool Retryable(const Status& status);
  /// Sleeps out attempt `attempt`'s backoff; false when the schedule is
  /// exhausted or the next sleep would cross `deadline_us` (0 = none).
  bool BackoffOrGiveUp(size_t attempt, uint64_t elapsed_us,
                       uint64_t deadline_us);
  /// FNV-1a over host:port — the per-backend salt mixed into the
  /// jitter seed.
  uint64_t EndpointSalt() const;

  /// Runs `op` (a fresh connection per attempt) under the retry
  /// schedule. `op` takes net::Client& and returns Result<T>.
  template <typename Op>
  auto WithRetries(uint64_t deadline_us, Op&& op)
      -> decltype(op(std::declval<net::Client&>()));

  std::string host_;
  uint16_t port_;
  net::ClientOptions client_options_;
  uint32_t frontier_batch_size_ = 32;
  size_t max_idle_connections_;
  RetryPolicy retry_;
  JitterStream jitter_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<net::Client>> idle_;
};

}  // namespace bw::shard

#endif  // BLOBWORLD_SHARD_SHARD_BACKEND_H_
