#include "shard/tail_tolerance.h"

namespace bw::shard {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::TripLocked(uint64_t now_us) {
  state_ = BreakerState::kOpen;
  opened_at_us_ = now_us;
  trial_inflight_ = false;
  consecutive_errors_ = 0;
  consecutive_slow_ = 0;
  ++opens_;
}

void CircuitBreaker::OnResult(bool ok, uint64_t latency_us, uint64_t now_us) {
  if (ok) latency_.Record(latency_us);
  if (!options_.enabled) return;

  // Outlier verdict outside the lock: the histogram is internally
  // atomic and a slightly stale p50 only shifts the threshold by one
  // sample.
  bool slow = false;
  if (ok && latency_.Count() >= options_.min_samples) {
    const uint64_t p50 = latency_.Percentile(0.50);
    uint64_t threshold =
        static_cast<uint64_t>(options_.outlier_factor *
                              static_cast<double>(p50));
    if (threshold < options_.outlier_floor_us) {
      threshold = options_.outlier_floor_us;
    }
    slow = latency_us > threshold;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      if (!ok) {
        consecutive_slow_ = 0;
        if (++consecutive_errors_ >= options_.error_threshold) {
          TripLocked(now_us);
        }
        return;
      }
      consecutive_errors_ = 0;
      // Buffered replays carry no streak evidence either way.
      if (latency_us < options_.streak_floor_us) return;
      if (slow) {
        if (++consecutive_slow_ >= options_.slow_threshold) {
          TripLocked(now_us);
        }
      } else {
        consecutive_slow_ = 0;
      }
      return;
    case BreakerState::kHalfOpen:
      // The single admitted trial decides; results from straggling
      // pre-trip operations (e.g. an abandoned hedge loser finishing
      // late) get the same vote — they are evidence about the same
      // backend.
      trial_inflight_ = false;
      if (ok && !slow) {
        state_ = BreakerState::kClosed;
        consecutive_errors_ = 0;
        consecutive_slow_ = 0;
        ++closes_;
      } else {
        TripLocked(now_us);
      }
      return;
    case BreakerState::kOpen:
      // Late results while open carry no new information.
      return;
  }
}

bool CircuitBreaker::Allow(uint64_t now_us) {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_us - opened_at_us_ >= options_.cooldown_us) {
        state_ = BreakerState::kHalfOpen;
        trial_inflight_ = true;
        ++half_opens_;
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      if (trial_inflight_) return false;  // one probe at a time.
      trial_inflight_ = true;
      return true;
  }
  return true;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::HedgeDelayUs(double quantile, uint64_t floor_us,
                                      uint64_t cap_us,
                                      uint64_t fallback_us) const {
  uint64_t delay = fallback_us;
  if (latency_.Count() >= options_.min_samples) {
    delay = latency_.Percentile(quantile);
  }
  if (delay < floor_us) delay = floor_us;
  if (delay > cap_us) delay = cap_us;
  return delay;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

uint64_t CircuitBreaker::half_opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return half_opens_;
}

uint64_t CircuitBreaker::closes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closes_;
}

}  // namespace bw::shard
