// Corpus partitioning for the horizontal sharding tier: split a blob
// corpus into N shard slices by STR order (reusing the bulk loader's
// Sort-Tile-Recursive sort with node_capacity = ceil(n / N), so each
// shard is one spatially coherent STR "tile run"), build each slice as
// an independent DurableIndex that keeps the *global* RIDs, and keep a
// ShardMap of per-shard bounding boxes the router prunes and routes
// with.
//
// Why STR runs: the paper's own finding is that STR tiling minimizes
// clustering loss, and a spatially tight shard is exactly what makes
// the router's root bound useful — the k-th global distance beats a
// far shard's box early, so most shards are never opened. TerraServer
// partitioned imagery the same way (by spatial tile), for the same
// reason.
//
// Bound admissibility: ShardBounds::MinDistance is the Euclidean
// point-to-box distance, a lower bound on the distance to *every*
// point inside the box — and therefore on every result a shard's
// frontier can ever stream. Inserts only ever enlarge a box
// (R-tree-style), deletes never shrink it, so the bound stays
// admissible across online mutations (it just gets looser).

#ifndef BLOBWORLD_SHARD_PARTITIONER_H_
#define BLOBWORLD_SHARD_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "geom/vec.h"
#include "gist/tree.h"
#include "util/status.h"

namespace bw::shard {

/// Axis-aligned bounding box of one shard's points (enlarge-only).
struct ShardBounds {
  geom::Vec lo;  // dim()==0 -> empty shard (bound is +infinity).
  geom::Vec hi;

  bool empty() const { return lo.dim() == 0; }

  /// Grows the box to contain `p` (starts the box when empty).
  void Enlarge(const geom::Vec& p);

  /// Euclidean distance from `q` to the nearest point of the box: an
  /// admissible lower bound on the distance to anything stored in the
  /// shard. +infinity for an empty shard (it can contain nothing).
  double MinDistance(const geom::Vec& q) const;
};

/// One corpus split: points[s] / rids[s] are shard s's slice (rids are
/// positions in the original corpus — global, never re-numbered).
struct Partition {
  std::vector<std::vector<geom::Vec>> points;
  std::vector<std::vector<gist::Rid>> rids;
  std::vector<ShardBounds> bounds;

  size_t num_shards() const { return points.size(); }
};

/// Splits `corpus` into `num_shards` slices of (near-)equal size along
/// the STR order. RID of corpus[i] is i. Shards at the tail may be one
/// element smaller; none is empty while corpus.size() >= num_shards.
Partition PartitionByStr(const std::vector<geom::Vec>& corpus,
                         size_t num_shards);

/// Builds one shard slice as a DurableIndex at (base_path, wal_path),
/// preserving the given global RIDs (this is the piece
/// core::BuildDurableIndex cannot do — it renumbers from zero).
/// Bulk- or insertion-loaded per options, committed and checkpointed.
Result<std::unique_ptr<core::DurableIndex>> BuildShardIndex(
    const std::vector<geom::Vec>& points, const std::vector<gist::Rid>& rids,
    const core::IndexBuildOptions& options, const std::string& base_path,
    const std::string& wal_path,
    storage::StoreOptions store_options = storage::StoreOptions());

/// The router's routing/pruning table: per-shard boxes.
/// Thread-compatible: RootBound/OwnerOf are const reads; the router
/// serializes EnlargeForInsert with its own write lock.
class ShardMap {
 public:
  ShardMap(size_t dim, std::vector<ShardBounds> bounds)
      : dim_(dim), bounds_(std::move(bounds)) {}

  size_t num_shards() const { return bounds_.size(); }
  size_t dim() const { return dim_; }
  const ShardBounds& bounds(size_t shard) const { return bounds_[shard]; }

  /// Lower bound on the distance from `q` to anything in `shard`.
  double RootBound(size_t shard, const geom::Vec& q) const {
    return bounds_[shard].MinDistance(q);
  }

  /// The shard an insert of `p` routes to: the one whose box is
  /// nearest (distance 0 means containment; ties break to the lowest
  /// index, so routing is deterministic).
  size_t OwnerOf(const geom::Vec& p) const;

  /// Grows `shard`'s box to cover an accepted insert, keeping
  /// RootBound admissible afterward.
  void EnlargeForInsert(size_t shard, const geom::Vec& p) {
    bounds_[shard].Enlarge(p);
  }

 private:
  size_t dim_;
  std::vector<ShardBounds> bounds_;
};

}  // namespace bw::shard

#endif  // BLOBWORLD_SHARD_PARTITIONER_H_
