#include "service/snapshot_export.h"

namespace bw::service {

std::vector<std::pair<std::string, double>> ExportSnapshotFields(
    const ServiceSnapshot& snap) {
  std::vector<std::pair<std::string, double>> fields;
  fields.reserve(48);
  auto add = [&fields](const char* name, double value) {
    fields.emplace_back(name, value);
  };
  // Throughput.
  add("elapsed_seconds", snap.elapsed_seconds);
  add("qps", snap.qps);
  add("submitted", static_cast<double>(snap.submitted));
  add("rejected", static_cast<double>(snap.rejected));
  add("completed", static_cast<double>(snap.completed));
  add("failed", static_cast<double>(snap.failed));
  // Read latency.
  add("mean_latency_us", snap.mean_latency_us);
  add("p50_latency_us", static_cast<double>(snap.p50_latency_us));
  add("p95_latency_us", static_cast<double>(snap.p95_latency_us));
  add("p99_latency_us", static_cast<double>(snap.p99_latency_us));
  add("p999_latency_us", static_cast<double>(snap.p999_latency_us));
  // Degradation accounting.
  add("truncated_streams", static_cast<double>(snap.truncated_streams));
  add("degraded_responses", static_cast<double>(snap.degraded_responses));
  add("pages_skipped", static_cast<double>(snap.pages_skipped));
  add("watchdog_expirations",
      static_cast<double>(snap.watchdog_expirations));
  // Tree + pool traffic.
  add("leaf_accesses", static_cast<double>(snap.leaf_accesses));
  add("internal_accesses", static_cast<double>(snap.internal_accesses));
  add("pool_hits", static_cast<double>(snap.pool_hits));
  add("pool_misses", static_cast<double>(snap.pool_misses));
  add("pool_evictions", static_cast<double>(snap.pool_evictions));
  add("pool_contention", static_cast<double>(snap.pool_contention));
  add("pool_shards", static_cast<double>(snap.pool_shards));
  // Self-healing store.
  add("store_read_retries", static_cast<double>(snap.store_read_retries));
  add("store_pages_quarantined",
      static_cast<double>(snap.store_pages_quarantined));
  add("store_quarantines_total",
      static_cast<double>(snap.store_quarantines_total));
  add("store_repairs_total", static_cast<double>(snap.store_repairs_total));
  // Write path.
  add("writes_enabled", snap.writes_enabled ? 1 : 0);
  add("write_state", static_cast<double>(snap.write_state));
  add("write_degraded", snap.write_degraded ? 1 : 0);
  add("write_queue_depth", static_cast<double>(snap.write_queue_depth));
  add("writes_submitted", static_cast<double>(snap.writes_submitted));
  add("writes_rejected", static_cast<double>(snap.writes_rejected));
  add("writes_acked", static_cast<double>(snap.writes_acked));
  add("writes_failed", static_cast<double>(snap.writes_failed));
  add("commit_batches", static_cast<double>(snap.commit_batches));
  add("generation", static_cast<double>(snap.generation));
  add("wal_live_bytes", static_cast<double>(snap.wal_live_bytes));
  add("wal_segments_created",
      static_cast<double>(snap.wal_segments_created));
  add("wal_segments_retired",
      static_cast<double>(snap.wal_segments_retired));
  add("mean_write_latency_us", snap.mean_write_latency_us);
  add("p50_write_latency_us",
      static_cast<double>(snap.p50_write_latency_us));
  add("p99_write_latency_us",
      static_cast<double>(snap.p99_write_latency_us));
  add("p999_write_latency_us",
      static_cast<double>(snap.p999_write_latency_us));
  return fields;
}

const char* WriteStateName(WriteState state) {
  switch (state) {
    case WriteState::kServing:
      return "serving";
    case WriteState::kReadOnly:
      return "read-only";
    case WriteState::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace bw::service
