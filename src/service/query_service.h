// Concurrent query service over a shared read-only index: the serving
// tier the paper's Blobworld front end implies ("give me images until
// the user stops scrolling", many users at once) but the one-shot bench
// binaries never built. A fixed pool of worker threads executes k-NN,
// range, and streaming cursor-with-deadline requests against one shared
// gist::Tree; a bounded submission queue applies admission control
// (reject-with-Status or block, configurable); every query returns
// latency + I/O metrics and the service aggregates them into a
// lock-cheap latency histogram and throughput snapshot.
//
// Concurrency model (see the audited contracts in gist/tree.h and
// pages/page_file.h): the tree, its extension, and the page file are
// shared and strictly read-only during serving. By default all workers
// share one process-wide pages::ShardedBufferPool (lock-sharded CLOCK
// cache over the store), each worker reading through its own Session so
// watchdog state and per-query stat deltas stay worker-private while
// cached pages are shared — one worker's miss warms every other
// worker's read path. Setting ServiceOptions::shared_pool=false
// restores the original per-worker private BufferPool layout
// (charge_file_io=false), kept as the comparison baseline for the
// read-path benchmarks. Either way the shared PageFile is only ever
// touched through its const PeekNoIo path.
//
// Serving through faults: when the store underneath quarantines pages
// (see storage/page_health.h), queries carrying a fault budget
// (ServiceOptions::fault_budget) skip unreadable subtrees and return
// flagged, partial answers (QueryResponse::completeness = kDegraded)
// instead of failing — every returned neighbor is genuine, some may be
// missing. Stream deadlines are enforced through an I/O watchdog on the
// worker pool, so they also bound time stuck inside a storage read.
//
// Serving through writes (ServiceWriteOptions::enabled over a mutable
// DurableIndex): a single writer thread drains a bounded mutation queue
// in batches, applies Insert/Delete to the shared tree under the
// exclusive side of a reader-writer lock, and makes each batch durable
// with one DurableIndex::Commit. Readers take the shared side per query,
// so they never observe a half-applied batch — between batches they see
// a consistent snapshot, and the generation counter in Snapshot() counts
// the handoffs. Commits run *outside* the exclusive section (the tree is
// quiescent while the writer is the only mutator), so reads overlap the
// fsync. A mutation's future resolves only once its batch is durable:
// ack implies recoverable.
//
// Write-side degradation (DESIGN.md §10): the service runs a three-state
// machine, kServing -> kReadOnly -> kFailed. A disk-space watchdog
// (min_free_bytes over an injectable probe) trips kReadOnly *before* the
// WAL append that would hit ENOSPC; a clean out-of-space failure from
// the store does the same after the fact. In kReadOnly new writes are
// shed with kResourceExhausted, queries serve normally, and the already
// applied-but-uncommitted batch is retried until space returns, then the
// service resumes on its own (or via ResumeWrites()). A fail-stopped fd
// (failed fsync, EIO, torn write — see storage/file_io.h) or DataLoss
// moves to kFailed: permanent for this process, writes fail, reads keep
// serving; only crash recovery in a fresh process resumes writes.

#ifndef BLOBWORLD_SERVICE_QUERY_SERVICE_H_
#define BLOBWORLD_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "storage/wal_ship.h"
#include "gist/nn_cursor.h"
#include "gist/tree.h"
#include "pages/buffer_pool.h"
#include "pages/sharded_buffer_pool.h"
#include "util/histogram.h"
#include "util/status.h"

namespace bw::service {

/// What to do with a submission that finds the queue full.
enum class OverflowPolicy {
  kReject,  // fail fast with Status::Unavailable (default).
  kBlock,   // apply backpressure: block the submitter until space frees.
};

/// Write-path health of the service (see the state machine in the file
/// header and DESIGN.md §10). Reads serve in every state.
enum class WriteState {
  kServing,   // mutations admitted, applied, and committed normally.
  kReadOnly,  // resource exhaustion: new writes shed, pending batch
              // retried; auto-resumes when the space probe clears.
  kFailed,    // fail-stopped log or data loss: writes permanently shed
              // in this process; recovery in a fresh one resumes them.
};

/// Online mutation configuration. Writes require the service to front a
/// mutable DurableIndex (the `core::DurableIndex*` or owning-unique_ptr
/// constructors); enabling them on a bare tree or BuiltIndex aborts.
struct ServiceWriteOptions {
  /// Master switch: false (default) keeps the service strictly
  /// read-only — the pre-write-path contract.
  bool enabled = false;
  /// Maximum admitted-but-not-yet-applied mutations.
  size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Mutations applied + committed per batch (one fsync per batch, one
  /// reader-visible generation per batch).
  size_t batch_size = 16;
  /// Disk-space watchdog: once the probe reports fewer free bytes, the
  /// service trips kReadOnly *before* appending to the WAL, instead of
  /// discovering ENOSPC inside a commit. 0 disables the watchdog
  /// (a clean ENOSPC from the store still trips kReadOnly after the
  /// fact).
  uint64_t min_free_bytes = 0;
  /// Free-space probe for the watchdog; defaults to statvfs on the
  /// WAL's directory. Injectable so tests (and the chaos harness) can
  /// script exhaustion and recovery without filling a real disk.
  std::function<uint64_t()> free_space_probe;
  /// How often the writer retries the pending commit while kReadOnly.
  std::chrono::milliseconds retry_interval{10};
};

/// Service configuration.
struct ServiceOptions {
  /// Worker threads executing queries (>= 1).
  size_t num_workers = 4;
  /// Maximum queued (admitted but not yet executing) requests.
  size_t queue_capacity = 128;
  /// Capacity, in pages, of each worker's private LRU buffer pool when
  /// shared_pool=false; with the shared pool it sizes the default
  /// shared capacity (see shared_pool_pages). 0 caches nothing but
  /// still keeps per-worker I/O accounting.
  size_t worker_pool_pages = 256;
  /// Serve all workers from one process-wide ShardedBufferPool (each
  /// worker reads through its own session). false restores the
  /// original per-worker private BufferPool layout — the baseline the
  /// read-path benchmarks compare against.
  bool shared_pool = true;
  /// Total page capacity of the shared pool. 0 (default) derives
  /// num_workers * worker_pool_pages, so switching shared_pool on or
  /// off holds the total cache budget constant.
  size_t shared_pool_pages = 0;
  /// Lock shards in the shared pool; 0 (default) auto-sizes from
  /// hardware concurrency (see pages::ShardedPoolOptions::shards).
  size_t pool_shards = 0;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Simulated random-read latency per buffer-pool miss (microseconds),
  /// forwarded to the worker pools. Models the paper's disk so benches
  /// can measure I/O overlap across workers in wall-clock time; 0 for
  /// pure in-memory serving.
  uint32_t io_delay_us = 0;
  /// When true, the worker pools accept frontier prefetch batches: the
  /// k-NN traversal hands each expanded internal node's nearest
  /// children to the pool as one batch, which pays io_delay_us once per
  /// batch instead of once per cold child (the async-read model). Off
  /// by default — prefetching changes hit/miss accounting, so existing
  /// experiments keep their numbers.
  bool frontier_prefetch = false;
  /// Start with execution paused (requests are admitted and queued but
  /// not run until Resume()). Used by admission-control tests and for
  /// warm-up staging.
  bool start_paused = false;
  /// Per-query fault budget: how many unreadable subtrees one query may
  /// skip (returning a flagged, degraded answer) before failing outright.
  /// 0 (default) is fail-closed — the first read fault fails the query,
  /// exactly the pre-fault-tolerance behavior.
  size_t fault_budget = 0;
  /// Online write path (off by default; see ServiceWriteOptions).
  ServiceWriteOptions write;
};

/// Limits for a streaming (incremental NN cursor) request.
struct StreamOptions {
  /// Stop after this many results; 0 = no count limit.
  size_t max_results = 0;
  /// Stop once the cursor frontier exceeds this distance: everything
  /// within the budget radius has then been returned, exactly
  /// (NnCursor::FrontierDistance early-stop).
  double budget_radius = std::numeric_limits<double>::infinity();
  /// Wall-clock execution budget in microseconds, measured from the
  /// moment a worker picks the request up; 0 = no deadline. Expiry
  /// returns the results streamed so far with metrics.truncated set.
  /// The deadline also covers time stuck *inside* a storage read: the
  /// worker's buffer pool runs an I/O watchdog for the duration of the
  /// stream, so a read that outlives the deadline is cut off mid-fetch
  /// instead of being waited out.
  double deadline_us = 0;
  /// Bound on how long OpenCursor may wait for the tree's generation
  /// lock (a writer applying a batch holds it exclusively); 0 = wait
  /// indefinitely, the classic single-service behavior. Callers that
  /// hold cursors on *several* services at once (the shard router)
  /// must set a bound: the open then polls with try_lock — which can
  /// never participate in a deadlock cycle — and gives up with a null
  /// cursor after the timeout instead of risking a cross-service
  /// lock-order inversion against the writer threads.
  double open_timeout_us = 0;
};

/// Per-query measurements, returned with every response.
struct QueryMetrics {
  double latency_us = 0;     // execution time on the worker.
  double queue_wait_us = 0;  // admission -> start of execution.
  uint64_t internal_accesses = 0;  // tree nodes visited, by level.
  uint64_t leaf_accesses = 0;
  uint64_t pool_hits = 0;    // buffer-pool hits / misses by this query.
  uint64_t pool_misses = 0;
  /// Pages this query's misses evicted from the pool (shared pool:
  /// evictions performed by this query's fetches; private pools: this
  /// worker's LRU evictions).
  uint64_t pool_evictions = 0;
  /// Shard-lock contention events this query's fetches hit in the
  /// shared pool (always 0 with private per-worker pools).
  uint64_t pool_contention = 0;
  /// Unreadable subtrees this query skipped under its fault budget.
  uint64_t pages_skipped = 0;
  /// Streaming only: the deadline expired before the stream finished.
  bool truncated = false;
};

/// Whether a response covers the full answer set.
enum class Completeness {
  /// Every reachable page was read: the answer is exact.
  kComplete,
  /// One or more subtrees were skipped under the fault budget: the
  /// answer is a genuine subset of the true answer (every returned
  /// neighbor is real; some may be missing).
  kDegraded,
};

/// Results + metrics of one executed query.
struct QueryResponse {
  std::vector<gist::Neighbor> neighbors;
  QueryMetrics metrics;
  Completeness completeness = Completeness::kComplete;

  bool degraded() const { return completeness == Completeness::kDegraded; }
};

/// What a mutation's future resolves to once its batch is durable.
struct MutationOutcome {
  /// Commit tag of the batch that made this mutation durable: the
  /// cumulative count of mutations applied to this replica, so two
  /// replicas fed the same admission sequence converge on the same tag
  /// even if their writers grouped the mutations into different batches
  /// — which is what makes tags comparable across a fleet (the catch-up
  /// position, DESIGN.md §13). After a crash,
  /// RecoveryManager::Summary::last_commit_tag names the newest
  /// surviving batch, so acked tags <= it are exactly the recovered set.
  uint64_t tag = 0;
  double queue_wait_us = 0;  // admission -> writer picked the batch up.
  double apply_us = 0;       // tree apply time for this batch.
};

// ---------------------------------------------------------------------------
// Replica catch-up surface (DESIGN.md §13). A stale replica converges
// onto a healthy sibling by applying the sibling's committed WAL
// batches (tags above its own) — or, when the sibling's checkpoint
// already folded the needed batches away, by re-imaging every page from
// a snapshot and continuing with WAL batches from the snapshot's tag.
// ---------------------------------------------------------------------------

/// Where a replica stands, tag-wise (cheap; poll freely).
struct CatchupPosition {
  /// Newest durable commit tag (cumulative mutation count).
  uint64_t last_tag = 0;
  /// WAL-shipping horizon: batches at or below this tag are no longer
  /// in the log (folded by a checkpoint).
  uint64_t checkpoint_tag = 0;
  uint64_t page_count = 0;
};

/// Committed batches read back out of the live WAL for shipping.
struct WalTail {
  std::vector<storage::ShippedBatch> batches;
  /// The requested after_tag is below the checkpoint horizon: the WAL
  /// path cannot converge this target; take the snapshot path.
  bool snapshot_needed = false;
  /// Budget ran out with qualifying batches left; pull again.
  bool more = false;
  /// The source's newest durable tag at read time.
  uint64_t last_tag = 0;
};

/// One contiguous run of page images from a full-store snapshot.
struct SnapshotChunk {
  /// Source tag the images reflect; all chunks of one snapshot must
  /// carry the same tag or the target restarts from page 0.
  uint64_t tag = 0;
  uint64_t total_pages = 0;
  uint32_t start_page = 0;
  /// kPageImage records for pages [start_page, start_page + size()).
  std::vector<storage::ShippedRecord> pages;
};

/// Bit-identity handshake: CRC over every encoded page in id order,
/// valid only when compared at equal tags with writes quiescent.
struct TreeSum {
  uint64_t tag = 0;
  uint64_t page_count = 0;
  uint32_t crc = 0;
};

/// Aggregated service counters and latency distribution.
struct ServiceSnapshot {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // refused by admission control.
  uint64_t completed = 0;
  uint64_t failed = 0;     // executed but returned an error Status.
  uint64_t truncated_streams = 0;
  uint64_t degraded_responses = 0;   // completed with a partial answer.
  uint64_t pages_skipped = 0;        // subtrees skipped, summed.
  uint64_t watchdog_expirations = 0; // streams cut off mid-storage-read.
  uint64_t leaf_accesses = 0;
  uint64_t internal_accesses = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;    // pages evicted to admit misses.
  uint64_t pool_contention = 0;   // shared-pool shard-lock contention.
  uint64_t pool_shards = 0;       // shard count (0 = private pools).
  /// Mirrored from the served store's self-healing machinery when the
  /// service fronts a DurableIndex (all zero otherwise).
  uint64_t store_read_retries = 0;       // transient read faults absorbed.
  uint64_t store_pages_quarantined = 0;  // currently quarantined.
  uint64_t store_quarantines_total = 0;  // lifetime quarantine events.
  uint64_t store_repairs_total = 0;      // lifetime successful repairs.
  double elapsed_seconds = 0;  // since service start.
  double qps = 0;              // completed / elapsed_seconds.
  double mean_latency_us = 0;
  uint64_t p50_latency_us = 0;
  uint64_t p95_latency_us = 0;
  uint64_t p99_latency_us = 0;
  uint64_t p999_latency_us = 0;
  // --- Write path (meaningful only when writes are enabled) ------------
  bool writes_enabled = false;
  WriteState write_state = WriteState::kServing;
  /// True whenever the write path is not fully serving (kReadOnly or
  /// kFailed): the "degraded but answering" flag operators alert on.
  bool write_degraded = false;
  uint64_t write_queue_depth = 0;   // admitted, not yet applied.
  uint64_t writes_submitted = 0;
  uint64_t writes_rejected = 0;     // shed at admission (full/degraded).
  uint64_t writes_acked = 0;        // durable and future-resolved.
  uint64_t writes_failed = 0;       // resolved with an error status.
  uint64_t commit_batches = 0;      // durable batches this service made.
  /// Reader-visible snapshot handoffs: incremented once per applied
  /// batch, under the writer's exclusive lock.
  uint64_t generation = 0;
  /// WAL rotation, mirrored after each commit (0 in single-file mode).
  uint64_t wal_live_bytes = 0;
  uint64_t wal_segments_created = 0;
  uint64_t wal_segments_retired = 0;
  /// Catch-up: shipped WAL batches / snapshot chunks this replica has
  /// applied, and whether a snapshot restore is in flight right now
  /// (queries are shed while it is).
  uint64_t catchup_batches_applied = 0;
  uint64_t snapshot_chunks_applied = 0;
  bool snapshot_restoring = false;
  double mean_write_latency_us = 0;  // submission -> durable ack.
  uint64_t p50_write_latency_us = 0;
  uint64_t p99_write_latency_us = 0;
  uint64_t p999_write_latency_us = 0;
};

/// A thread-pool query executor over one shared read-only index.
///
///   auto built = bw::core::BuildIndex(vectors, build_options);
///   bw::service::QueryService service(std::move(*built), {});
///   auto future = service.SubmitKnn(query, 200);
///   if (future.ok()) { auto response = future->get(); ... }
///
/// Submit* methods are thread-safe and may be called from any number of
/// client threads. The returned future resolves to Result<QueryResponse>
/// once a worker has executed the query. The tree must not be mutated
/// while the service is alive.
class QueryService {
 public:
  using Response = Result<QueryResponse>;
  using ResponseFuture = std::future<Response>;
  using MutationResult = Result<MutationOutcome>;
  using MutationFuture = std::future<MutationResult>;

  /// Serves a tree owned by the caller (must outlive the service and
  /// stay unmodified).
  QueryService(const gist::Tree& tree, ServiceOptions options);

  /// Takes ownership of a built index and serves its tree.
  QueryService(std::unique_ptr<core::BuiltIndex> index,
               ServiceOptions options);

  /// Takes ownership of a durable (possibly crash-recovered) index and
  /// serves its tree. Without ServiceWriteOptions::enabled the store
  /// stays quiescent while serving (the read-only contract); with it,
  /// the service's writer thread is the store's single mutator.
  QueryService(std::unique_ptr<core::DurableIndex> index,
               ServiceOptions options);

  /// Serves a durable index owned by the caller (must outlive the
  /// service). The caller may run scrub/repair on the store's
  /// self-healing surface while the service serves — that is the
  /// intended degraded-serving + background-repair deployment, and the
  /// chaos soak harness's shape. With ServiceWriteOptions::enabled the
  /// caller must NOT mutate or commit the index itself: the writer
  /// thread owns the store's entire mutation side.
  QueryService(core::DurableIndex* index, ServiceOptions options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Drains the queue and joins all workers.
  ~QueryService();

  // --- Submission (thread-safe) ----------------------------------------

  /// Exact k-nearest-neighbor request.
  Result<ResponseFuture> SubmitKnn(geom::Vec query, size_t k);

  /// All points within `radius` of `query`.
  Result<ResponseFuture> SubmitRange(geom::Vec query, double radius);

  /// Streaming nearest-first request with count/radius/deadline limits.
  Result<ResponseFuture> SubmitStream(geom::Vec query, StreamOptions stream);

  /// Synchronous convenience wrapper around SubmitKnn.
  Response Knn(const geom::Vec& query, size_t k);

  // --- Incremental streaming (thread-safe to open; see StreamCursor) ----

  /// An open incremental nearest-first stream over the served index —
  /// the in-process shard frontier the scatter-gather router merges.
  /// Results arrive one at a time in non-decreasing distance order,
  /// subject to the StreamOptions limits (count, budget radius,
  /// deadline with I/O watchdog), with the same degraded-read
  /// accounting as SubmitStream.
  ///
  /// The cursor holds the shared side of the tree lock and a private
  /// page-reader session for its whole lifetime: writer batches cannot
  /// apply while one is open, exactly as if a query were executing, so
  /// close cursors promptly. Runs on the calling thread (it bypasses
  /// the worker pool and its admission queue — the caller *is* the
  /// worker). Not thread-safe; one thread per cursor.
  class StreamCursor {
   public:
    ~StreamCursor();
    StreamCursor(const StreamCursor&) = delete;
    StreamCursor& operator=(const StreamCursor&) = delete;

    /// The next neighbor, or nullopt once the stream is finished:
    /// exhausted, count/radius limit reached, or deadline expired
    /// (distinguish via truncated()). After the first nullopt or
    /// error every later call returns nullopt.
    Result<std::optional<gist::Neighbor>> Next();

    /// Lower bound on the distance of everything not yet returned
    /// (infinity once exhausted): the router's pruning bound.
    double FrontierDistance() const;

    /// Degraded-read accounting so far (grows as faults are absorbed).
    bool degraded() const { return degraded_.degraded(); }
    uint64_t pages_skipped() const { return degraded_.skipped.size(); }
    /// True once the deadline (or its I/O watchdog) cut the stream off.
    bool truncated() const { return truncated_; }
    size_t produced() const { return returned_; }

   private:
    friend class QueryService;
    StreamCursor(QueryService* service, geom::Vec query,
                 StreamOptions limits,
                 std::unique_ptr<pages::PageReader> reader);

    QueryService* service_;
    std::shared_lock<std::shared_mutex> lock_;
    std::unique_ptr<pages::PageReader> reader_;
    geom::Vec query_;
    StreamOptions limits_;
    gist::TraversalStats traversal_;
    gist::DegradedRead degraded_;
    std::unique_ptr<gist::NnCursor> cursor_;  // reads through reader_.
    std::chrono::steady_clock::time_point start_;
    size_t returned_ = 0;
    bool truncated_ = false;
    bool finished_ = false;
    bool errored_ = false;
  };

  /// Opens a streaming cursor with the given limits. The service must
  /// outlive the cursor.
  std::unique_ptr<StreamCursor> OpenCursor(geom::Vec query,
                                           StreamOptions limits);

  // --- Mutations (thread-safe; require ServiceWriteOptions::enabled) ----

  /// Admits one insert into the bounded mutation queue. The future
  /// resolves once the batch containing it is durable (ack == will
  /// survive a crash). Admission fails with InvalidArgument when writes
  /// are not enabled, Unavailable when the queue is full under kReject
  /// (retryable), kResourceExhausted while kReadOnly (resubmit after
  /// capacity returns), and IoError once kFailed.
  Result<MutationFuture> SubmitInsert(geom::Vec point, gist::Rid rid);

  /// Same admission contract; the future resolves with NotFound if the
  /// pair was absent (the batch still commits for its other mutations).
  Result<MutationFuture> SubmitDelete(geom::Vec point, gist::Rid rid);

  /// Current write-path state (relaxed read; exact after quiescence).
  WriteState write_state() const {
    return write_state_.load(std::memory_order_relaxed);
  }

  /// Nudges the writer to re-probe free space and retry the pending
  /// commit now instead of at the next retry interval. No-op unless
  /// kReadOnly.
  void ResumeWrites();

  // --- Replica catch-up (thread-safe; requires a durable index) ---------
  //
  // Source-side reads (Position/ReadWalTail/ReadSnapshotChunk/
  // TreeChecksum) serve from committed state and refuse (kUnavailable)
  // while writes are in flight where a torn view could leak. Target-side
  // applies (ApplyWalBatch/ApplySnapshotChunk) mutate the store outside
  // the writer thread and are only safe while the replica is out of the
  // router's write rotation — the driver's contract; a write that does
  // land mid-catch-up merely diverges the replica again (the checksum
  // handshake catches it), it cannot corrupt the store.

  /// Tag position of this replica (cheap poll).
  Result<CatchupPosition> Position() const;

  /// Reads committed batches with tag > after_tag from the live WAL,
  /// bounded by max_batches / max_bytes; sets snapshot_needed instead
  /// when after_tag is below the checkpoint horizon.
  Result<WalTail> ReadWalTail(uint64_t after_tag, size_t max_batches,
                              size_t max_bytes);

  /// Applies one shipped batch: redo records under the exclusive tree
  /// lock, meta refresh + generation bump, then a commit carrying the
  /// batch's tag. Batches at or below the current tag are skipped (OK)
  /// so retries are idempotent. Unavailable while local writes are in
  /// flight.
  Status ApplyWalBatch(const storage::ShippedBatch& batch);

  /// Reads one run of page images starting at start_page (~max_bytes
  /// budget, always at least one page). All chunks of one snapshot must
  /// report the same tag; a change means a write landed mid-snapshot —
  /// restart from page 0.
  Result<SnapshotChunk> ReadSnapshotChunk(uint32_t start_page,
                                          size_t max_bytes);

  /// Applies one snapshot chunk. `first` starts the restore (queries
  /// are shed until the restore finishes — the tree is torn between
  /// chunks); `last` refreshes the tree meta, commits at the chunk's
  /// tag, checkpoints, and resumes queries. FailedPrecondition if this
  /// store has more pages than the snapshot (page stores never shrink;
  /// such a replica needs an operator rebuild).
  Status ApplySnapshotChunk(const SnapshotChunk& chunk, bool first,
                            bool last);

  /// CRC over every encoded page in id order + the durable tag: the
  /// readmission handshake. Two replicas with equal tags and equal
  /// checksums are bit-identical. Unavailable while writes are in
  /// flight (the sum must describe exactly the committed state).
  Result<TreeSum> TreeChecksum() const;

  // --- Control ----------------------------------------------------------

  /// Stops dequeuing (in-flight queries finish; submissions still
  /// admitted). Idempotent.
  void Pause();
  /// Resumes execution after Pause() or start_paused.
  void Resume();
  /// Rejects new submissions, drains queued work, joins workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  // --- Introspection ----------------------------------------------------

  /// Requests admitted but not yet picked up by a worker.
  size_t queue_depth() const;
  size_t num_workers() const { return options_.num_workers; }
  const gist::Tree& tree() const { return *tree_; }

  /// Point-in-time aggregate of all per-query metrics recorded so far.
  /// Safe to call concurrently with serving; counters are relaxed
  /// atomics, so the view may lag in-flight queries by a few samples.
  ServiceSnapshot Snapshot() const;

 private:
  enum class Kind { kKnn, kRange, kStream };

  struct Task {
    Kind kind = Kind::kKnn;
    geom::Vec query;
    size_t k = 0;
    double radius = 0;
    StreamOptions stream;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  enum class MutationKind { kInsert, kDelete };

  struct Mutation {
    MutationKind kind = MutationKind::kInsert;
    geom::Vec point;
    gist::Rid rid = 0;
    std::promise<MutationResult> promise;
    std::chrono::steady_clock::time_point enqueue_time;
    double queue_wait_us = 0;
    double apply_us = 0;
    /// Set when the tree apply itself failed (e.g. NotFound for an
    /// absent delete): the promise resolves with this at commit time.
    Status apply_status;
  };

  void Start();
  Result<ResponseFuture> Submit(Task task);
  void WorkerLoop(size_t worker_index);
  /// Runs one query through the calling worker's reader (a shared-pool
  /// session or a private BufferPool). Fills metrics.latency_us/
  /// accesses/pool counters; queue_wait_us is set by the caller.
  Response Execute(Task& task, pages::PageReader* pool);

  // --- Write path (single writer thread) --------------------------------

  Result<MutationFuture> SubmitMutation(Mutation mutation);
  void WriterLoop();
  /// True when the space probe says the watchdog threshold is clear
  /// (or no watchdog is configured).
  bool FreeSpaceOk() const;
  /// Commits the applied-but-unacked batch; on success resolves every
  /// pending promise. Called with no tree lock held (the writer is the
  /// only mutator, so the pages it encodes are quiescent).
  Status CommitPendingBatch();
  /// Applies `todo` to the tree under the exclusive lock, moving each
  /// mutation into pending_ and bumping the generation.
  void ApplyBatch(std::vector<Mutation>* todo);
  /// Transitions + bookkeeping for a commit/watchdog verdict.
  void EnterReadOnly();
  void EnterFailed(const Status& cause);
  /// Fails every queued + pending mutation with `status` (used on
  /// kFailed and on shutdown while degraded).
  void ShedAllWrites(const Status& status);
  /// Mirrors WAL rotation counters into atomics Snapshot can read
  /// without racing the writer.
  void MirrorWalStats();

  std::unique_ptr<core::BuiltIndex> owned_index_;      // may be null.
  std::unique_ptr<core::DurableIndex> owned_durable_;  // may be null.
  const gist::Tree* tree_;
  /// The durable index being served, owned or not; null when serving a
  /// bare tree or BuiltIndex. Snapshot() mirrors its health counters.
  const core::DurableIndex* durable_ = nullptr;
  /// Mutable view of the same index; set by the DurableIndex
  /// constructors, required (checked) when writes are enabled.
  core::DurableIndex* mutable_durable_ = nullptr;
  ServiceOptions options_;

  /// Reader-writer lock around the tree: every query holds the shared
  /// side for its whole execution; the writer holds the exclusive side
  /// across the apply of one whole batch. This is what makes a batch
  /// atomic from a reader's point of view.
  mutable std::shared_mutex tree_mutex_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Task> queue_;
  bool paused_ = false;
  bool shutdown_ = false;

  /// Shared page cache (null when shared_pool=false). Workers never
  /// touch it directly — only through their sessions in
  /// worker_readers_, which keeps watchdog state worker-private.
  std::unique_ptr<pages::ShardedBufferPool> shared_pool_;
  /// One reader per worker: ShardedBufferPool sessions when sharing,
  /// private BufferPools otherwise.
  std::vector<std::unique_ptr<pages::PageReader>> worker_readers_;
  std::vector<std::thread> workers_;

  // --- Write-path state (guarded by write_mutex_ unless atomic) --------
  mutable std::mutex write_mutex_;
  std::condition_variable write_cv_;
  std::deque<Mutation> write_queue_;
  /// Applied to the tree, not yet durable: the retryable pending batch.
  /// Non-empty only between a clean commit failure (or watchdog trip
  /// mid-batch) and the commit that finally lands it.
  std::vector<Mutation> pending_;
  bool write_shutdown_ = false;
  bool resume_requested_ = false;
  /// True from the moment the writer pops a batch off write_queue_
  /// until that batch's commit attempt returns: the window where
  /// in-flight mutations live in neither queue. The catch-up reads
  /// check it (with the queues) to decide the replica is quiescent.
  bool writer_applying_ = false;
  std::atomic<WriteState> write_state_{WriteState::kServing};
  std::thread writer_;

  /// Serializes every WAL-touching operation: the writer's commit, WAL
  /// tail reads (which sync and then scan the segment files — a
  /// concurrent checkpoint would retire them mid-read), shipped-batch
  /// applies, snapshot chunk reads, and tree checksums. Always acquired
  /// before tree_mutex_ when both are needed; the writer's tree apply
  /// takes tree_mutex_ alone, so the order cannot invert.
  mutable std::mutex commit_mutex_;
  /// Set between the first and last chunk of a snapshot restore: the
  /// tree is torn across chunks, so queries and cursors are shed until
  /// the final chunk commits. Stays set if a restore fails mid-way —
  /// the replica is inconsistent until a snapshot completes.
  std::atomic<bool> snapshot_restoring_{false};

  // Aggregate metrics (relaxed atomics: hot-path increments never
  // contend on a lock).
  LatencyHistogram latency_histogram_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> truncated_streams_{0};
  std::atomic<uint64_t> degraded_responses_{0};
  std::atomic<uint64_t> pages_skipped_{0};
  std::atomic<uint64_t> watchdog_expirations_{0};
  std::atomic<uint64_t> leaf_accesses_{0};
  std::atomic<uint64_t> internal_accesses_{0};
  std::atomic<uint64_t> pool_hits_{0};
  std::atomic<uint64_t> pool_misses_{0};
  std::atomic<uint64_t> pool_evictions_{0};
  std::atomic<uint64_t> pool_contention_{0};
  LatencyHistogram write_latency_histogram_;
  std::atomic<uint64_t> writes_submitted_{0};
  std::atomic<uint64_t> writes_rejected_{0};
  std::atomic<uint64_t> writes_acked_{0};
  std::atomic<uint64_t> writes_failed_{0};
  std::atomic<uint64_t> commit_batches_{0};
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> wal_live_bytes_{0};
  std::atomic<uint64_t> wal_segments_created_{0};
  std::atomic<uint64_t> wal_segments_retired_{0};
  std::atomic<uint64_t> catchup_batches_applied_{0};
  std::atomic<uint64_t> snapshot_chunks_applied_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace bw::service

#endif  // BLOBWORLD_SERVICE_QUERY_SERVICE_H_
