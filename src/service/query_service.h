// Concurrent query service over a shared read-only index: the serving
// tier the paper's Blobworld front end implies ("give me images until
// the user stops scrolling", many users at once) but the one-shot bench
// binaries never built. A fixed pool of worker threads executes k-NN,
// range, and streaming cursor-with-deadline requests against one shared
// gist::Tree; a bounded submission queue applies admission control
// (reject-with-Status or block, configurable); every query returns
// latency + I/O metrics and the service aggregates them into a
// lock-cheap latency histogram and throughput snapshot.
//
// Concurrency model (see the audited contracts in gist/tree.h and
// pages/page_file.h): the tree, its extension, and the page file are
// shared and strictly read-only during serving. By default all workers
// share one process-wide pages::ShardedBufferPool (lock-sharded CLOCK
// cache over the store), each worker reading through its own Session so
// watchdog state and per-query stat deltas stay worker-private while
// cached pages are shared — one worker's miss warms every other
// worker's read path. Setting ServiceOptions::shared_pool=false
// restores the original per-worker private BufferPool layout
// (charge_file_io=false), kept as the comparison baseline for the
// read-path benchmarks. Either way the shared PageFile is only ever
// touched through its const PeekNoIo path.
//
// Serving through faults: when the store underneath quarantines pages
// (see storage/page_health.h), queries carrying a fault budget
// (ServiceOptions::fault_budget) skip unreadable subtrees and return
// flagged, partial answers (QueryResponse::completeness = kDegraded)
// instead of failing — every returned neighbor is genuine, some may be
// missing. Stream deadlines are enforced through an I/O watchdog on the
// worker pool, so they also bound time stuck inside a storage read.

#ifndef BLOBWORLD_SERVICE_QUERY_SERVICE_H_
#define BLOBWORLD_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/durable_index.h"
#include "core/index_factory.h"
#include "gist/nn_cursor.h"
#include "gist/tree.h"
#include "pages/buffer_pool.h"
#include "pages/sharded_buffer_pool.h"
#include "util/histogram.h"
#include "util/status.h"

namespace bw::service {

/// What to do with a submission that finds the queue full.
enum class OverflowPolicy {
  kReject,  // fail fast with Status::Unavailable (default).
  kBlock,   // apply backpressure: block the submitter until space frees.
};

/// Service configuration.
struct ServiceOptions {
  /// Worker threads executing queries (>= 1).
  size_t num_workers = 4;
  /// Maximum queued (admitted but not yet executing) requests.
  size_t queue_capacity = 128;
  /// Capacity, in pages, of each worker's private LRU buffer pool when
  /// shared_pool=false; with the shared pool it sizes the default
  /// shared capacity (see shared_pool_pages). 0 caches nothing but
  /// still keeps per-worker I/O accounting.
  size_t worker_pool_pages = 256;
  /// Serve all workers from one process-wide ShardedBufferPool (each
  /// worker reads through its own session). false restores the
  /// original per-worker private BufferPool layout — the baseline the
  /// read-path benchmarks compare against.
  bool shared_pool = true;
  /// Total page capacity of the shared pool. 0 (default) derives
  /// num_workers * worker_pool_pages, so switching shared_pool on or
  /// off holds the total cache budget constant.
  size_t shared_pool_pages = 0;
  /// Lock shards in the shared pool; 0 (default) auto-sizes from
  /// hardware concurrency (see pages::ShardedPoolOptions::shards).
  size_t pool_shards = 0;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Simulated random-read latency per buffer-pool miss (microseconds),
  /// forwarded to the worker pools. Models the paper's disk so benches
  /// can measure I/O overlap across workers in wall-clock time; 0 for
  /// pure in-memory serving.
  uint32_t io_delay_us = 0;
  /// Start with execution paused (requests are admitted and queued but
  /// not run until Resume()). Used by admission-control tests and for
  /// warm-up staging.
  bool start_paused = false;
  /// Per-query fault budget: how many unreadable subtrees one query may
  /// skip (returning a flagged, degraded answer) before failing outright.
  /// 0 (default) is fail-closed — the first read fault fails the query,
  /// exactly the pre-fault-tolerance behavior.
  size_t fault_budget = 0;
};

/// Limits for a streaming (incremental NN cursor) request.
struct StreamOptions {
  /// Stop after this many results; 0 = no count limit.
  size_t max_results = 0;
  /// Stop once the cursor frontier exceeds this distance: everything
  /// within the budget radius has then been returned, exactly
  /// (NnCursor::FrontierDistance early-stop).
  double budget_radius = std::numeric_limits<double>::infinity();
  /// Wall-clock execution budget in microseconds, measured from the
  /// moment a worker picks the request up; 0 = no deadline. Expiry
  /// returns the results streamed so far with metrics.truncated set.
  /// The deadline also covers time stuck *inside* a storage read: the
  /// worker's buffer pool runs an I/O watchdog for the duration of the
  /// stream, so a read that outlives the deadline is cut off mid-fetch
  /// instead of being waited out.
  double deadline_us = 0;
};

/// Per-query measurements, returned with every response.
struct QueryMetrics {
  double latency_us = 0;     // execution time on the worker.
  double queue_wait_us = 0;  // admission -> start of execution.
  uint64_t internal_accesses = 0;  // tree nodes visited, by level.
  uint64_t leaf_accesses = 0;
  uint64_t pool_hits = 0;    // buffer-pool hits / misses by this query.
  uint64_t pool_misses = 0;
  /// Pages this query's misses evicted from the pool (shared pool:
  /// evictions performed by this query's fetches; private pools: this
  /// worker's LRU evictions).
  uint64_t pool_evictions = 0;
  /// Shard-lock contention events this query's fetches hit in the
  /// shared pool (always 0 with private per-worker pools).
  uint64_t pool_contention = 0;
  /// Unreadable subtrees this query skipped under its fault budget.
  uint64_t pages_skipped = 0;
  /// Streaming only: the deadline expired before the stream finished.
  bool truncated = false;
};

/// Whether a response covers the full answer set.
enum class Completeness {
  /// Every reachable page was read: the answer is exact.
  kComplete,
  /// One or more subtrees were skipped under the fault budget: the
  /// answer is a genuine subset of the true answer (every returned
  /// neighbor is real; some may be missing).
  kDegraded,
};

/// Results + metrics of one executed query.
struct QueryResponse {
  std::vector<gist::Neighbor> neighbors;
  QueryMetrics metrics;
  Completeness completeness = Completeness::kComplete;

  bool degraded() const { return completeness == Completeness::kDegraded; }
};

/// Aggregated service counters and latency distribution.
struct ServiceSnapshot {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // refused by admission control.
  uint64_t completed = 0;
  uint64_t failed = 0;     // executed but returned an error Status.
  uint64_t truncated_streams = 0;
  uint64_t degraded_responses = 0;   // completed with a partial answer.
  uint64_t pages_skipped = 0;        // subtrees skipped, summed.
  uint64_t watchdog_expirations = 0; // streams cut off mid-storage-read.
  uint64_t leaf_accesses = 0;
  uint64_t internal_accesses = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;    // pages evicted to admit misses.
  uint64_t pool_contention = 0;   // shared-pool shard-lock contention.
  uint64_t pool_shards = 0;       // shard count (0 = private pools).
  /// Mirrored from the served store's self-healing machinery when the
  /// service fronts a DurableIndex (all zero otherwise).
  uint64_t store_read_retries = 0;       // transient read faults absorbed.
  uint64_t store_pages_quarantined = 0;  // currently quarantined.
  uint64_t store_quarantines_total = 0;  // lifetime quarantine events.
  uint64_t store_repairs_total = 0;      // lifetime successful repairs.
  double elapsed_seconds = 0;  // since service start.
  double qps = 0;              // completed / elapsed_seconds.
  double mean_latency_us = 0;
  uint64_t p50_latency_us = 0;
  uint64_t p95_latency_us = 0;
  uint64_t p99_latency_us = 0;
};

/// A thread-pool query executor over one shared read-only index.
///
///   auto built = bw::core::BuildIndex(vectors, build_options);
///   bw::service::QueryService service(std::move(*built), {});
///   auto future = service.SubmitKnn(query, 200);
///   if (future.ok()) { auto response = future->get(); ... }
///
/// Submit* methods are thread-safe and may be called from any number of
/// client threads. The returned future resolves to Result<QueryResponse>
/// once a worker has executed the query. The tree must not be mutated
/// while the service is alive.
class QueryService {
 public:
  using Response = Result<QueryResponse>;
  using ResponseFuture = std::future<Response>;

  /// Serves a tree owned by the caller (must outlive the service and
  /// stay unmodified).
  QueryService(const gist::Tree& tree, ServiceOptions options);

  /// Takes ownership of a built index and serves its tree.
  QueryService(std::unique_ptr<core::BuiltIndex> index,
               ServiceOptions options);

  /// Takes ownership of a durable (possibly crash-recovered) index and
  /// serves its tree; the store stays quiescent while serving (no
  /// commits or checkpoints), which is exactly the read-only contract.
  QueryService(std::unique_ptr<core::DurableIndex> index,
               ServiceOptions options);

  /// Serves a durable index owned by the caller (must outlive the
  /// service). The caller may run scrub/repair on the store's
  /// self-healing surface while the service serves — that is the
  /// intended degraded-serving + background-repair deployment, and the
  /// chaos soak harness's shape.
  QueryService(core::DurableIndex* index, ServiceOptions options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Drains the queue and joins all workers.
  ~QueryService();

  // --- Submission (thread-safe) ----------------------------------------

  /// Exact k-nearest-neighbor request.
  Result<ResponseFuture> SubmitKnn(geom::Vec query, size_t k);

  /// All points within `radius` of `query`.
  Result<ResponseFuture> SubmitRange(geom::Vec query, double radius);

  /// Streaming nearest-first request with count/radius/deadline limits.
  Result<ResponseFuture> SubmitStream(geom::Vec query, StreamOptions stream);

  /// Synchronous convenience wrapper around SubmitKnn.
  Response Knn(const geom::Vec& query, size_t k);

  // --- Control ----------------------------------------------------------

  /// Stops dequeuing (in-flight queries finish; submissions still
  /// admitted). Idempotent.
  void Pause();
  /// Resumes execution after Pause() or start_paused.
  void Resume();
  /// Rejects new submissions, drains queued work, joins workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  // --- Introspection ----------------------------------------------------

  /// Requests admitted but not yet picked up by a worker.
  size_t queue_depth() const;
  size_t num_workers() const { return options_.num_workers; }
  const gist::Tree& tree() const { return *tree_; }

  /// Point-in-time aggregate of all per-query metrics recorded so far.
  /// Safe to call concurrently with serving; counters are relaxed
  /// atomics, so the view may lag in-flight queries by a few samples.
  ServiceSnapshot Snapshot() const;

 private:
  enum class Kind { kKnn, kRange, kStream };

  struct Task {
    Kind kind = Kind::kKnn;
    geom::Vec query;
    size_t k = 0;
    double radius = 0;
    StreamOptions stream;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  void Start();
  Result<ResponseFuture> Submit(Task task);
  void WorkerLoop(size_t worker_index);
  /// Runs one query through the calling worker's reader (a shared-pool
  /// session or a private BufferPool). Fills metrics.latency_us/
  /// accesses/pool counters; queue_wait_us is set by the caller.
  Response Execute(Task& task, pages::PageReader* pool);

  std::unique_ptr<core::BuiltIndex> owned_index_;      // may be null.
  std::unique_ptr<core::DurableIndex> owned_durable_;  // may be null.
  const gist::Tree* tree_;
  /// The durable index being served, owned or not; null when serving a
  /// bare tree or BuiltIndex. Snapshot() mirrors its health counters.
  const core::DurableIndex* durable_ = nullptr;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Task> queue_;
  bool paused_ = false;
  bool shutdown_ = false;

  /// Shared page cache (null when shared_pool=false). Workers never
  /// touch it directly — only through their sessions in
  /// worker_readers_, which keeps watchdog state worker-private.
  std::unique_ptr<pages::ShardedBufferPool> shared_pool_;
  /// One reader per worker: ShardedBufferPool sessions when sharing,
  /// private BufferPools otherwise.
  std::vector<std::unique_ptr<pages::PageReader>> worker_readers_;
  std::vector<std::thread> workers_;

  // Aggregate metrics (relaxed atomics: hot-path increments never
  // contend on a lock).
  LatencyHistogram latency_histogram_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> truncated_streams_{0};
  std::atomic<uint64_t> degraded_responses_{0};
  std::atomic<uint64_t> pages_skipped_{0};
  std::atomic<uint64_t> watchdog_expirations_{0};
  std::atomic<uint64_t> leaf_accesses_{0};
  std::atomic<uint64_t> internal_accesses_{0};
  std::atomic<uint64_t> pool_hits_{0};
  std::atomic<uint64_t> pool_misses_{0};
  std::atomic<uint64_t> pool_evictions_{0};
  std::atomic<uint64_t> pool_contention_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace bw::service

#endif  // BLOBWORLD_SERVICE_QUERY_SERVICE_H_
