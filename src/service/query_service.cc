#include "service/query_service.h"

#include <sys/statvfs.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "pages/page_codec.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace bw::service {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

/// Default disk-space probe: free bytes on the filesystem holding
/// `path`'s directory. 0 on probe failure — fail-safe: an unprobeable
/// disk reads as exhausted, which sheds writes instead of risking them.
uint64_t FreeBytesNear(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  struct statvfs vfs;
  if (::statvfs(dir.c_str(), &vfs) != 0) return 0;
  return static_cast<uint64_t>(vfs.f_bavail) * vfs.f_frsize;
}

}  // namespace

QueryService::QueryService(const gist::Tree& tree, ServiceOptions options)
    : tree_(&tree), options_(options) {
  Start();
}

QueryService::QueryService(std::unique_ptr<core::BuiltIndex> index,
                           ServiceOptions options)
    : owned_index_(std::move(index)), options_(options) {
  BW_CHECK(owned_index_ != nullptr);
  tree_ = &owned_index_->tree();
  Start();
}

QueryService::QueryService(std::unique_ptr<core::DurableIndex> index,
                           ServiceOptions options)
    : owned_durable_(std::move(index)), options_(options) {
  BW_CHECK(owned_durable_ != nullptr);
  tree_ = &owned_durable_->tree();
  durable_ = owned_durable_.get();
  mutable_durable_ = owned_durable_.get();
  Start();
}

QueryService::QueryService(core::DurableIndex* index, ServiceOptions options)
    : options_(options) {
  BW_CHECK(index != nullptr);
  tree_ = &index->tree();
  durable_ = index;
  mutable_durable_ = index;
  Start();
}

void QueryService::Start() {
  BW_CHECK_GE(options_.num_workers, 1u);
  BW_CHECK_GE(options_.queue_capacity, 1u);
  paused_ = options_.start_paused;
  start_time_ = Clock::now();

  worker_readers_.reserve(options_.num_workers);
  workers_.reserve(options_.num_workers);
  // The const_cast is sound: the shared pool is PeekNoIo-only, and a
  // private pool with charge_file_io=false resolves every fetch through
  // the same const path — the shared file is never written through this
  // pointer either way.
  auto* file = const_cast<pages::PageStore*>(tree_->file());
  if (options_.shared_pool) {
    const size_t capacity = options_.shared_pool_pages > 0
                                ? options_.shared_pool_pages
                                : options_.num_workers *
                                      options_.worker_pool_pages;
    pages::ShardedPoolOptions pool_options;
    pool_options.shards = options_.pool_shards;
    pool_options.miss_delay_us = options_.io_delay_us;
    pool_options.prefetch = options_.frontier_prefetch;
    shared_pool_ = std::make_unique<pages::ShardedBufferPool>(
        file, capacity, pool_options);
    for (size_t i = 0; i < options_.num_workers; ++i) {
      worker_readers_.push_back(shared_pool_->MakeSession());
    }
  } else {
    pages::BufferPoolOptions pool_options;
    pool_options.charge_file_io = false;  // never mutate the shared file.
    pool_options.miss_delay_us = options_.io_delay_us;
    pool_options.prefetch = options_.frontier_prefetch;
    for (size_t i = 0; i < options_.num_workers; ++i) {
      worker_readers_.push_back(std::make_unique<pages::BufferPool>(
          file, options_.worker_pool_pages, pool_options));
    }
  }
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryService::WorkerLoop, this, i);
  }

  if (options_.write.enabled) {
    // Writes need a mutable durable index: the writer thread is the
    // store's single mutator (tree apply + commit + checkpoint cadence).
    BW_CHECK(mutable_durable_ != nullptr);
    BW_CHECK_GE(options_.write.batch_size, 1u);
    BW_CHECK_GE(options_.write.queue_capacity, 1u);
    if (!options_.write.free_space_probe) {
      const std::string wal_path = mutable_durable_->store().wal()->path();
      options_.write.free_space_probe = [wal_path] {
        return FreeBytesNear(wal_path);
      };
    }
    MirrorWalStats();
    writer_ = std::thread(&QueryService::WriterLoop, this);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  // Writer first: remaining admitted mutations get their final commit
  // (or a definitive shed) before query workers drain.
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_shutdown_ = true;
  }
  write_cv_.notify_all();
  if (writer_.joinable()) writer_.join();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Already shut down (Shutdown is idempotent); workers are joined.
      return;
    }
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  not_empty_.notify_all();
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// Submission / admission control
// ---------------------------------------------------------------------------

Result<QueryService::ResponseFuture> QueryService::Submit(Task task) {
  if (snapshot_restoring_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "replica is restoring from a snapshot; queries shed until the "
        "restore commits");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (shutdown_) {
    return Status::Unavailable("query service is shut down");
  }
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.overflow == OverflowPolicy::kReject) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "query queue full (capacity " +
          std::to_string(options_.queue_capacity) + "); retry later");
    }
    // Backpressure: the submitter waits for space.
    not_full_.wait(lock, [&] {
      return queue_.size() < options_.queue_capacity || shutdown_;
    });
    if (shutdown_) {
      return Status::Unavailable("query service shut down while waiting");
    }
  }
  task.enqueue_time = Clock::now();
  ResponseFuture future = task.promise.get_future();
  queue_.push_back(std::move(task));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

Result<QueryService::ResponseFuture> QueryService::SubmitKnn(geom::Vec query,
                                                             size_t k) {
  Task task;
  task.kind = Kind::kKnn;
  task.query = std::move(query);
  task.k = k;
  return Submit(std::move(task));
}

Result<QueryService::ResponseFuture> QueryService::SubmitRange(
    geom::Vec query, double radius) {
  Task task;
  task.kind = Kind::kRange;
  task.query = std::move(query);
  task.radius = radius;
  return Submit(std::move(task));
}

Result<QueryService::ResponseFuture> QueryService::SubmitStream(
    geom::Vec query, StreamOptions stream) {
  Task task;
  task.kind = Kind::kStream;
  task.query = std::move(query);
  task.stream = stream;
  return Submit(std::move(task));
}

QueryService::Response QueryService::Knn(const geom::Vec& query, size_t k) {
  auto future = SubmitKnn(query, k);
  if (!future.ok()) return future.status();
  return future->get();
}

// ---------------------------------------------------------------------------
// Incremental streaming (StreamCursor)
// ---------------------------------------------------------------------------

std::unique_ptr<QueryService::StreamCursor> QueryService::OpenCursor(
    geom::Vec query, StreamOptions limits) {
  if (snapshot_restoring_.load(std::memory_order_acquire)) {
    return nullptr;  // Torn tree mid-restore; shed like a failed open.
  }
  // Each cursor brings its own reader (the Tree thread-safety contract):
  // a shared-pool session when the service runs one, a small private
  // pool otherwise.
  std::unique_ptr<pages::PageReader> reader;
  if (shared_pool_) {
    reader = shared_pool_->MakeSession();
  } else {
    auto* file = const_cast<pages::PageStore*>(tree_->file());
    pages::BufferPoolOptions pool_options;
    pool_options.charge_file_io = false;
    pool_options.miss_delay_us = options_.io_delay_us;
    pool_options.prefetch = options_.frontier_prefetch;
    reader = std::make_unique<pages::BufferPool>(
        file, options_.worker_pool_pages, pool_options);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto cursor = std::unique_ptr<StreamCursor>(new StreamCursor(
      this, std::move(query), limits, std::move(reader)));
  if (!cursor->lock_.owns_lock()) return nullptr;  // open_timeout_us hit.
  return cursor;
}

QueryService::StreamCursor::StreamCursor(
    QueryService* service, geom::Vec query, StreamOptions limits,
    std::unique_ptr<pages::PageReader> reader)
    : service_(service),
      reader_(std::move(reader)),
      query_(std::move(query)),
      limits_(limits),
      start_(Clock::now()) {
  // Shared side of the generation lock: like any query, held for the
  // cursor's lifetime so a writer batch never swaps the tree under an
  // open stream. With open_timeout_us the acquisition is a bounded
  // try_lock poll — a try_lock can never close a deadlock cycle, so a
  // caller merging cursors across many services (the shard router)
  // degrades to a failed open instead of deadlocking against writers.
  if (limits_.open_timeout_us > 0) {
    while (!service_->tree_mutex_.try_lock_shared()) {
      if (MicrosSince(start_) >= limits_.open_timeout_us) {
        errored_ = true;
        finished_ = true;
        return;  // lock_ stays unowned; OpenCursor reports nullptr.
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    lock_ = std::shared_lock<std::shared_mutex>(service_->tree_mutex_,
                                                std::adopt_lock);
  } else {
    lock_ = std::shared_lock<std::shared_mutex>(service_->tree_mutex_);
  }
  degraded_.budget = service_->options_.fault_budget;
  if (limits_.deadline_us > 0) {
    reader_->ArmWatchdog(start_ + std::chrono::microseconds(static_cast<
                             int64_t>(limits_.deadline_us)));
  }
  cursor_ = std::make_unique<gist::NnCursor>(
      *service_->tree_, query_, &traversal_, reader_.get(), &degraded_);
}

QueryService::StreamCursor::~StreamCursor() {
  reader_->DisarmWatchdog();
  // Aggregate into the service counters exactly once, at close: the
  // cursor is one query from the snapshot's point of view.
  const double latency_us = MicrosSince(start_);
  service_->latency_histogram_.Record(static_cast<uint64_t>(latency_us));
  (errored_ ? service_->failed_ : service_->completed_)
      .fetch_add(1, std::memory_order_relaxed);
  service_->leaf_accesses_.fetch_add(traversal_.leaf_accesses,
                                     std::memory_order_relaxed);
  service_->internal_accesses_.fetch_add(traversal_.internal_accesses,
                                         std::memory_order_relaxed);
  const pages::BufferStats& stats = reader_->stats();
  service_->pool_hits_.fetch_add(stats.hits, std::memory_order_relaxed);
  service_->pool_misses_.fetch_add(stats.misses, std::memory_order_relaxed);
  service_->pool_evictions_.fetch_add(stats.evictions,
                                      std::memory_order_relaxed);
  service_->pool_contention_.fetch_add(stats.shard_contention,
                                       std::memory_order_relaxed);
  if (truncated_) {
    service_->truncated_streams_.fetch_add(1, std::memory_order_relaxed);
  }
  if (degraded_.degraded()) {
    service_->degraded_responses_.fetch_add(1, std::memory_order_relaxed);
    service_->pages_skipped_.fetch_add(degraded_.skipped.size(),
                                       std::memory_order_relaxed);
  }
  cursor_.reset();  // before reader_, which it reads through.
}

Result<std::optional<gist::Neighbor>> QueryService::StreamCursor::Next() {
  if (finished_) return std::optional<gist::Neighbor>();
  // Same limit ladder as the worker-side stream loop in Execute().
  if (limits_.max_results > 0 && returned_ >= limits_.max_results) {
    finished_ = true;
    return std::optional<gist::Neighbor>();
  }
  if (limits_.deadline_us > 0 && MicrosSince(start_) >= limits_.deadline_us) {
    truncated_ = true;
    finished_ = true;
    return std::optional<gist::Neighbor>();
  }
  if (cursor_->FrontierDistance() > limits_.budget_radius) {
    finished_ = true;
    return std::optional<gist::Neighbor>();
  }
  auto next = cursor_->Next();
  if (!next.ok()) {
    finished_ = true;
    if (next.status().code() == StatusCode::kAborted) {
      // Watchdog cut a fetch off mid-read: partial stream, flagged.
      service_->watchdog_expirations_.fetch_add(1, std::memory_order_relaxed);
      truncated_ = true;
      return std::optional<gist::Neighbor>();
    }
    errored_ = true;
    return next.status();
  }
  if (!next.value().has_value() ||
      next.value()->distance > limits_.budget_radius) {
    finished_ = true;
    return std::optional<gist::Neighbor>();
  }
  ++returned_;
  return next.value();
}

double QueryService::StreamCursor::FrontierDistance() const {
  if (finished_) return std::numeric_limits<double>::infinity();
  return cursor_->FrontierDistance();
}

// ---------------------------------------------------------------------------
// Mutation submission / write admission control
// ---------------------------------------------------------------------------

Result<QueryService::MutationFuture> QueryService::SubmitMutation(
    Mutation mutation) {
  if (!options_.write.enabled) {
    return Status::InvalidArgument(
        "writes are not enabled on this service (ServiceWriteOptions)");
  }
  std::unique_lock<std::mutex> lock(write_mutex_);
  // Shed-at-admission: every degraded verdict is delivered here, cheap
  // and immediate, so clients never enqueue work the service already
  // knows it cannot make durable.
  const auto shed_if_degraded = [&]() -> Status {
    if (write_shutdown_) {
      return Status::Unavailable("query service is shut down");
    }
    switch (write_state_.load(std::memory_order_relaxed)) {
      case WriteState::kFailed:
        writes_rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::IoError(
            "write path fail-stopped; this process serves reads only "
            "(crash-recover in a fresh process to resume writes)");
      case WriteState::kReadOnly:
        writes_rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "service is read-only (resource exhaustion); write shed — "
            "resubmit once capacity is restored");
      case WriteState::kServing:
        break;
    }
    return Status::OK();
  };
  BW_RETURN_IF_ERROR(shed_if_degraded());
  if (write_queue_.size() >= options_.write.queue_capacity) {
    if (options_.write.overflow == OverflowPolicy::kReject) {
      writes_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "mutation queue full (capacity " +
          std::to_string(options_.write.queue_capacity) + "); retry later");
    }
    // Backpressure, but never while degraded: a reader-only service
    // must not park submitters forever.
    write_cv_.wait(lock, [&] {
      return write_queue_.size() < options_.write.queue_capacity ||
             write_shutdown_ ||
             write_state_.load(std::memory_order_relaxed) !=
                 WriteState::kServing;
    });
    BW_RETURN_IF_ERROR(shed_if_degraded());
  }
  mutation.enqueue_time = Clock::now();
  MutationFuture future = mutation.promise.get_future();
  write_queue_.push_back(std::move(mutation));
  writes_submitted_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  write_cv_.notify_all();
  return future;
}

Result<QueryService::MutationFuture> QueryService::SubmitInsert(
    geom::Vec point, gist::Rid rid) {
  Mutation mutation;
  mutation.kind = MutationKind::kInsert;
  mutation.point = std::move(point);
  mutation.rid = rid;
  return SubmitMutation(std::move(mutation));
}

Result<QueryService::MutationFuture> QueryService::SubmitDelete(
    geom::Vec point, gist::Rid rid) {
  Mutation mutation;
  mutation.kind = MutationKind::kDelete;
  mutation.point = std::move(point);
  mutation.rid = rid;
  return SubmitMutation(std::move(mutation));
}

void QueryService::ResumeWrites() {
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    resume_requested_ = true;
  }
  write_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Writer thread
// ---------------------------------------------------------------------------

bool QueryService::FreeSpaceOk() const {
  if (options_.write.min_free_bytes == 0) return true;
  if (!options_.write.free_space_probe) return true;
  return options_.write.free_space_probe() >= options_.write.min_free_bytes;
}

void QueryService::MirrorWalStats() {
  const storage::Wal* wal = mutable_durable_->store().wal();
  wal_live_bytes_.store(wal->live_bytes(), std::memory_order_relaxed);
  wal_segments_created_.store(wal->segments_created(),
                              std::memory_order_relaxed);
  wal_segments_retired_.store(wal->segments_retired(),
                              std::memory_order_relaxed);
}

void QueryService::ApplyBatch(std::vector<Mutation>* todo) {
  const Clock::time_point picked = Clock::now();
  {
    // Exclusive side: readers are out for the duration of the whole
    // batch, so no query ever observes some-but-not-all of it.
    std::unique_lock<std::shared_mutex> exclusive(tree_mutex_);
    const Clock::time_point start = Clock::now();
    gist::Tree& tree = mutable_durable_->tree();
    for (Mutation& m : *todo) {
      m.queue_wait_us =
          std::chrono::duration<double, std::micro>(picked - m.enqueue_time)
              .count();
      m.apply_status = m.kind == MutationKind::kInsert
                           ? tree.Insert(m.point, m.rid)
                           : tree.Delete(m.point, m.rid);
    }
    const double apply_us = MicrosSince(start);
    for (Mutation& m : *todo) m.apply_us = apply_us;
    generation_.fetch_add(1, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(write_mutex_);
  for (Mutation& m : *todo) pending_.push_back(std::move(m));
  todo->clear();
}

Status QueryService::CommitPendingBatch() {
  size_t batch_size = 0;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (pending_.empty()) return Status::OK();
    batch_size = pending_.size();
  }
  // The commit runs with no tree lock held: the writer (this thread) is
  // the only mutator, so the pages it encodes are quiescent, and
  // readers overlap the fsync instead of stalling behind it. The tag is
  // the cumulative mutation count, so it lands on the same value on
  // every replica that applied the same writes regardless of how those
  // writes were grouped into batches — the property replica catch-up
  // compares positions with. A retried batch recomputes the identical
  // tag (last_commit_tag only advances on durable commits).
  uint64_t tag = 0;
  {
    std::lock_guard<std::mutex> commit_lock(commit_mutex_);
    tag = mutable_durable_->store().last_commit_tag() + batch_size;
    BW_RETURN_IF_ERROR(mutable_durable_->Commit(tag));
    MirrorWalStats();
  }
  std::vector<Mutation> batch;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    batch.swap(pending_);
  }
  commit_batches_.fetch_add(1, std::memory_order_relaxed);
  for (Mutation& m : batch) {
    write_latency_histogram_.Record(
        static_cast<uint64_t>(MicrosSince(m.enqueue_time)));
    if (m.apply_status.ok()) {
      writes_acked_.fetch_add(1, std::memory_order_relaxed);
      MutationOutcome outcome;
      outcome.tag = tag;
      outcome.queue_wait_us = m.queue_wait_us;
      outcome.apply_us = m.apply_us;
      m.promise.set_value(outcome);
    } else {
      // The tree refused this one (e.g. NotFound delete); the batch
      // still committed for its siblings.
      writes_failed_.fetch_add(1, std::memory_order_relaxed);
      m.promise.set_value(m.apply_status);
    }
  }
  return Status::OK();
}

void QueryService::EnterReadOnly() {
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (write_state_.load(std::memory_order_relaxed) ==
        WriteState::kServing) {
      write_state_.store(WriteState::kReadOnly, std::memory_order_relaxed);
    }
  }
  write_cv_.notify_all();  // unpark kBlock submitters into a shed verdict.
}

void QueryService::ShedAllWrites(const Status& status) {
  std::vector<Mutation> doomed;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    doomed.reserve(pending_.size() + write_queue_.size());
    for (Mutation& m : pending_) doomed.push_back(std::move(m));
    pending_.clear();
    while (!write_queue_.empty()) {
      doomed.push_back(std::move(write_queue_.front()));
      write_queue_.pop_front();
    }
  }
  write_cv_.notify_all();
  for (Mutation& m : doomed) {
    writes_failed_.fetch_add(1, std::memory_order_relaxed);
    m.promise.set_value(status);
  }
}

void QueryService::EnterFailed(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_state_.store(WriteState::kFailed, std::memory_order_relaxed);
  }
  ShedAllWrites(cause);
}

void QueryService::WriterLoop() {
  for (;;) {
    std::vector<Mutation> todo;
    bool shutting_down = false;
    {
      std::unique_lock<std::mutex> lock(write_mutex_);
      const bool retrying =
          write_state_.load(std::memory_order_relaxed) ==
              WriteState::kReadOnly &&
          (!pending_.empty() || !write_queue_.empty());
      if (retrying) {
        // Timed wait: each expiry is one resume attempt (probe + retry
        // of the pending commit). ResumeWrites() short-circuits it.
        write_cv_.wait_for(lock, options_.write.retry_interval, [&] {
          return write_shutdown_ || resume_requested_;
        });
      } else {
        write_cv_.wait(lock, [&] {
          return write_shutdown_ || resume_requested_ ||
                 !write_queue_.empty();
        });
      }
      resume_requested_ = false;
      shutting_down = write_shutdown_;
      if (shutting_down && write_queue_.empty() && pending_.empty()) return;
      if (write_state_.load(std::memory_order_relaxed) ==
              WriteState::kServing &&
          pending_.empty()) {
        const size_t n =
            std::min(write_queue_.size(), options_.write.batch_size);
        for (size_t i = 0; i < n; ++i) {
          todo.push_back(std::move(write_queue_.front()));
          write_queue_.pop_front();
        }
        writer_applying_ = !todo.empty();
      }
    }
    write_cv_.notify_all();  // space freed for kBlock submitters.

    const WriteState state = write_state_.load(std::memory_order_relaxed);
    if (state == WriteState::kFailed) {
      // Nothing new can be admitted; anything still queued (a race with
      // the transition) must not dangle.
      ShedAllWrites(Status::IoError(
          "write path fail-stopped; mutation dropped without ack"));
      if (shutting_down) return;
      continue;
    }

    if (state == WriteState::kReadOnly) {
      bool resumed = false;
      if (FreeSpaceOk()) {
        const Status committed = CommitPendingBatch();
        if (committed.ok()) {
          {
            std::lock_guard<std::mutex> lock(write_mutex_);
            write_state_.store(WriteState::kServing,
                               std::memory_order_relaxed);
          }
          write_cv_.notify_all();
          resumed = true;
        } else if (committed.code() != StatusCode::kResourceExhausted) {
          EnterFailed(committed);
          continue;
        }
      }
      if (!resumed && shutting_down) {
        // Final verdict for anything still unacked: the process is
        // exiting while the disk is full. Ack would be a lie.
        ShedAllWrites(Status::ResourceExhausted(
            "service shut down while read-only; mutation was never "
            "durable"));
        return;
      }
      continue;
    }

    if (todo.empty()) continue;

    // The watchdog runs BEFORE the tree apply and the WAL append: a
    // near-full disk sheds the batch back into the queue and trips
    // read-only, instead of discovering ENOSPC halfway into a commit.
    if (!FreeSpaceOk()) {
      {
        std::lock_guard<std::mutex> lock(write_mutex_);
        for (auto it = todo.rbegin(); it != todo.rend(); ++it) {
          write_queue_.push_front(std::move(*it));
        }
        todo.clear();
        writer_applying_ = false;
      }
      EnterReadOnly();
      continue;
    }

    ApplyBatch(&todo);
    const Status committed = CommitPendingBatch();
    {
      // Whatever the verdict, the batch now lives somewhere visible: in
      // the log (committed) or back in pending_ (retryable failure).
      std::lock_guard<std::mutex> lock(write_mutex_);
      writer_applying_ = false;
    }
    if (committed.ok()) continue;
    if (committed.code() == StatusCode::kResourceExhausted) {
      // Clean out-of-space mid-commit: the batch stays pending (applied
      // in memory, tracking restored by the store) and is retried until
      // space returns. Its futures stay unresolved — ack means durable.
      EnterReadOnly();
      continue;
    }
    EnterFailed(committed);
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void QueryService::WorkerLoop(size_t worker_index) {
  pages::PageReader* pool = worker_readers_[worker_index].get();
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      // Exit only once the queue is drained, so every admitted promise
      // is fulfilled; on shutdown draining proceeds even while paused.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();

    const double queue_wait_us = MicrosSince(task.enqueue_time);
    // Shared side of the write path's batch lock: queries never run
    // while a mutation batch is mid-apply, so every answer reflects a
    // whole number of batches (a consistent generation).
    Response response = [&]() -> Response {
      std::shared_lock<std::shared_mutex> read_lock(tree_mutex_);
      if (snapshot_restoring_.load(std::memory_order_acquire)) {
        // The tree is torn between snapshot chunks; a traversal now
        // would walk pages from two different trees.
        return Status::Unavailable(
            "replica is restoring from a snapshot; queries shed until "
            "the restore commits");
      }
      return Execute(task, pool);
    }();

    // Aggregate into the shared counters (relaxed: monitoring only).
    if (response.ok()) {
      response->metrics.queue_wait_us = queue_wait_us;
      const QueryMetrics& m = response->metrics;
      latency_histogram_.Record(static_cast<uint64_t>(m.latency_us));
      completed_.fetch_add(1, std::memory_order_relaxed);
      leaf_accesses_.fetch_add(m.leaf_accesses, std::memory_order_relaxed);
      internal_accesses_.fetch_add(m.internal_accesses,
                                   std::memory_order_relaxed);
      pool_hits_.fetch_add(m.pool_hits, std::memory_order_relaxed);
      pool_misses_.fetch_add(m.pool_misses, std::memory_order_relaxed);
      pool_evictions_.fetch_add(m.pool_evictions, std::memory_order_relaxed);
      pool_contention_.fetch_add(m.pool_contention,
                                 std::memory_order_relaxed);
      if (m.truncated) {
        truncated_streams_.fetch_add(1, std::memory_order_relaxed);
      }
      if (response->degraded()) {
        degraded_responses_.fetch_add(1, std::memory_order_relaxed);
        pages_skipped_.fetch_add(m.pages_skipped, std::memory_order_relaxed);
      }
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    task.promise.set_value(std::move(response));
  }
}

QueryService::Response QueryService::Execute(Task& task,
                                             pages::PageReader* pool) {
  const pages::BufferStats pool_before = pool->stats();
  gist::TraversalStats traversal;
  // Per-query fault budget: how many unreadable subtrees this query may
  // absorb before failing. With budget 0 the first fault wins.
  gist::DegradedRead degraded;
  degraded.budget = options_.fault_budget;
  const Clock::time_point start = Clock::now();

  QueryResponse response;
  switch (task.kind) {
    case Kind::kKnn: {
      BW_ASSIGN_OR_RETURN(response.neighbors,
                          tree_->KnnSearch(task.query, task.k, &traversal,
                                           pool, &degraded));
      break;
    }
    case Kind::kRange: {
      BW_ASSIGN_OR_RETURN(response.neighbors,
                          tree_->RangeSearch(task.query, task.radius,
                                             &traversal, pool, &degraded));
      break;
    }
    case Kind::kStream: {
      const StreamOptions& limits = task.stream;
      // The watchdog makes the deadline cover time stuck *inside* a
      // storage read, not just the checks between results.
      if (limits.deadline_us > 0) {
        pool->ArmWatchdog(start + std::chrono::microseconds(static_cast<
                              int64_t>(limits.deadline_us)));
      }
      gist::NnCursor cursor(*tree_, task.query, &traversal, pool, &degraded);
      for (;;) {
        if (limits.max_results > 0 &&
            response.neighbors.size() >= limits.max_results) {
          break;
        }
        if (limits.deadline_us > 0 &&
            MicrosSince(start) >= limits.deadline_us) {
          response.metrics.truncated = true;
          break;
        }
        // Frontier early-stop: once the lower bound on everything not
        // yet returned exceeds the budget radius, the stream is exactly
        // complete and no further pages need fetching.
        if (cursor.FrontierDistance() > limits.budget_radius) break;
        auto next = cursor.Next();
        if (!next.ok()) {
          if (next.status().code() == StatusCode::kAborted) {
            // The watchdog cut a fetch off mid-read: same contract as a
            // deadline expiring between pages — partial stream, flagged.
            watchdog_expirations_.fetch_add(1, std::memory_order_relaxed);
            response.metrics.truncated = true;
            break;
          }
          pool->DisarmWatchdog();
          return next.status();
        }
        if (!next.value().has_value()) break;
        const gist::Neighbor& neighbor = *next.value();
        if (neighbor.distance > limits.budget_radius) break;
        response.neighbors.push_back(neighbor);
      }
      pool->DisarmWatchdog();
      break;
    }
  }

  response.metrics.latency_us = MicrosSince(start);
  response.metrics.internal_accesses = traversal.internal_accesses;
  response.metrics.leaf_accesses = traversal.leaf_accesses;
  response.metrics.pages_skipped = degraded.skipped.size();
  response.completeness = degraded.degraded() ? Completeness::kDegraded
                                              : Completeness::kComplete;
  const pages::BufferStats& pool_after = pool->stats();
  response.metrics.pool_hits = pool_after.hits - pool_before.hits;
  response.metrics.pool_misses = pool_after.misses - pool_before.misses;
  response.metrics.pool_evictions =
      pool_after.evictions - pool_before.evictions;
  response.metrics.pool_contention =
      pool_after.shard_contention - pool_before.shard_contention;
  return response;
}

// ---------------------------------------------------------------------------
// Replica catch-up (WAL shipping + snapshot transfer; DESIGN.md §13)
// ---------------------------------------------------------------------------

namespace {

/// Shared refusal for the catch-up reads and applies: they describe (or
/// replace) exactly the committed state, so mutations that are admitted
/// but not yet durable — queued, pending retry, or mid-apply in the
/// writer — make the replica an unfit party until the writer drains.
Status WritesInFlight() {
  return Status::Unavailable(
      "local writes in flight; retry catch-up when the replica quiesces");
}

}  // namespace

Result<CatchupPosition> QueryService::Position() const {
  if (durable_ == nullptr) {
    return Status::NotSupported(
        "replica catch-up requires a durable index");
  }
  CatchupPosition pos;
  pos.last_tag = durable_->store().last_commit_tag();
  pos.checkpoint_tag = durable_->store().checkpoint_tag();
  // Shared lock only for the page count: the vector behind it grows
  // under the writer's exclusive batch lock.
  std::shared_lock<std::shared_mutex> shared(tree_mutex_);
  pos.page_count = durable_->store().disk()->page_count();
  return pos;
}

Result<WalTail> QueryService::ReadWalTail(uint64_t after_tag,
                                          size_t max_batches,
                                          size_t max_bytes) {
  if (durable_ == nullptr) {
    return Status::NotSupported(
        "replica catch-up requires a durable index");
  }
  // commit_mutex_ pins the log: no commit can advance it and — more
  // importantly — no checkpoint can retire the segment files out from
  // under the scan.
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  const storage::DurableStore& store = durable_->store();
  WalTail tail;
  tail.last_tag = store.last_commit_tag();
  if (after_tag < store.checkpoint_tag()) {
    // The batches this target needs were folded into the base file and
    // truncated out of the log: past the horizon only a snapshot helps.
    tail.snapshot_needed = true;
    return tail;
  }
  if (mutable_durable_ != nullptr) {
    // Buffered-but-unsynced commit records are invisible to the file
    // scan; sync so the log read matches last_commit_tag exactly —
    // otherwise an equal-position replica would poll forever for a
    // batch it can never see.
    BW_RETURN_IF_ERROR(mutable_durable_->store().wal()->Sync());
  }
  BW_ASSIGN_OR_RETURN(
      storage::WalShipReadout readout,
      storage::ReadWalBatchesAfter(store.wal()->path(), after_tag,
                                   max_batches, max_bytes));
  tail.batches = std::move(readout.batches);
  tail.more = readout.more;
  return tail;
}

Status QueryService::ApplyWalBatch(const storage::ShippedBatch& batch) {
  if (mutable_durable_ == nullptr) {
    return Status::NotSupported(
        "applying shipped batches requires a mutable durable index");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  storage::DurableStore& store = mutable_durable_->store();
  if (batch.tag <= store.last_commit_tag()) {
    // A batch this replica already holds: the retried pull of a reply
    // the network ate. Applying page images twice would be harmless,
    // but committing twice would burn a tag — skip cleanly instead.
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> exclusive(tree_mutex_);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!pending_.empty() || !write_queue_.empty() || writer_applying_) {
      return WritesInFlight();
    }
  }
  storage::DiskPageFile* disk = store.disk();
  for (const storage::ShippedRecord& rec : batch.records) {
    if (rec.type == storage::WalRecordType::kAlloc) {
      BW_RETURN_IF_ERROR(disk->EnsureAllocated(rec.page_id));
    } else if (rec.type == storage::WalRecordType::kPageImage) {
      BW_RETURN_IF_ERROR(disk->ApplyPageImage(rec.page_id,
                                              rec.payload.data(),
                                              rec.payload.size()));
    } else {
      return Status::InvalidArgument(
          "shipped batch holds a non-redo record");
    }
  }
  BW_RETURN_IF_ERROR(
      core::RefreshTreeFromMeta(&store, &mutable_durable_->tree()));
  generation_.fetch_add(1, std::memory_order_release);
  exclusive.unlock();
  // Commit the shipped images as this replica's own WAL batch carrying
  // the source's tag. Not DurableIndex::Commit: the meta page rode
  // along in the shipped images and the tree was just refreshed *from*
  // it — re-serializing would write the same bytes at best.
  BW_RETURN_IF_ERROR(store.CommitBatch(batch.tag));
  catchup_batches_applied_.fetch_add(1, std::memory_order_relaxed);
  MirrorWalStats();
  return Status::OK();
}

Result<SnapshotChunk> QueryService::ReadSnapshotChunk(uint32_t start_page,
                                                      size_t max_bytes) {
  if (durable_ == nullptr) {
    return Status::NotSupported(
        "replica catch-up requires a durable index");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  // Shared tree lock before the quiescence check: a batch the writer
  // has applied but not yet parked in pending_ cannot exist while we
  // hold the readers' side (the apply needs the exclusive side).
  std::shared_lock<std::shared_mutex> shared(tree_mutex_);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!pending_.empty() || !write_queue_.empty() || writer_applying_) {
      return WritesInFlight();
    }
  }
  const storage::DiskPageFile* disk = durable_->store().disk();
  if (!disk->suspect_pages().empty()) {
    return Status::Unavailable(
        "quarantined pages make this replica an unfit snapshot source");
  }
  SnapshotChunk chunk;
  chunk.tag = durable_->store().last_commit_tag();
  chunk.total_pages = disk->page_count();
  chunk.start_page = start_page;
  if (start_page >= chunk.total_pages) {
    return Status::InvalidArgument("start_page past the end of the store");
  }
  size_t bytes = 0;
  std::vector<uint8_t> image;
  for (uint64_t id = start_page; id < chunk.total_pages; ++id) {
    pages::EncodePage(*disk->PeekNoIo(static_cast<pages::PageId>(id)),
                      &image);
    // Always at least one page per chunk, so a tiny budget still makes
    // progress instead of spinning on an empty reply.
    if (!chunk.pages.empty() && bytes + image.size() > max_bytes) break;
    bytes += image.size();
    storage::ShippedRecord rec;
    rec.type = storage::WalRecordType::kPageImage;
    rec.page_id = static_cast<pages::PageId>(id);
    rec.payload = image;
    chunk.pages.push_back(std::move(rec));
  }
  return chunk;
}

Status QueryService::ApplySnapshotChunk(const SnapshotChunk& chunk,
                                        bool first, bool last) {
  if (mutable_durable_ == nullptr) {
    return Status::NotSupported(
        "applying snapshot chunks requires a mutable durable index");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  storage::DurableStore& store = mutable_durable_->store();
  std::unique_lock<std::shared_mutex> exclusive(tree_mutex_);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!pending_.empty() || !write_queue_.empty() || writer_applying_) {
      return WritesInFlight();
    }
  }
  storage::DiskPageFile* disk = store.disk();
  if (first) {
    if (disk->page_count() > chunk.total_pages) {
      return Status::InvalidArgument(
          "this store holds more pages than the snapshot; page stores "
          "never shrink — rebuild the replica instead");
    }
    // From here until the last chunk commits, the store is a mix of two
    // trees: shed queries. Deliberately never cleared on failure — a
    // half-restored replica must stay dark until a restore completes.
    snapshot_restoring_.store(true, std::memory_order_release);
  }
  for (const storage::ShippedRecord& rec : chunk.pages) {
    if (rec.type != storage::WalRecordType::kPageImage) {
      return Status::InvalidArgument(
          "snapshot chunk holds a non-page record");
    }
    BW_RETURN_IF_ERROR(disk->EnsureAllocated(rec.page_id));
    BW_RETURN_IF_ERROR(disk->ApplyPageImage(rec.page_id, rec.payload.data(),
                                            rec.payload.size()));
  }
  snapshot_chunks_applied_.fetch_add(1, std::memory_order_relaxed);
  if (!last) return Status::OK();
  BW_RETURN_IF_ERROR(
      core::RefreshTreeFromMeta(&store, &mutable_durable_->tree()));
  generation_.fetch_add(1, std::memory_order_release);
  exclusive.unlock();
  // One commit for the whole restore, then a checkpoint: the shipped
  // pages all sit in the commit tracking, and folding them immediately
  // spares the WAL a full copy of the store on the next rotation.
  BW_RETURN_IF_ERROR(store.CommitBatch(chunk.tag));
  BW_RETURN_IF_ERROR(store.Checkpoint());
  MirrorWalStats();
  snapshot_restoring_.store(false, std::memory_order_release);
  return Status::OK();
}

Result<TreeSum> QueryService::TreeChecksum() const {
  if (durable_ == nullptr) {
    return Status::NotSupported(
        "replica catch-up requires a durable index");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  std::shared_lock<std::shared_mutex> shared(tree_mutex_);
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!pending_.empty() || !write_queue_.empty() || writer_applying_) {
      return WritesInFlight();
    }
  }
  const storage::DiskPageFile* disk = durable_->store().disk();
  if (!disk->suspect_pages().empty()) {
    return Status::Unavailable(
        "quarantined pages poison the checksum; repair first");
  }
  TreeSum sum;
  sum.tag = durable_->store().last_commit_tag();
  sum.page_count = disk->page_count();
  uint32_t crc = 0;
  std::vector<uint8_t> image;
  for (uint64_t id = 0; id < sum.page_count; ++id) {
    pages::EncodePage(*disk->PeekNoIo(static_cast<pages::PageId>(id)),
                      &image);
    crc = Crc32Extend(crc, image.data(), image.size());
  }
  sum.crc = crc;
  return sum;
}

// ---------------------------------------------------------------------------
// Monitoring
// ---------------------------------------------------------------------------

ServiceSnapshot QueryService::Snapshot() const {
  ServiceSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.truncated_streams = truncated_streams_.load(std::memory_order_relaxed);
  snap.degraded_responses =
      degraded_responses_.load(std::memory_order_relaxed);
  snap.pages_skipped = pages_skipped_.load(std::memory_order_relaxed);
  snap.watchdog_expirations =
      watchdog_expirations_.load(std::memory_order_relaxed);
  if (durable_ != nullptr) {
    const storage::DiskPageFile* disk = durable_->store().disk();
    snap.store_read_retries = disk->read_retries();
    snap.store_pages_quarantined = disk->health().quarantined_count();
    snap.store_quarantines_total = disk->health().total_quarantined();
    snap.store_repairs_total = disk->health().total_repaired();
  }
  snap.leaf_accesses = leaf_accesses_.load(std::memory_order_relaxed);
  snap.internal_accesses = internal_accesses_.load(std::memory_order_relaxed);
  snap.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  snap.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  snap.pool_evictions = pool_evictions_.load(std::memory_order_relaxed);
  snap.pool_contention = pool_contention_.load(std::memory_order_relaxed);
  snap.pool_shards = shared_pool_ != nullptr ? shared_pool_->shard_count() : 0;
  snap.writes_enabled = options_.write.enabled;
  snap.write_state = write_state_.load(std::memory_order_relaxed);
  snap.write_degraded =
      snap.writes_enabled && snap.write_state != WriteState::kServing;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    snap.write_queue_depth = write_queue_.size();
  }
  snap.writes_submitted = writes_submitted_.load(std::memory_order_relaxed);
  snap.writes_rejected = writes_rejected_.load(std::memory_order_relaxed);
  snap.writes_acked = writes_acked_.load(std::memory_order_relaxed);
  snap.writes_failed = writes_failed_.load(std::memory_order_relaxed);
  snap.commit_batches = commit_batches_.load(std::memory_order_relaxed);
  snap.generation = generation_.load(std::memory_order_acquire);
  snap.wal_live_bytes = wal_live_bytes_.load(std::memory_order_relaxed);
  snap.wal_segments_created =
      wal_segments_created_.load(std::memory_order_relaxed);
  snap.wal_segments_retired =
      wal_segments_retired_.load(std::memory_order_relaxed);
  snap.catchup_batches_applied =
      catchup_batches_applied_.load(std::memory_order_relaxed);
  snap.snapshot_chunks_applied =
      snapshot_chunks_applied_.load(std::memory_order_relaxed);
  snap.snapshot_restoring =
      snapshot_restoring_.load(std::memory_order_relaxed);
  snap.mean_write_latency_us = write_latency_histogram_.Mean();
  snap.p50_write_latency_us = write_latency_histogram_.Percentile(0.50);
  snap.p99_write_latency_us = write_latency_histogram_.Percentile(0.99);
  snap.p999_write_latency_us = write_latency_histogram_.Percentile(0.999);
  snap.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_time_).count();
  snap.qps = snap.elapsed_seconds > 0
                 ? static_cast<double>(snap.completed) / snap.elapsed_seconds
                 : 0.0;
  snap.mean_latency_us = latency_histogram_.Mean();
  snap.p50_latency_us = latency_histogram_.Percentile(0.50);
  snap.p95_latency_us = latency_histogram_.Percentile(0.95);
  snap.p99_latency_us = latency_histogram_.Percentile(0.99);
  snap.p999_latency_us = latency_histogram_.Percentile(0.999);
  return snap;
}

}  // namespace bw::service
