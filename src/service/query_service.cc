#include "service/query_service.h"

#include <string>
#include <utility>

#include "util/logging.h"

namespace bw::service {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

}  // namespace

QueryService::QueryService(const gist::Tree& tree, ServiceOptions options)
    : tree_(&tree), options_(options) {
  Start();
}

QueryService::QueryService(std::unique_ptr<core::BuiltIndex> index,
                           ServiceOptions options)
    : owned_index_(std::move(index)), options_(options) {
  BW_CHECK(owned_index_ != nullptr);
  tree_ = &owned_index_->tree();
  Start();
}

QueryService::QueryService(std::unique_ptr<core::DurableIndex> index,
                           ServiceOptions options)
    : owned_durable_(std::move(index)), options_(options) {
  BW_CHECK(owned_durable_ != nullptr);
  tree_ = &owned_durable_->tree();
  durable_ = owned_durable_.get();
  Start();
}

QueryService::QueryService(core::DurableIndex* index, ServiceOptions options)
    : options_(options) {
  BW_CHECK(index != nullptr);
  tree_ = &index->tree();
  durable_ = index;
  Start();
}

void QueryService::Start() {
  BW_CHECK_GE(options_.num_workers, 1u);
  BW_CHECK_GE(options_.queue_capacity, 1u);
  paused_ = options_.start_paused;
  start_time_ = Clock::now();

  worker_readers_.reserve(options_.num_workers);
  workers_.reserve(options_.num_workers);
  // The const_cast is sound: the shared pool is PeekNoIo-only, and a
  // private pool with charge_file_io=false resolves every fetch through
  // the same const path — the shared file is never written through this
  // pointer either way.
  auto* file = const_cast<pages::PageStore*>(tree_->file());
  if (options_.shared_pool) {
    const size_t capacity = options_.shared_pool_pages > 0
                                ? options_.shared_pool_pages
                                : options_.num_workers *
                                      options_.worker_pool_pages;
    pages::ShardedPoolOptions pool_options;
    pool_options.shards = options_.pool_shards;
    pool_options.miss_delay_us = options_.io_delay_us;
    shared_pool_ = std::make_unique<pages::ShardedBufferPool>(
        file, capacity, pool_options);
    for (size_t i = 0; i < options_.num_workers; ++i) {
      worker_readers_.push_back(shared_pool_->MakeSession());
    }
  } else {
    pages::BufferPoolOptions pool_options;
    pool_options.charge_file_io = false;  // never mutate the shared file.
    pool_options.miss_delay_us = options_.io_delay_us;
    for (size_t i = 0; i < options_.num_workers; ++i) {
      worker_readers_.push_back(std::make_unique<pages::BufferPool>(
          file, options_.worker_pool_pages, pool_options));
    }
  }
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryService::WorkerLoop, this, i);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Already shut down (Shutdown is idempotent); workers are joined.
      return;
    }
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  not_empty_.notify_all();
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

// ---------------------------------------------------------------------------
// Submission / admission control
// ---------------------------------------------------------------------------

Result<QueryService::ResponseFuture> QueryService::Submit(Task task) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (shutdown_) {
    return Status::Unavailable("query service is shut down");
  }
  if (queue_.size() >= options_.queue_capacity) {
    if (options_.overflow == OverflowPolicy::kReject) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "query queue full (capacity " +
          std::to_string(options_.queue_capacity) + "); retry later");
    }
    // Backpressure: the submitter waits for space.
    not_full_.wait(lock, [&] {
      return queue_.size() < options_.queue_capacity || shutdown_;
    });
    if (shutdown_) {
      return Status::Unavailable("query service shut down while waiting");
    }
  }
  task.enqueue_time = Clock::now();
  ResponseFuture future = task.promise.get_future();
  queue_.push_back(std::move(task));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

Result<QueryService::ResponseFuture> QueryService::SubmitKnn(geom::Vec query,
                                                             size_t k) {
  Task task;
  task.kind = Kind::kKnn;
  task.query = std::move(query);
  task.k = k;
  return Submit(std::move(task));
}

Result<QueryService::ResponseFuture> QueryService::SubmitRange(
    geom::Vec query, double radius) {
  Task task;
  task.kind = Kind::kRange;
  task.query = std::move(query);
  task.radius = radius;
  return Submit(std::move(task));
}

Result<QueryService::ResponseFuture> QueryService::SubmitStream(
    geom::Vec query, StreamOptions stream) {
  Task task;
  task.kind = Kind::kStream;
  task.query = std::move(query);
  task.stream = stream;
  return Submit(std::move(task));
}

QueryService::Response QueryService::Knn(const geom::Vec& query, size_t k) {
  auto future = SubmitKnn(query, k);
  if (!future.ok()) return future.status();
  return future->get();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void QueryService::WorkerLoop(size_t worker_index) {
  pages::PageReader* pool = worker_readers_[worker_index].get();
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      // Exit only once the queue is drained, so every admitted promise
      // is fulfilled; on shutdown draining proceeds even while paused.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();

    const double queue_wait_us = MicrosSince(task.enqueue_time);
    Response response = Execute(task, pool);

    // Aggregate into the shared counters (relaxed: monitoring only).
    if (response.ok()) {
      response->metrics.queue_wait_us = queue_wait_us;
      const QueryMetrics& m = response->metrics;
      latency_histogram_.Record(static_cast<uint64_t>(m.latency_us));
      completed_.fetch_add(1, std::memory_order_relaxed);
      leaf_accesses_.fetch_add(m.leaf_accesses, std::memory_order_relaxed);
      internal_accesses_.fetch_add(m.internal_accesses,
                                   std::memory_order_relaxed);
      pool_hits_.fetch_add(m.pool_hits, std::memory_order_relaxed);
      pool_misses_.fetch_add(m.pool_misses, std::memory_order_relaxed);
      pool_evictions_.fetch_add(m.pool_evictions, std::memory_order_relaxed);
      pool_contention_.fetch_add(m.pool_contention,
                                 std::memory_order_relaxed);
      if (m.truncated) {
        truncated_streams_.fetch_add(1, std::memory_order_relaxed);
      }
      if (response->degraded()) {
        degraded_responses_.fetch_add(1, std::memory_order_relaxed);
        pages_skipped_.fetch_add(m.pages_skipped, std::memory_order_relaxed);
      }
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    task.promise.set_value(std::move(response));
  }
}

QueryService::Response QueryService::Execute(Task& task,
                                             pages::PageReader* pool) {
  const pages::BufferStats pool_before = pool->stats();
  gist::TraversalStats traversal;
  // Per-query fault budget: how many unreadable subtrees this query may
  // absorb before failing. With budget 0 the first fault wins.
  gist::DegradedRead degraded;
  degraded.budget = options_.fault_budget;
  const Clock::time_point start = Clock::now();

  QueryResponse response;
  switch (task.kind) {
    case Kind::kKnn: {
      BW_ASSIGN_OR_RETURN(response.neighbors,
                          tree_->KnnSearch(task.query, task.k, &traversal,
                                           pool, &degraded));
      break;
    }
    case Kind::kRange: {
      BW_ASSIGN_OR_RETURN(response.neighbors,
                          tree_->RangeSearch(task.query, task.radius,
                                             &traversal, pool, &degraded));
      break;
    }
    case Kind::kStream: {
      const StreamOptions& limits = task.stream;
      // The watchdog makes the deadline cover time stuck *inside* a
      // storage read, not just the checks between results.
      if (limits.deadline_us > 0) {
        pool->ArmWatchdog(start + std::chrono::microseconds(static_cast<
                              int64_t>(limits.deadline_us)));
      }
      gist::NnCursor cursor(*tree_, task.query, &traversal, pool, &degraded);
      for (;;) {
        if (limits.max_results > 0 &&
            response.neighbors.size() >= limits.max_results) {
          break;
        }
        if (limits.deadline_us > 0 &&
            MicrosSince(start) >= limits.deadline_us) {
          response.metrics.truncated = true;
          break;
        }
        // Frontier early-stop: once the lower bound on everything not
        // yet returned exceeds the budget radius, the stream is exactly
        // complete and no further pages need fetching.
        if (cursor.FrontierDistance() > limits.budget_radius) break;
        auto next = cursor.Next();
        if (!next.ok()) {
          if (next.status().code() == StatusCode::kAborted) {
            // The watchdog cut a fetch off mid-read: same contract as a
            // deadline expiring between pages — partial stream, flagged.
            watchdog_expirations_.fetch_add(1, std::memory_order_relaxed);
            response.metrics.truncated = true;
            break;
          }
          pool->DisarmWatchdog();
          return next.status();
        }
        if (!next.value().has_value()) break;
        const gist::Neighbor& neighbor = *next.value();
        if (neighbor.distance > limits.budget_radius) break;
        response.neighbors.push_back(neighbor);
      }
      pool->DisarmWatchdog();
      break;
    }
  }

  response.metrics.latency_us = MicrosSince(start);
  response.metrics.internal_accesses = traversal.internal_accesses;
  response.metrics.leaf_accesses = traversal.leaf_accesses;
  response.metrics.pages_skipped = degraded.skipped.size();
  response.completeness = degraded.degraded() ? Completeness::kDegraded
                                              : Completeness::kComplete;
  const pages::BufferStats& pool_after = pool->stats();
  response.metrics.pool_hits = pool_after.hits - pool_before.hits;
  response.metrics.pool_misses = pool_after.misses - pool_before.misses;
  response.metrics.pool_evictions =
      pool_after.evictions - pool_before.evictions;
  response.metrics.pool_contention =
      pool_after.shard_contention - pool_before.shard_contention;
  return response;
}

// ---------------------------------------------------------------------------
// Monitoring
// ---------------------------------------------------------------------------

ServiceSnapshot QueryService::Snapshot() const {
  ServiceSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.failed = failed_.load(std::memory_order_relaxed);
  snap.truncated_streams = truncated_streams_.load(std::memory_order_relaxed);
  snap.degraded_responses =
      degraded_responses_.load(std::memory_order_relaxed);
  snap.pages_skipped = pages_skipped_.load(std::memory_order_relaxed);
  snap.watchdog_expirations =
      watchdog_expirations_.load(std::memory_order_relaxed);
  if (durable_ != nullptr) {
    const storage::DiskPageFile* disk = durable_->store().disk();
    snap.store_read_retries = disk->read_retries();
    snap.store_pages_quarantined = disk->health().quarantined_count();
    snap.store_quarantines_total = disk->health().total_quarantined();
    snap.store_repairs_total = disk->health().total_repaired();
  }
  snap.leaf_accesses = leaf_accesses_.load(std::memory_order_relaxed);
  snap.internal_accesses = internal_accesses_.load(std::memory_order_relaxed);
  snap.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  snap.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  snap.pool_evictions = pool_evictions_.load(std::memory_order_relaxed);
  snap.pool_contention = pool_contention_.load(std::memory_order_relaxed);
  snap.pool_shards = shared_pool_ != nullptr ? shared_pool_->shard_count() : 0;
  snap.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_time_).count();
  snap.qps = snap.elapsed_seconds > 0
                 ? static_cast<double>(snap.completed) / snap.elapsed_seconds
                 : 0.0;
  snap.mean_latency_us = latency_histogram_.Mean();
  snap.p50_latency_us = latency_histogram_.Percentile(0.50);
  snap.p95_latency_us = latency_histogram_.Percentile(0.95);
  snap.p99_latency_us = latency_histogram_.Percentile(0.99);
  return snap;
}

}  // namespace bw::service
