// Flattens a ServiceSnapshot into ordered (name, value) pairs: the one
// registry of exported counters, shared by the network front end (the
// kStats wire reply encodes exactly these fields) and by bwadmin's
// pretty-printer. Keeping the flattening here — next to the struct it
// mirrors — means a counter added to ServiceSnapshot shows up on the
// wire and in the admin tooling by editing one function.

#ifndef BLOBWORLD_SERVICE_SNAPSHOT_EXPORT_H_
#define BLOBWORLD_SERVICE_SNAPSHOT_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "service/query_service.h"

namespace bw::service {

/// Every counter in `snap` as a (name, value) pair, in a stable,
/// operator-friendly order (throughput first, then latency, pools,
/// self-healing, write path). Enum-valued fields are exported
/// numerically (write_state: 0 = serving, 1 = read-only, 2 = failed).
std::vector<std::pair<std::string, double>> ExportSnapshotFields(
    const ServiceSnapshot& snap);

/// Human-readable name for an exported write_state value.
const char* WriteStateName(WriteState state);

}  // namespace bw::service

#endif  // BLOBWORLD_SERVICE_SNAPSHOT_EXPORT_H_
