// Tight node-scan kernels over dim-major SoA planes.
//
// Every kernel consumes predicate fields laid out dimension-major:
// plane d of an input array occupies [d * count, (d + 1) * count), so
// the inner loop streams one coordinate of every entry from contiguous
// memory — branch-light, FMA-shaped, and auto-vectorizable at -O3.
//
// Bit-identity contract (scalar dispatch): each kernel reproduces the
// corresponding scalar geom:: formula exactly — the same double
// operations applied per entry in ascending-dimension order, with no
// reassociation (the project never builds with -ffast-math). The
// property test in tests/batch_kernel_test.cc compares batched and
// scalar results with exact double equality under a scalar-pinned
// dispatch (util::ScopedKernelIsa).
//
// ULP-bounded contract (AVX2 dispatch): when the build carries the
// AVX2/FMA variants (BW_HAVE_AVX2, see util/cpu.h) and the host
// supports them, these entry points route to hand-written kernels that
// fuse each gap*gap accumulation into a single FMA. Fusion removes one
// rounding per accumulated dimension, so per entry the squared-distance
// outputs may differ from the scalar contract by a small, bounded
// number of ULPs (tests/kernel_dispatch_test.cc enforces
// |avx2 - scalar| <= 4*dim ULP of the larger magnitude). Dispatch is
// uniform within a process, and leaf/data distances never flow through
// these kernels, so query answers stay deterministic for a given
// dispatch; only internal-node bound values move within the ULP band.

#ifndef BLOBWORLD_AM_BP_KERNELS_H_
#define BLOBWORLD_AM_BP_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geom/vec.h"

namespace bw::am {

/// out[e] = Rect::MinDistanceSquared(query) of entry e's box. `lo`/`hi`
/// are dim-major planes of valid boxes (lo <= hi per dimension; the
/// branchless max-form gap below equals the scalar's branchy selection
/// exactly under that precondition).
void RectMinDistSquared(size_t dim, size_t count, const float* lo,
                        const float* hi, const geom::Vec& query, double* out);

/// out[e] = Rect::MaxDistanceSquared(query) of entry e's box (distance
/// to the farthest corner).
void RectMaxDistSquared(size_t dim, size_t count, const float* lo,
                        const float* hi, const geom::Vec& query, double* out);

/// Clamp pass for the jagged-BP region search: writes the clamp of
/// `query` onto each box into `clamp_out` (dim-major, same planes as
/// the inputs) and the box distance squared into `out`, using the exact
/// formulas of core's RegionDistanceImpl (float clamp compares, then
/// gap = double(query[d]) - clamp).
void RectClampMinDistSquared(size_t dim, size_t count, const float* lo,
                             const float* hi, const geom::Vec& query,
                             float* clamp_out, double* out);

/// out[e] = Sphere::MinDistance(query) of entry e's ball: the center
/// planes are dim-major floats, `radius` is one double per entry
/// (already carrying any decode-time padding).
void SphereMinDist(size_t dim, size_t count, const float* center,
                   const double* radius, const geom::Vec& query, double* out);

}  // namespace bw::am

#endif  // BLOBWORLD_AM_BP_KERNELS_H_
