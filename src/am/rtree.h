// R-tree extension (Guttman '84): minimum bounding rectangles as BPs,
// volume-enlargement insertion penalty, quadratic split. The baseline
// access method of the paper's evaluation.

#ifndef BLOBWORLD_AM_RTREE_H_
#define BLOBWORLD_AM_RTREE_H_

#include <string>
#include <vector>

#include "geom/rect.h"
#include "gist/extension.h"

namespace bw::am {

/// R-tree bounding-predicate codec and heuristics. BP layout: 2D floats
/// (lo[0..D), hi[0..D)) — the "2D numbers" of the paper's Table 3.
class RtreeExtension : public gist::Extension {
 public:
  explicit RtreeExtension(size_t dim, uint64_t seed = 42,
                          double min_fill = 0.40)
      : Extension(dim, seed), min_fill_(min_fill) {}

  std::string Name() const override { return "rtree"; }

  gist::Bytes BpFromPoints(const std::vector<geom::Vec>& points) override;
  gist::Bytes BpFromChildBps(const std::vector<gist::Bytes>& children) override;
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  /// Batched scan: one SoA decode of the node's MBRs, then the
  /// vectorized rect kernel. Also covers the R*-tree (same BP codec).
  void BpMinDistanceBatch(gist::BatchScratch& scratch,
                          const geom::Vec& query) const override;
  double BpPenalty(gist::ByteSpan bp, const geom::Vec& point) const override;
  geom::Vec BpCenter(gist::ByteSpan bp) const override;
  gist::Bytes BpIncludePoint(gist::ByteSpan bp,
                             const geom::Vec& point) const override;
  gist::SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) override;
  gist::SplitAssignment PickSplitBps(
      const std::vector<gist::Bytes>& bps) override;
  double BpVolume(gist::ByteSpan bp) const override;
  std::string BpToString(gist::ByteSpan bp) const override;

  /// Serializes a rectangle in the R-tree BP layout.
  gist::Bytes EncodeRect(const geom::Rect& rect) const;
  /// Parses a BP back into a rectangle.
  geom::Rect DecodeRect(gist::ByteSpan bp) const;

 private:
  double min_fill_;
};

}  // namespace bw::am

#endif  // BLOBWORLD_AM_RTREE_H_
