#include "am/srtree.h"

#include <algorithm>
#include <cmath>

#include "am/bp_kernels.h"
#include "am/split_heuristics.h"

namespace bw::am {

gist::Bytes SrTreeExtension::Encode(const geom::Rect& rect,
                                    const geom::Sphere& sphere,
                                    uint32_t weight) const {
  BW_CHECK_EQ(rect.dim(), dim());
  BW_CHECK_EQ(sphere.dim(), dim());
  gist::Bytes out;
  out.reserve((3 * dim() + 1) * sizeof(float) + sizeof(uint32_t));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, rect.lo()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, rect.hi()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, sphere.center()[i]);
  AppendFloat(out, static_cast<float>(sphere.radius()));
  AppendU32(out, weight);
  return out;
}

geom::Rect SrTreeExtension::DecodeRect(gist::ByteSpan bp) const {
  geom::Vec lo(dim());
  geom::Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, i);
  for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, dim() + i);
  return geom::Rect(std::move(lo), std::move(hi));
}

geom::Sphere SrTreeExtension::DecodeSphere(gist::ByteSpan bp) const {
  geom::Vec center(dim());
  for (size_t i = 0; i < dim(); ++i) center[i] = ReadFloat(bp, 2 * dim() + i);
  double radius = ReadFloat(bp, 3 * dim());
  radius += 1e-5 * (1.0 + radius);
  return geom::Sphere(std::move(center), radius);
}

uint32_t SrTreeExtension::DecodeWeight(gist::ByteSpan bp) const {
  return ReadU32(bp, (3 * dim() + 1) * sizeof(float));
}

gist::Bytes SrTreeExtension::BpFromPoints(
    const std::vector<geom::Vec>& points) {
  geom::Rect rect = geom::Rect::BoundingBox(points);
  geom::Sphere sphere = geom::Sphere::CentroidBound(points);
  geom::Sphere padded(sphere.center(), sphere.radius() * (1.0 + 1e-5) + 1e-6);
  return Encode(rect, padded, static_cast<uint32_t>(points.size()));
}

gist::Bytes SrTreeExtension::BpFromChildBps(
    const std::vector<gist::Bytes>& children) {
  BW_CHECK(!children.empty());
  geom::Rect rect = DecodeRect(children[0]);
  std::vector<geom::Sphere> spheres;
  std::vector<double> weights;
  uint32_t total_weight = 0;
  for (const auto& child : children) {
    rect.ExpandToInclude(DecodeRect(child));
    spheres.push_back(DecodeSphere(child));
    const uint32_t w = DecodeWeight(child);
    weights.push_back(static_cast<double>(w));
    total_weight += w;
  }
  geom::Sphere sphere = geom::Sphere::CentroidBoundOfSpheres(spheres, weights);
  geom::Sphere padded(sphere.center(), sphere.radius() * (1.0 + 1e-5) + 1e-6);
  return Encode(rect, padded, total_weight);
}

double SrTreeExtension::BpMinDistance(gist::ByteSpan bp,
                                      const geom::Vec& query) const {
  // The covered region is rect ∩ sphere: both bounds are admissible, so
  // their max is the tighter admissible bound (SR-tree Lemma 1).
  const double rect_bound = std::sqrt(DecodeRect(bp).MinDistanceSquared(query));
  const double sphere_bound = DecodeSphere(bp).MinDistance(query);
  return std::max(rect_bound, sphere_bound);
}

void SrTreeExtension::BpMinDistanceBatch(gist::BatchScratch& scratch,
                                         const geom::Vec& query) const {
  const size_t d = dim();
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  scratch.soa.resize(3 * d * n);
  scratch.soa_d.resize(2 * n);
  float* lo = scratch.soa.data();
  float* hi = lo + d * n;
  float* center = hi + d * n;
  double* rect_sq = scratch.soa_d.data();
  double* radius = rect_sq + n;
  for (size_t e = 0; e < n; ++e) {
    const gist::ByteSpan bp = scratch.preds[e];
    BW_DCHECK_EQ(bp.size(), (3 * d + 1) * sizeof(float) + sizeof(uint32_t));
    for (size_t dd = 0; dd < d; ++dd) {
      lo[dd * n + e] = ReadFloat(bp, dd);
      hi[dd * n + e] = ReadFloat(bp, d + dd);
      center[dd * n + e] = ReadFloat(bp, 2 * d + dd);
    }
    // Same decode-time padding as DecodeSphere.
    double r = ReadFloat(bp, 3 * d);
    r += 1e-5 * (1.0 + r);
    radius[e] = r;
  }
  RectMinDistSquared(d, n, lo, hi, query, rect_sq);
  SphereMinDist(d, n, center, radius, query, scratch.distances.data());
  for (size_t e = 0; e < n; ++e) {
    const double rect_bound = std::sqrt(rect_sq[e]);
    if (rect_bound > scratch.distances[e]) scratch.distances[e] = rect_bound;
  }
}

double SrTreeExtension::BpPenalty(gist::ByteSpan bp,
                                  const geom::Vec& point) const {
  return DecodeSphere(bp).center().DistanceTo(point);
}

geom::Vec SrTreeExtension::BpCenter(gist::ByteSpan bp) const {
  return DecodeSphere(bp).center();
}

gist::Bytes SrTreeExtension::BpIncludePoint(gist::ByteSpan bp,
                                            const geom::Vec& point) const {
  geom::Rect rect = DecodeRect(bp);
  rect.ExpandToInclude(point);
  const geom::Sphere ball = DecodeSphere(bp);
  const double radius = std::max(ball.radius(), ball.center().DistanceTo(point));
  return Encode(rect, geom::Sphere(ball.center(), radius * (1.0 + 1e-6)),
                DecodeWeight(bp) + 1);
}

gist::SplitAssignment SrTreeExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  return MaxVarianceSplit(points, min_fill_);
}

gist::SplitAssignment SrTreeExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Vec> centers;
  centers.reserve(bps.size());
  for (const auto& bp : bps) centers.push_back(DecodeSphere(bp).center());
  return MaxVarianceSplit(centers, min_fill_);
}

double SrTreeExtension::BpVolume(gist::ByteSpan bp) const {
  // Approximate the rect ∩ sphere region volume by the smaller of the two.
  return std::min(DecodeRect(bp).Volume(), DecodeSphere(bp).Volume());
}

std::string SrTreeExtension::BpToString(gist::ByteSpan bp) const {
  return DecodeRect(bp).ToString() + " & " + DecodeSphere(bp).ToString();
}

}  // namespace bw::am
