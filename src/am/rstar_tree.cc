#include "am/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace bw::am {

double RStarTreeExtension::BpPenalty(gist::ByteSpan bp,
                                     const geom::Vec& point) const {
  const geom::Rect rect = DecodeRect(bp);
  const double enlargement = rect.Enlargement(geom::Rect(point));
  // Tie-break toward smaller boxes: scaled by a factor small enough to
  // never override a genuine enlargement difference.
  return enlargement + 1e-9 * rect.Volume();
}

gist::SplitAssignment RStarTreeExtension::RStarSplit(
    const std::vector<geom::Rect>& rects) const {
  const size_t n = rects.size();
  BW_CHECK_GE(n, 2u);
  const size_t dim = rects[0].dim();
  const size_t min_fill = std::max<size_t>(
      1, static_cast<size_t>(min_fill_ * static_cast<double>(n)));
  const size_t max_left = n - min_fill;

  // ChooseSplitAxis: for each dimension, sort by lower then by upper
  // bound and sum the margins of all candidate distributions; pick the
  // axis with the minimum margin sum.
  struct Candidate {
    size_t axis = 0;
    bool by_upper = false;
    size_t left_count = 0;
  };

  double best_margin_sum = std::numeric_limits<double>::infinity();
  size_t best_axis = 0;
  bool best_axis_by_upper = false;
  std::vector<size_t> order(n);

  auto sorted_order = [&](size_t axis, bool by_upper) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const float va = by_upper ? rects[a].hi()[axis] : rects[a].lo()[axis];
      const float vb = by_upper ? rects[b].hi()[axis] : rects[b].lo()[axis];
      return va < vb;
    });
    return order;
  };

  // Prefix/suffix MBRs of one sorted order; reused for axis selection
  // and the final index selection.
  std::vector<geom::Rect> prefix(n);
  std::vector<geom::Rect> suffix(n);
  auto fill_sweeps = [&](const std::vector<size_t>& ord) {
    prefix[0] = rects[ord[0]];
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1];
      prefix[i].ExpandToInclude(rects[ord[i]]);
    }
    suffix[n - 1] = rects[ord[n - 1]];
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].ExpandToInclude(rects[ord[i]]);
    }
  };

  for (size_t axis = 0; axis < dim; ++axis) {
    for (bool by_upper : {false, true}) {
      const auto& ord = sorted_order(axis, by_upper);
      fill_sweeps(ord);
      double margin_sum = 0.0;
      for (size_t left = min_fill; left <= max_left; ++left) {
        margin_sum += prefix[left - 1].Margin() + suffix[left].Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_upper = by_upper;
      }
    }
  }

  // ChooseSplitIndex on the winning axis: minimize overlap volume, then
  // total volume.
  const auto& ord = sorted_order(best_axis, best_axis_by_upper);
  fill_sweeps(ord);
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  size_t best_left = min_fill;
  for (size_t left = min_fill; left <= max_left; ++left) {
    const geom::Rect& a = prefix[left - 1];
    const geom::Rect& b = suffix[left];
    const double overlap = a.IntersectionVolume(b);
    const double volume = a.Volume() + b.Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && volume < best_volume)) {
      best_overlap = overlap;
      best_volume = volume;
      best_left = left;
    }
  }

  gist::SplitAssignment to_right(n, false);
  for (size_t i = best_left; i < n; ++i) to_right[ord[i]] = true;
  return to_right;
}

gist::SplitAssignment RStarTreeExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const auto& p : points) rects.emplace_back(p);
  return RStarSplit(rects);
}

gist::SplitAssignment RStarTreeExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Rect> rects;
  rects.reserve(bps.size());
  for (const auto& bp : bps) rects.push_back(DecodeRect(bp));
  return RStarSplit(rects);
}

}  // namespace bw::am
