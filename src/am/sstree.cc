#include "am/sstree.h"

#include "am/bp_kernels.h"
#include "am/split_heuristics.h"

namespace bw::am {

gist::Bytes SsTreeExtension::EncodeSphere(const geom::Sphere& sphere,
                                          uint32_t weight) const {
  BW_CHECK_EQ(sphere.dim(), dim());
  gist::Bytes out;
  out.reserve((dim() + 1) * sizeof(float) + sizeof(uint32_t));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, sphere.center()[i]);
  AppendFloat(out, static_cast<float>(sphere.radius()));
  AppendU32(out, weight);
  return out;
}

geom::Sphere SsTreeExtension::DecodeSphere(gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), (dim() + 1) * sizeof(float) + sizeof(uint32_t));
  geom::Vec center(dim());
  for (size_t i = 0; i < dim(); ++i) center[i] = ReadFloat(bp, i);
  // Stored radii are float32; pad by one ulp-scale epsilon so points on
  // the boundary stay covered after the round-trip.
  double radius = ReadFloat(bp, dim());
  radius += 1e-5 * (1.0 + radius);
  return geom::Sphere(std::move(center), radius);
}

uint32_t SsTreeExtension::DecodeWeight(gist::ByteSpan bp) const {
  return ReadU32(bp, (dim() + 1) * sizeof(float));
}

gist::Bytes SsTreeExtension::BpFromPoints(
    const std::vector<geom::Vec>& points) {
  geom::Sphere bound = geom::Sphere::CentroidBound(points);
  // Pad for float32 storage truncation.
  geom::Sphere padded(bound.center(), bound.radius() * (1.0 + 1e-5) + 1e-6);
  return EncodeSphere(padded, static_cast<uint32_t>(points.size()));
}

gist::Bytes SsTreeExtension::BpFromChildBps(
    const std::vector<gist::Bytes>& children) {
  BW_CHECK(!children.empty());
  std::vector<geom::Sphere> spheres;
  std::vector<double> weights;
  spheres.reserve(children.size());
  weights.reserve(children.size());
  uint32_t total_weight = 0;
  for (const auto& child : children) {
    spheres.push_back(DecodeSphere(child));
    const uint32_t w = DecodeWeight(child);
    weights.push_back(static_cast<double>(w));
    total_weight += w;
  }
  geom::Sphere bound = geom::Sphere::CentroidBoundOfSpheres(spheres, weights);
  geom::Sphere padded(bound.center(), bound.radius() * (1.0 + 1e-5) + 1e-6);
  return EncodeSphere(padded, total_weight);
}

double SsTreeExtension::BpMinDistance(gist::ByteSpan bp,
                                      const geom::Vec& query) const {
  return DecodeSphere(bp).MinDistance(query);
}

void SsTreeExtension::BpMinDistanceBatch(gist::BatchScratch& scratch,
                                         const geom::Vec& query) const {
  const size_t d = dim();
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  scratch.soa.resize(d * n);
  scratch.soa_d.resize(n);
  for (size_t e = 0; e < n; ++e) {
    const gist::ByteSpan bp = scratch.preds[e];
    BW_DCHECK_EQ(bp.size(), (d + 1) * sizeof(float) + sizeof(uint32_t));
    for (size_t dd = 0; dd < d; ++dd) {
      scratch.soa[dd * n + e] = ReadFloat(bp, dd);
    }
    // Same decode-time padding as DecodeSphere.
    double radius = ReadFloat(bp, d);
    radius += 1e-5 * (1.0 + radius);
    scratch.soa_d[e] = radius;
  }
  SphereMinDist(d, n, scratch.soa.data(), scratch.soa_d.data(), query,
                scratch.distances.data());
}

double SsTreeExtension::BpPenalty(gist::ByteSpan bp,
                                  const geom::Vec& point) const {
  // SS-tree: descend toward the subtree whose centroid is nearest.
  return DecodeSphere(bp).center().DistanceTo(point);
}

geom::Vec SsTreeExtension::BpCenter(gist::ByteSpan bp) const {
  return DecodeSphere(bp).center();
}

gist::Bytes SsTreeExtension::BpIncludePoint(gist::ByteSpan bp,
                                            const geom::Vec& point) const {
  // Classic enlarge-only maintenance: keep the center, grow the radius.
  const geom::Sphere ball = DecodeSphere(bp);
  const double radius = std::max(ball.radius(), ball.center().DistanceTo(point));
  return EncodeSphere(geom::Sphere(ball.center(), radius * (1.0 + 1e-6)),
                      DecodeWeight(bp) + 1);
}

gist::SplitAssignment SsTreeExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  return MaxVarianceSplit(points, min_fill_);
}

gist::SplitAssignment SsTreeExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Vec> centers;
  centers.reserve(bps.size());
  for (const auto& bp : bps) centers.push_back(DecodeSphere(bp).center());
  return MaxVarianceSplit(centers, min_fill_);
}

double SsTreeExtension::BpVolume(gist::ByteSpan bp) const {
  return DecodeSphere(bp).Volume();
}

std::string SsTreeExtension::BpToString(gist::ByteSpan bp) const {
  return DecodeSphere(bp).ToString();
}

}  // namespace bw::am
