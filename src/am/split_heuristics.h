// Node-splitting heuristics shared by the access-method extensions:
// Guttman's quadratic split over rectangles (R-tree) and the
// max-variance-dimension split of the SS-tree family.

#ifndef BLOBWORLD_AM_SPLIT_HEURISTICS_H_
#define BLOBWORLD_AM_SPLIT_HEURISTICS_H_

#include <vector>

#include "geom/rect.h"
#include "geom/vec.h"
#include "gist/extension.h"

namespace bw::am {

/// Guttman's quadratic split: picks the pair of seed rectangles wasting
/// the most area if grouped together, then assigns each remaining entry
/// to the group whose MBR it enlarges least, while enforcing that each
/// side receives at least `min_fill_fraction` of the entries.
gist::SplitAssignment QuadraticSplit(const std::vector<geom::Rect>& rects,
                                     double min_fill_fraction);

/// SS-tree split: find the coordinate of maximum variance among the
/// entry centers and split at the median along it (balanced halves).
gist::SplitAssignment MaxVarianceSplit(const std::vector<geom::Vec>& centers,
                                       double min_fill_fraction);

}  // namespace bw::am

#endif  // BLOBWORLD_AM_SPLIT_HEURISTICS_H_
