// Internal: per-ISA kernel variants behind the public dispatchers in
// bp_kernels.h. The scalar variants ARE the bit-identity contract; the
// AVX2 variants (compiled in bp_kernels_avx2.cc with -mavx2 -mfma, only
// when the build defines BW_HAVE_AVX2) fuse each gap*gap accumulation
// into one FMA, which single-rounds where the scalar path rounds twice:
// per entry the result differs from scalar by at most a few ULPs per
// accumulated dimension (see tests/kernel_dispatch_test.cc for the
// enforced bound). Compare/select-only work (the float clamp) is
// bit-identical on both ISAs up to the sign of zero.

#ifndef BLOBWORLD_AM_BP_KERNELS_ISA_H_
#define BLOBWORLD_AM_BP_KERNELS_ISA_H_

#include <cstddef>

#include "geom/vec.h"

namespace bw::am::detail {

void RectMinDistSquaredScalar(size_t dim, size_t count, const float* lo,
                              const float* hi, const geom::Vec& query,
                              double* out);
void RectMaxDistSquaredScalar(size_t dim, size_t count, const float* lo,
                              const float* hi, const geom::Vec& query,
                              double* out);
void RectClampMinDistSquaredScalar(size_t dim, size_t count, const float* lo,
                                   const float* hi, const geom::Vec& query,
                                   float* clamp_out, double* out);
void SphereMinDistScalar(size_t dim, size_t count, const float* center,
                         const double* radius, const geom::Vec& query,
                         double* out);

#if defined(BW_HAVE_AVX2)
void RectMinDistSquaredAvx2(size_t dim, size_t count, const float* lo,
                            const float* hi, const geom::Vec& query,
                            double* out);
void RectMaxDistSquaredAvx2(size_t dim, size_t count, const float* lo,
                            const float* hi, const geom::Vec& query,
                            double* out);
void RectClampMinDistSquaredAvx2(size_t dim, size_t count, const float* lo,
                                 const float* hi, const geom::Vec& query,
                                 float* clamp_out, double* out);
void SphereMinDistAvx2(size_t dim, size_t count, const float* center,
                       const double* radius, const geom::Vec& query,
                       double* out);
#endif  // BW_HAVE_AVX2

}  // namespace bw::am::detail

#endif  // BLOBWORLD_AM_BP_KERNELS_ISA_H_
