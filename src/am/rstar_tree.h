// R*-tree extension (Beckmann et al., SIGMOD '90): the R-tree with
// margin-driven split-axis selection, overlap-minimizing split index
// selection, and a combined overlap/volume insertion penalty.
//
// The paper's footnote 5 claims that "bulk-loading the data eliminates
// any difference between the two AMs" (R-tree vs R*-tree); this
// extension exists so the claim can be tested rather than assumed — see
// bench/ablation_rstar.cc.

#ifndef BLOBWORLD_AM_RSTAR_TREE_H_
#define BLOBWORLD_AM_RSTAR_TREE_H_

#include <string>
#include <vector>

#include "am/rtree.h"

namespace bw::am {

/// R*-tree: shares the R-tree's BP codec (an MBR) and differs only in
/// its insertion penalty and split algorithm, exactly as in the
/// original paper. Forced reinsertion is approximated by the GiST
/// framework's delete-time condensation (the classic R*-tree reinserts
/// 30% of an overflowing node once per level; under GiST's split-driven
/// template we rely on the improved split instead, which Beckmann et
/// al. report captures most of the benefit for point data).
class RStarTreeExtension : public RtreeExtension {
 public:
  explicit RStarTreeExtension(size_t dim, uint64_t seed = 42,
                              double min_fill = 0.40)
      : RtreeExtension(dim, seed, min_fill), min_fill_(min_fill) {}

  std::string Name() const override { return "rstar"; }

  /// R*-tree ChooseSubtree penalty: for leaf-adjacent levels the tree
  /// minimizes *overlap* enlargement; the GiST penalty interface sees
  /// one BP at a time, so this uses the standard surrogate of volume
  /// enlargement weighted by current volume (ties toward smaller boxes).
  double BpPenalty(gist::ByteSpan bp, const geom::Vec& point) const override;

  gist::SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) override;
  gist::SplitAssignment PickSplitBps(
      const std::vector<gist::Bytes>& bps) override;

 private:
  gist::SplitAssignment RStarSplit(const std::vector<geom::Rect>& rects) const;

  double min_fill_;
};

}  // namespace bw::am

#endif  // BLOBWORLD_AM_RSTAR_TREE_H_
