#include "am/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gist/node.h"

namespace bw::am {

namespace {

// Recursive STR tiling: orders `indices` so that consecutive runs of
// `capacity` points form spatial tiles. `dim` is the coordinate to sort
// by at this level; `dims_left` counts how many coordinates remain
// (including `dim`).
void StrRecurse(const std::vector<geom::Vec>& points,
                std::vector<size_t>& indices, size_t begin, size_t end,
                size_t dim, size_t dims_left, size_t capacity) {
  const size_t n = end - begin;
  if (n <= capacity || dims_left == 0) return;

  std::sort(indices.begin() + static_cast<long>(begin),
            indices.begin() + static_cast<long>(end),
            [&](size_t a, size_t b) { return points[a][dim] < points[b][dim]; });

  if (dims_left == 1) return;  // Final dimension: runs of `capacity`.

  const double pages =
      std::ceil(static_cast<double>(n) / static_cast<double>(capacity));
  const auto slabs = static_cast<size_t>(std::max(
      1.0, std::ceil(std::pow(pages, 1.0 / static_cast<double>(dims_left)))));
  const size_t slab_size = (n + slabs - 1) / slabs;

  for (size_t s = begin; s < end; s += slab_size) {
    const size_t slab_end = std::min(s + slab_size, end);
    StrRecurse(points, indices, s, slab_end, dim + 1, dims_left - 1,
               capacity);
  }
}

// Entries (predicate + payload) of one level, in STR order.
struct LevelEntries {
  std::vector<gist::Bytes> preds;
  std::vector<uint64_t> payloads;
};

}  // namespace

std::vector<size_t> StrOrder(const std::vector<geom::Vec>& points,
                             size_t node_capacity) {
  std::vector<size_t> indices(points.size());
  std::iota(indices.begin(), indices.end(), 0);
  if (points.empty()) return indices;
  StrRecurse(points, indices, 0, points.size(), 0, points[0].dim(),
             std::max<size_t>(node_capacity, 1));
  return indices;
}

Status StrBulkLoad(gist::Tree* tree, const std::vector<geom::Vec>& points,
                   const std::vector<gist::Rid>& rids,
                   BulkLoadOptions options) {
  if (points.size() != rids.size()) {
    return Status::InvalidArgument("points/rids size mismatch");
  }
  if (points.empty()) {
    return Status::InvalidArgument("cannot bulk-load an empty data set");
  }
  if (!tree->empty()) {
    return Status::InvalidArgument("bulk load target tree is not empty");
  }
  if (options.fill_fraction <= 0.0 || options.fill_fraction > 1.0) {
    return Status::InvalidArgument("fill_fraction must be in (0, 1]");
  }

  gist::Extension& ext = tree->mutable_extension();
  pages::PageStore* file = tree->file();

  // Bytes one leaf entry occupies: key + payload + slot.
  const size_t leaf_entry_bytes =
      ext.PointBytes() + sizeof(uint64_t) + 2 * sizeof(uint32_t);
  const size_t leaf_capacity = std::max<size_t>(
      1, static_cast<size_t>(options.fill_fraction *
                             static_cast<double>(file->page_size())) /
             leaf_entry_bytes);

  // ---- Level 0: pack leaves from the STR tiling. ----
  std::vector<size_t> order = StrOrder(points, leaf_capacity);

  LevelEntries level;
  int current_level = 0;
  for (size_t begin = 0; begin < order.size(); begin += leaf_capacity) {
    const size_t end = std::min(begin + leaf_capacity, order.size());
    const pages::PageId page_id = file->Allocate();
    BW_ASSIGN_OR_RETURN(pages::Page * page, file->Write(page_id));
    gist::NodeView node(page);
    node.Format(/*level=*/0);
    std::vector<geom::Vec> node_points;
    node_points.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const size_t idx = order[i];
      node_points.push_back(points[idx]);
      BW_RETURN_IF_ERROR(node.Append(ext.EncodePoint(points[idx]), rids[idx]));
    }
    level.preds.push_back(ext.BpFromPoints(node_points));
    level.payloads.push_back(page_id);
  }

  // ---- Upper levels: STR over BP centers, nodes derive BPs from
  // children, until a single node remains. ----
  while (level.preds.size() > 1) {
    ++current_level;

    // Capacity from the (uniform) BP size of this level.
    const size_t bp_bytes = level.preds[0].size();
    const size_t entry_bytes = bp_bytes + sizeof(uint64_t) + 2 * sizeof(uint32_t);
    const size_t capacity = std::max<size_t>(
        2, static_cast<size_t>(options.fill_fraction *
                               static_cast<double>(file->page_size())) /
               entry_bytes);

    std::vector<geom::Vec> centers;
    centers.reserve(level.preds.size());
    for (const auto& bp : level.preds) centers.push_back(ext.BpCenter(bp));
    std::vector<size_t> node_order = StrOrder(centers, capacity);

    LevelEntries next;
    size_t begin = 0;
    while (begin < node_order.size()) {
      size_t end = std::min(begin + capacity, node_order.size());
      // Never strand a single child in the last node (it would make an
      // internal node with fanout 1).
      if (node_order.size() - begin > capacity &&
          node_order.size() - end == 1) {
        --end;
      }
      const pages::PageId page_id = file->Allocate();
      BW_ASSIGN_OR_RETURN(pages::Page * page, file->Write(page_id));
      gist::NodeView node(page);
      node.Format(current_level);
      std::vector<gist::Bytes> child_bps;
      child_bps.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const size_t idx = node_order[i];
        Status appended = node.Append(level.preds[idx], level.payloads[idx]);
        if (!appended.ok()) {
          return Status::Internal(
              "bulk load internal node overflow; BP too large for page");
        }
        child_bps.push_back(level.preds[idx]);
      }
      next.preds.push_back(ext.BpFromChildBps(child_bps));
      next.payloads.push_back(page_id);
      begin = end;
    }
    level = std::move(next);
  }

  tree->InstallBulkLoaded(static_cast<pages::PageId>(level.payloads[0]),
                          current_level + 1, points.size());
  return Status::OK();
}

Status InsertionLoad(gist::Tree* tree, const std::vector<geom::Vec>& points,
                     const std::vector<gist::Rid>& rids) {
  if (points.size() != rids.size()) {
    return Status::InvalidArgument("points/rids size mismatch");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    BW_RETURN_IF_ERROR(tree->Insert(points[i], rids[i]));
  }
  return Status::OK();
}

}  // namespace bw::am
