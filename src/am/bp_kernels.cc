#include "am/bp_kernels.h"

#include <algorithm>
#include <cmath>

#include "am/bp_kernels_isa.h"
#include "util/cpu.h"

namespace bw::am {

namespace detail {

void RectMinDistSquaredScalar(size_t dim, size_t count, const float* lo,
                              const float* hi, const geom::Vec& query,
                              double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const float* l = lo + d * count;
    const float* h = hi + d * count;
    for (size_t e = 0; e < count; ++e) {
      // Branchless form of Rect::MinDistanceSquared's per-dim gap: for
      // lo <= hi exactly one of (lo - q), (q - hi) can be positive, so
      // max(lo - q, q - hi, 0) reproduces the scalar branch selection.
      const double gl = double(l[e]) - q;
      const double gh = q - double(h[e]);
      double gap = gl > gh ? gl : gh;
      gap = gap > 0.0 ? gap : 0.0;
      out[e] += gap * gap;
    }
  }
}

void RectMaxDistSquaredScalar(size_t dim, size_t count, const float* lo,
                              const float* hi, const geom::Vec& query,
                              double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const float* l = lo + d * count;
    const float* h = hi + d * count;
    for (size_t e = 0; e < count; ++e) {
      const double to_lo = std::abs(q - double(l[e]));
      const double to_hi = std::abs(q - double(h[e]));
      const double gap = to_lo > to_hi ? to_lo : to_hi;
      out[e] += gap * gap;
    }
  }
}

void RectClampMinDistSquaredScalar(size_t dim, size_t count, const float* lo,
                                   const float* hi, const geom::Vec& query,
                                   float* clamp_out, double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const float v = query[d];
    const float* l = lo + d * count;
    const float* h = hi + d * count;
    float* c = clamp_out + d * count;
    for (size_t e = 0; e < count; ++e) {
      const float cl = v < l[e] ? l[e] : (v > h[e] ? h[e] : v);
      c[e] = cl;
      const double gap = double(v) - cl;
      out[e] += gap * gap;
    }
  }
}

void SphereMinDistScalar(size_t dim, size_t count, const float* center,
                         const double* radius, const geom::Vec& query,
                         double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const float* c = center + d * count;
    for (size_t e = 0; e < count; ++e) {
      const double diff = double(c[e]) - q;
      out[e] += diff * diff;
    }
  }
  for (size_t e = 0; e < count; ++e) {
    const double d = std::sqrt(out[e]) - radius[e];
    out[e] = d > 0.0 ? d : 0.0;
  }
}

}  // namespace detail

// Public dispatchers: one predicted-taken branch per node scan. The
// AVX2 calls exist only in builds that compiled the variants
// (BW_HAVE_AVX2); ActiveKernelIsa() never returns kAvx2 otherwise.

void RectMinDistSquared(size_t dim, size_t count, const float* lo,
                        const float* hi, const geom::Vec& query, double* out) {
#if defined(BW_HAVE_AVX2)
  if (util::ActiveKernelIsa() == util::KernelIsa::kAvx2) {
    detail::RectMinDistSquaredAvx2(dim, count, lo, hi, query, out);
    return;
  }
#endif
  detail::RectMinDistSquaredScalar(dim, count, lo, hi, query, out);
}

void RectMaxDistSquared(size_t dim, size_t count, const float* lo,
                        const float* hi, const geom::Vec& query, double* out) {
#if defined(BW_HAVE_AVX2)
  if (util::ActiveKernelIsa() == util::KernelIsa::kAvx2) {
    detail::RectMaxDistSquaredAvx2(dim, count, lo, hi, query, out);
    return;
  }
#endif
  detail::RectMaxDistSquaredScalar(dim, count, lo, hi, query, out);
}

void RectClampMinDistSquared(size_t dim, size_t count, const float* lo,
                             const float* hi, const geom::Vec& query,
                             float* clamp_out, double* out) {
#if defined(BW_HAVE_AVX2)
  if (util::ActiveKernelIsa() == util::KernelIsa::kAvx2) {
    detail::RectClampMinDistSquaredAvx2(dim, count, lo, hi, query, clamp_out,
                                        out);
    return;
  }
#endif
  detail::RectClampMinDistSquaredScalar(dim, count, lo, hi, query, clamp_out,
                                        out);
}

void SphereMinDist(size_t dim, size_t count, const float* center,
                   const double* radius, const geom::Vec& query, double* out) {
#if defined(BW_HAVE_AVX2)
  if (util::ActiveKernelIsa() == util::KernelIsa::kAvx2) {
    detail::SphereMinDistAvx2(dim, count, center, radius, query, out);
    return;
  }
#endif
  detail::SphereMinDistScalar(dim, count, center, radius, query, out);
}

}  // namespace bw::am
