#include "am/rtree.h"

#include <cmath>

#include "am/bp_kernels.h"
#include "am/split_heuristics.h"

namespace bw::am {

gist::Bytes RtreeExtension::EncodeRect(const geom::Rect& rect) const {
  BW_CHECK_EQ(rect.dim(), dim());
  gist::Bytes out;
  out.reserve(2 * dim() * sizeof(float));
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, rect.lo()[i]);
  for (size_t i = 0; i < dim(); ++i) AppendFloat(out, rect.hi()[i]);
  return out;
}

geom::Rect RtreeExtension::DecodeRect(gist::ByteSpan bp) const {
  BW_CHECK_EQ(bp.size(), 2 * dim() * sizeof(float));
  geom::Vec lo(dim());
  geom::Vec hi(dim());
  for (size_t i = 0; i < dim(); ++i) lo[i] = ReadFloat(bp, i);
  for (size_t i = 0; i < dim(); ++i) hi[i] = ReadFloat(bp, dim() + i);
  return geom::Rect(std::move(lo), std::move(hi));
}

gist::Bytes RtreeExtension::BpFromPoints(const std::vector<geom::Vec>& points) {
  return EncodeRect(geom::Rect::BoundingBox(points));
}

gist::Bytes RtreeExtension::BpFromChildBps(
    const std::vector<gist::Bytes>& children) {
  BW_CHECK(!children.empty());
  geom::Rect merged = DecodeRect(children[0]);
  for (size_t i = 1; i < children.size(); ++i) {
    merged.ExpandToInclude(DecodeRect(children[i]));
  }
  return EncodeRect(merged);
}

double RtreeExtension::BpMinDistance(gist::ByteSpan bp,
                                     const geom::Vec& query) const {
  return std::sqrt(DecodeRect(bp).MinDistanceSquared(query));
}

void RtreeExtension::BpMinDistanceBatch(gist::BatchScratch& scratch,
                                        const geom::Vec& query) const {
  const size_t d = dim();
  const size_t n = scratch.count();
  scratch.distances.resize(n);
  scratch.soa.resize(2 * d * n);
  float* lo = scratch.soa.data();
  float* hi = lo + d * n;
  for (size_t e = 0; e < n; ++e) {
    const gist::ByteSpan bp = scratch.preds[e];
    BW_DCHECK_EQ(bp.size(), 2 * d * sizeof(float));
    for (size_t dd = 0; dd < d; ++dd) {
      lo[dd * n + e] = ReadFloat(bp, dd);
      hi[dd * n + e] = ReadFloat(bp, d + dd);
    }
  }
  RectMinDistSquared(d, n, lo, hi, query, scratch.distances.data());
  for (size_t e = 0; e < n; ++e) {
    scratch.distances[e] = std::sqrt(scratch.distances[e]);
  }
}

double RtreeExtension::BpPenalty(gist::ByteSpan bp,
                                 const geom::Vec& point) const {
  return DecodeRect(bp).Enlargement(geom::Rect(point));
}

geom::Vec RtreeExtension::BpCenter(gist::ByteSpan bp) const {
  return DecodeRect(bp).Center();
}

gist::Bytes RtreeExtension::BpIncludePoint(gist::ByteSpan bp,
                                           const geom::Vec& point) const {
  geom::Rect rect = DecodeRect(bp);
  rect.ExpandToInclude(point);
  return EncodeRect(rect);
}

gist::SplitAssignment RtreeExtension::PickSplitPoints(
    const std::vector<geom::Vec>& points) {
  std::vector<geom::Rect> rects;
  rects.reserve(points.size());
  for (const auto& p : points) rects.emplace_back(p);
  return QuadraticSplit(rects, min_fill_);
}

gist::SplitAssignment RtreeExtension::PickSplitBps(
    const std::vector<gist::Bytes>& bps) {
  std::vector<geom::Rect> rects;
  rects.reserve(bps.size());
  for (const auto& bp : bps) rects.push_back(DecodeRect(bp));
  return QuadraticSplit(rects, min_fill_);
}

double RtreeExtension::BpVolume(gist::ByteSpan bp) const {
  return DecodeRect(bp).Volume();
}

std::string RtreeExtension::BpToString(gist::ByteSpan bp) const {
  return DecodeRect(bp).ToString();
}

}  // namespace bw::am
