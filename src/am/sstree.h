// SS-tree extension (White & Jain '96): bounding spheres as BPs, with
// centroid-proximity insertion penalty and max-variance splits.

#ifndef BLOBWORLD_AM_SSTREE_H_
#define BLOBWORLD_AM_SSTREE_H_

#include <string>
#include <vector>

#include "geom/sphere.h"
#include "gist/extension.h"

namespace bw::am {

/// SS-tree bounding-predicate codec. BP layout: D floats (center), one
/// float (radius), one uint32 (weight = number of points in the subtree;
/// the SS-tree carries this to form weighted centroids at upper levels).
class SsTreeExtension : public gist::Extension {
 public:
  explicit SsTreeExtension(size_t dim, uint64_t seed = 42,
                           double min_fill = 0.40)
      : Extension(dim, seed), min_fill_(min_fill) {}

  std::string Name() const override { return "sstree"; }

  gist::Bytes BpFromPoints(const std::vector<geom::Vec>& points) override;
  gist::Bytes BpFromChildBps(const std::vector<gist::Bytes>& children) override;
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  /// Batched scan: centers decoded into SoA planes, padded radii into
  /// the double staging, then the vectorized sphere kernel.
  void BpMinDistanceBatch(gist::BatchScratch& scratch,
                          const geom::Vec& query) const override;
  double BpPenalty(gist::ByteSpan bp, const geom::Vec& point) const override;
  geom::Vec BpCenter(gist::ByteSpan bp) const override;
  gist::Bytes BpIncludePoint(gist::ByteSpan bp,
                             const geom::Vec& point) const override;
  gist::SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) override;
  gist::SplitAssignment PickSplitBps(
      const std::vector<gist::Bytes>& bps) override;
  double BpVolume(gist::ByteSpan bp) const override;
  std::string BpToString(gist::ByteSpan bp) const override;

  gist::Bytes EncodeSphere(const geom::Sphere& sphere, uint32_t weight) const;
  geom::Sphere DecodeSphere(gist::ByteSpan bp) const;
  uint32_t DecodeWeight(gist::ByteSpan bp) const;

 private:
  double min_fill_;
};

}  // namespace bw::am

#endif  // BLOBWORLD_AM_SSTREE_H_
