// Hand-written AVX2/FMA variants of the node-scan kernels. This file is
// the only am/ translation unit compiled with -mavx2 -mfma (per-file
// CMake flags, gated on BW_ENABLE_AVX2); it must only be entered through
// the runtime dispatchers in bp_kernels.cc, which check CPU support.
//
// Contract (see bp_kernels.h): the double-precision accumulations here
// fuse gap*gap + acc into one vfmadd (single rounding where the scalar
// contract rounds twice), so outputs are ULP-bounded against scalar,
// not bit-identical. All float compare/select work (the clamp pass) is
// bit-identical to scalar except for the sign of zero, which no
// downstream consumer observes (strict and non-strict float compares
// treat -0.0 == +0.0). Scalar tail loops for counts not divisible by
// the vector width reproduce the scalar contract exactly, which is
// trivially within the ULP bound.

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "am/bp_kernels_isa.h"

namespace bw::am::detail {

namespace {

// |x| for packed doubles: clear the sign bit.
inline __m256d AbsPd(__m256d x) {
  const __m256d mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      0x7fffffffffffffffLL));
  return _mm256_and_pd(x, mask);
}

}  // namespace

void RectMinDistSquaredAvx2(size_t dim, size_t count, const float* lo,
                            const float* hi, const geom::Vec& query,
                            double* out) {
  std::fill(out, out + count, 0.0);
  const __m256d zero = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const __m256d qv = _mm256_set1_pd(q);
    const float* l = lo + d * count;
    const float* h = hi + d * count;
    size_t e = 0;
    for (; e + 4 <= count; e += 4) {
      const __m256d lv = _mm256_cvtps_pd(_mm_loadu_ps(l + e));
      const __m256d hv = _mm256_cvtps_pd(_mm_loadu_ps(h + e));
      const __m256d gl = _mm256_sub_pd(lv, qv);
      const __m256d gh = _mm256_sub_pd(qv, hv);
      const __m256d gap = _mm256_max_pd(_mm256_max_pd(gl, gh), zero);
      const __m256d acc = _mm256_loadu_pd(out + e);
      _mm256_storeu_pd(out + e, _mm256_fmadd_pd(gap, gap, acc));
    }
    for (; e < count; ++e) {
      const double gl = double(l[e]) - q;
      const double gh = q - double(h[e]);
      double gap = gl > gh ? gl : gh;
      gap = gap > 0.0 ? gap : 0.0;
      out[e] += gap * gap;
    }
  }
}

void RectMaxDistSquaredAvx2(size_t dim, size_t count, const float* lo,
                            const float* hi, const geom::Vec& query,
                            double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const __m256d qv = _mm256_set1_pd(q);
    const float* l = lo + d * count;
    const float* h = hi + d * count;
    size_t e = 0;
    for (; e + 4 <= count; e += 4) {
      const __m256d lv = _mm256_cvtps_pd(_mm_loadu_ps(l + e));
      const __m256d hv = _mm256_cvtps_pd(_mm_loadu_ps(h + e));
      const __m256d to_lo = AbsPd(_mm256_sub_pd(qv, lv));
      const __m256d to_hi = AbsPd(_mm256_sub_pd(qv, hv));
      const __m256d gap = _mm256_max_pd(to_lo, to_hi);
      const __m256d acc = _mm256_loadu_pd(out + e);
      _mm256_storeu_pd(out + e, _mm256_fmadd_pd(gap, gap, acc));
    }
    for (; e < count; ++e) {
      const double to_lo = std::abs(q - double(l[e]));
      const double to_hi = std::abs(q - double(h[e]));
      const double gap = to_lo > to_hi ? to_lo : to_hi;
      out[e] += gap * gap;
    }
  }
}

void RectClampMinDistSquaredAvx2(size_t dim, size_t count, const float* lo,
                                 const float* hi, const geom::Vec& query,
                                 float* clamp_out, double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const float v = query[d];
    const __m256 vf = _mm256_set1_ps(v);
    const __m256d vd = _mm256_set1_pd(double(v));
    const float* l = lo + d * count;
    const float* h = hi + d * count;
    float* c = clamp_out + d * count;
    size_t e = 0;
    for (; e + 8 <= count; e += 8) {
      // min(max(v, lo), hi) equals the scalar select chain for valid
      // boxes (lo <= hi) on NaN-free inputs, modulo the sign of zero.
      const __m256 lv = _mm256_loadu_ps(l + e);
      const __m256 hv = _mm256_loadu_ps(h + e);
      const __m256 cl = _mm256_min_ps(_mm256_max_ps(vf, lv), hv);
      _mm256_storeu_ps(c + e, cl);
      const __m256d cl_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(cl));
      const __m256d cl_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(cl, 1));
      const __m256d gap_lo = _mm256_sub_pd(vd, cl_lo);
      const __m256d gap_hi = _mm256_sub_pd(vd, cl_hi);
      const __m256d acc_lo = _mm256_loadu_pd(out + e);
      const __m256d acc_hi = _mm256_loadu_pd(out + e + 4);
      _mm256_storeu_pd(out + e, _mm256_fmadd_pd(gap_lo, gap_lo, acc_lo));
      _mm256_storeu_pd(out + e + 4, _mm256_fmadd_pd(gap_hi, gap_hi, acc_hi));
    }
    for (; e < count; ++e) {
      const float cl = v < l[e] ? l[e] : (v > h[e] ? h[e] : v);
      c[e] = cl;
      const double gap = double(v) - cl;
      out[e] += gap * gap;
    }
  }
}

void SphereMinDistAvx2(size_t dim, size_t count, const float* center,
                       const double* radius, const geom::Vec& query,
                       double* out) {
  std::fill(out, out + count, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const __m256d qv = _mm256_set1_pd(q);
    const float* c = center + d * count;
    size_t e = 0;
    for (; e + 4 <= count; e += 4) {
      const __m256d cv = _mm256_cvtps_pd(_mm_loadu_ps(c + e));
      const __m256d diff = _mm256_sub_pd(cv, qv);
      const __m256d acc = _mm256_loadu_pd(out + e);
      _mm256_storeu_pd(out + e, _mm256_fmadd_pd(diff, diff, acc));
    }
    for (; e < count; ++e) {
      const double diff = double(c[e]) - q;
      out[e] += diff * diff;
    }
  }
  const __m256d zero = _mm256_setzero_pd();
  size_t e = 0;
  for (; e + 4 <= count; e += 4) {
    // vsqrtpd is correctly rounded (same result as std::sqrt).
    const __m256d dist = _mm256_sqrt_pd(_mm256_loadu_pd(out + e));
    const __m256d r = _mm256_loadu_pd(radius + e);
    _mm256_storeu_pd(out + e, _mm256_max_pd(_mm256_sub_pd(dist, r), zero));
  }
  for (; e < count; ++e) {
    const double d = std::sqrt(out[e]) - radius[e];
    out[e] = d > 0.0 ? d : 0.0;
  }
}

}  // namespace bw::am::detail
