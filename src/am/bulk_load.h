// STR (Sort-Tile-Recursive) bulk loading [Leutenegger et al., ICDE '97],
// generalized over any GiST extension: leaves are packed from the STR
// tiling of the data points; each upper level is built by re-applying
// STR to the child BP centers and deriving node BPs through the
// extension's BpFromChildBps — so a JB tree gets JB predicates at every
// level, exactly as the paper's trees do.
//
// The paper found that STR bulk loading minimizes utilization and
// clustering loss, leaving excess coverage as the dominant R-tree
// problem (Table 2); the insertion loader below provides the contrast.

#ifndef BLOBWORLD_AM_BULK_LOAD_H_
#define BLOBWORLD_AM_BULK_LOAD_H_

#include <cstdint>
#include <vector>

#include "geom/vec.h"
#include "gist/tree.h"
#include "util/status.h"

namespace bw::am {

struct BulkLoadOptions {
  /// Target node fill fraction (leaves and internal nodes).
  double fill_fraction = 0.85;
};

/// Bulk-loads `tree` (which must be empty) with the given points. RID of
/// points[i] is rids[i].
Status StrBulkLoad(gist::Tree* tree, const std::vector<geom::Vec>& points,
                   const std::vector<gist::Rid>& rids,
                   BulkLoadOptions options = BulkLoadOptions());

/// Loads the tree through repeated INSERT calls (penalty descent +
/// pickSplit), i.e. the "insertion loaded" trees of Table 2.
Status InsertionLoad(gist::Tree* tree, const std::vector<geom::Vec>& points,
                     const std::vector<gist::Rid>& rids);

/// Computes the STR ordering of `points`: a permutation such that
/// consecutive runs of `node_capacity` points form the STR tiles.
/// Exposed for tests and for the amdb optimal-clustering seed.
std::vector<size_t> StrOrder(const std::vector<geom::Vec>& points,
                             size_t node_capacity);

}  // namespace bw::am

#endif  // BLOBWORLD_AM_BULK_LOAD_H_
