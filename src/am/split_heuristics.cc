#include "am/split_heuristics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace bw::am {

gist::SplitAssignment QuadraticSplit(const std::vector<geom::Rect>& rects,
                                     double min_fill_fraction) {
  const size_t n = rects.size();
  BW_CHECK_GE(n, 2u);
  const size_t min_fill =
      std::max<size_t>(1, static_cast<size_t>(
                              std::floor(min_fill_fraction *
                                         static_cast<double>(n))));

  // PickSeeds: the pair with the largest dead space when joined. Margin
  // (perimeter) breaks ties so that degenerate zero-volume inputs (all
  // points collinear, a classic Guttman pathology) still split sanely.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -1.0;
  double worst_margin = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      geom::Rect merged = rects[i];
      merged.ExpandToInclude(rects[j]);
      const double waste =
          merged.Volume() - rects[i].Volume() - rects[j].Volume();
      const double margin = merged.Margin();
      if (waste > worst_waste ||
          (waste == worst_waste && margin > worst_margin)) {
        worst_waste = waste;
        worst_margin = margin;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  gist::SplitAssignment to_right(n, false);
  std::vector<bool> assigned(n, false);
  geom::Rect group_a = rects[seed_a];
  geom::Rect group_b = rects[seed_b];
  size_t count_a = 1;
  size_t count_b = 1;
  assigned[seed_a] = true;
  assigned[seed_b] = true;
  to_right[seed_b] = true;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group must take all remaining entries to reach min fill,
    // hand them over.
    if (count_a + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          to_right[i] = false;
        }
      }
      remaining = 0;
      break;
    }
    if (count_b + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          to_right[i] = true;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: the entry with the greatest preference for one group.
    // Volume enlargement decides; margin enlargement breaks ties (which
    // otherwise dominate for zero-volume degenerate inputs).
    auto margin_cost = [&](const geom::Rect& group, const geom::Rect& r) {
      geom::Rect merged = group;
      merged.ExpandToInclude(r);
      return merged.Margin() - group.Margin();
    };
    size_t best = n;
    double best_diff = -1.0;
    double best_margin_diff = -1.0;
    double best_cost_a = 0.0;
    double best_cost_b = 0.0;
    double best_mcost_a = 0.0;
    double best_mcost_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double cost_a = group_a.Enlargement(rects[i]);
      const double cost_b = group_b.Enlargement(rects[i]);
      const double mcost_a = margin_cost(group_a, rects[i]);
      const double mcost_b = margin_cost(group_b, rects[i]);
      const double diff = std::abs(cost_a - cost_b);
      const double margin_diff = std::abs(mcost_a - mcost_b);
      if (diff > best_diff ||
          (diff == best_diff && margin_diff > best_margin_diff)) {
        best_diff = diff;
        best_margin_diff = margin_diff;
        best = i;
        best_cost_a = cost_a;
        best_cost_b = cost_b;
        best_mcost_a = mcost_a;
        best_mcost_b = mcost_b;
      }
    }
    BW_CHECK_LT(best, n);

    bool to_b;
    if (best_cost_a != best_cost_b) {
      to_b = best_cost_b < best_cost_a;
    } else if (best_mcost_a != best_mcost_b) {
      to_b = best_mcost_b < best_mcost_a;
    } else if (group_a.Volume() != group_b.Volume()) {
      to_b = group_b.Volume() < group_a.Volume();
    } else {
      to_b = count_b < count_a;
    }
    assigned[best] = true;
    to_right[best] = to_b;
    if (to_b) {
      group_b.ExpandToInclude(rects[best]);
      ++count_b;
    } else {
      group_a.ExpandToInclude(rects[best]);
      ++count_a;
    }
    --remaining;
  }
  return to_right;
}

gist::SplitAssignment MaxVarianceSplit(const std::vector<geom::Vec>& centers,
                                       double min_fill_fraction) {
  const size_t n = centers.size();
  BW_CHECK_GE(n, 2u);
  const size_t d = centers[0].dim();

  // Dimension of maximum variance.
  size_t split_dim = 0;
  double best_var = -1.0;
  for (size_t dim = 0; dim < d; ++dim) {
    double mean = 0.0;
    for (const auto& c : centers) mean += c[dim];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const auto& c : centers) {
      const double delta = c[dim] - mean;
      var += delta * delta;
    }
    if (var > best_var) {
      best_var = var;
      split_dim = dim;
    }
  }

  // Median split along that dimension (respecting min fill by being
  // perfectly balanced).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return centers[a][split_dim] < centers[b][split_dim];
  });

  size_t left_count = n / 2;
  const auto min_fill = std::max<size_t>(
      1, static_cast<size_t>(min_fill_fraction * static_cast<double>(n)));
  left_count = std::clamp(left_count, min_fill, n - min_fill);

  gist::SplitAssignment to_right(n, false);
  for (size_t rank = left_count; rank < n; ++rank) {
    to_right[order[rank]] = true;
  }
  return to_right;
}

}  // namespace bw::am
