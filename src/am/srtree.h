// SR-tree extension (Katayama & Satoh '97): each BP stores both a
// minimum bounding rectangle and a bounding sphere; the covered region
// is their intersection, so the distance bound is the max of the two.

#ifndef BLOBWORLD_AM_SRTREE_H_
#define BLOBWORLD_AM_SRTREE_H_

#include <string>
#include <vector>

#include "geom/rect.h"
#include "geom/sphere.h"
#include "gist/extension.h"

namespace bw::am {

/// SR-tree bounding-predicate codec. BP layout: 2D floats (rect), D+1
/// floats (sphere), one uint32 (subtree weight).
class SrTreeExtension : public gist::Extension {
 public:
  explicit SrTreeExtension(size_t dim, uint64_t seed = 42,
                           double min_fill = 0.40)
      : Extension(dim, seed), min_fill_(min_fill) {}

  std::string Name() const override { return "srtree"; }

  gist::Bytes BpFromPoints(const std::vector<geom::Vec>& points) override;
  gist::Bytes BpFromChildBps(const std::vector<gist::Bytes>& children) override;
  double BpMinDistance(gist::ByteSpan bp,
                       const geom::Vec& query) const override;
  /// Batched scan: rect and sphere kernels over one SoA decode, combined
  /// with the same max() as the scalar bound.
  void BpMinDistanceBatch(gist::BatchScratch& scratch,
                          const geom::Vec& query) const override;
  double BpPenalty(gist::ByteSpan bp, const geom::Vec& point) const override;
  geom::Vec BpCenter(gist::ByteSpan bp) const override;
  gist::Bytes BpIncludePoint(gist::ByteSpan bp,
                             const geom::Vec& point) const override;
  gist::SplitAssignment PickSplitPoints(
      const std::vector<geom::Vec>& points) override;
  gist::SplitAssignment PickSplitBps(
      const std::vector<gist::Bytes>& bps) override;
  double BpVolume(gist::ByteSpan bp) const override;
  std::string BpToString(gist::ByteSpan bp) const override;

  gist::Bytes Encode(const geom::Rect& rect, const geom::Sphere& sphere,
                     uint32_t weight) const;
  geom::Rect DecodeRect(gist::ByteSpan bp) const;
  geom::Sphere DecodeSphere(gist::ByteSpan bp) const;
  uint32_t DecodeWeight(gist::ByteSpan bp) const;

 private:
  double min_fill_;
};

}  // namespace bw::am

#endif  // BLOBWORLD_AM_SRTREE_H_
