#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace bw {

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      oss << (c == 0 ? "| " : " ");
      oss << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    oss << "\n";
  };

  emit_row(header_);
  for (size_t c = 0; c < widths.size(); ++c) {
    oss << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
  }
  oss << "\n";
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string TablePrinter::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::Count(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TablePrinter::Percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace bw
